//! Survey of `F_2` estimation strategies across sampling rates.
//!
//! ```text
//! cargo run --release --example moments_survey
//! ```
//!
//! Races four ways of answering "what is `F_2(P)`?" from the same samples:
//!
//! 1. Algorithm 1 with exact collision counting,
//! 2. Algorithm 1 with the Indyk–Woodruff sketched collisions (the paper's
//!    full small-space pipeline),
//! 3. the Rusu–Dobra scaling baseline,
//! 4. naive normalisation `F_2(L)/p²`.

use subsampled_streams::core::{
    recommended_levelset_config, ApproxParams, NaiveScaledFk, RusuDobraF2, SampledFkEstimator,
};
use subsampled_streams::stream::{
    BernoulliSampler, ExactStats, StreamGen, UniformStream, ZipfStream,
};

fn survey(label: &str, stream: &[u64], m: u64) {
    let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
    let trials = 5u64;

    println!("-- {label}: truth F2 = {truth:.3e} --");
    println!(
        "{:>6}  {:>12}  {:>14}  {:>12}  {:>12}",
        "p", "Alg1 exact", "Alg1 sketched", "Rusu-Dobra", "naive /p^2"
    );

    for &p in &[0.5f64, 0.1, 0.02] {
        let median = |errs: &mut Vec<f64>| {
            errs.sort_by(|a, b| a.total_cmp(b));
            errs[errs.len() / 2]
        };

        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        let mut e3 = Vec::new();
        let mut e4 = Vec::new();
        for t in 0..trials {
            let cfg = recommended_levelset_config(2, m, p, 0.3);
            let mut alg1 = SampledFkEstimator::exact(2, p);
            let mut alg1s = SampledFkEstimator::sketched(2, p, &cfg, 100 + t);
            let mut rd = RusuDobraF2::new(p, 7, 96, 200 + t);
            let mut naive = NaiveScaledFk::new(2, p);
            let mut sampler = BernoulliSampler::new(p, 300 + t);
            sampler.sample_slice(stream, |x| {
                alg1.update(x);
                alg1s.update(x);
                rd.update(x);
                naive.update(x);
            });
            e1.push(ApproxParams::mult_error(alg1.estimate(), truth));
            e2.push(ApproxParams::mult_error(alg1s.estimate(), truth));
            e3.push(ApproxParams::mult_error(rd.estimate(), truth));
            e4.push(ApproxParams::mult_error(naive.estimate(), truth));
        }
        println!(
            "{:>6}  {:>12.4}  {:>14.4}  {:>12.4}  {:>12.4}",
            p,
            median(&mut e1),
            median(&mut e2),
            median(&mut e3),
            median(&mut e4)
        );
    }
    println!();
}

fn main() {
    let n = 500_000u64;
    let m = 50_000u64;
    println!("F2 estimation survey: n = {n}, m = {m}");
    println!("(median multiplicative error over 5 sampling trials; 1.00 = exact)\n");

    // Heavy tail: F2 lives on elephants, which every method samples well.
    let zipf = ZipfStream::new(m, 1.1).generate(n, 7);
    survey("zipf(1.1) — heavy tail", &zipf, m);

    // Light tail: per-item frequency ~10; the cross-term p(1-p)F1 that
    // naive scaling ignores is ~5x F2 at p = 0.02.
    let uniform = UniformStream::new(m).generate(n, 8);
    survey("uniform — light tail", &uniform, m);

    println!(
        "Takeaway: on heavy tails everything looks fine — the elephants\n\
         dominate F2 and survive sampling. On light tails the naive\n\
         normalisation is off by a factor approaching 1/p (it never\n\
         subtracts the p(1-p)F1 cross-term), and Rusu-Dobra's variance\n\
         needs O~(1/p^2) space to contain. Algorithm 1's collision\n\
         correction tracks the truth in both regimes from the same sample."
    );
}
