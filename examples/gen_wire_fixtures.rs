//! Regenerate the committed wire-format fixture corpus for the
//! *current* `WIRE_VERSION`.
//!
//! ```text
//! cargo run --release --example gen_wire_fixtures
//! ```
//!
//! Writes one framed snapshot per estimator family to
//! `tests/fixtures/wire_v<WIRE_VERSION>/`, plus `manifest.tsv` pinning
//! each file's wire tag, estimate bits and sample count.
//! `tests/wire_fixtures.rs` decodes the **committed** bytes on every CI
//! run, so cross-version compatibility is guarded by bytes, not by
//! review.
//!
//! Frozen corpora must NOT be regenerated: `tests/fixtures/wire_v1/`
//! was written by the last version-1 build and is the permanent v1
//! compatibility suite — this generator cannot reproduce it (encoders
//! always write the current version) and must never touch it. When the
//! format moves again, bump `WIRE_VERSION`, rerun this generator (it
//! writes the new `wire_v<N>/` directory) and freeze the previous one
//! exactly like v1. Everything here is deterministic (fixed seeds,
//! fixed parameters), so an unchanged codebase regenerates identical
//! bytes — a handy way to prove a refactor didn't move the format.

use std::fmt::Write as _;
use std::path::Path;

use subsampled_streams::codec::WireCodec;
use subsampled_streams::core::{
    AdaptiveF2Estimator, MonitorBuilder, NaiveScaledF0, NaiveScaledFk, RusuDobraF2,
    SampledEntropyEstimator, SampledF0Estimator, SampledF1HeavyHitters, SampledF2HeavyHitters,
    SampledFkEstimator, Statistic, SubsampledEstimator,
};
use subsampled_streams::sketch::levelset::LevelSetConfig;
use subsampled_streams::stream::{BernoulliSampler, StreamGen, ZipfStream};
use subsampled_streams::window::{QuerySpec, WindowConfig, WindowedMonitor};

/// Sampling rate baked into every fixture.
const P: f64 = 0.25;

fn sampled_stream() -> Vec<u64> {
    // Small enough to keep the corpus a few hundred KiB, large enough
    // that every estimator has non-trivial state.
    let stream = ZipfStream::new(1 << 12, 1.2).generate(20_000, 42);
    BernoulliSampler::new(P, 43).sample_to_vec(&stream)
}

struct Fixture {
    name: &'static str,
    bytes: Vec<u8>,
    estimate_bits: u64,
    samples_seen: u64,
}

fn fixture<E>(name: &'static str, est: &E) -> Fixture
where
    E: SubsampledEstimator + WireCodec,
{
    Fixture {
        name,
        bytes: est.encode_framed(),
        estimate_bits: SubsampledEstimator::estimate(est).value.to_bits(),
        samples_seen: est.samples_seen(),
    }
}

fn main() {
    let sampled = sampled_stream();
    let mut fixtures = Vec::new();

    let mut f0 = SampledF0Estimator::new(P, 0.05, 1);
    f0.update_batch(&sampled);
    fixtures.push(fixture("f0", &f0));

    let mut fk = SampledFkEstimator::exact(2, P);
    fk.update_batch(&sampled);
    fixtures.push(fixture("fk_exact", &fk));

    let cfg = LevelSetConfig::for_universe(1 << 12, 128);
    let mut fk_s = SampledFkEstimator::sketched(2, P, &cfg, 2);
    fk_s.update_batch(&sampled);
    fixtures.push(fixture("fk_sketched", &fk_s));

    let mut entropy = SampledEntropyEstimator::new(P, 256, 3);
    entropy.update_batch(&sampled);
    fixtures.push(fixture("entropy", &entropy));

    let mut hh1 = SampledF1HeavyHitters::new(0.05, 0.2, 0.05, P, 4);
    hh1.update_batch(&sampled);
    fixtures.push(fixture("hh_f1", &hh1));

    let mut hh2 = SampledF2HeavyHitters::new(0.5, 0.5, 0.3, P, 5);
    hh2.update_batch(&sampled);
    fixtures.push(fixture("hh_f2", &hh2));

    let mut rd = RusuDobraF2::new(P, 7, 96, 6);
    rd.update_batch(&sampled);
    fixtures.push(fixture("rusu_dobra_f2", &rd));

    let mut naive_fk = NaiveScaledFk::new(2, P);
    naive_fk.update_batch(&sampled);
    fixtures.push(fixture("naive_fk", &naive_fk));

    let mut naive_f0 = NaiveScaledF0::new(P, 8);
    naive_f0.update_batch(&sampled);
    fixtures.push(fixture("naive_f0", &naive_f0));

    let mut adaptive = AdaptiveF2Estimator::new(P);
    adaptive.update_batch(&sampled);
    fixtures.push(fixture("adaptive_f2", &adaptive));

    // The full monitor: every registerable family in one snapshot. The
    // pinned estimate is its F2 (exact collision oracle) value.
    let mut monitor = MonitorBuilder::with_seed(P, 7)
        .f0(0.05)
        .fk(2)
        .entropy(256)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .f2_heavy_hitters(0.5, 0.5, 0.3)
        .build();
    monitor.update_batch(&sampled);
    fixtures.push(Fixture {
        name: "monitor_full",
        bytes: monitor.checkpoint().expect("checkpoint"),
        estimate_bits: monitor
            .estimate(Statistic::Fk(2))
            .expect("registered")
            .value
            .to_bits(),
        samples_seen: monitor.samples_seen(),
    });

    // The windowed monitor: a bucket ring caught mid-stream (live
    // buckets, retirements behind it, a registered continuous query so
    // the query registry and its runtime state are on the wire). Same
    // raw stream, survivor *positions* as event times — dense unit-tick
    // trace over 10 epochs of span 2000, window of 4. The pinned
    // estimate is the window fold's F2; samples is the live-window count.
    let mut windowed = WindowedMonitor::new(
        MonitorBuilder::with_seed(P, 7)
            .f0(0.05)
            .fk(2)
            .entropy(256)
            .build(),
        WindowConfig::new(4, 2_000),
    );
    windowed.register_query(QuerySpec::threshold("f0_high", "F0", 500.0, true));
    let stream = ZipfStream::new(1 << 12, 1.2).generate(20_000, 42);
    let mut sampler = BernoulliSampler::new(P, 43);
    sampler.sample_indexed(&stream, |i, x| windowed.ingest_at(i as u64, x));
    fixtures.push(Fixture {
        name: "windowed_monitor",
        bytes: windowed.checkpoint().expect("window checkpoint"),
        estimate_bits: windowed
            .estimate(Statistic::Fk(2))
            .expect("registered")
            .value
            .to_bits(),
        samples_seen: windowed.window_samples(),
    });

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!(
        "tests/fixtures/wire_v{}",
        subsampled_streams::codec::WIRE_VERSION
    ));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let mut manifest = String::from(
        "# name\twire_tag\testimate_bits\tsamples_seen\tbytes\n# regenerate: cargo run --release --example gen_wire_fixtures\n",
    );
    let mut total = 0usize;
    for f in &fixtures {
        let (version, tag, _) =
            subsampled_streams::codec::peek_frame(&f.bytes).expect("own frame peeks");
        assert_eq!(version, subsampled_streams::codec::WIRE_VERSION);
        std::fs::write(dir.join(format!("{}.bin", f.name)), &f.bytes).expect("write fixture");
        writeln!(
            manifest,
            "{}\t{:#06x}\t{:#018x}\t{}\t{}",
            f.name,
            tag,
            f.estimate_bits,
            f.samples_seen,
            f.bytes.len()
        )
        .expect("format");
        total += f.bytes.len();
        println!("{:<16} tag {tag:#06x}  {:>8} bytes", f.name, f.bytes.len());
    }
    std::fs::write(dir.join("manifest.tsv"), manifest).expect("write manifest");
    println!(
        "\nwrote {} fixtures ({} KiB) + manifest.tsv to {}",
        fixtures.len(),
        total / 1024,
        dir.display()
    );
}
