//! Distributed monitors with a central collector.
//!
//! ```text
//! cargo run --release --example distributed_collector
//! ```
//!
//! Three vantage points each observe a Bernoulli sample of their own slice
//! of the traffic (different links of the same network). Each runs an
//! identically-configured [`Monitor`]; the collector calls
//! [`Monitor::merge`] and answers for the *whole* network — the natural
//! multi-router extension of the paper's sampled-NetFlow deployment.
//! Merging is exact for the collision oracle (frequency algebra) and the
//! bottom-k `F_0` sketch (set union), so the merged answer is
//! distributed-equals-centralised; the entropy merge is the documented
//! length-weighted approximation.

use subsampled_streams::core::{MonitorBuilder, Statistic};
use subsampled_streams::stream::{BernoulliSampler, ExactStats, NetFlowStream, StreamGen};

fn main() {
    let p = 0.05;
    let sites = 3usize;
    let packets_per_site = 400_000u64;

    // Each site sees its own traffic mix (overlapping flow id space).
    let traces: Vec<Vec<u64>> = (0..sites)
        .map(|s| NetFlowStream::new(1 << 22, 1.1, 50_000).generate(packets_per_site, 10 + s as u64))
        .collect();

    // Ground truth over the union of all traffic.
    let mut all = ExactStats::new();
    for trace in &traces {
        for &x in trace {
            all.push(x);
        }
    }

    // Per-site monitors: identical builder config (same sketch seeds —
    // mergeability requires shared hashes), independent sampling
    // randomness.
    let site_monitor = || {
        MonitorBuilder::with_seed(p, 4242)
            .fk(2)
            .f0(0.05)
            .entropy(2000)
            .build()
    };
    let mut site_monitors = Vec::new();
    for (s, trace) in traces.iter().enumerate() {
        let mut monitor = site_monitor();
        let mut sampler = BernoulliSampler::new(p, 100 + s as u64);
        sampler.sample_batches(trace, 4096, |chunk| monitor.update_batch(chunk));
        println!(
            "site {s}: {} packets observed of {} ({:.1}%), state {} KiB",
            monitor.samples_seen(),
            trace.len(),
            100.0 * monitor.samples_seen() as f64 / trace.len() as f64,
            monitor.space_bytes() / 1024
        );
        site_monitors.push(monitor);
    }

    // Collector: merge all site summaries — no raw samples travel.
    let mut collector = site_monitors.remove(0);
    for other in &site_monitors {
        collector.merge(other);
    }

    println!("\ncollector view (merged {} sites):", sites);
    let f2 = collector.estimate(Statistic::Fk(2)).expect("registered");
    let t2 = all.fk(2);
    println!(
        "  F2 (self-join size): est {:.3e}  true {:.3e}  err {:.2}%",
        f2.value,
        t2,
        100.0 * (f2.value - t2).abs() / t2
    );
    let f0 = collector.estimate(Statistic::F0).expect("registered");
    let t0 = all.f0() as f64;
    println!(
        "  F0 (active flows)  : est {:.0}  true {:.0}  ratio {:.2}",
        f0.value,
        t0,
        f0.value / t0
    );
    let h = collector.estimate(Statistic::Entropy).expect("registered");
    let th = all.entropy();
    println!(
        "  entropy            : est {:.3}  true {:.3}  ratio {:.2}",
        h.value,
        th,
        h.value / th
    );
    println!(
        "\nTakeaway: the merged summaries answer for the union of all links\n\
         with single-monitor accuracy — no raw samples leave the sites."
    );
}
