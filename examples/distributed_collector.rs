//! Distributed monitors with a central collector.
//!
//! ```text
//! cargo run --release --example distributed_collector
//! ```
//!
//! Three vantage points each observe a Bernoulli sample of their own slice
//! of the traffic (different links of the same network). Each runs the
//! paper's estimators locally; the collector merges the summaries and
//! answers for the *whole* network — the natural multi-router extension of
//! the paper's sampled-NetFlow deployment. Merging is exact for the
//! collision oracle (frequency algebra) and for the bottom-k `F_0` sketch
//! (set union), so the merged answer is distributed-equals-centralised.

use subsampled_streams::core::{SampledF0Estimator, SampledFkEstimator};
use subsampled_streams::stream::{BernoulliSampler, ExactStats, NetFlowStream, StreamGen};

fn main() {
    let p = 0.05;
    let sites = 3usize;
    let packets_per_site = 400_000u64;

    // Each site sees its own traffic mix (overlapping flow id space).
    let traces: Vec<Vec<u64>> = (0..sites)
        .map(|s| {
            NetFlowStream::new(1 << 22, 1.1, 50_000).generate(packets_per_site, 10 + s as u64)
        })
        .collect();

    // Ground truth over the union of all traffic.
    let mut all = ExactStats::new();
    for trace in &traces {
        for &x in trace {
            all.push(x);
        }
    }

    // Per-site monitors: same sketch seed (mergeability), independent
    // sampling randomness.
    let mut site_f2: Vec<SampledFkEstimator<_>> = Vec::new();
    let mut site_f0: Vec<SampledF0Estimator> = Vec::new();
    for (s, trace) in traces.iter().enumerate() {
        let mut f2 = SampledFkEstimator::exact(2, p);
        let mut f0 = SampledF0Estimator::new(p, 0.05, 4242);
        let mut sampler = BernoulliSampler::new(p, 100 + s as u64);
        let mut seen = 0u64;
        sampler.sample_slice(trace, |x| {
            seen += 1;
            f2.update(x);
            f0.update(x);
        });
        println!(
            "site {s}: {} packets observed of {} ({}%)",
            seen,
            trace.len(),
            100.0 * seen as f64 / trace.len() as f64
        );
        site_f2.push(f2);
        site_f0.push(f0);
    }

    // Collector: merge all summaries.
    let mut f2 = site_f2.remove(0);
    for other in &site_f2 {
        f2.merge(other);
    }
    let mut f0 = site_f0.remove(0);
    for other in &site_f0 {
        f0.merge(other);
    }

    println!("\ncollector view (merged {} sites):", sites);
    let t2 = all.fk(2);
    println!(
        "  F2 (self-join size): est {:.3e}  true {:.3e}  err {:.2}%",
        f2.estimate(),
        t2,
        100.0 * (f2.estimate() - t2).abs() / t2
    );
    let t0 = all.f0() as f64;
    println!(
        "  F0 (active flows)  : est {:.0}  true {:.0}  ratio {:.2} (ceiling {:.1}x)",
        f0.estimate(),
        t0,
        f0.estimate() / t0,
        f0.error_factor()
    );
    println!(
        "\nTakeaway: the merged summaries answer for the union of all links\n\
         with single-monitor accuracy — no raw samples leave the sites."
    );
}
