//! Distributed monitors with a central collector — now two levels deep.
//!
//! ```text
//! cargo run --release --example distributed_collector
//! ```
//!
//! Three vantage points each observe their own slice of the traffic
//! (different links of the same network). Each site runs a
//! [`ShardedMonitor`]: the raw link traffic is partitioned across worker
//! threads, every worker Bernoulli-samples its shard at rate `p` with an
//! independently split seed and feeds a forked [`Monitor`]; `finish()`
//! merges the shard summaries into the site's view. The collector then
//! calls [`Monitor::merge`] across sites and answers for the *whole*
//! network — the paper's sampled-NetFlow deployment scaled both across
//! threads (sharding) and across routers (sites), with the same merge
//! algebra at both levels. Merging is exact for the collision oracle
//! (frequency algebra) and the bottom-k `F_0` sketch (set union); the
//! entropy merge is the documented length-weighted approximation.

use subsampled_streams::core::{Monitor, MonitorBuilder, ShardedConfig, ShardedMonitor, Statistic};
use subsampled_streams::stream::{ExactStats, NetFlowStream, StreamGen};

fn main() {
    let p = 0.05;
    let sites = 3usize;
    let shards_per_site = 2usize;
    let packets_per_site = 400_000u64;

    // Each site sees its own traffic mix (overlapping flow id space).
    let traces: Vec<std::sync::Arc<Vec<u64>>> = (0..sites)
        .map(|s| {
            std::sync::Arc::new(
                NetFlowStream::new(1 << 22, 1.1, 50_000).generate(packets_per_site, 10 + s as u64),
            )
        })
        .collect();

    // Ground truth over the union of all traffic.
    let mut all = ExactStats::new();
    for trace in &traces {
        for &x in trace.iter() {
            all.push(x);
        }
    }

    // Per-site prototypes: identical builder config (same sketch seeds —
    // mergeability requires shared hashes). Sampling randomness is
    // independent per site AND per worker shard: site `s` passes sampler
    // seed `100 + s`, and the pipeline derives shard `i`'s sampler from
    // `split_seed(100 + s, i)`.
    let site_prototype = || -> Monitor {
        MonitorBuilder::with_seed(p, 4242)
            .fk(2)
            .f0(0.05)
            .entropy(2000)
            .build()
    };
    let mut site_monitors = Vec::new();
    for (s, trace) in traces.iter().enumerate() {
        let mut sharded = ShardedMonitor::launch(
            &site_prototype(),
            100 + s as u64,
            ShardedConfig::new(shards_per_site),
        );
        sharded.ingest_shared(trace);
        let monitor = sharded.finish();
        println!(
            "site {s}: {} packets observed of {} ({:.1}%) across {shards_per_site} shards, state {} KiB",
            monitor.samples_seen(),
            trace.len(),
            100.0 * monitor.samples_seen() as f64 / trace.len() as f64,
            monitor.space_bytes() / 1024
        );
        site_monitors.push(monitor);
    }

    // Collector: merge all site summaries — no raw samples travel. The
    // fallible path (`try_merge`) is what a release deployment uses for
    // summaries arriving over the wire.
    let mut collector = site_monitors.remove(0);
    for other in &site_monitors {
        collector
            .try_merge(other)
            .expect("sites share one builder config");
    }

    println!("\ncollector view (merged {} sites):", sites);
    let f2 = collector.estimate(Statistic::Fk(2)).expect("registered");
    let t2 = all.fk(2);
    println!(
        "  F2 (self-join size): est {:.3e}  true {:.3e}  err {:.2}%",
        f2.value,
        t2,
        100.0 * (f2.value - t2).abs() / t2
    );
    let f0 = collector.estimate(Statistic::F0).expect("registered");
    let t0 = all.f0() as f64;
    println!(
        "  F0 (active flows)  : est {:.0}  true {:.0}  ratio {:.2}",
        f0.value,
        t0,
        f0.value / t0
    );
    let h = collector.estimate(Statistic::Entropy).expect("registered");
    let th = all.entropy();
    println!(
        "  entropy            : est {:.3}  true {:.3}  ratio {:.2}",
        h.value,
        th,
        h.value / th
    );
    println!(
        "\nTakeaway: the same merge algebra scales the monitor across threads\n\
         (shards within a site) and across routers (sites at the collector) —\n\
         no raw samples leave the sites."
    );
}
