//! Distributed monitors with a central collector — over real sockets.
//!
//! ```text
//! cargo run --release --example distributed_collector
//! ```
//!
//! Three vantage points each observe their own slice of the traffic
//! (different links of the same network). Each site runs a
//! [`ShardedMonitor`]: the raw link traffic is partitioned across worker
//! threads, every worker Bernoulli-samples its shard at rate `p` with an
//! independently split seed and feeds a forked [`Monitor`]; the site
//! ships a **mid-run** snapshot (`snapshot_wire`, the trailing
//! coordinator view — ingestion never stops) and, after `finish()`, its
//! final checkpoint.
//!
//! Nothing is handed over in memory any more: every snapshot crosses a
//! loopback **TCP connection** as a versioned checksummed frame. The
//! collector is a [`CollectorServer`] — accept loop, per-connection
//! handler threads, hello/version handshake — that decodes each push
//! through the codec registry and folds it in behind `try_merge`.
//! Failures on the receive path are **counters, not panics**: the demo
//! deliberately injects a corrupt frame and a snapshot from an
//! incompatible monitor configuration, and both show up as typed
//! per-reason rejections in [`TransportStats`] while the well-behaved
//! sites keep streaming.

use std::net::TcpStream;
use std::time::Duration;

use subsampled_streams::codec::WireCodec;
use subsampled_streams::core::{Monitor, MonitorBuilder, ShardedConfig, ShardedMonitor, Statistic};
use subsampled_streams::stream::{ExactStats, NetFlowStream, StreamGen};
use subsampled_streams::transport::{
    write_frame, ClientConfig, CollectorServer, Hello, ServerConfig, SiteClient,
    TRANSPORT_PROTO_VERSION,
};

fn main() {
    let p = 0.05;
    let sites = 3usize;
    let shards_per_site = 2usize;
    let packets_per_site = 400_000u64;

    // Each site sees its own traffic mix (overlapping flow id space).
    let traces: Vec<std::sync::Arc<Vec<u64>>> = (0..sites)
        .map(|s| {
            std::sync::Arc::new(
                NetFlowStream::new(1 << 22, 1.1, 50_000).generate(packets_per_site, 10 + s as u64),
            )
        })
        .collect();

    // Ground truth over the union of all traffic.
    let mut all = ExactStats::new();
    for trace in &traces {
        for &x in trace.iter() {
            all.push(x);
        }
    }

    // Per-site prototypes: identical builder config (same sketch seeds —
    // mergeability requires shared hashes). Sampling randomness is
    // independent per site AND per worker shard: site `s` passes sampler
    // seed `100 + s`, and the pipeline derives shard `i`'s sampler from
    // `split_seed(100 + s, i)`.
    let site_prototype = || -> Monitor {
        MonitorBuilder::with_seed(p, 4242)
            .fk(2)
            .f0(0.05)
            .entropy(2000)
            .build()
    };

    // The collector: a real TCP endpoint on loopback. The OS picks the
    // port; sites dial it like they would a production collector.
    let server = CollectorServer::bind("127.0.0.1:0", site_prototype(), ServerConfig::default())
        .expect("bind collector on loopback");
    let addr = server.local_addr();
    println!("collector listening on {addr}\n");

    // Sites run concurrently: summarise the link with a sharded monitor,
    // push a mid-run snapshot while ingestion continues, then the final
    // checkpoint. Every push blocks for the collector's typed ack and
    // reconnects with exponential backoff if the link drops.
    let mut handles = Vec::new();
    for (s, trace) in traces.iter().enumerate() {
        let trace = std::sync::Arc::clone(trace);
        let proto = site_prototype();
        handles.push(std::thread::spawn(move || {
            let mut sharded =
                ShardedMonitor::launch(&proto, 100 + s as u64, ShardedConfig::new(shards_per_site));
            let mut client =
                SiteClient::connect(addr, ClientConfig::new(s as u64, format!("site-{s}")))
                    .expect("site connects to the collector");

            // First half of the trace, then a mid-run snapshot: the
            // trailing coordinator view crosses the wire while workers
            // keep ingesting.
            let half = trace.len() / 2;
            sharded.ingest(&trace[..half]);
            let mid = sharded.snapshot_wire().expect("snapshot encodes");
            let mid_len = mid.len();
            client.push_wire(mid).expect("mid-run snapshot accepted");

            // Rest of the trace, then the exact final checkpoint.
            sharded.ingest(&trace[half..]);
            let monitor = sharded.finish();
            let wire = monitor.checkpoint().expect("checkpoint encodes");
            let wire_len = wire.len();
            client.push_wire(wire).expect("final snapshot accepted");
            let stats = client.close();
            println!(
                "site {s}: {} of {} packets sampled ({:.1}%) across {shards_per_site} shards; \
                 pushed mid-run {} KiB + final {} KiB snapshot over TCP as {} KiB of frames \
                 ({} accepted, {} as deltas, {} retries)",
                monitor.samples_seen(),
                trace.len(),
                100.0 * monitor.samples_seen() as f64 / trace.len() as f64,
                mid_len / 1024,
                wire_len / 1024,
                stats.bytes_out / 1024,
                stats.snapshots_pushed,
                stats.snapshots_delta,
                stats.retries,
            );
        }));
    }
    for h in handles {
        h.join().expect("site thread");
    }

    // Chaos, on purpose: a corrupt frame and an incompatible snapshot.
    // In the mailbox days each of these was an `expect()` panic on the
    // receive path; now they are per-reason rejection counters and the
    // collector keeps serving.
    {
        // A well-formed hello followed by a frame with a flipped byte.
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let hello = Hello {
            proto_version: TRANSPORT_PROTO_VERSION,
            site_id: 77,
            site_name: "bit-rot".to_string(),
            features: 0,
        };
        write_frame(&mut raw, &hello.encode_framed()).expect("hello");
        let _ = subsampled_streams::transport::read_frame(&mut raw, 1 << 20);
        let mut monitor = site_prototype();
        monitor.update_batch(&[1, 2, 3]);
        let push = subsampled_streams::transport::SnapshotPush {
            site_id: 77,
            seq: 0,
            snapshot: monitor.checkpoint().expect("checkpoint"),
        };
        let mut frame = push.encode_framed();
        let n = frame.len();
        frame[n / 2] ^= 0x20; // bit rot in flight
        write_frame(&mut raw, &frame).expect("send corrupt frame");
        let _ = subsampled_streams::transport::read_frame(&mut raw, 1 << 20); // typed NACK

        // An incompatible monitor configuration (different statistics).
        let mut foreign = MonitorBuilder::with_seed(p, 4242).f0(0.05).build();
        foreign.update_batch(&[4, 5, 6]);
        let mut client =
            SiteClient::connect(addr, ClientConfig::new(78, "misconfigured")).expect("connect");
        match client.push_monitor(&foreign) {
            Err(e) => println!("\nmisconfigured site rejected as expected: {e}"),
            Ok(_) => println!("\nunexpected: incompatible snapshot accepted"),
        }
        client.close();
    }

    // Wind down: final merged view + the transport's observability.
    let (collector, stats) = server.shutdown();

    println!(
        "\ntransport stats: {} connections, {} snapshots accepted, {} duplicate, \
         {} KiB in, {} rejected",
        stats.connections_accepted,
        stats.snapshots_accepted,
        stats.snapshots_duplicate,
        stats.bytes_in / 1024,
        stats.rejected_total(),
    );
    for (label, count) in stats.rejected_nonzero() {
        println!("  rejected[{label}] = {count}");
    }
    for site in &stats.sites {
        println!(
            "  site {} ({}): {} snapshots, last seq {:?}, {} KiB, last seen {:.1}s ago",
            site.site_id,
            site.name,
            site.snapshots_accepted,
            site.last_seq,
            site.bytes_in / 1024,
            site.since_last_seen.as_secs_f64(),
        );
    }

    println!("\ncollector view (merged {sites} sites over TCP):");
    let f2 = collector.estimate(Statistic::Fk(2)).expect("registered");
    let t2 = all.fk(2);
    println!(
        "  F2 (self-join size): est {:.3e}  true {:.3e}  err {:.2}%",
        f2.value,
        t2,
        100.0 * (f2.value - t2).abs() / t2
    );
    let f0 = collector.estimate(Statistic::F0).expect("registered");
    let t0 = all.f0() as f64;
    println!(
        "  F0 (active flows)  : est {:.0}  true {:.0}  ratio {:.2}",
        f0.value,
        t0,
        f0.value / t0
    );
    let h = collector.estimate(Statistic::Entropy).expect("registered");
    let th = all.entropy();
    println!(
        "  entropy            : est {:.3}  true {:.3}  ratio {:.2}",
        h.value,
        th,
        h.value / th
    );
    println!(
        "\nTakeaway: the same merge algebra scales the monitor across threads\n\
         (shards within a site), and now across an actual network boundary:\n\
         summaries arrive as versioned checksummed frames over TCP, corrupt\n\
         or incompatible ones become typed rejection counters, and the\n\
         merged answer is byte-for-byte what an in-memory merge would give."
    );
}
