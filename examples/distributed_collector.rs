//! Distributed monitors with a central collector — over actual bytes.
//!
//! ```text
//! cargo run --release --example distributed_collector
//! ```
//!
//! Three vantage points each observe their own slice of the traffic
//! (different links of the same network). Each site runs a
//! [`ShardedMonitor`]: the raw link traffic is partitioned across worker
//! threads, every worker Bernoulli-samples its shard at rate `p` with an
//! independently split seed and feeds a forked [`Monitor`]; `finish()`
//! merges the shard summaries into the site's view.
//!
//! The collector no longer receives `Monitor` values in memory: each
//! site **encodes its snapshot** with the versioned wire codec
//! ([`Monitor::checkpoint`]) and ships the bytes; the collector
//! **decodes** ([`Monitor::restore`]) and merges via the fallible
//! [`Monitor::try_merge`] — exactly what a production deployment does
//! with summaries arriving over a socket. Merging is exact for the
//! collision oracle (frequency algebra) and the bottom-k `F_0` sketch
//! (set union); the entropy merge is the documented length-weighted
//! approximation. The decoded-and-merged answer is bitwise identical to
//! the in-memory merge (pinned by `tests/codec.rs`).

use subsampled_streams::codec::{peek_frame, FRAME_HEADER_BYTES};
use subsampled_streams::core::{Monitor, MonitorBuilder, ShardedConfig, ShardedMonitor, Statistic};
use subsampled_streams::stream::{ExactStats, NetFlowStream, StreamGen};

fn main() {
    let p = 0.05;
    let sites = 3usize;
    let shards_per_site = 2usize;
    let packets_per_site = 400_000u64;

    // Each site sees its own traffic mix (overlapping flow id space).
    let traces: Vec<std::sync::Arc<Vec<u64>>> = (0..sites)
        .map(|s| {
            std::sync::Arc::new(
                NetFlowStream::new(1 << 22, 1.1, 50_000).generate(packets_per_site, 10 + s as u64),
            )
        })
        .collect();

    // Ground truth over the union of all traffic.
    let mut all = ExactStats::new();
    for trace in &traces {
        for &x in trace.iter() {
            all.push(x);
        }
    }

    // Per-site prototypes: identical builder config (same sketch seeds —
    // mergeability requires shared hashes). Sampling randomness is
    // independent per site AND per worker shard: site `s` passes sampler
    // seed `100 + s`, and the pipeline derives shard `i`'s sampler from
    // `split_seed(100 + s, i)`.
    let site_prototype = || -> Monitor {
        MonitorBuilder::with_seed(p, 4242)
            .fk(2)
            .f0(0.05)
            .entropy(2000)
            .build()
    };

    // Each site summarises its link, then mails SNAPSHOT BYTES — no
    // Monitor value (and no raw sample) crosses the site boundary.
    let mut mailbox: Vec<Vec<u8>> = Vec::new();
    for (s, trace) in traces.iter().enumerate() {
        let mut sharded = ShardedMonitor::launch(
            &site_prototype(),
            100 + s as u64,
            ShardedConfig::new(shards_per_site),
        );
        sharded.ingest_shared(trace);
        let monitor = sharded.finish();
        let wire = monitor
            .checkpoint()
            .expect("all registered estimators are wire-decodable");
        println!(
            "site {s}: {} packets observed of {} ({:.1}%) across {shards_per_site} shards, \
             state {} KiB -> wire {} KiB ({:.2} bytes/byte)",
            monitor.samples_seen(),
            trace.len(),
            100.0 * monitor.samples_seen() as f64 / trace.len() as f64,
            monitor.space_bytes() / 1024,
            wire.len() / 1024,
            wire.len() as f64 / monitor.space_bytes() as f64,
        );
        mailbox.push(wire);
    }

    // Collector: peek each frame (magic/version/tag — self-describing),
    // decode, merge. Corrupt or incompatible snapshots surface as typed
    // errors instead of panics.
    let mut collector: Option<Monitor> = None;
    for (s, wire) in mailbox.iter().enumerate() {
        let (version, tag, payload) = peek_frame(wire).expect("frame header");
        println!(
            "collector: site {s} snapshot v{version} tag {tag:#06x}, {} bytes payload (+{} header)",
            payload, FRAME_HEADER_BYTES
        );
        let site = Monitor::restore(wire).expect("snapshot decodes");
        match collector.as_mut() {
            None => collector = Some(site),
            Some(c) => c.try_merge(&site).expect("sites share one builder config"),
        }
    }
    let collector = collector.expect("at least one site");
    let total_wire: usize = mailbox.iter().map(|w| w.len()).sum();

    println!(
        "\ncollector view (merged {sites} sites, {} KiB total on the wire):",
        total_wire / 1024
    );
    let f2 = collector.estimate(Statistic::Fk(2)).expect("registered");
    let t2 = all.fk(2);
    println!(
        "  F2 (self-join size): est {:.3e}  true {:.3e}  err {:.2}%",
        f2.value,
        t2,
        100.0 * (f2.value - t2).abs() / t2
    );
    let f0 = collector.estimate(Statistic::F0).expect("registered");
    let t0 = all.f0() as f64;
    println!(
        "  F0 (active flows)  : est {:.0}  true {:.0}  ratio {:.2}",
        f0.value,
        t0,
        f0.value / t0
    );
    let h = collector.estimate(Statistic::Entropy).expect("registered");
    let th = all.entropy();
    println!(
        "  entropy            : est {:.3}  true {:.3}  ratio {:.2}",
        h.value,
        th,
        h.value / th
    );
    println!(
        "\nTakeaway: the same merge algebra scales the monitor across threads\n\
         (shards within a site) and across routers (sites at the collector) —\n\
         and the summaries now cross the site boundary as versioned,\n\
         checksummed bytes: no raw samples and no shared memory."
    );
}
