//! Quickstart: estimate statistics of a stream you never saw.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The setting of McGregor–Pavan–Tirthapura–Woodruff: an original stream
//! `P` passes by at line rate; the monitor sees only a Bernoulli sample
//! `L` (rate `p`), processes it in one pass and small space, and answers
//! questions about `P`.

use subsampled_streams::core::{
    SampledEntropyEstimator, SampledF0Estimator, SampledF1HeavyHitters, SampledFkEstimator,
};
use subsampled_streams::stream::{BernoulliSampler, ExactStats, StreamGen, ZipfStream};

fn main() {
    // The original stream: 1M Zipf-distributed items over a 100k universe.
    let n = 1_000_000;
    let m = 100_000;
    let p = 0.05; // the monitor sees 5% of the traffic
    let stream = ZipfStream::new(m, 1.2).generate(n, 1);

    // Ground truth (the referee — not available to the monitor).
    let exact = ExactStats::from_stream(stream.iter().copied());

    // The estimators observe only the sampled stream.
    let mut f2 = SampledFkEstimator::exact(2, p);
    let mut f0 = SampledF0Estimator::new(p, 0.05, 7);
    let mut entropy = SampledEntropyEstimator::new(p, 2000, 7);
    let mut hh = SampledF1HeavyHitters::new(0.02, 0.2, 0.05, p, 7);

    let mut sampler = BernoulliSampler::new(p, 99);
    let mut seen = 0u64;
    sampler.sample_slice(&stream, |x| {
        seen += 1;
        f2.update(x);
        f0.update(x);
        entropy.update(x);
        hh.update(x);
    });

    println!("original stream : n = {n}, universe = {m}");
    println!("sampled stream  : {seen} elements (p = {p})\n");

    let rel = |est: f64, truth: f64| 100.0 * (est - truth).abs() / truth;

    let t2 = exact.fk(2);
    println!(
        "F2      : estimate {:>14.0}   truth {:>14.0}   err {:>5.2}%",
        f2.estimate(),
        t2,
        rel(f2.estimate(), t2)
    );

    let t0 = exact.f0() as f64;
    println!(
        "F0      : estimate {:>14.0}   truth {:>14.0}   (error ceiling {:.1}x — Thm 4 says no estimator can beat O(1/sqrt(p)))",
        f0.estimate(),
        t0,
        f0.error_factor()
    );

    let th = exact.entropy();
    println!(
        "entropy : estimate {:>14.3}   truth {:>14.3}   err {:>5.2}%  (constant-factor regime: H >> {:.3})",
        entropy.estimate(),
        th,
        rel(entropy.estimate(), th),
        entropy.guarantee_threshold(n)
    );

    println!("\nheavy hitters (f_i >= 2% of F1), frequencies rescaled by 1/p:");
    let truth_hh = exact.heavy_hitters_f1(0.02);
    for (item, f_est) in hh.report() {
        let f_true = exact.freq(item);
        println!(
            "  item {item:>12}   est {f_est:>9.0}   true {f_true:>9}   err {:>5.2}%",
            rel(f_est, f_true as f64)
        );
    }
    println!(
        "  ({} reported / {} true heavy hitters)",
        hh.report().len(),
        truth_hh.len()
    );
}
