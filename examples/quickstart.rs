//! Quickstart: estimate statistics of a stream you never saw.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The setting of McGregor–Pavan–Tirthapura–Woodruff: an original stream
//! `P` passes by at line rate; the monitor sees only a Bernoulli sample
//! `L` (rate `p`), processes it in one pass and small space, and answers
//! questions about `P`. One [`Monitor`] drives all four estimators over
//! the same sample, batched.

use subsampled_streams::core::{Guarantee, MonitorBuilder, Statistic};
use subsampled_streams::stream::{BernoulliSampler, ExactStats, StreamGen, ZipfStream};

fn main() {
    // The original stream: 1M Zipf-distributed items over a 100k universe.
    let n = 1_000_000;
    let m = 100_000;
    let p = 0.05; // the monitor sees 5% of the traffic
    let stream = ZipfStream::new(m, 1.2).generate(n, 1);

    // Ground truth (the referee — not available to the monitor).
    let exact = ExactStats::from_stream(stream.iter().copied());

    // One monitor, four statistics, one pass over the sampled stream.
    let mut monitor = MonitorBuilder::with_seed(p, 7)
        .fk(2)
        .f0(0.05)
        .entropy(2000)
        .f1_heavy_hitters(0.02, 0.2, 0.05)
        .build();

    let mut sampler = BernoulliSampler::new(p, 99);
    sampler.sample_batches(&stream, 4096, |chunk| monitor.update_batch(chunk));

    println!("original stream : n = {n}, universe = {m}");
    println!(
        "sampled stream  : {} elements (p = {p}), monitor state {} KiB\n",
        monitor.samples_seen(),
        monitor.space_bytes() / 1024
    );

    let rel = |est: f64, truth: f64| 100.0 * (est - truth).abs() / truth;

    let f2 = monitor.estimate(Statistic::Fk(2)).expect("registered");
    let t2 = exact.fk(2);
    println!(
        "F2      : estimate {:>14.0}   truth {:>14.0}   err {:>5.2}%",
        f2.value,
        t2,
        rel(f2.value, t2)
    );

    let f0 = monitor.estimate(Statistic::F0).expect("registered");
    let t0 = exact.f0() as f64;
    let ceiling = match f0.guarantee {
        Guarantee::BoundedFactor { factor } => factor,
        _ => unreachable!("Algorithm 2 promises a bounded factor"),
    };
    println!(
        "F0      : estimate {:>14.0}   truth {:>14.0}   (error ceiling {ceiling:.1}x — Thm 4 says no estimator can beat O(1/sqrt(p)))",
        f0.value, t0
    );

    let h = monitor.estimate(Statistic::Entropy).expect("registered");
    let th = exact.entropy();
    println!(
        "entropy : estimate {:>14.3}   truth {:>14.3}   err {:>5.2}%  (constant-factor regime)",
        h.value,
        th,
        rel(h.value, th)
    );

    let hh = monitor
        .estimate(Statistic::F1HeavyHitters)
        .expect("registered");
    println!("\nheavy hitters (f_i >= 2% of F1), frequencies rescaled by 1/p:");
    let truth_hh = exact.heavy_hitters_f1(0.02);
    for &(item, f_est) in &hh.report {
        let f_true = exact.freq(item);
        println!(
            "  item {item:>12}   est {f_est:>9.0}   true {f_true:>9}   err {:>5.2}%",
            rel(f_est, f_true as f64)
        );
    }
    println!(
        "  ({} reported / {} true heavy hitters)",
        hh.report.len(),
        truth_hh.len()
    );
}
