//! Cross-build wire stability check, driven by CI.
//!
//! ```text
//! cargo run           --example codec_cross_build -- encode /tmp/snap.bin
//! cargo run --release --example codec_cross_build -- decode /tmp/snap.bin
//! ```
//!
//! `encode` builds a deterministic monitor (fixed seeds, fixed stream),
//! ingests, and writes its framed checkpoint. `decode` — typically run
//! from a *different build profile or binary* — reads the bytes,
//! restores, and verifies the restored monitor is bitwise identical to a
//! freshly computed in-process reference: same estimates, same space,
//! and a byte-identical re-checkpoint. Any profile-dependent encoding
//! (uninitialised padding, HashMap iteration leaking into the payload,
//! float environment differences) fails loudly here.

use subsampled_streams::core::{Monitor, MonitorBuilder, NaiveScaledFk, Statistic};
use subsampled_streams::stream::{BernoulliSampler, StreamGen, ZipfStream};

/// The deterministic reference state both sides compute.
fn reference_monitor() -> Monitor {
    let p = 0.25;
    let mut monitor = MonitorBuilder::with_seed(p, 20120527)
        .f0(0.05)
        .fk(2)
        .entropy(512)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .f2_heavy_hitters(0.3, 0.2, 0.05)
        .register("F2_naive", NaiveScaledFk::new(2, p))
        .build();
    let stream = ZipfStream::new(4_000, 1.2).generate(200_000, 11);
    let mut sampler = BernoulliSampler::new(p, 13);
    sampler.sample_batches(&stream, 1024, |chunk| monitor.update_batch(chunk));
    monitor
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (mode, path) = match args.as_slice() {
        [_, m, p] if m == "encode" || m == "decode" => (m.as_str(), p.as_str()),
        _ => {
            eprintln!("usage: codec_cross_build <encode|decode> <path>");
            std::process::exit(2);
        }
    };

    let reference = reference_monitor();
    match mode {
        "encode" => {
            let bytes = reference.checkpoint().expect("checkpoint");
            std::fs::write(path, &bytes).expect("write snapshot");
            println!(
                "encoded {} bytes ({} estimators, {} samples) to {path}",
                bytes.len(),
                reference.len(),
                reference.samples_seen()
            );
        }
        "decode" => {
            let bytes = std::fs::read(path).expect("read snapshot");
            let restored = Monitor::restore(&bytes).expect("snapshot decodes");
            assert_eq!(restored.samples_seen(), reference.samples_seen());
            assert_eq!(restored.space_bytes(), reference.space_bytes());
            for ((la, ea), (lb, eb)) in reference.report().iter().zip(&restored.report()) {
                assert_eq!(la, lb, "label order changed across builds");
                assert_eq!(
                    ea.value.to_bits(),
                    eb.value.to_bits(),
                    "{la}: estimate differs across builds ({} vs {})",
                    ea.value,
                    eb.value
                );
                assert_eq!(ea, eb, "{la}: typed estimate differs across builds");
            }
            assert_eq!(
                restored.checkpoint().expect("re-checkpoint"),
                bytes,
                "re-encoding the restored monitor must reproduce the wire bytes"
            );
            let f2 = restored.estimate(Statistic::Fk(2)).expect("registered");
            println!(
                "decoded {} bytes: {} estimators, {} samples, F2 = {:.6e} — cross-build OK",
                bytes.len(),
                restored.len(),
                restored.samples_seen(),
                f2.value
            );
        }
        _ => unreachable!(),
    }
}
