//! Sampled-NetFlow router monitor — the paper's motivating deployment.
//!
//! ```text
//! cargo run --release --example netflow_monitor
//! ```
//!
//! A router forwards packets grouped into flows with heavy-tailed sizes;
//! maintaining per-packet statistics is too expensive, so the monitor sees
//! a Bernoulli sample (Random Sampled NetFlow). From that sample alone it
//! reports:
//!
//! * the elephant flows (Theorem 6 `F_1` heavy hitters) with per-flow
//!   packet-count estimates,
//! * the self-join size `F_2` of the flow-size distribution — the standard
//!   skew indicator (Algorithm 1),
//! * the number of active flows (`F_0`, Algorithm 2 — with its honest
//!   `1/√p` uncertainty),
//!
//! and contrasts Bernoulli sampling with the deterministic 1-in-N variant.

use subsampled_streams::core::{Guarantee, MonitorBuilder, Statistic};
use subsampled_streams::stream::{
    BernoulliSampler, ExactStats, NetFlowStream, OneInNSampler, StreamGen,
};

fn main() {
    let n_packets = 2_000_000u64;
    let p = 0.02; // 1-in-50 sampling, a realistic router setting
    let trace = NetFlowStream::new(1 << 24, 1.1, 200_000).generate(n_packets, 2024);
    let exact = ExactStats::from_stream(trace.iter().copied());

    println!(
        "router trace    : {n_packets} packets, {} flows",
        exact.f0()
    );
    println!("sampling        : Bernoulli p = {p} (Random Sampled NetFlow)\n");

    let alpha = 0.01;
    let mut monitor = MonitorBuilder::with_seed(p, 1)
        .f1_heavy_hitters(alpha, 0.2, 0.05)
        .fk(2)
        .f0(0.05)
        .build();

    let mut sampler = BernoulliSampler::new(p, 3);
    sampler.sample_batches(&trace, 4096, |chunk| monitor.update_batch(chunk));
    let seen = monitor.samples_seen();
    println!("monitor ingested: {seen} sampled packets in 4096-packet batches\n");

    println!("-- elephant flows (>= 1% of traffic), packets rescaled by 1/p --");
    let truth = exact.heavy_hitters_f1(alpha);
    let hh = monitor
        .estimate(Statistic::F1HeavyHitters)
        .expect("registered");
    for &(flow, pkts_est) in &hh.report {
        let pkts_true = exact.freq(flow);
        println!(
            "  flow {flow:>10}  est {pkts_est:>9.0} pkts   true {pkts_true:>9}   err {:>5.2}%",
            100.0 * (pkts_est - pkts_true as f64).abs() / pkts_true as f64
        );
    }
    println!(
        "  recall: {}/{} true elephants\n",
        hh.report.len(),
        truth.len()
    );

    let f2 = monitor.estimate(Statistic::Fk(2)).expect("registered");
    let t2 = exact.fk(2);
    println!(
        "-- self-join size F2 --\n  est {:.3e}   true {:.3e}   err {:.2}%\n",
        f2.value,
        t2,
        100.0 * (f2.value - t2).abs() / t2
    );

    let f0 = monitor.estimate(Statistic::F0).expect("registered");
    let t0 = exact.f0() as f64;
    let ceiling = match f0.guarantee {
        Guarantee::BoundedFactor { factor } => factor,
        _ => unreachable!(),
    };
    println!(
        "-- active flows F0 --\n  est {:.0}   true {:.0}   ratio {:.2} (theory ceiling {ceiling:.1}x either way)\n",
        f0.value,
        t0,
        f0.value / t0
    );

    // Bernoulli vs deterministic 1-in-N on the same trace: periodic
    // sampling preserves the per-flow expectations here, but it is not the
    // model the guarantees are proven for (survival events are perfectly
    // anti-correlated within a flow's packet run).
    let every = (1.0 / p) as u64;
    let mut one_in_n = OneInNSampler::new(every);
    let periodic = one_in_n.sample_to_vec(&trace);
    let periodic_stats = ExactStats::from_stream(periodic.iter().copied());
    println!("-- sampling-model comparison (same budget) --");
    println!(
        "  Bernoulli   : {} samples, {} distinct flows seen",
        seen,
        {
            let mut sampler = BernoulliSampler::new(p, 3);
            let mut s = ExactStats::new();
            sampler.sample_slice(&trace, |x| s.push(x));
            s.f0()
        }
    );
    println!(
        "  1-in-{every}     : {} samples, {} distinct flows seen",
        periodic_stats.n(),
        periodic_stats.f0()
    );
    println!("  (guarantees in this crate assume the Bernoulli model)");
}
