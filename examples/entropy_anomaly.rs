//! Windowed anomaly detection over sampled flow traffic.
//!
//! ```text
//! cargo run --release --example entropy_anomaly
//! ```
//!
//! A classic monitoring use of stream entropy, upgraded to the
//! continuous-query surface: destination entropy of flow traffic is low
//! and stable under normal conditions (conversations concentrate on
//! popular services) and spikes during scanning or DDoS-style
//! dispersion — and so does the distinct count. Instead of hand-rolling
//! one estimator per epoch, a [`WindowedMonitor`] keeps a sliding
//! window of per-epoch sub-monitors over the heavy-tailed NetFlow
//! trace, and three registered queries watch every bucket rollover:
//!
//! * a **threshold** on `F0` — raw address dispersion,
//! * a **delta-vs-previous-window** on `F0` — sudden jumps,
//! * a **change-point** on entropy — shifts against the recent history.
//!
//! The monitor only sees a Bernoulli sample (`p = 5%`); Theorem 5 says
//! entropy estimated on the sample is a constant-factor proxy for the
//! true entropy as long as the true entropy is not vanishing — exactly
//! what the query thresholds need. Sampling itself runs on the
//! geometric skip-position generator, so cost is O(survivors), not
//! O(packets).

use subsampled_streams::core::{MonitorBuilder, Statistic};
use subsampled_streams::hash::{RngCore64, Xoshiro256pp};
use subsampled_streams::stream::{BernoulliSampler, ExactStats, NetFlowStream, StreamGen};
use subsampled_streams::window::{QuerySpec, WindowConfig, WindowedMonitor};

/// Packets per epoch — one window bucket per epoch, dense unit ticks.
const SPAN: u64 = 200_000;
const P: f64 = 0.05;

/// Normal epoch: heavy-tailed flow traffic (bounded-Pareto flow sizes).
fn normal_epoch(seed: u64) -> Vec<u64> {
    NetFlowStream::new(1 << 14, 1.3, 5_000).generate(SPAN, seed)
}

/// Scan epoch: half background flows, half scanner probes sweeping
/// fresh addresses — destinations disperse, entropy and F0 jump.
fn scan_epoch(seed: u64) -> Vec<u64> {
    let background = normal_epoch(seed);
    let mut rng = Xoshiro256pp::new(seed ^ 0x5ca9);
    background
        .into_iter()
        .enumerate()
        .map(|(i, x)| {
            if rng.next_bool(0.5) {
                x
            } else {
                1_000_000 + seed * SPAN + i as u64
            }
        })
        .collect()
}

fn main() {
    println!("windowed destination monitor, Bernoulli sampled at p = {P}");
    println!("epoch = {SPAN} packets, window = 3 epochs; queries run on every rollover\n");

    let prototype = MonitorBuilder::with_seed(P, 2012)
        .f0(0.05)
        .entropy(2000)
        .build();
    let mut monitor = WindowedMonitor::new(prototype, WindowConfig::new(3, SPAN));
    // Normal traffic keeps the window's F0 estimate near 50k (16k flow
    // universe, inflated by sampling-correction noise at p = 5%); a
    // scan adds ~100k fresh addresses per epoch and clears 60k easily.
    monitor.register_query(QuerySpec::threshold("dispersion", "F0", 60_000.0, true));
    monitor.register_query(QuerySpec::delta_vs_prev("f0_jump", "F0", 0.3));
    monitor.register_query(QuerySpec::change_point("h_shift", "entropy", 3, 4.0));

    println!(
        "{:>6}  {:>8}  {:>10}  {:>10}  {:>10}  alerts",
        "epoch", "kind", "true H", "est H(g)", "est F0"
    );
    for epoch in 0..12u64 {
        let is_scan = epoch == 6 || epoch == 7;
        let packets = if is_scan {
            scan_epoch(50 + epoch)
        } else {
            normal_epoch(50 + epoch)
        };
        let true_h = ExactStats::from_stream(packets.iter().copied()).entropy();

        // O(survivors) feed: jump straight to the surviving positions;
        // the position doubles as the event-time tick inside the epoch.
        let mut sampler = BernoulliSampler::new(P, 90 + epoch);
        for pos in sampler.skip_positions(packets.len() as u64) {
            monitor.ingest_at(epoch * SPAN + pos, packets[pos as usize]);
        }
        // The fold the queries are about to see: all live buckets, the
        // oldest not yet retired.
        let fold = monitor.fold();
        let h = fold.estimate(Statistic::Entropy).expect("registered").value;
        let f0 = fold.estimate(Statistic::F0).expect("registered").value;
        // Close the epoch: queries evaluate on that fold, then the
        // oldest bucket retires once the window is past capacity.
        monitor.advance_to(epoch + 1);
        let alerts = monitor.take_alerts();
        let fired: Vec<String> = alerts
            .iter()
            .map(|a| format!("{}({:?})", a.query, a.kind))
            .collect();
        println!(
            "{:>6}  {:>8}  {:>10.3}  {:>10.3}  {:>10.0}  {}",
            epoch,
            if is_scan { "SCAN" } else { "normal" },
            true_h,
            h,
            f0,
            if fired.is_empty() {
                "-".to_string()
            } else {
                format!("*** {}", fired.join(", "))
            }
        );
    }

    println!(
        "\nTakeaway: the windowed fold tracks the last 3 epochs only, so\n\
         the alerts both raise *and clear* as the scan passes through the\n\
         window — no manual baseline bookkeeping, no per-epoch estimator\n\
         plumbing — while the monitor touches 5% of the packets and pays\n\
         O(survivors) to sample them. (The lone delta alert at epoch 1 is\n\
         the cold start: the window is still filling, so its F0 genuinely\n\
         jumps epoch over epoch.)"
    );
}
