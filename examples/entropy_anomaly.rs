//! Entropy-based anomaly detection over sampled traffic.
//!
//! ```text
//! cargo run --release --example entropy_anomaly
//! ```
//!
//! A classic monitoring use of stream entropy: the empirical entropy of
//! destination addresses is low and stable under normal traffic
//! (conversations concentrate on popular services) and spikes during
//! scanning or DDoS-style dispersion. The monitor only sees a Bernoulli
//! sample; Theorem 5 says entropy estimated on the sample is a
//! constant-factor proxy for the true entropy as long as the true entropy
//! is not vanishing — exactly what a threshold detector needs.

use subsampled_streams::core::SampledEntropyEstimator;
use subsampled_streams::hash::{RngCore64, Xoshiro256pp};
use subsampled_streams::stream::{BernoulliSampler, ExactStats};

/// Normal epoch: destinations concentrate on a handful of services.
fn normal_epoch(n: u64, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256pp::new(seed);
    (0..n)
        .map(|_| {
            if rng.next_bool(0.85) {
                rng.next_below(8) // 8 popular services
            } else {
                8 + rng.next_below(2000) // background chatter
            }
        })
        .collect()
}

/// Scan epoch: a scanner sweeps the address space — destinations disperse.
fn scan_epoch(n: u64, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256pp::new(seed);
    (0..n)
        .map(|i| {
            if rng.next_bool(0.5) {
                // normal background
                if rng.next_bool(0.85) {
                    rng.next_below(8)
                } else {
                    8 + rng.next_below(2000)
                }
            } else {
                // scanner: fresh address per probe
                1_000_000 + seed * 1_000_000 + i
            }
        })
        .collect()
}

fn main() {
    let n = 300_000u64;
    let p = 0.05;
    println!("destination-entropy monitor, Bernoulli sampled at p = {p}");
    println!("epoch length {n} packets; alarm threshold: estimate > 2x baseline\n");
    println!(
        "{:>6}  {:>8}  {:>10}  {:>10}  {:>7}",
        "epoch", "kind", "true H", "est H(g)", "alarm"
    );

    let mut baseline: Option<f64> = None;
    for epoch in 0..6u64 {
        let is_scan = epoch == 3 || epoch == 4;
        let packets = if is_scan {
            scan_epoch(n, 50 + epoch)
        } else {
            normal_epoch(n, 50 + epoch)
        };
        let true_h = ExactStats::from_stream(packets.iter().copied()).entropy();

        let mut est = SampledEntropyEstimator::new(p, 2000, 70 + epoch);
        let mut sampler = BernoulliSampler::new(p, 90 + epoch);
        sampler.sample_slice(&packets, |x| est.update(x));
        let h = est.estimate();

        // 1.5x over baseline: comfortably above estimator noise, and robust
        // to the lg(1/p) bits a singleton-heavy anomaly loses to sampling
        // (the Lemma 9 part-2 effect pulls the *estimate* of scan entropy
        // toward lg(p·n_scan), so thresholds must not assume H is seen in
        // full).
        let base = *baseline.get_or_insert(h);
        let alarm = h > 1.5 * base;
        println!(
            "{:>6}  {:>8}  {:>10.3}  {:>10.3}  {:>7}",
            epoch,
            if is_scan { "SCAN" } else { "normal" },
            true_h,
            h,
            if alarm { "*** " } else { "-" }
        );
    }

    println!(
        "\nTakeaway: the sampled-entropy estimate cleanly separates scan\n\
         epochs from normal ones while touching 5% of the packets. (The\n\
         scan pushes H far above the Theorem 5 threshold, so the\n\
         constant-factor guarantee applies on both sides of the alarm.)"
    );
}
