//! Metrics dump: drive the monitor, then print the process-wide
//! observability snapshot in both wire-adjacent renders.
//!
//! ```text
//! cargo run --release --example metrics_dump
//! cargo run --release --example metrics_dump -- --json
//! ```
//!
//! Every layer of the workspace reports into the `sss-obs` global
//! registry as a side effect of doing its job — ingest batches, sampler
//! decisions, codec round-trips, window rollovers. This example does a
//! little of each, takes one consistent snapshot, and renders it as
//! Prometheus text exposition (default) or JSON (`--json`). The same two
//! renders are what a `CollectorServer` serves from its stats endpoint.

use std::sync::Arc;

use subsampled_streams::core::{ConcurrentConfig, ConcurrentMonitor, Monitor, MonitorBuilder};
use subsampled_streams::obs::{global, render_json, render_prometheus};
use subsampled_streams::stream::{BernoulliSampler, StreamGen, ZipfStream};

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    // A short but representative run: sample a Zipf stream, batch-ingest
    // it, checkpoint the monitor through the codec.
    let p = 0.25;
    let stream = ZipfStream::new(1 << 14, 1.2).generate(200_000, 1);
    let sampled = BernoulliSampler::new(p, 99).sample_to_vec(&stream);

    let mut monitor = MonitorBuilder::with_seed(p, 7)
        .f0(0.05)
        .fk(2)
        .entropy(512)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .build();
    for chunk in sampled.chunks(4096) {
        monitor.update_batch(chunk);
    }

    // A concurrent pass over the raw stream, so the shared-atomic
    // counters are live: per-thread ingest volumes
    // (sss_ingest_thread_items_total, labeled by thread) and the
    // CAS-retry contention proxy (sss_ingest_cas_retries_total).
    let proto = MonitorBuilder::with_seed(p, 7)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .f2_heavy_hitters(0.4, 0.2, 0.05)
        .build();
    let mut conc = ConcurrentMonitor::launch(&proto, 17, ConcurrentConfig::new(2));
    conc.ingest_shared(&Arc::new(stream));
    let _ = conc.finish();

    // A codec round-trip, so the encode/decode metrics are live too.
    let frame = monitor.checkpoint().expect("all estimators restorable");
    let _ = Monitor::restore(&frame).expect("own checkpoint round-trips");

    let snapshot = global().snapshot();
    if json {
        println!("{}", render_json(&snapshot, None));
    } else {
        print!("{}", render_prometheus(&snapshot, None));
    }
}
