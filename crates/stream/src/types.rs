//! Basic stream types.

/// A stream element: an identifier from the universe `[m] = {0, …, m−1}`.
///
/// The paper indexes items from 1; we use 0-based `u64` identifiers
/// throughout, which is immaterial to every statistic involved.
pub type Item = u64;
