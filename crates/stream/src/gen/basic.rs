//! Elementary stream shapes: uniform, constant, all-distinct.
//!
//! These are the extremal frequency profiles the paper's analyses keep
//! returning to: the constant stream maximises `F_k` and minimises entropy,
//! the all-distinct stream does the reverse, and the uniform stream sits at
//! the `F_0·(F_1/F_0)^k` balance point used in the proof of Lemma 2.

use sss_hash::{RngCore64, Xoshiro256pp};

use super::StreamGen;
use crate::types::Item;

/// Independent uniform draws over `[0, m)`.
#[derive(Debug, Clone)]
pub struct UniformStream {
    m: u64,
}

impl UniformStream {
    /// Uniform stream over a universe of size `m ≥ 1`.
    pub fn new(m: u64) -> Self {
        assert!(m >= 1);
        Self { m }
    }
}

impl StreamGen for UniformStream {
    fn universe(&self) -> u64 {
        self.m
    }

    fn emit(&self, n: u64, seed: u64, f: &mut dyn FnMut(Item)) {
        let mut rng = Xoshiro256pp::new(seed);
        for _ in 0..n {
            f(rng.next_below(self.m));
        }
    }
}

/// The same item repeated `n` times.
#[derive(Debug, Clone)]
pub struct ConstantStream {
    item: Item,
    m: u64,
}

impl ConstantStream {
    /// Stream that repeats `item` within universe `[0, m)`.
    pub fn new(item: Item, m: u64) -> Self {
        assert!(item < m);
        Self { item, m }
    }
}

impl StreamGen for ConstantStream {
    fn universe(&self) -> u64 {
        self.m
    }

    fn emit(&self, n: u64, _seed: u64, f: &mut dyn FnMut(Item)) {
        for _ in 0..n {
            f(self.item);
        }
    }
}

/// A stream of `n` pairwise-distinct items (`F_0 = n`, entropy `lg n`).
///
/// Items are a seed-dependent affine permutation of `0..n` inside a universe
/// of size `m ≥ n`.
#[derive(Debug, Clone)]
pub struct DistinctStream {
    m: u64,
}

impl DistinctStream {
    /// All-distinct stream within universe `[0, m)`; requires `n ≤ m` at
    /// generation time.
    pub fn new(m: u64) -> Self {
        assert!(m >= 1);
        Self { m }
    }
}

impl StreamGen for DistinctStream {
    fn universe(&self) -> u64 {
        self.m
    }

    fn emit(&self, n: u64, seed: u64, f: &mut dyn FnMut(Item)) {
        assert!(
            n <= self.m,
            "DistinctStream needs n <= m ({n} > {})",
            self.m
        );
        let perm = super::AffinePermutation::new(self.m, seed);
        for x in 0..n {
            f(perm.apply(x));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;

    #[test]
    fn uniform_covers_universe() {
        let g = UniformStream::new(100);
        let s = ExactStats::from_stream(g.generate(50_000, 1));
        assert_eq!(s.n(), 50_000);
        assert_eq!(s.f0(), 100); // coupon collector long since done
                                 // max/min frequency ratio should be modest
        let freqs: Vec<u64> = s.iter().map(|(_, f)| f).collect();
        let max = *freqs.iter().max().unwrap() as f64;
        let min = *freqs.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "max {max} min {min}");
    }

    #[test]
    fn constant_stream_is_one_item() {
        let g = ConstantStream::new(5, 10);
        let s = ExactStats::from_stream(g.generate(1000, 9));
        assert_eq!(s.f0(), 1);
        assert_eq!(s.freq(5), 1000);
        assert_eq!(s.entropy(), 0.0);
    }

    #[test]
    fn distinct_stream_has_f0_equal_n() {
        let g = DistinctStream::new(10_000);
        let s = ExactStats::from_stream(g.generate(10_000, 2));
        assert_eq!(s.f0(), 10_000);
        assert!((s.entropy() - (10_000f64).log2()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "n <= m")]
    fn distinct_stream_rejects_n_above_m() {
        let g = DistinctStream::new(10);
        let _ = g.generate(11, 0);
    }

    #[test]
    fn generators_are_deterministic() {
        let g = UniformStream::new(64);
        assert_eq!(g.generate(1000, 5), g.generate(1000, 5));
        assert_ne!(g.generate(1000, 5), g.generate(1000, 6));
    }
}
