//! Event-time hooks: pair any [`StreamGen`] workload with monotone
//! arrival timestamps, producing the `(ts, item)` traces that windowed
//! monitors ingest (`epoch = ts / bucket_span`).

use sss_hash::{split_seed, RngCore64, Xoshiro256pp};

use super::StreamGen;
use crate::types::Item;

/// Seed lane separating the arrival-time process from the item process,
/// so the same `seed` yields the same items whether or not they are
/// timestamped.
const TIMED_LANE: u64 = 0x7469_6d65; // "time"

/// A [`StreamGen`] workload with a renewal arrival process: consecutive
/// arrivals are separated by `1 + Geometric(1/mean_gap)` ticks, so the
/// mean inter-arrival time is `mean_gap` and timestamps strictly
/// increase. `mean_gap = 1.0` gives the dense unit-tick trace
/// (`ts = 1, 2, 3, …`) that makes epoch boundaries exact item counts —
/// handy for tests; larger gaps model bursty/sparse telemetry.
#[derive(Debug, Clone)]
pub struct TimedStream<G> {
    inner: G,
    mean_gap: f64,
}

impl<G: StreamGen> TimedStream<G> {
    /// Attach arrival times with the given mean inter-arrival gap
    /// (must be ≥ 1 tick).
    pub fn new(inner: G, mean_gap: f64) -> Self {
        assert!(
            mean_gap.is_finite() && mean_gap >= 1.0,
            "mean inter-arrival gap must be >= 1 tick, got {mean_gap}"
        );
        Self { inner, mean_gap }
    }

    /// Universe size of the underlying workload.
    pub fn universe(&self) -> u64 {
        self.inner.universe()
    }

    /// Emit `(ts, item)` arrivals; items are exactly
    /// `inner.emit(n, seed, …)`'s, timestamps come from the lane-split
    /// arrival RNG.
    pub fn emit(&self, n: u64, seed: u64, f: &mut dyn FnMut(u64, Item)) {
        let mut clock = Xoshiro256pp::new(split_seed(seed, TIMED_LANE));
        let p = 1.0 / self.mean_gap;
        let mut ts = 0u64;
        self.inner.emit(n, seed, &mut |x| {
            ts = ts.saturating_add(1 + clock.next_geometric(p));
            f(ts, x);
        });
    }

    /// Materialise the timestamped trace.
    pub fn generate(&self, n: u64, seed: u64) -> Vec<(u64, Item)> {
        let mut out = Vec::with_capacity(n.min(1 << 28) as usize);
        self.emit(n, seed, &mut |ts, x| out.push((ts, x)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ZipfStream;

    #[test]
    fn items_match_the_untimed_stream() {
        let zipf = ZipfStream::new(1000, 1.2);
        let plain = zipf.generate(5_000, 9);
        let timed = TimedStream::new(zipf, 3.0).generate(5_000, 9);
        assert_eq!(timed.len(), plain.len());
        for ((_, a), b) in timed.iter().zip(plain.iter()) {
            assert_eq!(a, b, "timestamps must not perturb the item process");
        }
    }

    #[test]
    fn timestamps_strictly_increase_with_the_requested_mean_gap() {
        let timed = TimedStream::new(ZipfStream::new(100, 1.1), 5.0).generate(20_000, 4);
        for w in timed.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        let span = timed.last().expect("nonempty").0 - timed[0].0;
        let mean = span as f64 / (timed.len() - 1) as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean gap = {mean}");
    }

    #[test]
    fn unit_gap_is_the_dense_trace() {
        let timed = TimedStream::new(ZipfStream::new(100, 1.1), 1.0).generate(100, 1);
        let ts: Vec<u64> = timed.iter().map(|(t, _)| *t).collect();
        assert_eq!(ts, (1..=100u64).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        let g = TimedStream::new(ZipfStream::new(500, 1.3), 4.0);
        assert_eq!(g.generate(3_000, 7), g.generate(3_000, 7));
        assert_ne!(g.generate(3_000, 7), g.generate(3_000, 8));
    }
}
