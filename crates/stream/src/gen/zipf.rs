//! Zipf-distributed streams.
//!
//! Rank `r ∈ {1, …, m}` is drawn with probability `r^{−s} / H_{m,s}`. Skewed
//! streams are where the paper's `F_k` and heavy-hitter machinery earns its
//! keep: a handful of ranks dominate `F_k` while the tail dominates `F_0`.
//!
//! Sampling uses an explicit cumulative table with binary search — exact for
//! every exponent `s ≥ 0` (including `s ≤ 1`, where rejection samplers
//! break), at `O(m)` memory in the generator and `O(log m)` time per draw.

use sss_hash::{RngCore64, Xoshiro256pp};

use super::{AffinePermutation, StreamGen};
use crate::types::Item;

/// Salt decorrelating the rank-permutation seed from the draw seed.
const PERMUTATION_SALT: u64 = 0x5A1F_0DD5_EED5_0001;

/// Zipf(s) stream over a universe of size `m`.
#[derive(Debug, Clone)]
pub struct ZipfStream {
    m: u64,
    s: f64,
    /// cdf[r] = P[rank ≤ r+1]; last entry is 1 (up to rounding).
    cdf: Vec<f64>,
    /// Map rank → item id, decorrelating rank from identifier.
    permute: bool,
}

impl ZipfStream {
    /// Zipf stream with exponent `s ≥ 0` over `[0, m)`, with rank-to-id
    /// permutation enabled.
    pub fn new(m: u64, s: f64) -> Self {
        Self::with_permutation(m, s, true)
    }

    /// As [`ZipfStream::new`], controlling whether rank `r` is re-labelled by
    /// a random bijection (`permute = false` keeps item id = rank − 1, which
    /// is convenient in tests).
    pub fn with_permutation(m: u64, s: f64, permute: bool) -> Self {
        assert!(m >= 1, "universe must be non-empty");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(m as usize);
        let mut acc = 0.0f64;
        for r in 1..=m {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Self { m, s, cdf, permute }
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draw one rank in `{0, …, m−1}` (0-based; rank 0 is the heaviest).
    #[inline]
    fn draw_rank(&self, u: f64) -> u64 {
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

impl StreamGen for ZipfStream {
    fn universe(&self) -> u64 {
        self.m
    }

    fn emit(&self, n: u64, seed: u64, f: &mut dyn FnMut(Item)) {
        let mut rng = Xoshiro256pp::new(seed);
        let perm = self
            .permute
            .then(|| AffinePermutation::new(self.m, seed ^ PERMUTATION_SALT));
        for _ in 0..n {
            let rank = self.draw_rank(rng.next_f64());
            let item = match &perm {
                Some(p) => p.apply(rank),
                None => rank,
            };
            f(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;

    #[test]
    fn rank_one_dominates_with_high_skew() {
        let g = ZipfStream::with_permutation(1000, 1.5, false);
        let s = ExactStats::from_stream(g.generate(100_000, 1));
        // P[rank 1] = 1/ζ-ish; with s=1.5, p_1 ≈ 1/2.61 ≈ 0.38.
        let share = s.freq(0) as f64 / s.n() as f64;
        assert!((share - 0.38).abs() < 0.03, "share = {share}");
        // Monotone head: f_0 ≥ f_1 ≥ f_2 with slack.
        assert!(s.freq(0) > s.freq(1));
        assert!(s.freq(1) > s.freq(2));
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let g = ZipfStream::with_permutation(50, 0.0, false);
        let s = ExactStats::from_stream(g.generate(100_000, 2));
        assert_eq!(s.f0(), 50);
        let max = s.iter().map(|(_, f)| f).max().unwrap() as f64;
        let min = s.iter().map(|(_, f)| f).min().unwrap() as f64;
        assert!(max / min < 1.3, "max/min = {}", max / min);
    }

    #[test]
    fn s_below_one_is_supported() {
        let g = ZipfStream::with_permutation(100, 0.5, false);
        let s = ExactStats::from_stream(g.generate(50_000, 3));
        // Head heavier than tail but all items present.
        assert_eq!(s.f0(), 100);
        assert!(s.freq(0) > s.freq(99));
    }

    #[test]
    fn permutation_changes_ids_not_frequencies() {
        let n = 20_000;
        let gp = ZipfStream::with_permutation(64, 1.2, true);
        let gn = ZipfStream::with_permutation(64, 1.2, false);
        let sp = ExactStats::from_stream(gp.generate(n, 7));
        let sn = ExactStats::from_stream(gn.generate(n, 7));
        // Same multiset of frequencies…
        let mut fp: Vec<u64> = sp.iter().map(|(_, f)| f).collect();
        let mut fn_: Vec<u64> = sn.iter().map(|(_, f)| f).collect();
        fp.sort_unstable();
        fn_.sort_unstable();
        assert_eq!(fp, fn_);
        // …but the heaviest id is (almost surely) not 0 in the permuted one.
        let heavy_id = sp.iter().max_by_key(|&(_, f)| f).unwrap().0;
        let _ = heavy_id; // permutation may map 0→0 with prob 1/m; no assert.
    }

    #[test]
    fn cdf_is_monotone_and_normalised() {
        let g = ZipfStream::new(1000, 1.1);
        for w in g.cdf.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!((g.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = ZipfStream::new(256, 1.0);
        assert_eq!(g.generate(5000, 11), g.generate(5000, 11));
        assert_ne!(g.generate(5000, 11), g.generate(5000, 12));
    }
}
