//! Synthetic NetFlow-style packet traces.
//!
//! The paper's motivating deployment is *sampled NetFlow* on an IP router
//! (§1): the monitor sees a Bernoulli sample of a packet stream in which
//! packets are grouped into flows whose sizes are famously heavy-tailed. We
//! have no proprietary router traces, so this generator produces the
//! standard synthetic stand-in (documented as a substitution in DESIGN.md):
//! flow sizes drawn from a bounded Pareto distribution, packet arrivals
//! interleaved by a random shuffle.
//!
//! The flow identifier is the stream item; per-flow packet counts are the
//! frequencies `f_i`, so "flow statistics" are exactly the `F_k`/entropy/
//! heavy-hitter aggregates of the paper.

use sss_hash::{RngCore64, Xoshiro256pp};

use super::StreamGen;
use crate::types::Item;

/// Heavy-tailed flow trace: bounded-Pareto flow sizes, shuffled arrivals.
#[derive(Debug, Clone)]
pub struct NetFlowStream {
    /// Universe of possible flow identifiers.
    m: u64,
    /// Pareto tail exponent (smaller ⇒ heavier tail). Typical measured
    /// values for internet flow sizes are ≈ 1.0–1.3.
    alpha: f64,
    /// Cap on a single flow's size (bounded Pareto keeps `F_k` finite and
    /// keeps the trace from being one elephant flow).
    max_flow: u64,
}

impl NetFlowStream {
    /// A trace over flow ids `[0, m)` with tail exponent `alpha` and maximum
    /// flow size `max_flow`.
    pub fn new(m: u64, alpha: f64, max_flow: u64) -> Self {
        assert!(alpha > 0.0, "tail exponent must be positive");
        assert!(max_flow >= 1);
        assert!(m >= 1);
        Self { m, alpha, max_flow }
    }

    /// Draw one bounded-Pareto flow size in `[1, max_flow]` by inversion.
    fn draw_flow_size(&self, rng: &mut Xoshiro256pp) -> u64 {
        // Bounded Pareto(α, L=1, H=max_flow) inverse CDF.
        let h = self.max_flow as f64;
        let la = 1.0f64; // L^α with L = 1
        let ha = h.powf(-self.alpha);
        let u = rng.next_f64();
        let x = (la - u * (la - ha)).powf(-1.0 / self.alpha);
        (x.floor() as u64).clamp(1, self.max_flow)
    }
}

impl StreamGen for NetFlowStream {
    fn universe(&self) -> u64 {
        self.m
    }

    fn emit(&self, n: u64, seed: u64, f: &mut dyn FnMut(Item)) {
        let mut rng = Xoshiro256pp::new(seed);
        // 1. Draw flows until we have n packets.
        let mut packets: Vec<Item> = Vec::with_capacity(n as usize);
        while (packets.len() as u64) < n {
            let flow_id = rng.next_below(self.m);
            let size = self.draw_flow_size(&mut rng).min(n - packets.len() as u64);
            for _ in 0..size {
                packets.push(flow_id);
            }
        }
        // 2. Shuffle arrivals (Fisher–Yates) so flows interleave.
        for i in (1..packets.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            packets.swap(i, j);
        }
        for x in packets {
            f(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;

    #[test]
    fn trace_has_heavy_tail() {
        let g = NetFlowStream::new(1 << 20, 1.1, 10_000);
        let s = ExactStats::from_stream(g.generate(200_000, 1));
        assert_eq!(s.n(), 200_000);
        let max = s.iter().map(|(_, f)| f).max().unwrap();
        let mean = s.n() as f64 / s.f0() as f64;
        // An elephant flow should far exceed the mean flow size.
        assert!(
            max as f64 > 20.0 * mean,
            "max {max} mean {mean}: tail not heavy"
        );
    }

    #[test]
    fn flow_sizes_respect_bounds() {
        let g = NetFlowStream::new(1 << 16, 1.3, 500);
        let s = ExactStats::from_stream(g.generate(100_000, 2));
        // Flow ids collide in the universe draw only with tiny probability,
        // so max frequency ≈ max flow size ≤ cap (collisions could at most
        // double it; assert a generous bound).
        let max = s.iter().map(|(_, f)| f).max().unwrap();
        assert!(max <= 1000, "max flow {max}");
    }

    #[test]
    fn arrivals_are_interleaved() {
        // After shuffling, the first occurrence positions of distinct flows
        // should not be sorted in contiguous blocks: check that some flow
        // re-appears after a different flow appeared.
        let g = NetFlowStream::new(1 << 12, 1.0, 1000);
        let stream = g.generate(20_000, 3);
        let mut interleaved = false;
        let mut last_new: Option<Item> = None;
        let mut seen = std::collections::HashSet::new();
        for &x in &stream {
            if seen.insert(x) {
                last_new = Some(x);
            } else if last_new != Some(x) {
                interleaved = true;
                break;
            }
        }
        assert!(interleaved);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = NetFlowStream::new(1024, 1.2, 100);
        assert_eq!(g.generate(5000, 4), g.generate(5000, 4));
        assert_ne!(g.generate(5000, 4), g.generate(5000, 5));
    }
}
