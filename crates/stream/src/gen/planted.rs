//! Streams with planted heavy hitters over a light background.
//!
//! The heavy-hitter experiments (Theorems 6 and 7) need streams where the
//! target set is known by construction: `h` planted items share a fixed
//! fraction `β` of the stream, and the remaining mass is spread uniformly
//! over the rest of the universe so that no background item comes close to
//! the threshold.

use sss_hash::{RngCore64, Xoshiro256pp};

use super::{AffinePermutation, StreamGen};
use crate::types::Item;

/// A stream with `h` planted heavy items carrying total share `β`.
#[derive(Debug, Clone)]
pub struct PlantedHeavyHitters {
    m: u64,
    num_heavy: u64,
    heavy_share: f64,
}

impl PlantedHeavyHitters {
    /// `num_heavy` items (ids decided by a seeded permutation) each receive
    /// an equal slice of the total share `heavy_share ∈ (0, 1)`; the
    /// remaining `1 − heavy_share` is uniform over the other `m − num_heavy`
    /// universe items.
    pub fn new(m: u64, num_heavy: u64, heavy_share: f64) -> Self {
        assert!(num_heavy >= 1 && num_heavy < m, "need 1 <= num_heavy < m");
        assert!(
            heavy_share > 0.0 && heavy_share < 1.0,
            "heavy_share must be in (0,1)"
        );
        Self {
            m,
            num_heavy,
            heavy_share,
        }
    }

    /// The planted heavy item identifiers for a given seed, heaviest-first
    /// (all planted items are equally heavy; order is by internal rank).
    pub fn heavy_items(&self, seed: u64) -> Vec<Item> {
        let perm = AffinePermutation::new(self.m, seed ^ PLANT_SALT);
        (0..self.num_heavy).map(|r| perm.apply(r)).collect()
    }

    /// Per-item probability of each planted heavy item.
    pub fn heavy_prob(&self) -> f64 {
        self.heavy_share / self.num_heavy as f64
    }
}

/// Salt decorrelating identifier placement from arrival order.
const PLANT_SALT: u64 = 0x9EA7_1111_2222_3333;

impl StreamGen for PlantedHeavyHitters {
    fn universe(&self) -> u64 {
        self.m
    }

    fn emit(&self, n: u64, seed: u64, f: &mut dyn FnMut(Item)) {
        let mut rng = Xoshiro256pp::new(seed);
        let perm = AffinePermutation::new(self.m, seed ^ PLANT_SALT);
        let light = self.m - self.num_heavy;
        for _ in 0..n {
            let rank = if rng.next_bool(self.heavy_share) {
                rng.next_below(self.num_heavy)
            } else {
                self.num_heavy + rng.next_below(light)
            };
            f(perm.apply(rank));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;

    #[test]
    fn heavy_items_get_their_share() {
        let g = PlantedHeavyHitters::new(10_000, 4, 0.4);
        let n = 200_000;
        let seed = 5;
        let s = ExactStats::from_stream(g.generate(n, seed));
        let heavies = g.heavy_items(seed);
        assert_eq!(heavies.len(), 4);
        for &h in &heavies {
            let share = s.freq(h) as f64 / n as f64;
            assert!((share - 0.1).abs() < 0.01, "share of {h} = {share}");
        }
        // Background items are far below the per-heavy share.
        let max_light = s
            .iter()
            .filter(|(i, _)| !heavies.contains(i))
            .map(|(_, f)| f)
            .max()
            .unwrap();
        assert!((max_light as f64 / n as f64) < 0.01);
    }

    #[test]
    fn heavy_ids_match_generated_stream() {
        let g = PlantedHeavyHitters::new(1000, 2, 0.5);
        let seed = 9;
        let s = ExactStats::from_stream(g.generate(50_000, seed));
        let mut top: Vec<(Item, u64)> = s.iter().collect();
        top.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
        let top2: Vec<Item> = top.iter().take(2).map(|&(i, _)| i).collect();
        let mut expect = g.heavy_items(seed);
        expect.sort_unstable();
        let mut got = top2.clone();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "heavy_share")]
    fn rejects_unit_share() {
        let _ = PlantedHeavyHitters::new(10, 1, 1.0);
    }
}
