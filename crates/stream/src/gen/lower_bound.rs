//! Hard instance families behind the paper's lower bounds.
//!
//! These are not `StreamGen` workloads: each produces a *pair* of streams
//! whose Bernoulli samples are (nearly) indistinguishable while the target
//! statistic differs by the lower-bound gap.

use super::AffinePermutation;
use crate::types::Item;

/// Hard pair for `F_0` estimation (Theorem 4, via Charikar et al.).
///
/// * Stream **A**: `n` pairwise-distinct items — `F_0 = n`.
/// * Stream **B**: `⌈n√p⌉` distinct items, each repeated `≈ 1/√p` times —
///   `F_0 ≈ n√p`.
///
/// Under Bernoulli sampling at rate `p`, both sampled streams contain
/// `≈ pn` elements, and in **B** each surviving value appears once with
/// probability `1 − O(√p)`, so the two distributions of `F_0(L)` converge as
/// `p → 0` while `F_0(A)/F_0(B) = 1/√p`. Any estimator is therefore off by a
/// factor `≥ p^{−1/4}`-ish on one of the pair — and the natural scaled
/// estimator (Algorithm 2) lands at `F_0(L)/√p ≈ n√p`, exact on **B** and a
/// full `1/√p` factor low on **A**, matching Lemma 8's `O(1/√p)` ceiling.
#[derive(Debug, Clone)]
pub struct F0HardPair {
    n: u64,
    p: f64,
    m: u64,
}

impl F0HardPair {
    /// A hard pair of length-`n` streams tuned against sampling rate `p`,
    /// over universe `[0, m)` with `m ≥ n`.
    pub fn new(n: u64, p: f64, m: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0);
        assert!(m >= n, "universe must hold n distinct items");
        assert!(n >= 1);
        Self { n, p, m }
    }

    /// Stream A: all distinct, `F_0 = n`.
    pub fn stream_a(&self, seed: u64) -> Vec<Item> {
        let perm = AffinePermutation::new(self.m, seed);
        (0..self.n).map(|x| perm.apply(x)).collect()
    }

    /// Stream B: `⌈n√p⌉` distinct values in round-robin, `F_0 = ⌈n√p⌉`.
    pub fn stream_b(&self, seed: u64) -> Vec<Item> {
        let distinct = self.distinct_b();
        let perm = AffinePermutation::new(self.m, seed);
        (0..self.n).map(|x| perm.apply(x % distinct)).collect()
    }

    /// The number of distinct items in stream B.
    pub fn distinct_b(&self) -> u64 {
        ((self.n as f64) * self.p.sqrt()).ceil().max(1.0) as u64
    }

    /// The `F_0` gap `F_0(A) / F_0(B) ≈ 1/√p` that some estimator must miss.
    pub fn gap(&self) -> f64 {
        self.n as f64 / self.distinct_b() as f64
    }
}

/// Hard instances for entropy estimation (Lemma 9).
///
/// Scenario 1: `f_1 = n` (entropy 0).
/// Scenario 2: `f_1 = n − k` plus `k` distinct singletons with
/// `k = ⌈1/(10p)⌉` (entropy `Θ(k·log n / n)`).
///
/// With probability `> 9/10` none of the `k` singletons survives sampling at
/// rate `p`, so the two sampled streams are literally identically
/// distributed conditioned on that event — yet the entropies differ by an
/// unbounded multiplicative factor.
#[derive(Debug, Clone)]
pub struct EntropyScenarioPair {
    n: u64,
    p: f64,
    m: u64,
}

impl EntropyScenarioPair {
    /// A scenario pair of length-`n` streams tuned against rate `p`, over
    /// universe `[0, m)`.
    pub fn new(n: u64, p: f64, m: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0);
        let k = Self::k_for(p);
        assert!(m > k, "universe must hold k singletons plus the bulk item");
        assert!(n > k, "stream must be longer than k = ceil(1/(10p))");
        Self { n, p, m }
    }

    /// The number of planted singletons `k = ⌈1/(10p)⌉`.
    pub fn k(&self) -> u64 {
        Self::k_for(self.p)
    }

    fn k_for(p: f64) -> u64 {
        (1.0 / (10.0 * p)).ceil() as u64
    }

    /// Scenario 1: the bulk item repeated `n` times. `H = 0`.
    pub fn scenario_one(&self, seed: u64) -> Vec<Item> {
        let perm = AffinePermutation::new(self.m, seed);
        let bulk = perm.apply(0);
        vec![bulk; self.n as usize]
    }

    /// Scenario 2: bulk item `n − k` times, then `k` distinct singletons.
    /// `H = (Θ(1) + lg n)·k/n > 0`.
    pub fn scenario_two(&self, seed: u64) -> Vec<Item> {
        let k = self.k();
        let perm = AffinePermutation::new(self.m, seed);
        let bulk = perm.apply(0);
        let mut out = vec![bulk; (self.n - k) as usize];
        out.extend((1..=k).map(|j| perm.apply(j)));
        out
    }

    /// The all-singleton stream of Lemma 9 part 2: `H(f) = lg n`, while the
    /// sampled stream has `H(g) = lg |L| ≈ lg(pn)` — an additive loss of
    /// `lg(1/p)` that no post-processing can recover.
    pub fn all_singletons(&self, seed: u64) -> Vec<Item> {
        assert!(self.m >= self.n);
        let perm = AffinePermutation::new(self.m, seed);
        (0..self.n).map(|x| perm.apply(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;

    #[test]
    fn f0_pair_has_sqrt_p_gap() {
        let pair = F0HardPair::new(100_000, 0.01, 1 << 20);
        let a = ExactStats::from_stream(pair.stream_a(1));
        let b = ExactStats::from_stream(pair.stream_b(1));
        assert_eq!(a.f0(), 100_000);
        assert_eq!(b.f0(), pair.distinct_b());
        assert_eq!(b.f0(), 10_000); // n√p = 1e5·0.1
        assert!((pair.gap() - 10.0).abs() < 1e-9);
        assert_eq!(a.n(), b.n());
    }

    #[test]
    fn entropy_pair_matches_lemma9() {
        let p = 0.02;
        let pair = EntropyScenarioPair::new(10_000, p, 1 << 16);
        assert_eq!(pair.k(), 5); // ceil(1/(0.2)) = 5
        let s1 = ExactStats::from_stream(pair.scenario_one(3));
        let s2 = ExactStats::from_stream(pair.scenario_two(3));
        assert_eq!(s1.entropy(), 0.0);
        assert!(s2.entropy() > 0.0);
        assert_eq!(s1.n(), s2.n());
        assert_eq!(s2.f0(), 1 + pair.k());
        // H(f2) ≈ (Θ(1)+lg n)·k/n
        let k = pair.k() as f64;
        let n = 10_000f64;
        let approx = n.log2() * k / n;
        assert!(
            s2.entropy() > 0.5 * approx && s2.entropy() < 3.0 * approx,
            "H = {} vs approx {}",
            s2.entropy(),
            approx
        );
    }

    #[test]
    fn all_singletons_has_full_entropy() {
        let pair = EntropyScenarioPair::new(4096, 0.1, 1 << 14);
        let s = ExactStats::from_stream(pair.all_singletons(9));
        assert!((s.entropy() - 12.0).abs() < 1e-9); // lg 4096
    }

    #[test]
    fn scenarios_share_bulk_item() {
        let pair = EntropyScenarioPair::new(1000, 0.5, 1 << 12);
        let s1 = pair.scenario_one(4);
        let s2 = pair.scenario_two(4);
        assert_eq!(s1[0], s2[0]);
    }
}
