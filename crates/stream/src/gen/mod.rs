//! Workload generators for the original stream `P`.
//!
//! Each generator is a reproducible distribution over streams: the stream is
//! a pure function of `(generator config, n, seed)`. Generators `emit`
//! elements through a callback so experiments can pipe them straight into a
//! sampler without materialising `P` when they don't need to.

mod basic;
mod lower_bound;
mod netflow;
mod planted;
mod timed;
mod zipf;

pub use basic::{ConstantStream, DistinctStream, UniformStream};
pub use lower_bound::{EntropyScenarioPair, F0HardPair};
pub use netflow::NetFlowStream;
pub use planted::PlantedHeavyHitters;
pub use timed::TimedStream;
pub use zipf::ZipfStream;

use crate::types::Item;
use sss_hash::{RngCore64, SplitMix64};

/// A reproducible stream distribution.
pub trait StreamGen {
    /// Universe size `m`: every emitted item lies in `[0, m)`.
    fn universe(&self) -> u64;

    /// Emit a stream of length `n` determined by `seed`.
    fn emit(&self, n: u64, seed: u64, f: &mut dyn FnMut(Item));

    /// Materialise the stream into a `Vec`.
    fn generate(&self, n: u64, seed: u64) -> Vec<Item> {
        let mut out = Vec::with_capacity(n.min(1 << 28) as usize);
        self.emit(n, seed, &mut |x| out.push(x));
        out
    }
}

/// A random affine bijection `x ↦ (a·x + b) mod m` on `[0, m)`.
///
/// Used by generators to decouple an item's *rank* in the frequency
/// distribution from its *identifier*, so that sketches never benefit from
/// item ids being small consecutive integers.
#[derive(Debug, Clone)]
pub struct AffinePermutation {
    a: u64,
    b: u64,
    m: u64,
}

impl AffinePermutation {
    /// Draw a random bijection on `[0, m)` from `seed`.
    pub fn new(m: u64, seed: u64) -> Self {
        assert!(m >= 1);
        let mut rng = SplitMix64::new(seed);
        // A multiplier coprime with m is invertible mod m; rejection-sample.
        let a = loop {
            let cand = 1 + rng.next_below(m);
            if gcd(cand, m) == 1 {
                break cand;
            }
        };
        let b = rng.next_below(m);
        Self { a, b, m }
    }

    /// Apply the permutation.
    #[inline]
    pub fn apply(&self, x: u64) -> u64 {
        debug_assert!(x < self.m);
        (((self.a as u128) * (x as u128) + self.b as u128) % self.m as u128) as u64
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_permutation_is_bijective() {
        for m in [1u64, 2, 7, 64, 100, 101] {
            let p = AffinePermutation::new(m, 3);
            let mut seen = vec![false; m as usize];
            for x in 0..m {
                let y = p.apply(x);
                assert!(y < m);
                assert!(!seen[y as usize], "m={m}, collision at {x}");
                seen[y as usize] = true;
            }
        }
    }

    #[test]
    fn affine_permutation_varies_with_seed() {
        let m = 1000;
        let p1 = AffinePermutation::new(m, 1);
        let p2 = AffinePermutation::new(m, 2);
        let moved = (0..m).filter(|&x| p1.apply(x) != p2.apply(x)).count();
        assert!(moved > 900);
    }

    #[test]
    fn gcd_small_cases() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }
}
