//! Exact (offline) statistics: the ground truth every estimator is measured
//! against.
//!
//! `ExactStats` ingests a stream into a frequency map and computes the exact
//! value of each aggregate the paper studies. It is *not* a small-space
//! streaming algorithm — it is the referee.

use sss_hash::{fp_hash_map, FpHashMap};

use crate::types::Item;

/// Exact frequency statistics of a stream.
#[derive(Debug, Clone, Default)]
pub struct ExactStats {
    freqs: FpHashMap<Item, u64>,
    n: u64,
}

impl ExactStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self {
            freqs: fp_hash_map(),
            n: 0,
        }
    }

    /// Ingest every element of `stream`.
    pub fn from_stream<I: IntoIterator<Item = Item>>(stream: I) -> Self {
        let mut s = Self::new();
        for x in stream {
            s.push(x);
        }
        s
    }

    /// Ingest one element.
    #[inline]
    pub fn push(&mut self, x: Item) {
        *self.freqs.entry(x).or_insert(0) += 1;
        self.n += 1;
    }

    /// Stream length `n = F_1`.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of distinct elements `F_0`.
    #[inline]
    pub fn f0(&self) -> u64 {
        self.freqs.len() as u64
    }

    /// Frequency of `x` (0 if absent).
    #[inline]
    pub fn freq(&self, x: Item) -> u64 {
        self.freqs.get(&x).copied().unwrap_or(0)
    }

    /// Iterate over `(item, frequency)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Item, u64)> + '_ {
        self.freqs.iter().map(|(&k, &v)| (k, v))
    }

    /// The `k`-th frequency moment `F_k = Σ_i f_i^k` as `f64`.
    ///
    /// `f64` keeps ≥ 15 significant digits, far below the multiplicative
    /// error targets of any experiment here; use [`Self::fk_u128`] when an
    /// exact integer is required and representable.
    pub fn fk(&self, k: u32) -> f64 {
        self.freqs
            .values()
            .map(|&f| (f as f64).powi(k as i32))
            .sum()
    }

    /// The `k`-th frequency moment as an exact `u128`, or `None` on overflow.
    pub fn fk_u128(&self, k: u32) -> Option<u128> {
        let mut total: u128 = 0;
        for &f in self.freqs.values() {
            let mut term: u128 = 1;
            for _ in 0..k {
                term = term.checked_mul(f as u128)?;
            }
            total = total.checked_add(term)?;
        }
        Some(total)
    }

    /// The number of `ℓ`-wise collisions `C_ℓ = Σ_i binom(f_i, ℓ)`
    /// (paper, Definition 2), as `f64`.
    pub fn collisions(&self, l: u32) -> f64 {
        self.freqs.values().map(|&f| binom_f64(f, l)).sum()
    }

    /// `C_ℓ` as an exact `u128`, or `None` on overflow.
    pub fn collisions_u128(&self, l: u32) -> Option<u128> {
        let mut total: u128 = 0;
        for &f in self.freqs.values() {
            total = total.checked_add(binom_u128(f, l)?)?;
        }
        Some(total)
    }

    /// Empirical entropy `H(f) = Σ (f_i/n)·lg(n/f_i)` in bits
    /// (paper, Definition 3). Zero for an empty stream.
    pub fn entropy(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        self.freqs
            .values()
            .map(|&f| {
                let f = f as f64;
                (f / n) * (n / f).log2()
            })
            .sum()
    }

    /// Items with `f_i ≥ α·F_1`, sorted by decreasing frequency
    /// (the paper's `F_1` heavy hitters, Definition 4 with `k = 1`).
    pub fn heavy_hitters_f1(&self, alpha: f64) -> Vec<(Item, u64)> {
        let threshold = alpha * self.n as f64;
        self.hh_above(threshold)
    }

    /// Items with `f_i ≥ α·√F_2`, sorted by decreasing frequency
    /// (Definition 4 with `k = 2`).
    pub fn heavy_hitters_f2(&self, alpha: f64) -> Vec<(Item, u64)> {
        let threshold = alpha * self.fk(2).sqrt();
        self.hh_above(threshold)
    }

    fn hh_above(&self, threshold: f64) -> Vec<(Item, u64)> {
        let mut out: Vec<(Item, u64)> = self
            .freqs
            .iter()
            .filter(|(_, &f)| f as f64 >= threshold)
            .map(|(&i, &f)| (i, f))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The full frequency vector as a sorted `Vec` (for tests and reports).
    pub fn freq_vector(&self) -> Vec<(Item, u64)> {
        let mut v: Vec<(Item, u64)> = self.iter().collect();
        v.sort_unstable();
        v
    }
}

/// `binom(f, ℓ)` over `f64` via the factored product `Π_{j=0}^{ℓ−1} (f−j)/(j+1)`.
pub fn binom_f64(f: u64, l: u32) -> f64 {
    if (f as u128) < l as u128 {
        return 0.0;
    }
    let mut acc = 1.0f64;
    for j in 0..l as u64 {
        acc *= (f - j) as f64 / (j + 1) as f64;
    }
    acc
}

/// Exact `binom(f, ℓ)` as `u128`, or `None` on overflow.
pub fn binom_u128(f: u64, l: u32) -> Option<u128> {
    if (f as u128) < l as u128 {
        return Some(0);
    }
    let mut acc: u128 = 1;
    for j in 0..l as u64 {
        acc = acc.checked_mul((f - j) as u128)?;
        acc /= (j + 1) as u128; // exact: product of i consecutive ints is divisible by i!
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExactStats {
        // 3×a, 2×b, 1×c  → n=6, F0=3, F2=9+4+1=14, F3=27+8+1=36
        ExactStats::from_stream([1u64, 1, 1, 2, 2, 3])
    }

    #[test]
    fn basic_counts() {
        let s = sample();
        assert_eq!(s.n(), 6);
        assert_eq!(s.f0(), 3);
        assert_eq!(s.freq(1), 3);
        assert_eq!(s.freq(2), 2);
        assert_eq!(s.freq(3), 1);
        assert_eq!(s.freq(42), 0);
    }

    #[test]
    fn moments() {
        let s = sample();
        assert_eq!(s.fk(1), 6.0);
        assert_eq!(s.fk(2), 14.0);
        assert_eq!(s.fk(3), 36.0);
        assert_eq!(s.fk_u128(2), Some(14));
        assert_eq!(s.fk_u128(3), Some(36));
        assert_eq!(s.fk(0), 3.0); // x^0 = 1 per distinct item
    }

    #[test]
    fn collisions_match_binomials() {
        let s = sample();
        // C_2 = C(3,2)+C(2,2)+C(1,2) = 3+1+0 = 4
        assert_eq!(s.collisions(2), 4.0);
        assert_eq!(s.collisions_u128(2), Some(4));
        // C_3 = C(3,3) = 1
        assert_eq!(s.collisions(3), 1.0);
        assert_eq!(s.collisions_u128(3), Some(1));
        // C_1 = n
        assert_eq!(s.collisions(1), 6.0);
    }

    #[test]
    fn falling_factorial_identity_small() {
        // ℓ!·C_ℓ = Σ f(f−1)…(f−ℓ+1): check ℓ=2 on the sample.
        let s = sample();
        let lhs = 2.0 * s.collisions(2);
        let rhs: f64 = [3u64, 2, 1].iter().map(|&f| (f * (f - 1)) as f64).sum();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn entropy_uniform_and_constant() {
        let c = ExactStats::from_stream(std::iter::repeat_n(7u64, 100));
        assert_eq!(c.entropy(), 0.0);

        let u = ExactStats::from_stream(0..8u64);
        assert!((u.entropy() - 3.0).abs() < 1e-12); // lg 8 = 3 bits
    }

    #[test]
    fn entropy_matches_hand_computation() {
        let s = sample();
        let n = 6.0f64;
        let expect = (3.0 / n) * (n / 3.0f64).log2()
            + (2.0 / n) * (n / 2.0f64).log2()
            + (1.0 / n) * n.log2();
        assert!((s.entropy() - expect).abs() < 1e-12);
    }

    #[test]
    fn heavy_hitters_thresholds() {
        let s = sample();
        // αF1 with α=0.4 → threshold 2.4 → only item 1 (f=3).
        let hh = s.heavy_hitters_f1(0.4);
        assert_eq!(hh, vec![(1, 3)]);
        // α=0.3 → threshold 1.8 → items 1 and 2.
        let hh = s.heavy_hitters_f1(0.3);
        assert_eq!(hh, vec![(1, 3), (2, 2)]);
        // F2 HH: √F2 = √14 ≈ 3.74; α=0.8 → threshold ≈ 2.99 → item 1 only.
        let hh = s.heavy_hitters_f2(0.8);
        assert_eq!(hh, vec![(1, 3)]);
    }

    #[test]
    fn binom_helpers_agree() {
        for f in 0..40u64 {
            for l in 0..6u32 {
                let exact = binom_u128(f, l).unwrap() as f64;
                assert!(
                    (binom_f64(f, l) - exact).abs() <= 1e-9 * exact.max(1.0),
                    "binom({f},{l})"
                );
            }
        }
        assert_eq!(binom_u128(5, 2), Some(10));
        assert_eq!(binom_u128(10, 3), Some(120));
        assert_eq!(binom_u128(3, 5), Some(0));
    }

    #[test]
    fn empty_stream_is_all_zero() {
        let s = ExactStats::new();
        assert_eq!(s.n(), 0);
        assert_eq!(s.f0(), 0);
        assert_eq!(s.fk(2), 0.0);
        assert_eq!(s.entropy(), 0.0);
        assert!(s.heavy_hitters_f1(0.1).is_empty());
    }

    #[test]
    fn fk_u128_overflow_is_none() {
        let mut s = ExactStats::new();
        // One item with frequency 2^40; k=4 → 2^160 overflows u128.
        for _ in 0..(1u64 << 20) {
            s.push(9);
        }
        // simulate huge frequency directly:
        let s2 = {
            let mut t = ExactStats::new();
            t.freqs.insert(1, u64::MAX);
            t.n = u64::MAX;
            t
        };
        assert!(s2.fk_u128(3).is_none());
        assert!(s.fk_u128(4).is_some());
    }
}
