//! Sample-and-hold (Estan & Varghese, SIGCOMM 2002) — the other classic
//! router sampling model the paper positions itself against (§1.3, [22]).
//!
//! Under sample-and-hold, each packet is sampled with probability `p`, but
//! once *any* packet of a flow is sampled, **every** subsequent packet of
//! that flow is counted exactly. Per-flow counts are therefore sharp for
//! elephants (miss only the geometric prefix before the first sampled
//! packet), at the cost of a flow-table entry per sampled flow — a
//! different point on the accuracy/space/model triangle than Bernoulli
//! sampling, which this crate's estimators assume. The comparison
//! experiment (`exp_sampling_models`) quantifies the difference.

use sss_hash::{fp_hash_map, FpHashMap, RngCore64, Xoshiro256pp};

use crate::types::Item;

/// Sample-and-hold flow table.
#[derive(Debug, Clone)]
pub struct SampleAndHold {
    p: f64,
    table: FpHashMap<Item, u64>,
    n: u64,
    rng: Xoshiro256pp,
}

impl SampleAndHold {
    /// Sample-and-hold with per-packet sampling probability `p ∈ (0, 1]`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "sampling probability must be in (0,1]");
        Self {
            p,
            table: fp_hash_map(),
            n: 0,
            rng: Xoshiro256pp::new(seed),
        }
    }

    /// The per-packet sampling probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Packets observed (the model sees the whole stream; it *samples*
    /// which flows to track, unlike Bernoulli sub-sampling which drops
    /// unsampled packets before the monitor).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of tracked flows (the space driver of this model).
    pub fn tracked_flows(&self) -> usize {
        self.table.len()
    }

    /// Process one packet.
    pub fn update(&mut self, flow: Item) {
        self.n += 1;
        if let Some(c) = self.table.get_mut(&flow) {
            *c += 1; // held: exact counting from first sample on
        } else if self.rng.next_bool(self.p) {
            self.table.insert(flow, 1);
        }
    }

    /// Raw held count for a flow (0 if never sampled).
    pub fn raw_count(&self, flow: Item) -> u64 {
        self.table.get(&flow).copied().unwrap_or(0)
    }

    /// Unbiased estimate of a flow's true size: the held count plus the
    /// expected length of the missed prefix, `E[missed] = (1−p)/p`
    /// (Estan–Varghese's renormalisation).
    pub fn estimate(&self, flow: Item) -> f64 {
        match self.table.get(&flow) {
            Some(&c) => c as f64 + (1.0 - self.p) / self.p,
            None => 0.0,
        }
    }

    /// Tracked `(flow, held count)` pairs sorted by decreasing count.
    pub fn flows(&self) -> Vec<(Item, u64)> {
        let mut v: Vec<(Item, u64)> = self.table.iter().map(|(&f, &c)| (f, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elephants_are_nearly_exact() {
        // A flow with 10_000 packets at p = 0.01: first sample arrives
        // within ~100 packets, so the held count misses only that prefix.
        let p = 0.01;
        let mut sh = SampleAndHold::new(p, 1);
        for _ in 0..10_000 {
            sh.update(7);
        }
        let est = sh.estimate(7);
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.1, "estimate {est}");
    }

    #[test]
    fn estimate_is_unbiased_across_seeds() {
        let p = 0.05;
        let true_size = 200u64;
        let trials = 3000u64;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut sh = SampleAndHold::new(p, seed);
            for _ in 0..true_size {
                sh.update(3);
            }
            sum += sh.estimate(3);
        }
        let mean = sum / trials as f64;
        // E[estimate] = E[c | sampled]·P[sampled] + correction... the
        // Estan–Varghese estimator is unbiased up to the truncation at
        // flow start; allow 5%.
        let rel = (mean - true_size as f64).abs() / true_size as f64;
        assert!(rel < 0.05, "mean {mean}");
    }

    #[test]
    fn mice_are_usually_invisible() {
        // Flows of size 1 at p = 0.01 are tracked w.p. only p.
        let mut sh = SampleAndHold::new(0.01, 2);
        for flow in 0..10_000u64 {
            sh.update(flow);
        }
        let tracked = sh.tracked_flows();
        // E[tracked] = 100; allow wide band.
        assert!(tracked > 40 && tracked < 250, "tracked {tracked}");
    }

    #[test]
    fn held_flows_count_exactly_after_first_sample() {
        let mut sh = SampleAndHold::new(1.0, 3); // p = 1: everything held
        for _ in 0..500 {
            sh.update(9);
        }
        assert_eq!(sh.raw_count(9), 500);
        assert_eq!(sh.estimate(9), 500.0);
        assert_eq!(sh.tracked_flows(), 1);
    }

    #[test]
    fn untracked_flow_estimates_zero() {
        let sh = SampleAndHold::new(0.5, 4);
        assert_eq!(sh.estimate(42), 0.0);
        assert_eq!(sh.raw_count(42), 0);
    }
}
