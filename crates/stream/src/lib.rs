//! Stream model, workload generators, Bernoulli samplers and exact
//! statistics.
//!
//! This crate provides the *environment* of the paper's setting:
//!
//! * an original stream `P = <a_1 … a_n>` over universe `[m]`, produced by a
//!   [`StreamGen`] workload generator (Zipf, uniform, planted heavy hitters,
//!   synthetic NetFlow traffic, lower-bound instances, …);
//! * the Bernoulli sub-sampling process producing the sampled stream `L`
//!   ([`sampler::BernoulliSampler`]), plus the deterministic 1-in-N variant
//!   used by routers;
//! * exact, offline ground truth ([`exact::ExactStats`]) for every statistic
//!   the estimators target: `F_0`, `F_k`, entropy, heavy hitters, and the
//!   `ℓ`-wise collision counts `C_ℓ` at the heart of the paper's `F_k`
//!   algorithm.

#![forbid(unsafe_code)]

pub mod exact;
pub mod gen;
pub mod sample_hold;
pub mod sampler;
pub mod types;

pub use exact::ExactStats;
pub use gen::{
    ConstantStream, DistinctStream, EntropyScenarioPair, F0HardPair, NetFlowStream,
    PlantedHeavyHitters, StreamGen, TimedStream, UniformStream, ZipfStream,
};
pub use sample_hold::SampleAndHold;
pub use sampler::{BernoulliSampler, OneInNSampler, SkipPositions};
pub use types::Item;
