//! Sub-sampling processes that turn the original stream `P` into the sampled
//! stream `L`.
//!
//! The paper's model is **Bernoulli sampling**: every element of `P`
//! independently survives with probability `p`, fixed in advance and known
//! to the algorithm (§1.1, §2). [`BernoulliSampler`] implements it two ways:
//!
//! * a per-element coin flip ([`BernoulliSampler::keep`]), and
//! * a skip-based iterator ([`BernoulliSampler::sample_iter`]) that draws
//!   `Geometric(p)` gaps, doing `O(1)` RNG work per *sampled* element —
//!   the standard trick for sampling at very low rates.
//!
//! [`OneInNSampler`] is the deterministic "1 out of every N packets"
//! variant that sampled NetFlow also supports (§1.3); it is provided for
//! the router-scenario examples and for contrasting the two models.

use sss_codec::{CodecError, Reader, WireCodec};
use sss_hash::{split_seed, RngCore64, Xoshiro256pp};

use crate::types::Item;

/// One registry touch per sampling call (never per item): raw offered
/// vs surviving counts for the slice/batch entry points.
fn record_sampled(raw: u64, survivors: u64) {
    let obs = sss_obs::global();
    obs.add(sss_obs::MetricId::SamplerRawItemsTotal, raw);
    obs.add(sss_obs::MetricId::SamplerSurvivorsTotal, survivors);
}

/// Bernoulli sampler with survival probability `p`.
#[derive(Debug, Clone)]
pub struct BernoulliSampler {
    p: f64,
    seed: u64,
    rng: Xoshiro256pp,
}

impl BernoulliSampler {
    /// Create a sampler with rate `p ∈ (0, 1]` and a deterministic seed.
    ///
    /// # Panics
    /// If `p` is not in `(0, 1]`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "sampling probability must be in (0,1], got {p}"
        );
        Self {
            p,
            seed,
            rng: Xoshiro256pp::new(seed),
        }
    }

    /// The sampling probability.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The seed this sampler was constructed with (its RNG state advances
    /// as elements are processed; the seed does not).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A fresh sampler for shard `lane`, seeded with
    /// `split_seed(self.seed, lane)`: same rate, statistically independent
    /// survival decisions. Shard pipelines call this once per worker so
    /// the shards jointly realise `N` independent Bernoulli processes.
    pub fn fork(&self, lane: u64) -> BernoulliSampler {
        BernoulliSampler::new(self.p, split_seed(self.seed, lane))
    }

    /// Per-element coin flip: does the next element of `P` survive into `L`?
    #[inline]
    pub fn keep(&mut self) -> bool {
        self.rng.next_bool(self.p)
    }

    /// Lazily yield the surviving **positions** among the next `n`
    /// elements — the geometric-skip generator decoupled from any
    /// materialised data. `O(survivors)` RNG draws total, `O(1)` state:
    /// at `p ≪ 1` a consumer visits only the `≈ p·n` surviving offsets
    /// of a stream it never has to touch element-by-element (windowed
    /// replay of sparse buckets, columnar scans, mmap'd traces).
    ///
    /// The position sequence is exactly the one
    /// [`BernoulliSampler::sample_slice`] visits: both draw the same
    /// `Geometric(p)` gaps from the same RNG state.
    pub fn skip_positions(&mut self, n: u64) -> SkipPositions<'_> {
        SkipPositions {
            p: self.p,
            rng: &mut self.rng,
            n,
            cursor: None,
            done: false,
        }
    }

    /// Sample a borrowed slice, invoking `f` with `(position, item)` for
    /// every surviving element. Skip-based: cost is `O(|L|)` RNG draws,
    /// not `O(|P|)`.
    pub fn sample_indexed<F: FnMut(usize, Item)>(&mut self, data: &[Item], mut f: F) {
        let n = data.len() as u64;
        let mut survivors = 0u64;
        for pos in self.skip_positions(n) {
            survivors += 1;
            f(pos as usize, data[pos as usize]);
        }
        record_sampled(n, survivors);
    }

    /// Sample a borrowed slice, invoking `f` for every surviving element.
    /// Skip-based: cost is `O(|L|)` RNG draws, not `O(|P|)`.
    pub fn sample_slice<F: FnMut(Item)>(&mut self, data: &[Item], mut f: F) {
        self.sample_indexed(data, |_, x| f(x));
    }

    /// Sample a borrowed slice, delivering the survivors to `f` in chunks
    /// of up to `batch` elements — the feed for a batched monitor hot
    /// path (`Monitor::update_batch`). Skip-based like
    /// [`BernoulliSampler::sample_slice`]: RNG cost is `O(|L|)`, and the
    /// chunk buffer is the only allocation.
    ///
    /// # Panics
    /// If `batch` is zero.
    pub fn sample_batches<F: FnMut(&[Item])>(&mut self, data: &[Item], batch: usize, mut f: F) {
        assert!(batch >= 1, "batch size must be positive");
        let mut buf: Vec<Item> = Vec::with_capacity(batch);
        let mut survivors = 0u64;
        for pos in self.skip_positions(data.len() as u64) {
            buf.push(data[pos as usize]);
            if buf.len() == batch {
                survivors += buf.len() as u64;
                f(&buf);
                buf.clear();
            }
        }
        if !buf.is_empty() {
            survivors += buf.len() as u64;
            f(&buf);
        }
        record_sampled(data.len() as u64, survivors);
    }

    /// Collect the sampled sub-stream of a slice into a `Vec`.
    pub fn sample_to_vec(&mut self, data: &[Item]) -> Vec<Item> {
        // E[|L|] = p·n; reserve with slack to avoid regrowth.
        let mut out = Vec::with_capacity(((data.len() as f64) * self.p * 1.1) as usize + 16);
        self.sample_slice(data, |x| out.push(x));
        out
    }

    /// Wrap an arbitrary iterator over `P` into an iterator over `L`.
    pub fn sample_iter<I>(self, inner: I) -> SampledIter<I>
    where
        I: Iterator<Item = Item>,
    {
        SampledIter {
            inner,
            sampler: self,
        }
    }
}

impl WireCodec for BernoulliSampler {
    const WIRE_TAG: u16 = 0x0301;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.p.encode_into(out);
        self.seed.encode_into(out);
        self.rng.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let p = r.rate()?;
        let seed = r.u64()?;
        let rng = Xoshiro256pp::decode(r)?;
        Ok(BernoulliSampler { p, seed, rng })
    }
}

/// Lazy surviving-position iterator produced by
/// [`BernoulliSampler::skip_positions`]. Fused: the first position at
/// or beyond `n` ends the iteration, and no further RNG is drawn — so
/// the sampler can resume on the next range with the state it would
/// have had after [`BernoulliSampler::sample_slice`] over `n` elements.
#[derive(Debug)]
pub struct SkipPositions<'a> {
    p: f64,
    rng: &'a mut Xoshiro256pp,
    n: u64,
    /// Last yielded position (`None` before the first draw).
    cursor: Option<u64>,
    done: bool,
}

impl Iterator for SkipPositions<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        let idx = match self.cursor {
            None => self.rng.next_geometric(self.p),
            Some(prev) => {
                let gap = self.rng.next_geometric(self.p);
                match prev.checked_add(1).and_then(|i| i.checked_add(gap)) {
                    Some(i) => i,
                    None => {
                        self.done = true;
                        return None;
                    }
                }
            }
        };
        if idx >= self.n {
            self.done = true;
            return None;
        }
        self.cursor = Some(idx);
        Some(idx)
    }
}

/// Iterator adapter produced by [`BernoulliSampler::sample_iter`].
#[derive(Debug, Clone)]
pub struct SampledIter<I> {
    inner: I,
    sampler: BernoulliSampler,
}

impl<I: Iterator<Item = Item>> Iterator for SampledIter<I> {
    type Item = Item;

    #[inline]
    fn next(&mut self) -> Option<Item> {
        let gap = self.sampler.rng.next_geometric(self.sampler.p);
        if gap >= usize::MAX as u64 {
            return None;
        }
        self.inner.nth(gap as usize)
    }
}

/// Deterministic 1-in-N sampling (periodic): keeps elements at positions
/// `N−1, 2N−1, …` (0-based). The expected rate matches Bernoulli sampling
/// with `p = 1/N`, but survival events are *not* independent — several
/// estimators in this workspace are biased under it, which the examples
/// demonstrate.
#[derive(Debug, Clone)]
pub struct OneInNSampler {
    every: u64,
    seen: u64,
}

impl OneInNSampler {
    /// Keep one element out of every `every` (must be ≥ 1).
    pub fn new(every: u64) -> Self {
        assert!(every >= 1, "period must be >= 1");
        Self { every, seen: 0 }
    }

    /// Does the next element survive?
    #[inline]
    pub fn keep(&mut self) -> bool {
        self.seen += 1;
        if self.seen == self.every {
            self.seen = 0;
            true
        } else {
            false
        }
    }

    /// Collect the periodic sub-stream of a slice.
    pub fn sample_to_vec(&mut self, data: &[Item]) -> Vec<Item> {
        data.iter().copied().filter(|_| self.keep()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_concentrates_around_p() {
        let data: Vec<Item> = (0..200_000u64).collect();
        for &p in &[0.01, 0.1, 0.5, 1.0] {
            let mut s = BernoulliSampler::new(p, 42);
            let kept = s.sample_to_vec(&data);
            let rate = kept.len() as f64 / data.len() as f64;
            // 5 sigma of Bin(n, p)/n.
            let sigma = (p * (1.0 - p) / data.len() as f64).sqrt();
            assert!(
                (rate - p).abs() <= 5.0 * sigma + 1e-12,
                "p={p}: rate={rate}"
            );
        }
    }

    #[test]
    fn p_one_keeps_everything_in_order() {
        let data: Vec<Item> = (0..1000u64).collect();
        let mut s = BernoulliSampler::new(1.0, 7);
        assert_eq!(s.sample_to_vec(&data), data);
    }

    #[test]
    fn sampling_preserves_order() {
        let data: Vec<Item> = (0..50_000u64).collect();
        let mut s = BernoulliSampler::new(0.1, 3);
        let kept = s.sample_to_vec(&data);
        for w in kept.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn batched_and_slice_paths_agree() {
        let data: Vec<Item> = (0..40_000u64).collect();
        let mut s1 = BernoulliSampler::new(0.13, 21);
        let via_slice = s1.sample_to_vec(&data);
        for batch in [1usize, 7, 1024, 1 << 20] {
            let mut s2 = BernoulliSampler::new(0.13, 21);
            let mut via_batches = Vec::new();
            let mut chunks = 0usize;
            s2.sample_batches(&data, batch, |chunk| {
                assert!(chunk.len() <= batch);
                via_batches.extend_from_slice(chunk);
                chunks += 1;
            });
            assert_eq!(via_slice, via_batches, "batch = {batch}");
            assert_eq!(chunks, via_slice.len().div_ceil(batch), "batch = {batch}");
        }
    }

    #[test]
    fn iterator_and_slice_paths_agree() {
        let data: Vec<Item> = (0..30_000u64).collect();
        let mut s1 = BernoulliSampler::new(0.05, 99);
        let via_slice = s1.sample_to_vec(&data);
        let s2 = BernoulliSampler::new(0.05, 99);
        let via_iter: Vec<Item> = s2.sample_iter(data.iter().copied()).collect();
        assert_eq!(via_slice, via_iter);
    }

    #[test]
    fn deterministic_per_seed() {
        let data: Vec<Item> = (0..10_000u64).collect();
        let a = BernoulliSampler::new(0.2, 5).sample_to_vec(&data);
        let b = BernoulliSampler::new(0.2, 5).sample_to_vec(&data);
        let c = BernoulliSampler::new(0.2, 6).sample_to_vec(&data);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn per_item_survival_is_p_marginally() {
        // Element at a fixed position survives with probability ~p across seeds.
        let data: Vec<Item> = (0..100u64).collect();
        let p = 0.3;
        let trials = 20_000u64;
        let mut hits = 0u64;
        for seed in 0..trials {
            let mut s = BernoulliSampler::new(p, seed);
            let kept = s.sample_to_vec(&data);
            if kept.contains(&50) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - p).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn forked_samplers_are_independent_and_deterministic() {
        let data: Vec<Item> = (0..30_000u64).collect();
        let base = BernoulliSampler::new(0.2, 9);
        let a1 = base.fork(0).sample_to_vec(&data);
        let a2 = base.fork(0).sample_to_vec(&data);
        let b = base.fork(1).sample_to_vec(&data);
        assert_eq!(a1, a2, "fork is deterministic per lane");
        assert_ne!(a1, b, "different lanes sample differently");
        assert_eq!(base.fork(3).seed(), sss_hash::split_seed(9, 3));
        // The fork must not depend on (or advance) the parent's RNG state.
        let mut advanced = BernoulliSampler::new(0.2, 9);
        let _ = advanced.sample_to_vec(&data);
        assert_eq!(advanced.fork(1).sample_to_vec(&data), b);
    }

    #[test]
    fn skip_positions_match_the_sampled_elements() {
        let data: Vec<Item> = (0..60_000u64).map(|i| i * 7 + 1).collect();
        for &p in &[0.01, 0.13, 0.5, 1.0] {
            let mut s1 = BernoulliSampler::new(p, 77);
            let via_slice = s1.sample_to_vec(&data);
            let mut s2 = BernoulliSampler::new(p, 77);
            let positions: Vec<u64> = s2.skip_positions(data.len() as u64).collect();
            let via_positions: Vec<Item> = positions.iter().map(|&i| data[i as usize]).collect();
            assert_eq!(via_slice, via_positions, "p = {p}");
            for w in positions.windows(2) {
                assert!(w[0] < w[1], "positions strictly increase");
            }
        }
    }

    #[test]
    fn skip_positions_is_o_survivors_and_fused() {
        // At p = 1/1000 over a million virtual elements the generator
        // yields ~1000 positions without any per-element work — and once
        // exhausted it stays exhausted without advancing the RNG.
        let mut s = BernoulliSampler::new(0.001, 5);
        let mut iter = s.skip_positions(1_000_000);
        let count = iter.by_ref().count();
        assert!((500..2_000).contains(&count), "count = {count}");
        assert_eq!(iter.next(), None, "fused after exhaustion");
    }

    #[test]
    fn skip_positions_resumes_across_ranges_like_slices() {
        // Consuming positions range-by-range must advance the RNG the
        // same way as sampling the concatenated slice.
        let data: Vec<Item> = (0..30_000u64).collect();
        let mut whole = BernoulliSampler::new(0.07, 13);
        let expect = whole.sample_to_vec(&data);
        let mut split = BernoulliSampler::new(0.07, 13);
        let mut got = Vec::new();
        for chunk in data.chunks(7_500) {
            for pos in split.skip_positions(chunk.len() as u64) {
                got.push(chunk[pos as usize]);
            }
        }
        // Note: per-range resampling re-draws the boundary gap, so the
        // *sets* differ slightly — but each range is itself a faithful
        // Bernoulli sample, and the total rate matches.
        let rate_a = expect.len() as f64 / data.len() as f64;
        let rate_b = got.len() as f64 / data.len() as f64;
        assert!((rate_a - rate_b).abs() < 0.01, "{rate_a} vs {rate_b}");
    }

    #[test]
    fn sample_indexed_agrees_with_sample_slice() {
        let data: Vec<Item> = (0..25_000u64).map(|i| i ^ 0x5a5a).collect();
        let mut s1 = BernoulliSampler::new(0.2, 31);
        let via_slice = s1.sample_to_vec(&data);
        let mut s2 = BernoulliSampler::new(0.2, 31);
        let mut via_indexed = Vec::new();
        s2.sample_indexed(&data, |i, x| {
            assert_eq!(data[i], x);
            via_indexed.push(x);
        });
        assert_eq!(via_slice, via_indexed);
    }

    #[test]
    fn one_in_n_is_periodic() {
        let data: Vec<Item> = (0..20u64).collect();
        let mut s = OneInNSampler::new(5);
        assert_eq!(s.sample_to_vec(&data), vec![4, 9, 14, 19]);
        let mut s1 = OneInNSampler::new(1);
        assert_eq!(s1.sample_to_vec(&data), data);
    }

    #[test]
    #[should_panic(expected = "sampling probability")]
    fn zero_p_rejected() {
        let _ = BernoulliSampler::new(0.0, 1);
    }
}
