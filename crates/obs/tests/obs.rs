//! The observability battery the ISSUE demands: concurrency exactness,
//! histogram edge values, wire round-trips with corruption drills, and
//! event-ring overflow accounting.

use std::sync::Arc;
use std::thread;

use sss_codec::{CodecError, WireCodec};
use sss_obs::{
    bucket_of, EventKind, MetricId, MetricsSnapshot, Registry, HIST_BUCKETS, TAG_METRICS_SNAPSHOT,
};

#[test]
fn concurrent_hammer_totals_are_exact() {
    const THREADS: usize = 8;
    const INCS: u64 = 50_000;
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                for i in 0..INCS {
                    reg.inc(MetricId::IngestItemsTotal);
                    reg.add(MetricId::TransportBytesInTotal, 3);
                    reg.gauge_add(MetricId::ShardedQueueDepth, if i % 2 == 0 { 1 } else { -1 });
                    reg.observe(MetricId::IngestBatchSize, i);
                    reg.labeled_add(MetricId::TransportSiteBytesInTotal, t as u64, 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread");
    }

    let n = THREADS as u64 * INCS;
    assert_eq!(reg.value(MetricId::IngestItemsTotal), n);
    assert_eq!(reg.value(MetricId::TransportBytesInTotal), 3 * n);
    // INCS is even: each thread's +1/−1 pairs cancel exactly.
    assert_eq!(reg.gauge_value(MetricId::ShardedQueueDepth), 0);
    let snap = reg.snapshot();
    let hist = snap
        .hist("sss_ingest_batch_size")
        .expect("histogram present");
    assert_eq!(hist.count(), n);
    for t in 0..THREADS as u64 {
        assert_eq!(
            reg.labeled_value(MetricId::TransportSiteBytesInTotal, t),
            INCS
        );
    }
}

#[test]
fn histogram_boundaries_land_in_the_right_buckets() {
    // bucket_of: 0 → bucket 0; otherwise 64 − leading_zeros, so each
    // power of two opens a new bucket.
    assert_eq!(bucket_of(0), 0);
    assert_eq!(bucket_of(1), 1);
    assert_eq!(bucket_of(2), 2);
    assert_eq!(bucket_of(3), 2);
    assert_eq!(bucket_of(4), 3);
    for k in 0..64 {
        assert_eq!(bucket_of(1u64 << k), (k + 1) as usize, "2^{k}");
        if k > 0 {
            assert_eq!(bucket_of((1u64 << k) - 1), k as usize, "2^{k}-1");
        }
    }
    assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);

    let reg = Registry::new();
    reg.observe(MetricId::IngestBatchNanos, 0);
    reg.observe(MetricId::IngestBatchNanos, 1);
    reg.observe(MetricId::IngestBatchNanos, u64::MAX);
    let snap = reg.snapshot();
    let h = snap.hist("sss_ingest_batch_nanos").expect("present");
    assert_eq!(h.count(), 3);
    // The sum cell is a relaxed wrapping add (the lock-free hot-path
    // price): 0 + 1 + u64::MAX wraps to exactly 0.
    assert_eq!(h.sum, 0);
    let buckets: Vec<u8> = h.buckets.iter().map(|(i, _)| *i).collect();
    assert_eq!(buckets, vec![0, 1, 64]);
}

/// A snapshot with every value class populated, for codec drills.
fn busy_snapshot() -> MetricsSnapshot {
    let reg = Registry::new();
    reg.add(MetricId::IngestItemsTotal, 12345);
    reg.gauge_add(MetricId::ShardedQueueDepth, -7);
    reg.observe(MetricId::CodecEncodeNanos, 1024);
    reg.observe(MetricId::CodecEncodeNanos, u64::MAX);
    reg.labeled_add(MetricId::TransportSiteBytesInTotal, 42, 9000);
    reg.event(EventKind::AlertFired, 1, 2, "f0 > \"threshold\"");
    reg.snapshot()
}

#[test]
fn metrics_snapshot_roundtrips() {
    let snap = busy_snapshot();
    let bytes = snap.encode_framed();
    let back = MetricsSnapshot::decode_framed(&bytes).expect("roundtrip");
    assert_eq!(back.counter("sss_ingest_items_total"), Some(12345));
    assert_eq!(back.gauge("sss_sharded_queue_depth"), Some(-7));
    let h = back.hist("sss_codec_encode_nanos").expect("hist");
    assert_eq!(h.count(), 2);
    assert!(back
        .labeled
        .iter()
        .any(|(n, l, v)| n == "sss_transport_site_bytes_in_total" && *l == 42 && *v == 9000));
    assert_eq!(back.events.len(), 1);
    assert_eq!(back.events[0].kind, "alert_fired");
    assert_eq!(back.events[0].note, "f0 > \"threshold\"");
    // Re-encode is byte-identical: the wire form is canonical.
    assert_eq!(back.encode_framed(), bytes);
}

#[test]
fn corruption_drills_reject_without_panicking() {
    let bytes = busy_snapshot().encode_framed();

    // Truncation at every prefix length must error, never panic.
    for cut in 0..bytes.len() {
        assert!(
            MetricsSnapshot::decode_framed(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }

    // Single-bit flips: either a checksum mismatch catches it, or (a
    // flip inside the header) another typed error does. A flip must
    // never produce a silent success with different content except in
    // the checksum field itself being unflipped-compensated — which a
    // single flip cannot do.
    for byte in 0..bytes.len() {
        let mut b = bytes.clone();
        b[byte] ^= 0x40;
        match MetricsSnapshot::decode_framed(&b) {
            Err(_) => {}
            Ok(_) => panic!("flip at byte {byte} decoded successfully"),
        }
    }

    // Oversize declared lengths are bounded by the payload, not
    // allocated blindly: craft a frame whose counter count is huge.
    let huge = {
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("x".repeat(64), 1));
        let mut b = snap.encode_framed();
        // Corrupt deep in the payload; whatever field the flip lands
        // in, decode must stay panic-free and OOM-free.
        let mid = b.len() / 2;
        b[mid] ^= 0xFF;
        b
    };
    let _ = MetricsSnapshot::decode_framed(&huge);
}

#[test]
fn tag_lives_in_the_obs_range() {
    assert_eq!(TAG_METRICS_SNAPSHOT >> 8, 0x07);
    assert_eq!(MetricsSnapshot::WIRE_TAG, TAG_METRICS_SNAPSHOT);
    let bytes = busy_snapshot().encode_framed();
    let header: [u8; sss_codec::FRAME_HEADER_BYTES] = bytes[..sss_codec::FRAME_HEADER_BYTES]
        .try_into()
        .expect("header");
    let fh = sss_codec::parse_frame_header(&header).expect("valid frame");
    assert_eq!(fh.tag, TAG_METRICS_SNAPSHOT);
}

#[test]
fn event_ring_overflow_is_itself_a_metric() {
    let reg = Registry::with_events_capacity(4);
    for i in 0..10u64 {
        reg.event(EventKind::BucketRollover, i, 0, "");
    }
    let events = reg.events();
    assert_eq!(events.len(), 4, "ring keeps the newest 4");
    assert_eq!(events[0].a, 6);
    assert_eq!(events[3].a, 9);
    // The 6 evictions are visible as a first-class counter, in the
    // snapshot like any other metric.
    assert_eq!(reg.value(MetricId::ObsEventsDroppedTotal), 6);
    let snap = reg.snapshot();
    assert_eq!(snap.counter("sss_obs_events_dropped_total"), Some(6));
}

#[test]
fn invalid_bucket_order_is_rejected() {
    // Hand-build a snapshot whose histogram bucket indices decrease —
    // the decoder must reject it as Invalid, not mis-sum it.
    let mut snap = busy_snapshot();
    if let Some(h) = snap.hists.first_mut() {
        h.buckets = vec![(64, 1), (1, 1)];
    }
    let bytes = snap.encode_framed();
    match MetricsSnapshot::decode_framed(&bytes) {
        Err(CodecError::Invalid { .. }) => {}
        other => panic!("expected Invalid, got {other:?}"),
    }
}
