//! The central metric registry table: every metric the workspace can
//! record, declared in one place.
//!
//! `sss-lint`'s `metric_registry` rule audits each `metric_table!`
//! invocation in the workspace: names must be snake_case, start with
//! `sss_<subsystem>_` for a known subsystem, be globally unique, and
//! counters must end in `_total` (Prometheus conventions). Adding a
//! metric is one line here — the enum variant, its storage slot, the
//! render surfaces and the wire export all follow from the table.
//!
//! Naming: `sss_<subsystem>_<what>[_<unit>][_total]` where subsystem is
//! one of `ingest`, `sampler`, `sharded`, `codec`, `transport`,
//! `window`, `obs`. Durations are `_nanos`, sizes `_bytes`, event-time
//! offsets `_ms`. Histograms carry no suffix convention — the kind
//! column says what they are.

/// What a metric slot stores and how it renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic `u64`; renders as a Prometheus counter.
    Counter,
    /// Signed instantaneous value (`i64` in a `u64` slot).
    Gauge,
    /// Log2-bucketed `u64` distribution (65 buckets + sum).
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` keyword.
    pub fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Declares the workspace metric table: generates [`MetricId`], the
/// declaration-order [`ALL_METRICS`] slice and the per-id `name` /
/// `kind` / `help` lookups. Audited by sss-lint (`metric_registry`).
macro_rules! metric_table {
    ($($variant:ident => $kind:ident $name:literal : $help:literal;)+) => {
        /// One registered metric. The discriminant is the storage slot
        /// index in a [`crate::Registry`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u16)]
        pub enum MetricId { $($variant),+ }

        /// Every metric in declaration order, index-aligned with
        /// registry slots.
        pub const ALL_METRICS: &[MetricId] = &[$(MetricId::$variant),+];

        impl MetricId {
            /// Number of registered metrics.
            pub const COUNT: usize = ALL_METRICS.len();

            /// The exported snake_case metric name.
            pub fn name(self) -> &'static str {
                match self { $(MetricId::$variant => $name),+ }
            }

            /// The metric kind.
            pub fn kind(self) -> MetricKind {
                match self { $(MetricId::$variant => MetricKind::$kind),+ }
            }

            /// One-line help string for exposition.
            pub fn help(self) -> &'static str {
                match self { $(MetricId::$variant => $help),+ }
            }
        }
    };
}

metric_table! {
    // ── ingest: Monitor / ShardedMonitor update paths ────────────
    IngestItemsTotal => Counter "sss_ingest_items_total": "Sampled items ingested by Monitor update paths (scalar items flush every 1024)";
    IngestBatchesTotal => Counter "sss_ingest_batches_total": "Monitor::update_batch calls across all monitors";
    IngestBatchSize => Histogram "sss_ingest_batch_size": "Distribution of update_batch lengths in items";
    IngestBatchNanos => Histogram "sss_ingest_batch_nanos": "Whole-batch update latency in nanoseconds, sampled every 64th batch";
    IngestSlotSampledNanosTotal => Counter "sss_ingest_slot_sampled_nanos_total": "Per-statistic update nanoseconds from sampled batches, labeled by estimator slot";
    IngestSlotSampledItemsTotal => Counter "sss_ingest_slot_sampled_items_total": "Items covered by the sampled per-statistic timings, labeled by estimator slot";
    IngestCasRetriesTotal => Counter "sss_ingest_cas_retries_total": "Compare-exchange retries in shared-atomic sketch updates (contention proxy)";
    IngestThreadItemsTotal => Counter "sss_ingest_thread_items_total": "Sampled items ingested by concurrent workers, labeled by thread index";
    // ── sampler: Bernoulli sub-sampling front end ────────────────
    SamplerRawItemsTotal => Counter "sss_sampler_raw_items_total": "Raw stream items offered to Bernoulli samplers";
    SamplerSurvivorsTotal => Counter "sss_sampler_survivors_total": "Items surviving sub-sampling";
    // ── sharded: multi-threaded dispatch ─────────────────────────
    ShardedJobsDispatchedTotal => Counter "sss_sharded_jobs_dispatched_total": "Raw-stream jobs handed to shard worker queues";
    ShardedJobsCompletedTotal => Counter "sss_sharded_jobs_completed_total": "Jobs fully ingested by shard workers";
    ShardedQueueDepth => Gauge "sss_sharded_queue_depth": "Jobs in flight across all shard queues (dispatched minus completed)";
    ShardedMergesTotal => Counter "sss_sharded_merges_total": "Shard monitor merges folded into snapshots";
    // ── codec: encode/decode instrumented at call sites ──────────
    CodecEncodeBytesTotal => Counter "sss_codec_encode_bytes_total": "Bytes produced by checkpoint encodes";
    CodecEncodeNanos => Histogram "sss_codec_encode_nanos": "Checkpoint encode latency in nanoseconds";
    CodecDecodeBytesTotal => Counter "sss_codec_decode_bytes_total": "Bytes consumed by checkpoint decodes";
    CodecDecodeNanos => Histogram "sss_codec_decode_nanos": "Checkpoint decode latency in nanoseconds";
    CodecDeltaBytesTotal => Counter "sss_codec_delta_bytes_total": "Bytes in delta checkpoints (encode and apply sides)";
    // ── transport: collector accept path ─────────────────────────
    TransportConnectionsTotal => Counter "sss_transport_connections_total": "Connections accepted by the collector";
    TransportConnectionsActive => Gauge "sss_transport_connections_active": "Currently open collector connections";
    TransportCleanClosesTotal => Counter "sss_transport_clean_closes_total": "Sessions ended by a goodbye message";
    TransportDisconnectsTotal => Counter "sss_transport_disconnects_total": "Sessions ended without a goodbye";
    TransportSnapshotsAcceptedTotal => Counter "sss_transport_snapshots_accepted_total": "Snapshot pushes merged into collector state";
    TransportSnapshotsDuplicateTotal => Counter "sss_transport_snapshots_duplicate_total": "Duplicate snapshot pushes answered idempotently";
    TransportBytesInTotal => Counter "sss_transport_bytes_in_total": "Payload bytes received by the collector";
    TransportMetricsPushesTotal => Counter "sss_transport_metrics_pushes_total": "Telemetry snapshots accepted from sites";
    // ── transport: per-reason rejects (RejectReason, one each) ───
    TransportRejectBadMagicTotal => Counter "sss_transport_reject_bad_magic_total": "Rejected frames: wrong wire magic";
    TransportRejectUnsupportedVersionTotal => Counter "sss_transport_reject_unsupported_version_total": "Rejected frames: incompatible wire version";
    TransportRejectTagMismatchTotal => Counter "sss_transport_reject_tag_mismatch_total": "Rejected frames: tag did not match the expected type";
    TransportRejectUnknownTagTotal => Counter "sss_transport_reject_unknown_tag_total": "Rejected frames: polymorphic slot tag this build cannot decode";
    TransportRejectTruncatedTotal => Counter "sss_transport_reject_truncated_total": "Rejected frames: connection or buffer ended mid-frame";
    TransportRejectTrailingBytesTotal => Counter "sss_transport_reject_trailing_bytes_total": "Rejected frames: bytes left over after a complete object";
    TransportRejectChecksumMismatchTotal => Counter "sss_transport_reject_checksum_mismatch_total": "Rejected frames: payload checksum mismatch";
    TransportRejectInvalidPayloadTotal => Counter "sss_transport_reject_invalid_payload_total": "Rejected frames: decoded value violated a structural invariant";
    TransportRejectOversizeTotal => Counter "sss_transport_reject_oversize_total": "Rejected frames: payload above the configured cap";
    TransportRejectMergeIncompatibleTotal => Counter "sss_transport_reject_merge_incompatible_total": "Rejected snapshots: incompatible with the collector prototype";
    TransportRejectSiteMismatchTotal => Counter "sss_transport_reject_site_mismatch_total": "Rejected pushes: site_id disagreed with the hello";
    TransportRejectUnexpectedMessageTotal => Counter "sss_transport_reject_unexpected_message_total": "Rejected messages: tag out of protocol order";
    TransportRejectHandshakeRefusedTotal => Counter "sss_transport_reject_handshake_refused_total": "Refused hellos: transport protocol version";
    TransportRejectUnknownBaseTotal => Counter "sss_transport_reject_unknown_base_total": "Rejected delta pushes: base snapshot not held";
    // ── transport: per-site rows (labeled by site id) ────────────
    TransportSiteSnapshotsTotal => Counter "sss_transport_site_snapshots_total": "Snapshots accepted per site, labeled by site id";
    TransportSiteBytesInTotal => Counter "sss_transport_site_bytes_in_total": "Payload bytes received per site, labeled by site id";
    TransportSiteLastSeq => Gauge "sss_transport_site_last_seq": "Highest accepted sequence number plus one per site (0 = none yet)";
    TransportSiteLastSeenMs => Gauge "sss_transport_site_last_seen_ms": "Session-relative ms of each site's last accepted push";
    // ── transport: site client path ──────────────────────────────
    TransportBytesOutTotal => Counter "sss_transport_bytes_out_total": "Payload bytes written by site clients";
    TransportPushRttNanos => Histogram "sss_transport_push_rtt_nanos": "Push round-trip latency in nanoseconds (send to ack)";
    TransportPushesFullTotal => Counter "sss_transport_pushes_full_total": "Full snapshot pushes sent by site clients";
    TransportPushesDeltaTotal => Counter "sss_transport_pushes_delta_total": "Delta snapshot pushes sent by site clients";
    TransportDeltaFallbacksTotal => Counter "sss_transport_delta_fallbacks_total": "Delta pushes answered RejectedUnknownBase and retried as full";
    TransportReconnectsTotal => Counter "sss_transport_reconnects_total": "Re-handshakes after a lost collector connection";
    TransportRetriesTotal => Counter "sss_transport_retries_total": "Push attempts retried after transient failures";
    // ── window: tumbling buckets + continuous queries ────────────
    WindowRolloversTotal => Counter "sss_window_rollovers_total": "Epoch rollovers across windowed monitors";
    WindowRetiredBucketsTotal => Counter "sss_window_retired_buckets_total": "Buckets that aged out of their window";
    WindowAlertsTotal => Counter "sss_window_alerts_total": "Alerts fired by continuous queries";
    WindowLateDropsTotal => Counter "sss_window_late_drops_total": "Items older than the live window, dropped on ingest";
    // ── obs: the registry watching itself ────────────────────────
    ObsEventsDroppedTotal => Counter "sss_obs_events_dropped_total": "Trace events evicted from the ring by overflow";
    ObsSnapshotsTotal => Counter "sss_obs_snapshots_total": "Metrics snapshots taken from registries";
}

impl MetricId {
    /// Reverse lookup by exported name (linear scan over the table —
    /// used on render/export paths, never on the record path).
    pub fn by_name(name: &str) -> Option<MetricId> {
        ALL_METRICS.iter().copied().find(|m| m.name() == name)
    }

    /// The label key for metrics recorded with
    /// [`crate::Registry::labeled_add`]: per-site rows label by
    /// `site`, per-estimator rows by `slot`. Derived from the name so
    /// the table stays one column per concern.
    pub fn label_key(self) -> &'static str {
        let n = self.name();
        if n.contains("_site_") {
            "site"
        } else if n.contains("_slot_") {
            "slot"
        } else if n.contains("_thread_") {
            "thread"
        } else {
            "label"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_consistent() {
        assert_eq!(MetricId::COUNT, ALL_METRICS.len());
        for (i, m) in ALL_METRICS.iter().enumerate() {
            assert_eq!(*m as usize, i, "{m:?} discriminant misaligned");
            assert_eq!(MetricId::by_name(m.name()), Some(*m));
        }
    }

    #[test]
    fn names_follow_conventions() {
        for m in ALL_METRICS {
            let n = m.name();
            assert!(n.starts_with("sss_"), "{n} missing sss_ namespace");
            assert!(
                n.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
                "{n} not snake_case"
            );
            if m.kind() == MetricKind::Counter {
                assert!(n.ends_with("_total"), "counter {n} missing _total");
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for m in ALL_METRICS {
            assert!(seen.insert(m.name()), "duplicate metric name {}", m.name());
        }
    }
}
