//! The metrics registry: one atomic slot per table entry, lock-free on
//! the write path, internally-consistent snapshots on read.
//!
//! Storage is slot-indexed by [`MetricId`] discriminant: counters and
//! gauges are single `AtomicU64`s (gauges reinterpret the bits as
//! `i64`), histograms are 65 log2 buckets plus a sum. Every recording
//! method is a relaxed atomic RMW guarded by one `enabled` load — the
//! kill-switch `bench_obs` flips to price the instrumentation, and the
//! reason the overhead budget is enforceable rather than aspirational.
//!
//! Snapshot consistency: a histogram's count is *derived* from the sum
//! of its bucket reads, so a snapshot can never show `count` and
//! `buckets` disagreeing, even while writers race. Cross-metric
//! atomicity is explicitly not promised (and not needed for
//! monitoring).
//!
//! Labeled rows (`name{site="3"}`-style) live in a mutexed map of
//! `Arc<AtomicU64>` cells: resolving a handle takes the lock once,
//! after which updates through the `Arc` are lock-free — the pattern
//! the transport uses for its per-site rows.

use crate::events::{EventKind, EventRing, TraceEvent};
use crate::names::{MetricId, MetricKind, ALL_METRICS};
use crate::wire::{EventSnapshot, HistSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of log2 buckets: value 0, then one bucket per bit position.
pub const HIST_BUCKETS: usize = 65;

/// The log2 bucket index of a value: 0 maps to bucket 0, otherwise
/// `64 - leading_zeros` — bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the top one).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// One log2 histogram: 65 atomic buckets plus an atomic sum.
struct Hist {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self, id: MetricId) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c != 0 {
                buckets.push((i as u8, c));
            }
        }
        HistSnapshot {
            name: id.name().to_string(),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// The process-wide (or per-collector) metrics registry.
pub struct Registry {
    on: AtomicBool,
    epoch: Instant,
    slots: Vec<AtomicU64>,
    hists: Vec<Hist>,
    /// `MetricId` discriminant → index into `hists` (`usize::MAX` for
    /// non-histogram slots).
    hist_slot: Vec<usize>,
    labeled: Mutex<BTreeMap<(u16, u64), Arc<AtomicU64>>>,
    ring: Mutex<EventRing>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled())
            .field("session_ms", &self.session_ms())
            .finish_non_exhaustive()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry the layer instrumentation records into.
/// Collectors that want isolation (parallel tests, multi-tenant
/// processes) construct their own [`Registry`] instead.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// A fresh registry with the default event-ring capacity (256).
    pub fn new() -> Self {
        Self::with_events_capacity(256)
    }

    /// A fresh registry whose event ring holds `cap` events.
    pub fn with_events_capacity(cap: usize) -> Self {
        let mut hist_slot = vec![usize::MAX; MetricId::COUNT];
        let mut hists = Vec::new();
        for (i, id) in ALL_METRICS.iter().enumerate() {
            if id.kind() == MetricKind::Histogram {
                hist_slot[i] = hists.len();
                hists.push(Hist::new());
            }
        }
        Registry {
            on: AtomicBool::new(true),
            epoch: Instant::now(),
            slots: (0..MetricId::COUNT).map(|_| AtomicU64::new(0)).collect(),
            hists,
            hist_slot,
            labeled: Mutex::new(BTreeMap::new()),
            ring: Mutex::new(EventRing::new(cap)),
        }
    }

    /// Whether recording is live. Every write-path method loads this
    /// first and no-ops when false.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    /// Flip the kill-switch. `bench_obs` prices instrumentation by
    /// running the same workload with this on and off.
    pub fn set_enabled(&self, on: bool) {
        self.on.store(on, Ordering::Relaxed);
    }

    /// Milliseconds since this registry was created — the monotonic
    /// session-relative clock events and `*_last_seen_ms` rows use.
    pub fn session_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    // ── write path ───────────────────────────────────────────────

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, id: MetricId, n: u64) {
        if self.enabled() {
            debug_assert_eq!(id.kind(), MetricKind::Counter, "{id:?} is not a counter");
            self.slots[id as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1 to a counter.
    #[inline]
    pub fn inc(&self, id: MetricId) {
        self.add(id, 1);
    }

    /// Add a (possibly negative) delta to a gauge.
    #[inline]
    pub fn gauge_add(&self, id: MetricId, d: i64) {
        if self.enabled() {
            debug_assert_eq!(id.kind(), MetricKind::Gauge, "{id:?} is not a gauge");
            self.slots[id as usize].fetch_add(d as u64, Ordering::Relaxed);
        }
    }

    /// Set a gauge to an absolute value.
    #[inline]
    pub fn gauge_set(&self, id: MetricId, v: i64) {
        if self.enabled() {
            debug_assert_eq!(id.kind(), MetricKind::Gauge, "{id:?} is not a gauge");
            self.slots[id as usize].store(v as u64, Ordering::Relaxed);
        }
    }

    /// Record one value into a histogram.
    #[inline]
    pub fn observe(&self, id: MetricId, v: u64) {
        if self.enabled() {
            debug_assert_eq!(
                id.kind(),
                MetricKind::Histogram,
                "{id:?} is not a histogram"
            );
            self.hists[self.hist_slot[id as usize]].observe(v);
        }
    }

    /// Start a latency measurement iff recording is live — `None`
    /// means the matching [`Registry::observe_since`] is free, so a
    /// disabled registry never pays for `Instant::now()`.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record the nanoseconds since [`Registry::timer`] into a
    /// histogram (no-op when the timer never started).
    #[inline]
    pub fn observe_since(&self, id: MetricId, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.observe(id, ns);
        }
    }

    /// The cell behind `id{label_key=label}`. Resolving takes the map
    /// lock; hot paths hold the `Arc` and update it lock-free. Labeled
    /// cells ignore the kill-switch when written directly — callers
    /// that care route through [`Registry::labeled_add`].
    pub fn labeled_handle(&self, id: MetricId, label: u64) -> Arc<AtomicU64> {
        let mut map = self.labeled.lock().unwrap();
        Arc::clone(map.entry((id as u16, label)).or_default())
    }

    /// Add `n` to a labeled cell (resolves the handle each call — fine
    /// off the hot path, e.g. once per sampled batch).
    pub fn labeled_add(&self, id: MetricId, label: u64, n: u64) {
        if self.enabled() {
            self.labeled_handle(id, label)
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record a trace event into the ring.
    pub fn event(&self, kind: EventKind, a: u64, b: u64, note: impl Into<String>) {
        if !self.enabled() {
            return;
        }
        let ev = TraceEvent {
            at_ms: self.session_ms(),
            kind,
            a,
            b,
            note: note.into(),
        };
        let dropped = self.ring.lock().unwrap().push(ev);
        if dropped > 0 {
            self.slots[MetricId::ObsEventsDroppedTotal as usize]
                .fetch_add(dropped, Ordering::Relaxed);
        }
    }

    // ── read path ────────────────────────────────────────────────

    /// Current value of a counter slot.
    pub fn value(&self, id: MetricId) -> u64 {
        self.slots[id as usize].load(Ordering::Relaxed)
    }

    /// Current value of a gauge slot.
    pub fn gauge_value(&self, id: MetricId) -> i64 {
        self.slots[id as usize].load(Ordering::Relaxed) as i64
    }

    /// Current value of a labeled cell (0 if never touched).
    pub fn labeled_value(&self, id: MetricId, label: u64) -> u64 {
        let map = self.labeled.lock().unwrap();
        map.get(&(id as u16, label))
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// All `(label, value)` rows of a labeled metric, label-ordered.
    pub fn labeled_rows(&self, id: MetricId) -> Vec<(u64, u64)> {
        let map = self.labeled.lock().unwrap();
        map.range((id as u16, 0)..=(id as u16, u64::MAX))
            .map(|((_, label), c)| (*label, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Oldest-first copy of the live trace events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().to_vec()
    }

    /// A wire-exportable snapshot of every table metric (zeros
    /// included — a registered metric that has seen nothing still
    /// exports, per Prometheus convention), all labeled rows, and the
    /// live event ring. Taking a snapshot counts itself
    /// (`sss_obs_snapshots_total`) even while disabled, so a collector
    /// with the kill-switch thrown still shows it was scraped.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.slots[MetricId::ObsSnapshotsTotal as usize].fetch_add(1, Ordering::Relaxed);
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for id in ALL_METRICS {
            match id.kind() {
                MetricKind::Counter => counters.push((id.name().to_string(), self.value(*id))),
                MetricKind::Gauge => gauges.push((id.name().to_string(), self.gauge_value(*id))),
                MetricKind::Histogram => {
                    hists.push(self.hists[self.hist_slot[*id as usize]].snapshot(*id));
                }
            }
        }
        let mut labeled = Vec::new();
        {
            let map = self.labeled.lock().unwrap();
            for ((id_raw, label), cell) in map.iter() {
                let name = ALL_METRICS
                    .get(*id_raw as usize)
                    .map_or("sss_obs_unknown", |m| m.name());
                labeled.push((name.to_string(), *label, cell.load(Ordering::Relaxed)));
            }
        }
        let events = self
            .events()
            .into_iter()
            .map(|e| EventSnapshot {
                at_ms: e.at_ms,
                kind: e.kind.label().to_string(),
                a: e.a,
                b: e.b,
                note: e.note,
            })
            .collect();
        MetricsSnapshot {
            session_ms: self.session_ms(),
            counters,
            gauges,
            labeled,
            hists,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..64 {
            let v = 1u64 << i;
            assert_eq!(bucket_of(v), i + 1, "2^{i}");
            assert!(bucket_upper(bucket_of(v)) >= v);
        }
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn kill_switch_gates_everything() {
        let r = Registry::new();
        r.set_enabled(false);
        r.inc(MetricId::IngestItemsTotal);
        r.observe(MetricId::IngestBatchSize, 7);
        r.gauge_add(MetricId::ShardedQueueDepth, 3);
        r.labeled_add(MetricId::TransportSiteBytesInTotal, 1, 10);
        r.event(EventKind::AlertFired, 0, 0, "x");
        assert!(r.timer().is_none());
        let s = r.snapshot();
        // Everything stays zero except the snapshot self-count, which
        // ignores the switch so a scraped-but-disabled registry still
        // shows it was scraped.
        assert!(s
            .counters
            .iter()
            .all(|(n, v)| *v == 0 || n == "sss_obs_snapshots_total"));
        assert_eq!(s.counter("sss_obs_snapshots_total"), Some(1));
        assert!(s.gauges.iter().all(|(_, v)| *v == 0));
        assert!(s.hists.iter().all(|h| h.count() == 0));
        assert!(s.labeled.is_empty() && s.events.is_empty());
    }

    #[test]
    fn gauge_goes_negative() {
        let r = Registry::new();
        r.gauge_add(MetricId::ShardedQueueDepth, 2);
        r.gauge_add(MetricId::ShardedQueueDepth, -5);
        assert_eq!(r.gauge_value(MetricId::ShardedQueueDepth), -3);
    }
}
