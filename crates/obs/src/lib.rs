//! `sss-obs` — workspace-wide observability.
//!
//! Everything the subsampled-streams system does — ingest batches,
//! shard dispatch, checkpoint encodes, transport pushes, window
//! rollovers — records into one process-wide [`Registry`]: atomic
//! counters, gauges and log2-bucketed histograms (lock-free writes,
//! internally-consistent reads) plus a fixed-capacity [`EventRing`]
//! of typed trace events. The registry renders as Prometheus text or
//! JSON, and snapshots are [`sss_codec::WireCodec`] (tag range
//! `0x07xx`) so sites ship telemetry to the collector over the same
//! framed wire as sketch snapshots.
//!
//! Design points:
//!
//! - **Central table.** Every metric is declared once in
//!   [`names::ALL_METRICS`] via the `metric_table!` macro; sss-lint's
//!   `metric_registry` rule audits the names (snake_case, known
//!   subsystem prefix, globally unique, counters end `_total`).
//! - **Priced overhead.** All recording is gated on a runtime
//!   kill-switch ([`Registry::set_enabled`]); `bench_obs` runs the
//!   ingest hot path with it on and off and `BENCH_obs.json` pins the
//!   ratio at ≤ 1.03×. Hot paths record per *batch*, never per item.
//! - **Isolation when needed.** [`global()`] is the default sink for
//!   layer instrumentation; components that need isolated numbers
//!   (each `CollectorServer`, parallel tests) own a [`Registry`] of
//!   their own.

#![forbid(unsafe_code)]

pub mod events;
pub mod names;
pub mod registry;
pub mod render;
pub mod wire;

pub use events::{EventKind, EventRing, TraceEvent};
pub use names::{MetricId, MetricKind, ALL_METRICS};
pub use registry::{bucket_of, bucket_upper, global, Registry, HIST_BUCKETS};
pub use render::{render_json, render_prometheus};
pub use wire::{EventSnapshot, HistSnapshot, MetricsSnapshot, TAG_METRICS_SNAPSHOT};
