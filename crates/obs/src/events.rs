//! Fixed-capacity ring-buffer event tracer.
//!
//! Metrics say *how much*; the event ring says *what happened last*.
//! Each [`TraceEvent`] is a typed record — snapshot accepted/rejected
//! (with the reject reason in `note`), merge performed, bucket
//! rollover, alert fired, reconnect attempt — stamped with the
//! registry's session-relative millisecond clock. The ring holds the
//! newest `capacity` events; overflow evicts the oldest and bumps
//! `sss_obs_events_dropped_total`, so the loss is itself observable.
//!
//! Recording takes a mutex: events are rare (rejects, alerts,
//! reconnects — not per-item), so the ring stays off the ingest hot
//! path by construction, not by cleverness.

use std::collections::VecDeque;

/// What kind of thing happened. Fieldless so wire export is one byte;
/// the numeric payload slots `a`/`b` and the free-text `note` on
/// [`TraceEvent`] carry the specifics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A site's snapshot push was merged (`a` = site id, `b` = seq).
    SnapshotAccepted = 0,
    /// A push was rejected (`a` = site id, `note` = reason label).
    SnapshotRejected = 1,
    /// Shard or collector state was folded by a merge (`a` = count of
    /// monitors merged).
    MergePerformed = 2,
    /// A windowed monitor closed an epoch (`a` = epoch, `b` = buckets
    /// retired by the roll).
    BucketRollover = 3,
    /// A continuous query fired (`a` = epoch, `note` = query name).
    AlertFired = 4,
    /// A site client re-ran the handshake (`a` = attempt number).
    ReconnectAttempt = 5,
}

impl EventKind {
    /// Number of kinds (for wire-range validation).
    pub const COUNT: u8 = 6;

    /// Stable snake_case label used by renders and the wire format.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SnapshotAccepted => "snapshot_accepted",
            EventKind::SnapshotRejected => "snapshot_rejected",
            EventKind::MergePerformed => "merge_performed",
            EventKind::BucketRollover => "bucket_rollover",
            EventKind::AlertFired => "alert_fired",
            EventKind::ReconnectAttempt => "reconnect_attempt",
        }
    }

    /// Inverse of the `repr(u8)` discriminant, for wire decode.
    pub fn from_u8(raw: u8) -> Option<EventKind> {
        match raw {
            0 => Some(EventKind::SnapshotAccepted),
            1 => Some(EventKind::SnapshotRejected),
            2 => Some(EventKind::MergePerformed),
            3 => Some(EventKind::BucketRollover),
            4 => Some(EventKind::AlertFired),
            5 => Some(EventKind::ReconnectAttempt),
            _ => None,
        }
    }
}

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Milliseconds since the owning registry was created (monotonic,
    /// session-relative — survives nothing, means something).
    pub at_ms: u64,
    /// What happened.
    pub kind: EventKind,
    /// First numeric payload (site id, epoch, merge count, attempt).
    pub a: u64,
    /// Second numeric payload (seq, retired buckets), `0` if unused.
    pub b: u64,
    /// Free-text detail: reject reason label, query name; empty if
    /// unused.
    pub note: String,
}

/// The fixed-capacity ring. Owned by a [`crate::Registry`] behind a
/// mutex; not `Sync` on its own.
#[derive(Debug)]
pub struct EventRing {
    buf: VecDeque<TraceEvent>,
    cap: usize,
}

impl EventRing {
    /// A ring holding at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        EventRing {
            buf: VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// Append an event, returning how many old events were evicted to
    /// make room (0 or 1 — the caller turns this into the dropped
    /// counter).
    pub fn push(&mut self, ev: TraceEvent) -> u64 {
        let mut dropped = 0;
        while self.buf.len() >= self.cap {
            self.buf.pop_front();
            dropped += 1;
        }
        self.buf.push_back(ev);
        dropped
    }

    /// Oldest-first copy of the live events.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(a: u64) -> TraceEvent {
        TraceEvent {
            at_ms: a,
            kind: EventKind::MergePerformed,
            a,
            b: 0,
            note: String::new(),
        }
    }

    #[test]
    fn ring_keeps_newest() {
        let mut r = EventRing::new(3);
        let mut dropped = 0;
        for i in 0..5 {
            dropped += r.push(ev(i));
        }
        assert_eq!(dropped, 2);
        let live: Vec<u64> = r.to_vec().iter().map(|e| e.a).collect();
        assert_eq!(live, vec![2, 3, 4]);
    }

    #[test]
    fn kind_roundtrips() {
        for raw in 0..EventKind::COUNT {
            let k = EventKind::from_u8(raw).unwrap();
            assert_eq!(k as u8, raw);
            assert!(!k.label().is_empty());
        }
        assert_eq!(EventKind::from_u8(EventKind::COUNT), None);
    }
}
