//! Wire export of metrics snapshots — the `0x07xx` tag range.
//!
//! A [`MetricsSnapshot`] is self-describing: metrics travel as
//! `(name, value)` pairs rather than table ordinals, so a collector
//! can decode telemetry from a site running a build with a different
//! metric table (unknown names render as untyped series, missing ones
//! simply don't appear). Histograms ship sparse (only non-zero
//! buckets), events ship with their snake_case kind label.
//!
//! Decode obeys the workspace contract: never panics, never allocates
//! beyond what the buffer length proves, validates every structural
//! invariant (bucket indices strictly increasing and ≤ 64, non-zero
//! sparse counts).

use sss_codec::{put_len, put_u64, CodecError, Reader, WireCodec};

/// Wire tag of [`MetricsSnapshot`].
pub const TAG_METRICS_SNAPSHOT: u16 = 0x0701;

/// One histogram, sparse: `(bucket index, count)` pairs for the
/// non-zero log2 buckets, plus the sum of observed values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Exported metric name.
    pub name: String,
    /// Sum of all observed values (wraps on overflow, like the
    /// underlying atomic).
    pub sum: u64,
    /// Non-zero buckets as `(index, count)`, index strictly
    /// increasing, index ≤ 64.
    pub buckets: Vec<(u8, u64)>,
}

impl HistSnapshot {
    /// Total observation count, derived from the buckets so it can
    /// never disagree with them.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, (_, c)| acc.saturating_add(*c))
    }
}

impl WireCodec for HistSnapshot {
    const MIN_WIRE_BYTES: usize = 24;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        put_u64(out, self.sum);
        put_len(out, self.buckets.len());
        for (i, c) in &self.buckets {
            out.push(*i);
            put_u64(out, *c);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let name = String::decode(r)?;
        let sum = r.u64()?;
        let n = r.len_prefix(9)?;
        let mut buckets = Vec::with_capacity(n);
        let mut prev: i32 = -1;
        for _ in 0..n {
            let i = r.u8()?;
            let c = r.u64()?;
            if i > 64 || i32::from(i) <= prev {
                return Err(CodecError::Invalid {
                    what: "histogram buckets must be strictly increasing indices ≤ 64",
                });
            }
            if c == 0 {
                return Err(CodecError::Invalid {
                    what: "sparse histogram bucket with zero count",
                });
            }
            prev = i32::from(i);
            buckets.push((i, c));
        }
        Ok(HistSnapshot { name, sum, buckets })
    }
}

/// One traced event in wire form: the kind travels as its snake_case
/// label so decoders never reject kinds added by newer builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSnapshot {
    /// Milliseconds since the recording registry was created.
    pub at_ms: u64,
    /// Snake_case kind label (`"alert_fired"`, ...).
    pub kind: String,
    /// First numeric payload.
    pub a: u64,
    /// Second numeric payload.
    pub b: u64,
    /// Free-text detail (reject reason, query name).
    pub note: String,
}

impl WireCodec for EventSnapshot {
    const MIN_WIRE_BYTES: usize = 40;

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.at_ms);
        self.kind.encode_into(out);
        put_u64(out, self.a);
        put_u64(out, self.b);
        self.note.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(EventSnapshot {
            at_ms: r.u64()?,
            kind: String::decode(r)?,
            a: r.u64()?,
            b: r.u64()?,
            note: String::decode(r)?,
        })
    }
}

/// A full registry snapshot: every table metric (zeros included),
/// labeled rows, sparse histograms and the live event ring.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Registry age in ms when the snapshot was taken.
    pub session_ms: u64,
    /// Counter `(name, value)` pairs, table order.
    pub counters: Vec<(String, u64)>,
    /// Gauge `(name, value)` pairs, table order.
    pub gauges: Vec<(String, i64)>,
    /// Labeled rows as `(name, label, value)`, `(id, label)`-ordered.
    pub labeled: Vec<(String, u64, u64)>,
    /// Histograms, table order.
    pub hists: Vec<HistSnapshot>,
    /// Live trace events, oldest first.
    pub events: Vec<EventSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter by exported name (`None` if absent).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge by exported name (`None` if absent).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A histogram by exported name (`None` if absent).
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }
}

impl WireCodec for MetricsSnapshot {
    const WIRE_TAG: u16 = TAG_METRICS_SNAPSHOT;
    const MIN_WIRE_BYTES: usize = 48;

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.session_ms);
        put_len(out, self.counters.len());
        for (name, v) in &self.counters {
            name.encode_into(out);
            put_u64(out, *v);
        }
        put_len(out, self.gauges.len());
        for (name, v) in &self.gauges {
            name.encode_into(out);
            put_u64(out, *v as u64);
        }
        put_len(out, self.labeled.len());
        for (name, label, v) in &self.labeled {
            name.encode_into(out);
            put_u64(out, *label);
            put_u64(out, *v);
        }
        put_len(out, self.hists.len());
        for h in &self.hists {
            h.encode_into(out);
        }
        put_len(out, self.events.len());
        for e in &self.events {
            e.encode_into(out);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let session_ms = r.u64()?;
        let n = r.len_prefix(16)?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let name = String::decode(r)?;
            counters.push((name, r.u64()?));
        }
        let n = r.len_prefix(16)?;
        let mut gauges = Vec::with_capacity(n);
        for _ in 0..n {
            let name = String::decode(r)?;
            gauges.push((name, r.u64()? as i64));
        }
        let n = r.len_prefix(24)?;
        let mut labeled = Vec::with_capacity(n);
        for _ in 0..n {
            let name = String::decode(r)?;
            let label = r.u64()?;
            labeled.push((name, label, r.u64()?));
        }
        let n = r.len_prefix(HistSnapshot::MIN_WIRE_BYTES)?;
        let mut hists = Vec::with_capacity(n);
        for _ in 0..n {
            hists.push(HistSnapshot::decode(r)?);
        }
        let n = r.len_prefix(EventSnapshot::MIN_WIRE_BYTES)?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(EventSnapshot::decode(r)?);
        }
        Ok(MetricsSnapshot {
            session_ms,
            counters,
            gauges,
            labeled,
            hists,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_roundtrips() {
        let s = MetricsSnapshot::default();
        let bytes = s.encode_framed();
        assert_eq!(MetricsSnapshot::decode_framed(&bytes).unwrap(), s);
    }

    #[test]
    fn bad_bucket_order_rejected() {
        let h = HistSnapshot {
            name: "sss_ingest_batch_size".into(),
            sum: 3,
            buckets: vec![(2, 1), (1, 1)],
        };
        let mut out = Vec::new();
        h.encode_into(&mut out);
        let err = HistSnapshot::decode(&mut Reader::new(&out)).unwrap_err();
        assert!(matches!(err, CodecError::Invalid { .. }), "{err:?}");
    }
}
