//! Render surfaces: Prometheus text exposition and JSON.
//!
//! Both render a [`MetricsSnapshot`] — live registry or one decoded
//! off the wire — so a collector shows its own telemetry and each
//! site's pushed telemetry through the same code. The optional `site`
//! argument stamps every series with a `site="<id>"` label, which is
//! how per-site snapshots stay distinguishable on one scrape page.
//!
//! Prometheus specifics: `# HELP`/`# TYPE` come from the metric table
//! ([`MetricId::by_name`]); names the table doesn't know (a newer
//! site build) render as bare untyped series. Histograms expose
//! cumulative `_bucket{le="..."}` series at the log2 boundaries that
//! actually hold observations, plus `+Inf`, `_sum` and `_count`.

use crate::names::MetricId;
use crate::registry::bucket_upper;
use crate::wire::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The `{...}` label set for one series: the optional outer site
/// label, then the metric's own label row, then `le` for histogram
/// buckets. Returns an empty string when there are no labels.
fn label_set(site: Option<u64>, own: Option<(&str, u64)>, le: Option<&str>) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(id) = site {
        // A site-keyed row inside a site-stamped snapshot keeps its
        // own key — two `site` labels would be malformed.
        if own.is_none_or(|(k, _)| k != "site") {
            parts.push(format!("site=\"{id}\""));
        }
    }
    if let Some((k, v)) = own {
        parts.push(format!("{k}=\"{v}\""));
    }
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn push_meta(out: &mut String, name: &str) {
    if let Some(id) = MetricId::by_name(name) {
        let _ = writeln!(out, "# HELP {name} {}", id.help());
        let _ = writeln!(out, "# TYPE {name} {}", id.kind().prom_type());
    }
}

/// Render a snapshot as Prometheus text exposition (format 0.0.4).
pub fn render_prometheus(s: &MetricsSnapshot, site: Option<u64>) -> String {
    let mut labeled: BTreeMap<&str, Vec<(u64, u64)>> = BTreeMap::new();
    for (name, label, value) in &s.labeled {
        labeled.entry(name).or_default().push((*label, *value));
    }
    let mut out = String::new();

    let scalar = |out: &mut String, name: &str, plain: String| {
        push_meta(out, name);
        if let Some(rows) = labeled.get(name) {
            let key = MetricId::by_name(name).map_or("label", |id| id.label_key());
            for (label, value) in rows {
                let ls = label_set(site, Some((key, *label)), None);
                let _ = writeln!(out, "{name}{ls} {value}");
            }
        } else {
            let ls = label_set(site, None, None);
            let _ = writeln!(out, "{name}{ls} {plain}");
        }
    };
    for (name, v) in &s.counters {
        scalar(&mut out, name, v.to_string());
    }
    for (name, v) in &s.gauges {
        scalar(&mut out, name, v.to_string());
    }
    // Labeled rows whose name is not a table counter/gauge (telemetry
    // from a newer build): untyped, but not silently dropped.
    for (name, rows) in &labeled {
        if s.counters.iter().any(|(n, _)| n == name) || s.gauges.iter().any(|(n, _)| n == name) {
            continue;
        }
        for (label, value) in rows {
            let ls = label_set(site, Some(("label", *label)), None);
            let _ = writeln!(out, "{name}{ls} {value}");
        }
    }

    for h in &s.hists {
        push_meta(&mut out, &h.name);
        let mut cum = 0u64;
        for (i, c) in &h.buckets {
            cum = cum.saturating_add(*c);
            let upper = bucket_upper(usize::from(*i)).to_string();
            let ls = label_set(site, None, Some(&upper));
            let _ = writeln!(out, "{}_bucket{ls} {cum}", h.name);
        }
        let inf = label_set(site, None, Some("+Inf"));
        let plain = label_set(site, None, None);
        let _ = writeln!(out, "{}_bucket{inf} {}", h.name, h.count());
        let _ = writeln!(out, "{}_sum{plain} {}", h.name, h.sum);
        let _ = writeln!(out, "{}_count{plain} {}", h.name, h.count());
    }
    out
}

/// Render a snapshot as a self-contained JSON object.
pub fn render_json(s: &MetricsSnapshot, site: Option<u64>) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"session_ms\":{}", s.session_ms);
    if let Some(id) = site {
        let _ = write!(out, ",\"site\":{id}");
    }

    out.push_str(",\"counters\":{");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", json_escape(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", json_escape(name));
    }
    out.push_str("},\"labeled\":[");
    for (i, (name, label, v)) in s.labeled.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let key = MetricId::by_name(name).map_or("label", |id| id.label_key());
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"{key}\":{label},\"value\":{v}}}",
            json_escape(name)
        );
    }
    out.push_str("],\"histograms\":[");
    for (i, h) in s.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
            json_escape(&h.name),
            h.count(),
            h.sum
        );
        for (j, (idx, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{idx},{c}]");
        }
        out.push_str("]}");
    }
    out.push_str("],\"events\":[");
    for (i, e) in s.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"at_ms\":{},\"kind\":\"{}\",\"a\":{},\"b\":{},\"note\":\"{}\"}}",
            e.at_ms,
            json_escape(&e.kind),
            e.a,
            e.b,
            json_escape(&e.note)
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::MetricId;

    #[test]
    fn prometheus_renders_typed_series() {
        let r = Registry::new();
        r.add(MetricId::IngestItemsTotal, 5);
        r.observe(MetricId::IngestBatchSize, 4);
        let text = render_prometheus(&r.snapshot(), None);
        assert!(text.contains("# TYPE sss_ingest_items_total counter"));
        assert!(text.contains("sss_ingest_items_total 5"));
        assert!(text.contains("sss_ingest_batch_size_bucket{le=\"7\"} 1"));
        assert!(text.contains("sss_ingest_batch_size_sum 4"));
        assert!(text.contains("sss_ingest_batch_size_count 1"));
    }

    #[test]
    fn site_label_stamps_every_series() {
        let r = Registry::new();
        r.add(MetricId::IngestItemsTotal, 1);
        let text = render_prometheus(&r.snapshot(), Some(9));
        assert!(text.contains("sss_ingest_items_total{site=\"9\"} 1"));
    }

    #[test]
    fn json_escapes_notes() {
        let r = Registry::new();
        r.event(crate::EventKind::AlertFired, 1, 0, "line\"one\"\n");
        let json = render_json(&r.snapshot(), None);
        assert!(json.contains("\\\"one\\\"\\n"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
