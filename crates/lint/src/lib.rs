//! `sss-lint` — in-house static analysis for the subsampled-streams
//! workspace.
//!
//! The compiler cannot check the invariants this codebase actually
//! lives on: decode paths must never panic or over-allocate on
//! untrusted bytes, merges and encodes must iterate canonically so
//! folds are bitwise-equal, float ordering must survive NaN, and the
//! wire-tag registry must stay globally consistent. `sss-lint` is a
//! dependency-free lexer + per-rule token passes (no external parser —
//! the build environment has no registry access) that enforces exactly
//! those rules.
//!
//! Use it two ways:
//!
//! - CLI gate: `cargo run -p sss-lint -- --workspace` (exits non-zero
//!   on any violation; CI runs this as the `lint` job);
//! - library: `lint_workspace(root)` from a tier-1 test, so plain
//!   `cargo test -q` catches regressions without CI.
//!
//! Audited exceptions are spelled in the source:
//! `// sss-lint: allow(<rule>) — <reason>`.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod scan;

use scan::{FileKind, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{
    FixtureManifest, LintOptions, Violation, ALL_RULES, RULE_ALLOC, RULE_ATOMIC, RULE_BATCH,
    RULE_ITER, RULE_METRICS, RULE_NAN, RULE_NO_PANIC, RULE_TAGS,
};

/// Everything the rule passes need: parsed sources plus fixture
/// manifests.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub manifests: Vec<FixtureManifest>,
}

/// Run every rule over an in-memory workspace. This is the entry the
/// fixture tests use: hand-built `SourceFile`s, optional manifests,
/// options gating the workspace-level checks.
pub fn lint(ws: &Workspace, opts: &LintOptions) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.files {
        rules::check_no_panic(f, &mut out);
        rules::check_bounded_alloc(f, &mut out);
        rules::check_nan_ordering(f, &mut out);
        rules::check_canonical_iteration(f, &mut out);
        rules::check_batch_kernel(f, &mut out);
        rules::check_atomic_ordering(f, &mut out);
    }
    rules::check_wire_tags(&ws.files, &ws.manifests, opts, &mut out);
    rules::check_metric_registry(&ws.files, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Parse loose (crate name, path, source) inputs and lint them with
/// `opts`. Convenience for per-rule fixture tests that do not want a
/// real directory tree.
pub fn lint_sources(sources: &[(&str, &str, &str)], opts: &LintOptions) -> Vec<Violation> {
    let files = sources
        .iter()
        .map(|(krate, path, text)| {
            SourceFile::parse(krate, PathBuf::from(path), FileKind::Lib, text)
        })
        .collect();
    lint(
        &Workspace {
            files,
            manifests: Vec::new(),
        },
        opts,
    )
}

/// Load the real workspace rooted at `root` and lint it with default
/// options.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let ws = load_workspace(root)?;
    Ok(lint(&ws, &LintOptions::default()))
}

/// Discover and parse workspace sources: every `crates/*/src/**/*.rs`
/// (crate names read from each `Cargo.toml`), the root facade `src/`,
/// and `examples/`. Fixture manifests come from the newest
/// `tests/fixtures/wire_v<N>/manifest.tsv`.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let name = package_name(&fs::read_to_string(&manifest)?).unwrap_or_else(|| {
            dir.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        });
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut |p| {
                let kind = if p.components().any(|c| c.as_os_str() == "bin") {
                    FileKind::BenchBin
                } else {
                    FileKind::Lib
                };
                push_file(root, &name, p, kind, &mut files)
            })?;
        }
    }

    // Root facade crate.
    let root_src = root.join("src");
    if root_src.is_dir() {
        let name = package_name(&fs::read_to_string(root.join("Cargo.toml"))?)
            .unwrap_or_else(|| "subsampled-streams".to_string());
        collect_rs(&root_src, &mut |p| {
            push_file(root, &name, p, FileKind::Lib, &mut files)
        })?;
    }

    // Examples.
    let examples = root.join("examples");
    if examples.is_dir() {
        collect_rs(&examples, &mut |p| {
            push_file(root, "examples", p, FileKind::Example, &mut files)
        })?;
    }

    // Fixture corpora: only the newest wire version is the live
    // coverage target; frozen older corpora are exempt.
    let mut manifests = Vec::new();
    let fixtures = root.join("tests").join("fixtures");
    if fixtures.is_dir() {
        let mut best: Option<(u64, PathBuf)> = None;
        for e in fs::read_dir(&fixtures)?.filter_map(|e| e.ok()) {
            let p = e.path();
            let Some(fname) = p.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(v) = fname
                .strip_prefix("wire_v")
                .and_then(|v| v.parse::<u64>().ok())
            else {
                continue;
            };
            let m = p.join("manifest.tsv");
            if m.is_file() && best.as_ref().is_none_or(|(bv, _)| v > *bv) {
                best = Some((v, m));
            }
        }
        if let Some((_, m)) = best {
            manifests.push(parse_manifest(root, &m)?);
        }
    }

    Ok(Workspace { files, manifests })
}

fn push_file(
    root: &Path,
    krate: &str,
    path: &Path,
    kind: FileKind,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let text = fs::read_to_string(path)?;
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    files.push(SourceFile::parse(krate, rel, kind, &text));
    Ok(())
}

/// Recursively visit `.rs` files under `dir` in sorted order.
fn collect_rs(dir: &Path, f: &mut dyn FnMut(&Path) -> io::Result<()>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, f)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            f(&p)?;
        }
    }
    Ok(())
}

/// Pull `name = "..."` out of a `[package]` section without a TOML
/// parser.
fn package_name(toml: &str) -> Option<String> {
    let mut in_package = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start().strip_prefix('=')?.trim();
            return Some(rest.trim_matches('"').to_string());
        }
    }
    None
}

/// Parse a fixture `manifest.tsv`: tab-separated
/// `name  wire_tag  estimate_bits  samples_seen  bytes` rows, `#`
/// comments.
fn parse_manifest(root: &Path, path: &Path) -> io::Result<FixtureManifest> {
    let text = fs::read_to_string(path)?;
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let (Some(name), Some(tag)) = (cols.next(), cols.next()) else {
            continue;
        };
        let tag = tag.trim();
        let parsed = tag
            .strip_prefix("0x")
            .or_else(|| tag.strip_prefix("0X"))
            .and_then(|h| u16::from_str_radix(h, 16).ok())
            .or_else(|| tag.parse().ok());
        if let Some(t) = parsed {
            entries.push((name.to_string(), t));
        }
    }
    Ok(FixtureManifest {
        path: path.strip_prefix(root).unwrap_or(path).to_path_buf(),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses() {
        let toml = "[package]\nname = \"sss-codec\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(toml).as_deref(), Some("sss-codec"));
    }

    #[test]
    fn package_name_ignores_other_sections() {
        let toml = "[lib]\nname = \"wrong\"\n[package]\nname = \"right\"\n";
        assert_eq!(package_name(toml).as_deref(), Some("right"));
    }

    #[test]
    fn lint_sources_clean_on_trivial_input() {
        let opts = LintOptions {
            require_registry: false,
            toplevel_types: Vec::new(),
        };
        let v = lint_sources(
            &[("sss-x", "x.rs", "fn add(a: u64, b: u64) -> u64 { a + b }\n")],
            &opts,
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
