//! Source-file model: lex a file, map `sss-lint: allow(...)` pragmas to
//! the lines they bless, mark `#[cfg(test)]` / `#[test]` regions, and
//! extract items (functions with their impl context, `const`
//! definitions) for the rule passes.

use crate::lexer::{lex, Comment, Token};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

/// Where a file sits in the workspace — some rules scope by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A crate's library source (`crates/*/src/**`, root `src/`).
    Lib,
    /// An example (`examples/*.rs`).
    Example,
    /// A bench/experiment binary (`crates/bench/src/bin/*.rs`).
    BenchBin,
}

/// A function item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Normalized self type of the enclosing `impl`, if any
    /// (e.g. `Reader`, `SampledFkEstimator<ExactCollisions>`).
    pub impl_type: Option<String>,
    /// Token range of the parameter list (inside the parens).
    pub params: (usize, usize),
    /// Token range of the body (inside the braces); `None` for
    /// body-less trait methods.
    pub body: Option<(usize, usize)>,
    /// Whether the function sits in test-only code.
    pub is_test: bool,
}

/// A `const NAME: TYPE = ...;` item found in a file.
#[derive(Debug, Clone)]
pub struct ConstItem {
    pub name: String,
    /// The annotated type's tokens joined (`u16`, `usize`, ...).
    pub ty: String,
    /// Token range of the initializer (between `=` and `;`).
    pub value: (usize, usize),
    pub impl_type: Option<String>,
    pub line: usize,
    pub is_test: bool,
}

/// One lexed-and-scanned source file.
pub struct SourceFile {
    /// Workspace-relative path (for reporting).
    pub path: PathBuf,
    /// Cargo package name owning the file (`sss-codec`, ...).
    pub crate_name: String,
    pub kind: FileKind,
    pub tokens: Vec<Token>,
    /// Rules blessed per line by `sss-lint: allow(rule)` pragmas.
    pub allows: HashMap<usize, HashSet<String>>,
    /// Token-index ranges inside `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(usize, usize)>,
    pub fns: Vec<FnItem>,
    pub consts: Vec<ConstItem>,
}

impl SourceFile {
    /// Lex and scan one file.
    pub fn parse(crate_name: &str, path: PathBuf, kind: FileKind, src: &str) -> SourceFile {
        let (tokens, comments) = lex(src);
        let allows = pragma_lines(&comments, &tokens);
        let test_ranges = find_test_ranges(&tokens);
        let mut file = SourceFile {
            path,
            crate_name: crate_name.to_string(),
            kind,
            tokens,
            allows,
            test_ranges,
            fns: Vec::new(),
            consts: Vec::new(),
        };
        scan_items(&mut file);
        file
    }

    /// Whether the token at `idx` lies in test-only code.
    pub fn is_test_tok(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx < b)
    }

    /// Whether `rule` is blessed on `line` by a pragma.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows.get(&line).is_some_and(|s| s.contains(rule))
    }
}

/// Map pragma comments to the lines they bless: a trailing comment
/// blesses its own line; a standalone comment blesses the next line
/// that carries a token (so it can sit right above the flagged
/// statement, across blank lines).
fn pragma_lines(comments: &[Comment], tokens: &[Token]) -> HashMap<usize, HashSet<String>> {
    let mut out: HashMap<usize, HashSet<String>> = HashMap::new();
    for c in comments {
        let Some(rules) = parse_pragma(&c.text) else {
            continue;
        };
        let target = if c.own_line {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line + 1)
        } else {
            c.line
        };
        out.entry(target).or_default().extend(rules.clone());
        // A pragma also blesses its own comment line, so trailing and
        // standalone placement both work without thinking about it.
        out.entry(c.line).or_default().extend(rules);
    }
    out
}

/// Parse `sss-lint: allow(rule_a, rule_b) — reason` out of a comment.
/// Returns `None` when the comment is not a pragma.
fn parse_pragma(text: &str) -> Option<Vec<String>> {
    let idx = text.find("sss-lint:")?;
    let rest = text[idx + "sss-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let end = rest.find(')')?;
    let rules: Vec<String> = rest[..end]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Find token ranges covered by `#[cfg(test)]` / `#[test]` items: from
/// the attribute, the range of the next brace block — unless a `;`
/// intervenes (a non-block item like `#[cfg(test)] use x;`).
fn find_test_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            // Attribute body to the matching ']'.
            let close = match matching(toks, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            let is_test_attr = toks[i + 2..close].iter().any(|t| t.is_ident("test"))
                && (toks[i + 2..close].iter().any(|t| t.is_ident("cfg")) || close == i + 3);
            if is_test_attr {
                // Scan forward to the item's block, bailing on `;`.
                let mut j = close + 1;
                let mut ok = true;
                while j < toks.len() && !toks[j].is_punct('{') {
                    if toks[j].is_punct(';') {
                        ok = false;
                        break;
                    }
                    j += 1;
                }
                if ok && j < toks.len() {
                    if let Some(end) = matching(toks, j, '{', '}') {
                        out.push((i, end + 1));
                        i = end + 1;
                        continue;
                    }
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Index of the token closing the bracket opened at `open_idx`.
pub fn matching(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Walk the token stream collecting `fn` and `const` items, tracking
/// the enclosing `impl` self type via a depth stack.
fn scan_items(file: &mut SourceFile) {
    let toks = &file.tokens;
    let mut fns = Vec::new();
    let mut consts = Vec::new();
    // (brace depth at which the impl body opened, normalized self type)
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while impl_stack.last().is_some_and(|&(d, _)| d > depth) {
                impl_stack.pop();
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((ty, body_open)) = parse_impl_header(toks, i) {
                impl_stack.push((depth + 1, ty));
                depth += 1;
                i = body_open + 1;
                continue;
            }
        }
        if t.is_ident("fn") && i + 1 < toks.len() {
            if let Some(item) = parse_fn(file, toks, i, impl_stack.last().map(|(_, ty)| ty.clone()))
            {
                // Descend into the body for nested items, accounting
                // for its '{'; body-less fns resume after the params.
                let next = match item.body {
                    Some((start, _)) => {
                        depth += 1;
                        start
                    }
                    None => item.params.1 + 1,
                };
                fns.push(item);
                i = next;
                continue;
            }
        }
        if t.is_ident("const") && i + 1 < toks.len() {
            if let Some((item, after)) = parse_const(file, toks, i, &impl_stack) {
                consts.push(item);
                i = after;
                continue;
            }
        }
        i += 1;
    }
    file.fns = fns;
    file.consts = consts;
}

/// Parse an `impl` header at `i`; returns (normalized self type, index
/// of the body `{`).
fn parse_impl_header(toks: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip `<...>` generics (shift-free balancing: `>` closes one level).
    if j < toks.len() && toks[j].is_punct('<') {
        let mut d = 0i64;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                d += 1;
            } else if toks[j].is_punct('>') {
                d -= 1;
                if d == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // First path: to `for`, `where` or `{`.
    let first_start = j;
    let mut for_at = None;
    while j < toks.len() && !toks[j].is_punct('{') {
        if toks[j].is_ident("for") {
            for_at = Some(j);
            break;
        }
        if toks[j].is_ident("where") {
            break;
        }
        if toks[j].is_punct(';') {
            return None;
        }
        j += 1;
    }
    let (ty_start, ty_end_scan) = match for_at {
        Some(f) => (f + 1, toks.len()),
        None => (first_start, j),
    };
    let mut k = ty_start;
    let mut end = ty_end_scan.min(toks.len());
    if for_at.is_some() {
        while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_ident("where") {
            k += 1;
        }
        end = k;
        k = ty_start;
    }
    // Find the body '{'.
    let mut body = end;
    while body < toks.len() && !toks[body].is_punct('{') {
        if toks[body].is_punct(';') {
            return None;
        }
        body += 1;
    }
    if body >= toks.len() {
        return None;
    }
    Some((normalize_type(&toks[k..end]), body))
}

/// Normalize a type token run to `Base<Arg,Arg>` form: path prefixes
/// (`crate::collisions::ExactCollisions`) collapse to their last
/// segment, lifetimes and whitespace drop out.
pub fn normalize_type(toks: &[Token]) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == crate::lexer::TokKind::Ident {
            // Collapse `a::b::c` to `c`.
            let mut last = t.text.clone();
            let mut j = i + 1;
            while j + 1 < toks.len()
                && toks[j].is_punct(':')
                && toks[j + 1].is_punct(':')
                && j + 2 < toks.len()
                && toks[j + 2].kind == crate::lexer::TokKind::Ident
            {
                last = toks[j + 2].text.clone();
                j += 3;
            }
            // `X as Trait` casts inside qualified paths: keep X, drop the trait.
            if last == "as" {
                i = j;
                continue;
            }
            parts.push(last);
            i = j;
            continue;
        }
        if t.is_punct('<') || t.is_punct('>') || t.is_punct(',') {
            parts.push(t.text.clone());
        }
        i += 1;
    }
    // Drop a trailing `as Trait` trait name that followed the base type
    // inside `<X as Trait>` — the normalized parts would be X Trait.
    let joined = parts.join("\u{0}");
    let cleaned: Vec<&str> = joined.split('\u{0}').filter(|s| !s.is_empty()).collect();
    let mut out = String::new();
    let mut k = 0usize;
    while k < cleaned.len() {
        if cleaned[k] == "WireCodec" && k > 0 {
            k += 1;
            continue;
        }
        out.push_str(cleaned[k]);
        k += 1;
    }
    // Lifetime-only generics leave empty brackets (`Reader<'a>` →
    // `Reader<>`); drop them.
    while let Some(p) = out.find("<>") {
        out.replace_range(p..p + 2, "");
    }
    out
}

/// Parse a `fn` item at `i`.
fn parse_fn(
    file: &SourceFile,
    toks: &[Token],
    i: usize,
    impl_type: Option<String>,
) -> Option<FnItem> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != crate::lexer::TokKind::Ident {
        return None;
    }
    // Find the parameter '(' (skipping generics).
    let mut j = i + 2;
    if j < toks.len() && toks[j].is_punct('<') {
        let mut d = 0i64;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                d += 1;
            } else if toks[j].is_punct('>') {
                d -= 1;
                if d == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    if j >= toks.len() || !toks[j].is_punct('(') {
        return None;
    }
    let params_close = matching(toks, j, '(', ')')?;
    // Body '{' or trait-method ';'.
    let mut k = params_close + 1;
    let mut body = None;
    while k < toks.len() {
        if toks[k].is_punct(';') {
            break;
        }
        if toks[k].is_punct('{') {
            let close = matching(toks, k, '{', '}')?;
            body = Some((k + 1, close));
            break;
        }
        k += 1;
    }
    Some(FnItem {
        name: name_tok.text.clone(),
        impl_type,
        params: (j + 1, params_close),
        body,
        is_test: file.is_test_tok(i),
    })
}

/// Parse a `const NAME: TYPE = VALUE;` item at `i`; returns the item
/// and the index just past the `;`.
fn parse_const(
    file: &SourceFile,
    toks: &[Token],
    i: usize,
    impl_stack: &[(usize, String)],
) -> Option<(ConstItem, usize)> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != crate::lexer::TokKind::Ident {
        return None; // `const fn`, `*const`, ...
    }
    if !toks.get(i + 2)?.is_punct(':') {
        return None;
    }
    let mut j = i + 3;
    let ty_start = j;
    while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
        j += 1;
    }
    if j >= toks.len() || !toks[j].is_punct('=') {
        return None;
    }
    let ty: String = toks[ty_start..j]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join("");
    let val_start = j + 1;
    let mut k = val_start;
    let mut d = 0i64;
    while k < toks.len() {
        if toks[k].is_punct('{') || toks[k].is_punct('[') || toks[k].is_punct('(') {
            d += 1;
        } else if toks[k].is_punct('}') || toks[k].is_punct(']') || toks[k].is_punct(')') {
            d -= 1;
        } else if toks[k].is_punct(';') && d == 0 {
            break;
        }
        k += 1;
    }
    Some((
        ConstItem {
            name: name_tok.text.clone(),
            ty,
            value: (val_start, k),
            impl_type: impl_stack.last().map(|(_, t)| t.clone()),
            line: name_tok.line,
            is_test: file.is_test_tok(i),
        },
        k.saturating_add(1),
    ))
}

/// Split a token range into pseudo-statements: maximal runs between
/// `;`, `{` and `}` at any depth. Fine-grained on purpose — an `if`
/// condition, a `for` header and each plain statement all become their
/// own run, which is the granularity the guard heuristics want.
pub fn statements(toks: &[Token], range: (usize, usize)) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = range.0;
    for (j, tok) in toks.iter().enumerate().take(range.1).skip(range.0) {
        if tok.is_punct(';') || tok.is_punct('{') || tok.is_punct('}') {
            if j > start {
                out.push((start, j));
            }
            start = j + 1;
        }
    }
    if range.1 > start {
        out.push((start, range.1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("sss-test", PathBuf::from("test.rs"), FileKind::Lib, src)
    }

    #[test]
    fn finds_fns_with_impl_context() {
        let f = parse(
            "impl WireCodec for SampledFkEstimator<crate::c::ExactCollisions> {\n\
             fn decode(r: &mut Reader) -> Result<Self, E> { inner() }\n\
             }\n\
             fn free() {}\n",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "decode");
        assert_eq!(
            f.fns[0].impl_type.as_deref(),
            Some("SampledFkEstimator<ExactCollisions>")
        );
        assert_eq!(f.fns[1].name, "free");
        assert_eq!(f.fns[1].impl_type, None);
    }

    #[test]
    fn qualified_impl_and_const_tags() {
        let f = parse(
            "impl Reader {\n\
             pub const LIMIT: usize = 4;\n\
             }\n\
             impl WireCodec for Monitor { const WIRE_TAG: u16 = 0x040E; }\n",
        );
        let tag = f.consts.iter().find(|c| c.name == "WIRE_TAG").unwrap();
        assert_eq!(tag.ty, "u16");
        assert_eq!(tag.impl_type.as_deref(), Some("Monitor"));
        let lim = f.consts.iter().find(|c| c.name == "LIMIT").unwrap();
        assert_eq!(lim.impl_type.as_deref(), Some("Reader"));
    }

    #[test]
    fn test_regions_marked() {
        let f = parse(
            "fn lib_code() {}\n\
             #[cfg(test)]\nmod tests {\n fn helper() {}\n #[test]\n fn case() {}\n}\n",
        );
        let lib = f.fns.iter().find(|x| x.name == "lib_code").unwrap();
        assert!(!lib.is_test);
        for name in ["helper", "case"] {
            let t = f.fns.iter().find(|x| x.name == name).unwrap();
            assert!(t.is_test, "{name} should be test code");
        }
    }

    #[test]
    fn cfg_test_on_use_item_does_not_swallow_the_file() {
        let f = parse("#[cfg(test)]\nuse std::x;\nfn real() {}\n");
        let real = f.fns.iter().find(|x| x.name == "real").unwrap();
        assert!(!real.is_test);
    }

    #[test]
    fn pragmas_bless_their_line_and_the_next() {
        let f = parse(
            "// sss-lint: allow(no_panic_decode) — audited\n\
             fn a() { x.unwrap(); }\n\
             fn b() { y.unwrap(); } // sss-lint: allow(no_panic_decode, other) — ok\n",
        );
        assert!(f.allowed(2, "no_panic_decode"));
        assert!(f.allowed(3, "no_panic_decode"));
        assert!(f.allowed(3, "other"));
        assert!(!f.allowed(2, "other"));
    }

    #[test]
    fn alias_const_rhs_normalizes() {
        let f = parse(
            "const FK: u16 = <SampledFkEstimator<crate::collisions::ExactCollisions> as WireCodec>::WIRE_TAG;\n",
        );
        let c = &f.consts[0];
        let norm = normalize_type(&f.tokens[c.value.0..c.value.1]);
        assert!(
            norm.contains("SampledFkEstimator<ExactCollisions>"),
            "{norm}"
        );
    }

    #[test]
    fn statements_split_on_semis_and_braces() {
        let f = parse("fn x() { let a = 1; if a > 2 { b(); } c(); }");
        let body = f.fns[0].body.unwrap();
        let stmts = statements(&f.tokens, body);
        assert_eq!(stmts.len(), 4);
    }
}
