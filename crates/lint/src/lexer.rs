//! A lightweight Rust lexer — just enough tokenization for the rule
//! passes: identifiers, numeric/string/char literals, lifetimes and
//! single-character punctuation, each stamped with its 1-based source
//! line. Comments are not tokens; they are collected on the side so the
//! pragma pass ([`crate::scan`]) can map `// sss-lint: allow(...)`
//! comments to the lines they bless.
//!
//! The lexer is deliberately lossy (no spans inside a line, no keyword
//! classification, multi-character operators arrive as single `Punct`
//! chars) — every rule works on token *sequences*, and `>>` arriving as
//! two `>` tokens is exactly what makes nested-generic bracket matching
//! trivial.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `decode`, `MAX_WINDOW_BUCKETS`, ...).
    Ident,
    /// Numeric literal, text preserved (`0x0601`, `1_000`, `2.5e-3`).
    Num,
    /// String literal of any flavour (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// One punctuation character (`.`, `[`, `>`, ...).
    Punct,
}

/// One lexeme with its source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// A comment captured during lexing, for pragma extraction.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Line the comment starts on.
    pub line: usize,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// Whether any token was emitted earlier on the same line (a
    /// trailing comment blesses its own line; a standalone comment
    /// blesses the next token-bearing line).
    pub own_line: bool,
}

/// Lex `src` into tokens plus the side list of comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let bytes: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut last_tok_line = 0usize;
    let n = bytes.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && bytes[j] != '\n' {
                j += 1;
            }
            comments.push(Comment {
                line,
                text: bytes[start..j].iter().collect(),
                own_line: last_tok_line != line,
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let start_line = line;
            let own = last_tok_line != line;
            let mut depth = 1usize;
            let mut j = i + 2;
            let text_start = j;
            while j < n && depth > 0 {
                if bytes[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let text_end = j.saturating_sub(2).max(text_start);
            comments.push(Comment {
                line: start_line,
                text: bytes[text_start..text_end].iter().collect(),
                own_line: own,
            });
            i = j;
            continue;
        }
        // Raw strings and raw identifiers: r"...", r#"..."#, r#ident, br#"..."#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (r_at, prefix_len) = if c == 'r' {
                (i, 1)
            } else if bytes[i + 1] == 'r' && i + 2 < n {
                (i + 1, 2)
            } else {
                (usize::MAX, 0)
            };
            if r_at != usize::MAX {
                let mut j = r_at + 1;
                let mut hashes = 0usize;
                while j < n && bytes[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && bytes[j] == '"' {
                    // Raw string: scan for `"` followed by `hashes` #s.
                    let tok_line = line;
                    j += 1;
                    let body_start = j;
                    'scan: while j < n {
                        if bytes[j] == '\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if bytes[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < n && bytes[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                let body: String = bytes[body_start..j].iter().collect();
                                toks.push(Token {
                                    kind: TokKind::Str,
                                    text: body,
                                    line: tok_line,
                                });
                                last_tok_line = tok_line;
                                j += 1 + hashes;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                if hashes == 1 && j < n && is_ident_start(bytes[j]) && prefix_len == 1 {
                    // Raw identifier r#ident.
                    let mut k = j;
                    while k < n && is_ident_cont(bytes[k]) {
                        k += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::Ident,
                        text: bytes[j..k].iter().collect(),
                        line,
                    });
                    last_tok_line = line;
                    i = k;
                    continue;
                }
            }
        }
        // Byte char / byte string prefix: b'...', b"...".
        if c == 'b' && i + 1 < n && (bytes[i + 1] == '\'' || bytes[i + 1] == '"') {
            i += 1;
            // Fall through to the string/char cases below on the quote.
            let q = bytes[i];
            if q == '"' {
                let (j, nl) = scan_string(&bytes, i + 1);
                toks.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                last_tok_line = line;
                line += nl;
                i = j;
            } else {
                let j = scan_char(&bytes, i + 1);
                toks.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                last_tok_line = line;
                i = j;
            }
            continue;
        }
        if c == '"' {
            let (j, nl) = scan_string(&bytes, i + 1);
            toks.push(Token {
                kind: TokKind::Str,
                text: bytes[i + 1..j.saturating_sub(1).max(i + 1)]
                    .iter()
                    .collect(),
                line,
            });
            last_tok_line = line;
            line += nl;
            i = j;
            continue;
        }
        if c == '\'' {
            // Lifetime vs char literal: `'ident` not closed by `'` is a
            // lifetime; everything else is a char literal.
            if i + 1 < n
                && is_ident_start(bytes[i + 1])
                && !(i + 2 < n && bytes[i + 2] == '\'' && bytes[i + 1] != '\\')
            {
                let mut j = i + 1;
                while j < n && is_ident_cont(bytes[j]) {
                    j += 1;
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    text: bytes[i + 1..j].iter().collect(),
                    line,
                });
                last_tok_line = line;
                i = j;
                continue;
            }
            let j = scan_char(&bytes, i + 1);
            toks.push(Token {
                kind: TokKind::Char,
                text: String::new(),
                line,
            });
            last_tok_line = line;
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n && (is_ident_cont(bytes[j])) {
                j += 1;
            }
            // Float continuation: `1.5`, `1.5e-3` (but not `1..` or `1.method()`).
            if j < n && bytes[j] == '.' && j + 1 < n && bytes[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && is_ident_cont(bytes[j]) {
                    j += 1;
                }
            }
            // Exponent sign: `1e-5` leaves us on '-' after consuming 'e'.
            if j < n
                && (bytes[j] == '-' || bytes[j] == '+')
                && j > i
                && (bytes[j - 1] == 'e' || bytes[j - 1] == 'E')
                && j + 1 < n
                && bytes[j + 1].is_ascii_digit()
            {
                j += 1;
                while j < n && is_ident_cont(bytes[j]) {
                    j += 1;
                }
            }
            toks.push(Token {
                kind: TokKind::Num,
                text: bytes[i..j].iter().collect(),
                line,
            });
            last_tok_line = line;
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i;
            while j < n && is_ident_cont(bytes[j]) {
                j += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: bytes[i..j].iter().collect(),
                line,
            });
            last_tok_line = line;
            i = j;
            continue;
        }
        toks.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        last_tok_line = line;
        i += 1;
    }
    (toks, comments)
}

/// Scan a (non-raw) string body starting after the opening quote;
/// returns (index after the closing quote, newlines crossed).
fn scan_string(bytes: &[char], mut j: usize) -> (usize, usize) {
    let n = bytes.len();
    let mut newlines = 0usize;
    while j < n {
        match bytes[j] {
            '\\' => j += 2,
            '"' => return (j + 1, newlines),
            '\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// Scan a char literal body starting after the opening quote; returns
/// the index after the closing quote.
fn scan_char(bytes: &[char], mut j: usize) -> usize {
    let n = bytes.len();
    while j < n {
        match bytes[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let (toks, comments) = lex("fn f() {\n  x.unwrap() // note\n}\n");
        assert!(toks.iter().any(|t| t.is_ident("unwrap") && t.line == 2));
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 2);
        assert!(!comments[0].own_line);
        assert_eq!(comments[0].text.trim(), "note");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let (toks, _) = lex("impl<'a> X<'a> { fn f() -> char { 'x' } }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn strings_rawstrings_and_escapes() {
        let (toks, _) = lex(r####"let s = "a\"b"; let r = r#"raw "x" ok"#; let b = b"bytes";"####);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 3);
        // No brace/bracket tokens leaked out of string bodies.
        assert!(!toks.iter().any(|t| t.is_punct('#')));
    }

    #[test]
    fn numbers_including_hex_and_floats() {
        let (toks, _) = lex("const T: u16 = 0x0601; let x = 2.5e-3; let r = 1..10;");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0x0601", "2.5e-3", "1", "10"]);
    }

    #[test]
    fn nested_block_comments_and_own_line() {
        let (toks, comments) =
            lex("/* outer /* inner */ still */ fn g() {}\n// standalone\nlet x = 1;");
        assert!(toks.iter().any(|t| t.is_ident("g")));
        assert_eq!(comments.len(), 2);
        assert!(comments[0].own_line);
        assert!(comments[1].own_line);
    }

    #[test]
    fn raw_idents() {
        assert!(idents("let r#type = 1;").contains(&"type".to_string()));
    }
}
