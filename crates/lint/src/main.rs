//! CLI for `sss-lint`: `cargo run -p sss-lint -- --workspace`.
//!
//! Walks the workspace (rooted at `--root`, default: the nearest
//! ancestor containing `crates/`), runs every rule, prints one
//! `file:line: rule: message` per violation and exits 1 if any fired.
//! `-D` semantics are the only semantics: there are no warnings.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut workspace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("sss-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sss-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for r in sss_lint::ALL_RULES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }
    if !workspace {
        print_help();
        return ExitCode::from(2);
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("sss-lint: no workspace root found (looked for a `crates/` dir); use --root");
            return ExitCode::from(2);
        }
    };

    match sss_lint::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "sss-lint: workspace clean ({} rules)",
                sss_lint::ALL_RULES.len()
            );
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("sss-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sss-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Nearest ancestor of the current directory containing `crates/`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn print_help() {
    println!(
        "sss-lint — workspace static analysis (no-panic decode, bounded \
         allocation, NaN-safe ordering, canonical iteration, wire-tag registry)\n\
         \n\
         USAGE: sss-lint --workspace [--root <path>]\n\
         \n\
         OPTIONS:\n\
           --workspace      lint the whole workspace (required)\n\
           --root <path>    workspace root (default: nearest ancestor with crates/)\n\
           --list-rules     print rule ids and exit\n\
         \n\
         Violations always fail the run (-D semantics). Audited exceptions\n\
         use `// sss-lint: allow(<rule>) — <reason>` pragmas in the source."
    );
}
