//! The eight rule passes. Each enforces one cross-cutting source
//! invariant the compiler cannot check (see `crates/core/src/README.md`,
//! "Invariants & static analysis"):
//!
//! 1. [`no_panic_decode`](RULE_NO_PANIC) — decode paths never panic:
//!    no `unwrap`/`expect`/`panic!`-family macros/direct indexing in
//!    `decode`/`decode_framed`/`restore`/`apply_*` bodies, functions
//!    taking a codec `Reader`, or anywhere in the `sss-codec` crate.
//! 2. [`bounded_decode_alloc`](RULE_ALLOC) — allocations in decode
//!    paths are sized by `len_prefix`/`varint_len` or guarded by a
//!    named `MAX_*` bound / `remaining()` / an already-decoded
//!    `.len()`; decoded scalars are not cast to `usize` unguarded
//!    (the PR 6 window-restore bug class, generalized).
//! 3. [`nan_safe_ordering`](RULE_NAN) — no `partial_cmp(..).unwrap()`
//!    and no float comparators built on `partial_cmp`; order statistics
//!    go through `total_cmp`.
//! 4. [`canonical_iteration`](RULE_ITER) — no unordered `HashMap`/
//!    `HashSet` iteration inside `encode_into`/`merge`/`try_merge`/
//!    `estimate` bodies unless the iteration feeds a sort within the
//!    next two statements (the collect-then-sort idiom).
//! 5. [`wire_tag_registry`](RULE_TAGS) — `0x01xx`–`0x07xx` wire tags
//!    are globally unique, live in their owning crate's range, are
//!    covered by the Monitor restore registry, and every monitor-level
//!    codec type has a fixture in the committed corpus.
//! 6. [`batch_kernel`](RULE_BATCH) — `update_batch` bodies never call
//!    the per-item `hash_range`; batch paths hash whole chunks through
//!    the SWAR kernels in `sss_hash::batch` (the blessed kernel module
//!    itself is exempt).
//! 7. [`metric_registry`](RULE_METRICS) — every metric declared in a
//!    `metric_table!` carries a snake_case `sss_<subsystem>_*` name
//!    with a known subsystem segment, counters end in `_total`, kinds
//!    are Counter/Gauge/Histogram, and names are globally unique.
//! 8. [`atomic_ordering`](RULE_ATOMIC) — `Ordering::SeqCst` never
//!    appears in non-test code (the workspace's shared state is
//!    commutative counters; a seq-cst fence papers over a design bug),
//!    and hot-path bodies (`update*`/`ingest*`) use only `Relaxed`
//!    atomics — an acquire/release there needs a pragma explaining
//!    what it synchronizes.
//!
//! Audited exceptions are written in the source as
//! `// sss-lint: allow(<rule>) — <reason>` on the flagged line or the
//! line above it.

use crate::lexer::{TokKind, Token};
use crate::scan::{matching, normalize_type, statements, FnItem, SourceFile};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;

pub const RULE_NO_PANIC: &str = "no_panic_decode";
pub const RULE_ALLOC: &str = "bounded_decode_alloc";
pub const RULE_NAN: &str = "nan_safe_ordering";
pub const RULE_ITER: &str = "canonical_iteration";
pub const RULE_TAGS: &str = "wire_tag_registry";
pub const RULE_BATCH: &str = "batch_kernel";
pub const RULE_METRICS: &str = "metric_registry";
pub const RULE_ATOMIC: &str = "atomic_ordering";

/// All rule ids, for `--list-rules` and pragma validation.
pub const ALL_RULES: [&str; 8] = [
    RULE_NO_PANIC,
    RULE_ALLOC,
    RULE_NAN,
    RULE_ITER,
    RULE_TAGS,
    RULE_BATCH,
    RULE_METRICS,
    RULE_ATOMIC,
];

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub path: PathBuf,
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A parsed fixture-corpus manifest (`tests/fixtures/wire_v*/manifest.tsv`).
pub struct FixtureManifest {
    pub path: PathBuf,
    /// (fixture name, wire tag) rows.
    pub entries: Vec<(String, u16)>,
}

/// Knobs for the workspace-level checks.
pub struct LintOptions {
    /// Demand that a Monitor restore registry (`fn registry_knows` +
    /// `fn decode_estimator`) exists somewhere in the scanned set.
    pub require_registry: bool,
    /// Types whose snapshots ship framed at the top level and therefore
    /// must have a committed fixture, beyond the registry's estimators.
    pub toplevel_types: Vec<String>,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            require_registry: true,
            toplevel_types: vec!["Monitor".into(), "WindowedMonitor".into()],
        }
    }
}

/// Per-crate wire-tag range ownership: crate name → the required high
/// byte of its tags. Crates not listed here must not define tags.
const TAG_RANGES: [(&str, u16); 7] = [
    ("sss-hash", 1),
    ("sss-sketch", 2),
    ("sss-stream", 3),
    ("sss-core", 4),
    ("sss-transport", 5),
    ("sss-window", 6),
    ("sss-obs", 7),
];

struct Reporter<'a> {
    file: &'a SourceFile,
    out: Vec<Violation>,
    seen: HashSet<(usize, String)>,
}

impl<'a> Reporter<'a> {
    fn new(file: &'a SourceFile) -> Self {
        Reporter {
            file,
            out: Vec::new(),
            seen: HashSet::new(),
        }
    }

    fn report(&mut self, rule: &'static str, line: usize, message: String) {
        if self.file.allowed(line, rule) {
            return;
        }
        if !self.seen.insert((line, format!("{rule}:{message}"))) {
            return;
        }
        self.out.push(Violation {
            rule,
            path: self.file.path.clone(),
            line,
            message,
        });
    }
}

/// Whether a function is a decode path: it parses untrusted bytes, so
/// rules 1 and 2 apply to its body.
fn is_decode_path(file: &SourceFile, f: &FnItem) -> bool {
    if f.is_test {
        return false;
    }
    if file.crate_name == "sss-codec" {
        return true;
    }
    let n = f.name.as_str();
    if n == "decode"
        || n == "decode_framed"
        || n == "decode_slice"
        || n.starts_with("decode_")
        || n.starts_with("restore")
        || n.starts_with("apply_")
    {
        return true;
    }
    // Any function handed a codec `Reader` is part of a decode tree.
    file.tokens[f.params.0..f.params.1]
        .iter()
        .any(|t| t.is_ident("Reader"))
}

// ---------------------------------------------------------------------
// Rule 1: no-panic decode paths
// ---------------------------------------------------------------------

pub fn check_no_panic(file: &SourceFile, out: &mut Vec<Violation>) {
    let mut rep = Reporter::new(file);
    let toks = &file.tokens;
    for f in &file.fns {
        if !is_decode_path(file, f) {
            continue;
        }
        let Some((a, b)) = f.body else { continue };
        for i in a..b {
            if file.is_test_tok(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect" || t.text == "unwrap_unchecked")
                && i > 0
                && toks[i - 1].is_punct('.')
            {
                rep.report(
                    RULE_NO_PANIC,
                    t.line,
                    format!(
                        "`.{}()` in decode path `{}` can panic on untrusted bytes; return a typed CodecError",
                        t.text, f.name
                    ),
                );
            }
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && i + 1 < b
                && toks[i + 1].is_punct('!')
            {
                rep.report(
                    RULE_NO_PANIC,
                    t.line,
                    format!(
                        "`{}!` in decode path `{}`; corrupt input must surface as a typed error",
                        t.text, f.name
                    ),
                );
            }
            if t.is_punct('[') && i > a {
                let p = &toks[i - 1];
                let is_index_base = matches!(p.kind, TokKind::Ident | TokKind::Num | TokKind::Str)
                    || p.is_punct(')')
                    || p.is_punct(']')
                    || p.is_punct('?');
                if is_index_base {
                    rep.report(
                        RULE_NO_PANIC,
                        t.line,
                        format!(
                            "direct slice indexing in decode path `{}` can panic; use `get`/`take`",
                            f.name
                        ),
                    );
                }
            }
        }
    }
    out.append(&mut rep.out);
}

// ---------------------------------------------------------------------
// Rule 2: bounded decode allocation
// ---------------------------------------------------------------------

/// Reader methods that yield attacker-controlled integers.
const RAW_READS: [&str; 8] = [
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "i64",
    "varint_u64",
    "varint_i64",
];

fn stmt_has_raw_read(toks: &[Token]) -> bool {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `.u64()` method-call form.
        if RAW_READS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
        {
            return true;
        }
        // `usize::decode(r)` / `u64::decode(r)` form.
        if (t.text == "usize" || RAW_READS.contains(&t.text.as_str()))
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("decode")
        {
            return true;
        }
    }
    false
}

/// An uppercase identifier naming a bound (`MAX_WINDOW_BUCKETS`,
/// `PACKED_MAX_RUN`).
fn is_max_const(t: &Token) -> bool {
    t.kind == TokKind::Ident
        && t.text.contains("MAX")
        && t.text
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

fn stmt_has_promoter(toks: &[Token]) -> bool {
    for i in 0..toks.len() {
        let t = &toks[i];
        if is_max_const(t) {
            return true;
        }
        if (t.is_ident("remaining") || t.is_ident("len"))
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
        {
            return true;
        }
    }
    false
}

/// Identifiers bound by a `let` pattern / plain assignment at the start
/// of a pseudo-statement, plus the RHS token range.
fn binding_of(toks: &[Token]) -> Option<(Vec<String>, usize)> {
    if toks.is_empty() {
        return None;
    }
    if toks[0].is_ident("let") {
        let eq = toks.iter().position(|t| t.is_punct('='))?;
        let mut names = Vec::new();
        let mut in_ty = false;
        for t in &toks[1..eq] {
            if t.is_punct(':') {
                in_ty = true;
            } else if t.is_punct(',') || t.is_punct('(') || t.is_punct(')') {
                in_ty = false;
            } else if !in_ty && t.kind == TokKind::Ident && t.text != "mut" {
                names.push(t.text.clone());
            }
        }
        return Some((names, eq + 1));
    }
    // `x = rhs` assignment (not `==`).
    if toks.len() >= 3
        && toks[0].kind == TokKind::Ident
        && toks[1].is_punct('=')
        && !toks[2].is_punct('=')
    {
        return Some((vec![toks[0].text.clone()], 2));
    }
    None
}

pub fn check_bounded_alloc(file: &SourceFile, out: &mut Vec<Violation>) {
    let mut rep = Reporter::new(file);
    let toks = &file.tokens;
    for f in &file.fns {
        if !is_decode_path(file, f) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let stmts = statements(toks, body);
        let mut tainted: HashSet<String> = HashSet::new();
        let mut bounded: HashSet<String> = HashSet::new();

        // Pass 1: classify bindings in order.
        for &(s, e) in &stmts {
            let st = &toks[s..e];
            let Some((names, rhs)) = binding_of(st) else {
                continue;
            };
            let rhs_toks = &st[rhs.min(st.len())..];
            let has_len_guard = rhs_toks
                .iter()
                .any(|t| t.is_ident("len_prefix") || t.is_ident("varint_len"));
            if has_len_guard {
                for n in names {
                    tainted.remove(&n);
                    bounded.insert(n);
                }
            } else if stmt_has_raw_read(rhs_toks)
                || rhs_toks
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && tainted.contains(&t.text))
            {
                for n in names {
                    bounded.remove(&n);
                    tainted.insert(n);
                }
            } else {
                for n in names {
                    tainted.remove(&n);
                    bounded.remove(&n);
                }
            }
        }

        // Pass 2: body-wide promotion — a statement mentioning a tainted
        // name next to a MAX_* constant, `remaining()` or `.len()` is
        // taken as its bound check.
        let mut promoted: HashSet<String> = HashSet::new();
        for &(s, e) in &stmts {
            let st = &toks[s..e];
            if !stmt_has_promoter(st) {
                continue;
            }
            for t in st {
                if t.kind == TokKind::Ident && tainted.contains(&t.text) {
                    promoted.insert(t.text.clone());
                }
            }
        }

        let bad = |name: &str| tainted.contains(name) && !promoted.contains(name);

        // Pass 3: violations.
        for &(s, e) in &stmts {
            let st = &toks[s..e];
            // Allocation sites.
            for i in 0..st.len() {
                let t = &st[i];
                let arg_range: Option<(usize, usize)> = if (t.is_ident("with_capacity")
                    || t.is_ident("resize")
                    || t.is_ident("resize_with"))
                    && i + 1 < st.len()
                    && st[i + 1].is_punct('(')
                {
                    matching(st, i + 1, '(', ')').map(|c| {
                        // Only `resize`'s first argument is a size; the
                        // second is the fill value.
                        let mut end = c;
                        if t.text.starts_with("resize") {
                            let mut d = 0i64;
                            for (j, tk) in st.iter().enumerate().take(c).skip(i + 2) {
                                if tk.is_punct('(') || tk.is_punct('[') {
                                    d += 1;
                                } else if tk.is_punct(')') || tk.is_punct(']') {
                                    d -= 1;
                                } else if tk.is_punct(',') && d == 0 {
                                    end = j;
                                    break;
                                }
                            }
                        }
                        (i + 2, end)
                    })
                } else if t.is_ident("vec")
                    && i + 2 < st.len()
                    && st[i + 1].is_punct('!')
                    && st[i + 2].is_punct('[')
                {
                    // Only the `vec![elem; len]` form sizes an allocation.
                    matching(st, i + 2, '[', ']').and_then(|c| {
                        let semi = (i + 3..c).find(|&j| st[j].is_punct(';'))?;
                        Some((semi + 1, c))
                    })
                } else {
                    None
                };
                let Some((a, b)) = arg_range else { continue };
                let args = &st[a..b.min(st.len())];
                if stmt_has_raw_read(args) {
                    rep.report(
                        RULE_ALLOC,
                        t.line,
                        format!(
                            "allocation in decode path `{}` sized directly by a decoded integer; route it through len_prefix or bound it first",
                            f.name
                        ),
                    );
                    continue;
                }
                for arg in args {
                    if arg.kind == TokKind::Ident && bad(&arg.text) {
                        rep.report(
                            RULE_ALLOC,
                            t.line,
                            format!(
                                "allocation in decode path `{}` sized by decoded value `{}` with no len_prefix / MAX_* / remaining() bound",
                                f.name, arg.text
                            ),
                        );
                    }
                }
            }
            // Unbounded decoded scalar committed to a usize.
            for i in 0..st.len().saturating_sub(2) {
                if st[i].kind == TokKind::Ident
                    && bad(&st[i].text)
                    && st[i + 1].is_ident("as")
                    && st[i + 2].is_ident("usize")
                {
                    rep.report(
                        RULE_ALLOC,
                        st[i].line,
                        format!(
                            "decoded scalar `{}` cast to usize in `{}` without a MAX_* / remaining() / len() bound (the window-restore bug class)",
                            st[i].text, f.name
                        ),
                    );
                }
            }
        }
    }
    out.append(&mut rep.out);
}

// ---------------------------------------------------------------------
// Rule 3: NaN-safe ordering
// ---------------------------------------------------------------------

const COMPARATOR_SINKS: [&str; 5] = [
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

pub fn check_nan_ordering(file: &SourceFile, out: &mut Vec<Violation>) {
    let mut rep = Reporter::new(file);
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.is_test_tok(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "partial_cmp" && i + 1 < toks.len() && toks[i + 1].is_punct('(') {
            if let Some(close) = matching(toks, i + 1, '(', ')') {
                if close + 2 < toks.len()
                    && toks[close + 1].is_punct('.')
                    && (toks[close + 2].is_ident("unwrap") || toks[close + 2].is_ident("expect"))
                {
                    rep.report(
                        RULE_NAN,
                        t.line,
                        "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp`".to_string(),
                    );
                }
            }
        }
        if COMPARATOR_SINKS.contains(&t.text.as_str())
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
        {
            if let Some(close) = matching(toks, i + 1, '(', ')') {
                if toks[i + 2..close].iter().any(|x| x.is_ident("partial_cmp")) {
                    rep.report(
                        RULE_NAN,
                        t.line,
                        format!(
                            "`{}` comparator built on `partial_cmp` is not a total order over floats; use `total_cmp`",
                            t.text
                        ),
                    );
                }
            }
        }
    }
    out.append(&mut rep.out);
}

// ---------------------------------------------------------------------
// Rule 4: canonical iteration in merge/encode/estimate paths
// ---------------------------------------------------------------------

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

const ORDER_SENSITIVE_FNS: [&str; 4] = ["encode_into", "merge", "try_merge", "estimate"];

/// Hash container type names. `FpHashMap`/`FpHashSet` are the
/// workspace's fixed-seed aliases: iteration is reproducible for one
/// insertion history but still not canonical across merge orders, so
/// the rule treats them exactly like std's.
fn is_hash_ty(t: &Token) -> bool {
    t.is_ident("HashMap")
        || t.is_ident("HashSet")
        || t.is_ident("FpHashMap")
        || t.is_ident("FpHashSet")
        || t.is_ident("fp_hash_map")
        || t.is_ident("fp_hash_set")
}

/// Names in this file declared (field, param or let-binding) as
/// `HashMap` / `HashSet`.
fn hash_container_names(file: &SourceFile) -> HashSet<String> {
    let toks = &file.tokens;
    let mut names = HashSet::new();
    // `name: [path::]Hash{Map,Set}<...>` declarations.
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if !(i + 1 < toks.len() && toks[i + 1].is_punct(':')) {
            continue;
        }
        // Exclude `path::seg` (double colon).
        if i + 2 < toks.len() && toks[i + 2].is_punct(':') {
            continue;
        }
        if i > 0 && toks[i - 1].is_punct(':') {
            continue;
        }
        let mut j = i + 2;
        let limit = (i + 12).min(toks.len());
        while j < limit {
            let t = &toks[j];
            if is_hash_ty(t) {
                names.insert(toks[i].text.clone());
                break;
            }
            let path_part = t.kind == TokKind::Ident
                || t.is_punct(':')
                || t.is_punct('&')
                || t.kind == TokKind::Lifetime;
            if !path_part {
                break;
            }
            j += 1;
        }
    }
    // `let name = HashMap::new()` style bindings.
    for (s, e) in statements(toks, (0, toks.len())) {
        let st = &toks[s..e];
        let Some((bound, rhs)) = binding_of(st) else {
            continue;
        };
        if st[rhs.min(st.len())..].iter().any(is_hash_ty) {
            names.extend(bound);
        }
    }
    names
}

pub fn check_canonical_iteration(file: &SourceFile, out: &mut Vec<Violation>) {
    let hashes = hash_container_names(file);
    if hashes.is_empty() {
        return;
    }
    let mut rep = Reporter::new(file);
    let toks = &file.tokens;
    for f in &file.fns {
        if f.is_test || !ORDER_SENSITIVE_FNS.contains(&f.name.as_str()) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let stmts = statements(toks, body);
        for (si, &(s, e)) in stmts.iter().enumerate() {
            let st = &toks[s..e];
            let mut hit: Option<(usize, String)> = None; // (line, what)
            for i in 0..st.len() {
                let t = &st[i];
                // `name.iter()` / `self.name.keys()` ...
                if t.kind == TokKind::Ident
                    && ITER_METHODS.contains(&t.text.as_str())
                    && i >= 2
                    && st[i - 1].is_punct('.')
                    && st[i - 2].kind == TokKind::Ident
                    && hashes.contains(&st[i - 2].text)
                    && i + 1 < st.len()
                    && st[i + 1].is_punct('(')
                {
                    hit = Some((t.line, format!("{}.{}()", st[i - 2].text, t.text)));
                    break;
                }
            }
            // `for x in &self.name` loop headers.
            if hit.is_none() && !st.is_empty() && st[0].is_ident("for") {
                if let Some(in_pos) = st.iter().position(|t| t.is_ident("in")) {
                    for t in &st[in_pos + 1..] {
                        if t.kind == TokKind::Ident && hashes.contains(&t.text) {
                            hit = Some((st[0].line, format!("for .. in {}", t.text)));
                            break;
                        }
                    }
                }
            }
            let Some((line, what)) = hit else { continue };
            // The collect-then-sort idiom: a sort in this statement or
            // the next two blesses the iteration.
            let sorted_nearby = stmts[si..(si + 3).min(stmts.len())].iter().any(|&(a, b)| {
                toks[a..b]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text.starts_with("sort"))
            });
            if sorted_nearby {
                continue;
            }
            rep.report(
                RULE_ITER,
                line,
                format!(
                    "unordered hash iteration `{what}` in `{}`; encode/merge/estimate must iterate in canonical order (collect + sort), or justify commutativity with a pragma",
                    f.name
                ),
            );
        }
    }
    out.append(&mut rep.out);
}

// ---------------------------------------------------------------------
// Rule 6: batch paths hash through the SWAR kernel
// ---------------------------------------------------------------------

/// The one module allowed to evaluate hashes per item inside a batch
/// body: it *is* the kernel the rule points everyone else at.
fn is_blessed_kernel(file: &SourceFile) -> bool {
    file.path.ends_with("hash/src/batch.rs")
}

pub fn check_batch_kernel(file: &SourceFile, out: &mut Vec<Violation>) {
    if is_blessed_kernel(file) {
        return;
    }
    let mut rep = Reporter::new(file);
    let toks = &file.tokens;
    for f in &file.fns {
        if f.is_test || !f.name.starts_with("update_batch") {
            continue;
        }
        let Some((a, b)) = f.body else { continue };
        for i in a..b {
            if file.is_test_tok(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && t.text == "hash_range"
                && i + 1 < b
                && toks[i + 1].is_punct('(')
            {
                rep.report(
                    RULE_BATCH,
                    t.line,
                    format!(
                        "per-item `hash_range` call in batch path `{}`; hash the whole chunk through the SWAR kernels in sss_hash::batch (`hash_range_batch`/`signs_batch`) instead",
                        f.name
                    ),
                );
            }
        }
    }
    out.append(&mut rep.out);
}

// ---------------------------------------------------------------------
// Rule 8: atomic memory orderings
// ---------------------------------------------------------------------

/// Whether a function name marks an ingestion hot path for the
/// `atomic_ordering` rule.
fn is_hot_path_fn(f: &FnItem) -> bool {
    f.name.starts_with("update") || f.name.starts_with("ingest")
}

pub fn check_atomic_ordering(file: &SourceFile, out: &mut Vec<Violation>) {
    let mut rep = Reporter::new(file);
    let toks = &file.tokens;
    // SeqCst is banned everywhere outside tests: no invariant in this
    // workspace needs a total order over unrelated atomics, so its
    // appearance means either cargo-culting or an undiagnosed race.
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_tok(i) {
            continue;
        }
        if t.kind == TokKind::Ident && t.text == "SeqCst" {
            rep.report(
                RULE_ATOMIC,
                t.line,
                "`Ordering::SeqCst` in non-test code; the workspace's shared state is commutative counters — use `Relaxed` (or justify the fence with a pragma)".to_string(),
            );
        }
    }
    // Hot paths take only Relaxed: the quiesce join is the one
    // happens-before edge the design relies on, so an acquire/release
    // inside update/ingest bodies either does nothing or hides an
    // undocumented protocol. Matching the `Ordering::X` path (rather
    // than the bare ident) keeps prose and unrelated idents out.
    for f in &file.fns {
        if f.is_test || !is_hot_path_fn(f) {
            continue;
        }
        let Some((a, b)) = f.body else { continue };
        for i in a..b {
            if file.is_test_tok(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "Acquire" | "Release" | "AcqRel")
                && i >= a + 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("Ordering")
            {
                rep.report(
                    RULE_ATOMIC,
                    t.line,
                    format!(
                        "`Ordering::{}` on the hot path `{}`; ingestion atomics are `Relaxed` (the quiesce join is the only synchronization edge) — document any exception with a pragma",
                        t.text, f.name
                    ),
                );
            }
        }
    }
    out.append(&mut rep.out);
}

// ---------------------------------------------------------------------
// Rule 5: wire-tag registry audit
// ---------------------------------------------------------------------

struct TagDef {
    value: u16,
    owner: String,
    crate_name: String,
    path: PathBuf,
    line: usize,
}

fn parse_u16_literal(text: &str) -> Option<u16> {
    let t = text.replace('_', "");
    let t = t
        .trim_end_matches("u16")
        .trim_end_matches("u32")
        .trim_end_matches("u64");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u16::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Alias `const NAME: u16 = <Type as WireCodec>::WIRE_TAG;` — the
/// Monitor restore registry's vocabulary.
struct AliasDef {
    name: String,
    /// Normalized target type (`SampledFkEstimator<ExactCollisions>`).
    target: String,
    line: usize,
}

fn alias_target(toks: &[Token]) -> Option<String> {
    let tag_pos = toks.iter().position(|t| t.is_ident("WIRE_TAG"))?;
    // Drop the trailing `::WIRE_TAG`.
    let mut end = tag_pos;
    while end > 0 && toks[end - 1].is_punct(':') {
        end -= 1;
    }
    if end == 0 {
        return None;
    }
    let mut range = &toks[..end];
    // Strip an outer `<... as WireCodec>` qualification.
    if range.first().is_some_and(|t| t.is_punct('<'))
        && range.last().is_some_and(|t| t.is_punct('>'))
    {
        range = &range[1..range.len() - 1];
    }
    let norm = normalize_type(range);
    if norm.is_empty() {
        None
    } else {
        Some(norm)
    }
}

pub fn check_wire_tags(
    files: &[SourceFile],
    manifests: &[FixtureManifest],
    opts: &LintOptions,
    out: &mut Vec<Violation>,
) {
    let range_of: HashMap<&str, u16> = TAG_RANGES.iter().copied().collect();

    // Collect tag constants and registry aliases.
    let mut defs: Vec<TagDef> = Vec::new();
    let mut aliases: Vec<(usize, AliasDef)> = Vec::new(); // (file idx, alias)
    for (fi, file) in files.iter().enumerate() {
        for c in &file.consts {
            if c.is_test || c.ty != "u16" {
                continue;
            }
            let val_toks = &file.tokens[c.value.0..c.value.1];
            if val_toks.len() == 1 && val_toks[0].kind == TokKind::Num {
                if let Some(v) = parse_u16_literal(&val_toks[0].text) {
                    if (0x0100..=0x07FF).contains(&v) {
                        defs.push(TagDef {
                            value: v,
                            owner: c.impl_type.clone().unwrap_or_else(|| c.name.clone()),
                            crate_name: file.crate_name.clone(),
                            path: file.path.clone(),
                            line: c.line,
                        });
                    }
                }
            } else if val_toks.iter().any(|t| t.is_ident("WIRE_TAG")) {
                if let Some(target) = alias_target(val_toks) {
                    aliases.push((
                        fi,
                        AliasDef {
                            name: c.name.clone(),
                            target,
                            line: c.line,
                        },
                    ));
                }
            }
        }
    }

    let report = |out: &mut Vec<Violation>, file: &SourceFile, line: usize, msg: String| {
        if !file.allowed(line, RULE_TAGS) {
            out.push(Violation {
                rule: RULE_TAGS,
                path: file.path.clone(),
                line,
                message: msg,
            });
        }
    };

    // 5a: global uniqueness.
    let mut by_value: BTreeMap<u16, Vec<&TagDef>> = BTreeMap::new();
    for d in &defs {
        by_value.entry(d.value).or_default().push(d);
    }
    for (v, ds) in &by_value {
        if ds.len() > 1 {
            for d in &ds[1..] {
                let first = ds[0];
                out.push(Violation {
                    rule: RULE_TAGS,
                    path: d.path.clone(),
                    line: d.line,
                    message: format!(
                        "wire tag {v:#06x} of `{}` already taken by `{}` ({}:{})",
                        d.owner,
                        first.owner,
                        first.path.display(),
                        first.line
                    ),
                });
            }
        }
    }

    // 5b: per-crate range ownership.
    for d in &defs {
        let high = d.value >> 8;
        match range_of.get(d.crate_name.as_str()) {
            Some(&expected) if high != expected => {
                out.push(Violation {
                    rule: RULE_TAGS,
                    path: d.path.clone(),
                    line: d.line,
                    message: format!(
                        "tag {:#06x} of `{}` is outside crate {}'s 0x{:02x}xx range",
                        d.value, d.owner, d.crate_name, expected
                    ),
                });
            }
            None => {
                out.push(Violation {
                    rule: RULE_TAGS,
                    path: d.path.clone(),
                    line: d.line,
                    message: format!(
                        "crate {} owns no wire-tag range but defines tag {:#06x}",
                        d.crate_name, d.value
                    ),
                });
            }
            _ => {}
        }
    }

    // 5c: restore-registry coverage.
    let registry_file = files.iter().position(|f| {
        f.fns
            .iter()
            .any(|x| x.name == "registry_knows" && !x.is_test)
    });
    let mut registry_tags: Vec<u16> = Vec::new();
    match registry_file {
        None => {
            if opts.require_registry {
                out.push(Violation {
                    rule: RULE_TAGS,
                    path: PathBuf::from("crates/core/src/monitor.rs"),
                    line: 1,
                    message: "no `fn registry_knows` restore registry found in the scanned set"
                        .to_string(),
                });
            }
        }
        Some(fi) => {
            let file = &files[fi];
            let alias_names: HashMap<&str, &AliasDef> = aliases
                .iter()
                .filter(|(i, _)| *i == fi)
                .map(|(_, a)| (a.name.as_str(), a))
                .collect();
            let body_names = |fn_name: &str| -> HashSet<String> {
                file.fns
                    .iter()
                    .find(|x| x.name == fn_name && !x.is_test)
                    .and_then(|x| x.body)
                    .map(|(a, b)| {
                        file.tokens[a..b]
                            .iter()
                            .filter(|t| {
                                t.kind == TokKind::Ident
                                    && alias_names.contains_key(t.text.as_str())
                            })
                            .map(|t| t.text.clone())
                            .collect()
                    })
                    .unwrap_or_default()
            };
            let knows = body_names("registry_knows");
            let decodes = body_names("decode_estimator");
            for missing in knows.symmetric_difference(&decodes) {
                let a = alias_names[missing.as_str()];
                report(
                    out,
                    file,
                    a.line,
                    format!(
                        "estimator alias `{missing}` is in only one of registry_knows/decode_estimator — checkpoint and restore disagree"
                    ),
                );
            }
            // Resolve registry aliases to tags via the impl scan.
            let impl_tags: HashMap<&str, u16> =
                defs.iter().map(|d| (d.owner.as_str(), d.value)).collect();
            for name in knows.union(&decodes) {
                let a = alias_names[name.as_str()];
                match impl_tags.get(a.target.as_str()) {
                    Some(&v) => registry_tags.push(v),
                    None => report(
                        out,
                        file,
                        a.line,
                        format!(
                            "registry alias `{}` targets `{}`, which has no WIRE_TAG impl in the scanned set",
                            a.name, a.target
                        ),
                    ),
                }
            }
        }
    }

    // 5d: fixture coverage in the committed corpus.
    if let Some(manifest) = manifests.iter().max_by_key(|m| m.path.clone()) {
        let have: HashSet<u16> = manifest.entries.iter().map(|(_, t)| *t).collect();
        let mut required: Vec<(u16, String)> = registry_tags
            .iter()
            .map(|&t| (t, format!("registry tag {t:#06x}")))
            .collect();
        for ty in &opts.toplevel_types {
            if let Some(d) = defs.iter().find(|d| &d.owner == ty) {
                required.push((d.value, format!("{ty} ({:#06x})", d.value)));
            }
        }
        for (tag, what) in required {
            if !have.contains(&tag) {
                out.push(Violation {
                    rule: RULE_TAGS,
                    path: manifest.path.clone(),
                    line: 1,
                    message: format!(
                        "monitor-level codec type {what} has no fixture in the committed corpus"
                    ),
                });
            }
        }
        let known: HashSet<u16> = defs.iter().map(|d| d.value).collect();
        for (name, tag) in &manifest.entries {
            if !known.contains(tag) {
                out.push(Violation {
                    rule: RULE_TAGS,
                    path: manifest.path.clone(),
                    line: 1,
                    message: format!(
                        "fixture `{name}` pins tag {tag:#06x}, which no scanned crate defines"
                    ),
                });
            }
        }
    }
}

/// Subsystem segments a metric name may carry (the second
/// `_`-separated component after the `sss_` namespace) — one per
/// instrumented layer. Extending the instrumentation to a new layer
/// means extending this list in the same change.
const METRIC_SUBSYSTEMS: [&str; 7] = [
    "ingest",
    "sampler",
    "sharded",
    "codec",
    "transport",
    "window",
    "obs",
];

/// Rule 7: every metric declared through a `metric_table!` invocation
/// follows the naming conventions and is globally unique. Parsed from
/// the macro's token stream (`Variant => Kind "name": "help";`), the
/// same audit pattern as the wire-tag registry: the declaration site
/// IS the registry, so nothing can be declared outside it.
pub fn check_metric_registry(files: &[SourceFile], out: &mut Vec<Violation>) {
    struct MetricDef {
        name: String,
        path: PathBuf,
        line: usize,
    }
    let mut defs: Vec<MetricDef> = Vec::new();

    for file in files {
        let toks = &file.tokens;
        let mut i = 0;
        while i + 2 < toks.len() {
            // An invocation is `metric_table ! {`; the macro_rules
            // definition tokenizes as `macro_rules ! metric_table {`
            // and never matches this shape.
            if !(toks[i].is_ident("metric_table")
                && toks[i + 1].is_punct('!')
                && toks[i + 2].is_punct('{'))
            {
                i += 1;
                continue;
            }
            let open = i + 2;
            let close = match matching(toks, open, '{', '}') {
                Some(c) => c,
                None => break,
            };
            let mut j = open + 1;
            while j < close {
                // Entries end in `;`, so one malformed entry cannot
                // cascade its diagnostics into the next.
                let end = (j..close).find(|&k| toks[k].is_punct(';')).unwrap_or(close);
                let e = &toks[j..end];
                if e.is_empty() {
                    j = end + 1;
                    continue;
                }
                let line = e[0].line;
                let mut report = |msg: String| {
                    if !file.allowed(line, RULE_METRICS) {
                        out.push(Violation {
                            rule: RULE_METRICS,
                            path: file.path.clone(),
                            line,
                            message: msg,
                        });
                    }
                };
                let shape_ok = e.len() == 7
                    && e[0].kind == TokKind::Ident
                    && e[1].is_punct('=')
                    && e[2].is_punct('>')
                    && e[3].kind == TokKind::Ident
                    && e[4].kind == TokKind::Str
                    && e[5].is_punct(':')
                    && e[6].kind == TokKind::Str;
                if !shape_ok {
                    report(
                        "metric_table! entry does not match `Variant => Kind \"name\": \"help\";`"
                            .to_string(),
                    );
                    j = end + 1;
                    continue;
                }
                let kind = e[3].text.as_str();
                let name = e[4].text.as_str();
                if !matches!(kind, "Counter" | "Gauge" | "Histogram") {
                    report(format!(
                        "metric `{name}` has unknown kind `{kind}` (expected Counter, Gauge or Histogram)"
                    ));
                }
                if name.is_empty()
                    || !name
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
                {
                    report(format!(
                        "metric name `{name}` is not snake_case ([a-z0-9_] only)"
                    ));
                } else {
                    match name.strip_prefix("sss_") {
                        None => report(format!(
                            "metric name `{name}` must start with the `sss_` namespace"
                        )),
                        Some(rest) => {
                            let subsystem = rest.split('_').next().unwrap_or("");
                            if !METRIC_SUBSYSTEMS.contains(&subsystem) {
                                report(format!(
                                    "metric `{name}` names unknown subsystem `{subsystem}` (expected one of {METRIC_SUBSYSTEMS:?})"
                                ));
                            }
                        }
                    }
                    if kind == "Counter" && !name.ends_with("_total") {
                        report(format!("counter `{name}` must end with `_total`"));
                    }
                }
                defs.push(MetricDef {
                    name: name.to_string(),
                    path: file.path.clone(),
                    line,
                });
                j = end + 1;
            }
            i = close + 1;
        }
    }

    // Global uniqueness across every table in the scanned set.
    let mut by_name: BTreeMap<&str, Vec<&MetricDef>> = BTreeMap::new();
    for d in &defs {
        by_name.entry(d.name.as_str()).or_default().push(d);
    }
    for (name, ds) in &by_name {
        for d in &ds[1..] {
            let first = ds[0];
            out.push(Violation {
                rule: RULE_METRICS,
                path: d.path.clone(),
                line: d.line,
                message: format!(
                    "metric name `{name}` already declared at {}:{}",
                    first.path.display(),
                    first.line
                ),
            });
        }
    }
}
