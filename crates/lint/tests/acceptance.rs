//! The two regression pins from the issue's acceptance criteria, run
//! against the *real* workspace sources so they track the code as it
//! evolves:
//!
//! 1. reintroducing the PR 6 window-restore bug (deleting the
//!    `MAX_WINDOW_BUCKETS` guard in `crates/window/src/windowed.rs`)
//!    must fire `bounded_decode_alloc`;
//! 2. seeding a duplicate wire tag into the workspace must fire
//!    `wire_tag_registry`.

use std::path::{Path, PathBuf};

use sss_lint::scan::{FileKind, SourceFile};
use sss_lint::{lint, load_workspace, LintOptions};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn deleting_the_window_bucket_guard_fires_bounded_alloc() {
    let path = repo_root().join("crates/window/src/windowed.rs");
    let src = std::fs::read_to_string(&path).expect("read windowed.rs");

    // The guard under test, as it exists today. If this block changes
    // shape the assert below fails and the pin needs updating — that is
    // deliberate: the fixture must keep tracking the real source.
    let guard_open = "if !(1..=MAX_WINDOW_BUCKETS).contains(&cap)";
    let start = src
        .find(guard_open)
        .expect("MAX_WINDOW_BUCKETS guard not found in windowed.rs — update this pin");
    let end = start + src[start..].find("}\n").expect("guard block end") + 2;
    let mut stripped = String::with_capacity(src.len());
    stripped.push_str(&src[..start]);
    stripped.push_str(&src[end..]);

    let lint_file = |text: &str| {
        let f = SourceFile::parse(
            "sss-window",
            PathBuf::from("windowed.rs"),
            FileKind::Lib,
            text,
        );
        let mut out = Vec::new();
        sss_lint::rules::check_bounded_alloc(&f, &mut out);
        out
    };

    assert!(
        lint_file(&src).is_empty(),
        "pristine windowed.rs must be clean"
    );
    let v = lint_file(&stripped);
    assert!(
        v.iter().any(|x| {
            x.rule == "bounded_decode_alloc" && x.message.contains("decoded scalar `cap`")
        }),
        "guard deletion must fire bounded_decode_alloc, got: {v:?}"
    );
}

#[test]
fn seeding_a_duplicate_wire_tag_fires_the_registry_audit() {
    let root = repo_root();
    let mut ws = load_workspace(&root).expect("load workspace");
    let baseline = lint(&ws, &LintOptions::default());
    assert!(
        baseline.is_empty(),
        "workspace must start clean: {baseline:?}"
    );

    // A rogue type claiming the WindowedMonitor's tag.
    ws.files.push(SourceFile::parse(
        "sss-window",
        PathBuf::from("crates/window/src/rogue.rs"),
        FileKind::Lib,
        "impl WireCodec for Rogue {\n    const WIRE_TAG: u16 = 0x0601;\n}\n",
    ));
    let v = lint(&ws, &LintOptions::default());
    assert!(
        v.iter()
            .any(|x| { x.rule == "wire_tag_registry" && x.message.contains("wire tag 0x0601") }),
        "duplicate tag must fire wire_tag_registry, got: {v:?}"
    );
}

#[test]
fn workspace_registry_and_fixture_corpus_agree() {
    // The full default-option run also exercises restore-registry
    // resolution and fixture-corpus coverage against the live tree.
    let root = repo_root();
    let ws = load_workspace(&root).expect("load workspace");
    assert!(
        !ws.manifests.is_empty(),
        "expected a tests/fixtures/wire_v*/manifest.tsv corpus"
    );
    let v = lint(&ws, &LintOptions::default());
    assert!(v.is_empty(), "{v:?}");
}
