pub fn update_batch(&self, xs: &[u64]) {
    // Release the snapshot slot: readers pair with an Acquire load.
    for &x in xs {
        let b = self.hash_for(x);
        self.counters[b].fetch_add(1, Ordering::Relaxed);
    }
    self.total.fetch_add(xs.len() as u64, Ordering::Relaxed);
}

pub fn publish(&self, epoch: u64) {
    // Non-hot-path code may use acquire/release freely.
    self.epoch.store(epoch, Ordering::Release);
}

pub fn ingest_shared(&self, xs: &[u64]) {
    // sss-lint: allow(atomic_ordering) — publishes the watermark other threads acquire-load before reading the grid
    self.watermark.fetch_max(xs.len() as u64, Ordering::Release);
}

#[cfg(test)]
mod tests {
    #[test]
    fn seqcst_in_tests_is_fine() {
        let n = std::sync::atomic::AtomicU64::new(0);
        n.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }
}
