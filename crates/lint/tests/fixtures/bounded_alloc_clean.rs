pub fn decode(r: &mut Reader) -> Result<Table, CodecError> {
    let rows = r.len_prefix(8)?;
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        out.push(r.u64()?);
    }
    let cap = r.u64()?;
    if cap > MAX_TABLE_CAP {
        return Err(CodecError::Invalid {
            what: "table capacity above the decode bound",
        });
    }
    let cap = cap as usize;
    Ok(Table { out, cap })
}
