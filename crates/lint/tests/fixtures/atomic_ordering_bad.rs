pub fn bump(&self) {
    self.total.fetch_add(1, Ordering::SeqCst);
}

pub fn update_batch(&self, xs: &[u64]) {
    for &x in xs {
        let b = self.hash_for(x);
        self.counters[b].fetch_add(1, Ordering::Release);
        let _ = self.total.load(Ordering::Acquire);
    }
}
