pub fn decode(r: &mut Reader) -> Result<Frame, CodecError> {
    let tag = r.u16()?;
    let body = r.take(4)?;
    if tag == 0 {
        return Err(CodecError::Invalid {
            what: "tag zero is reserved",
        });
    }
    Ok(Frame {
        tag,
        body: body.to_vec(),
    })
}
