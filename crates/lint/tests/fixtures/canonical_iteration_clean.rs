pub struct Sketch {
    counts: HashMap<u64, u64>,
    total: f64,
}

impl Sketch {
    pub fn estimate(&self) -> f64 {
        let mut rows: Vec<(u64, u64)> = self.counts.iter().map(|(&i, &c)| (i, c)).collect();
        rows.sort_unstable();
        let mut acc = 0.0;
        for (_, c) in rows {
            acc += (c as f64) / self.total;
        }
        acc
    }
}
