pub fn decode(r: &mut Reader) -> Result<Table, CodecError> {
    let rows = r.u64()?;
    let mut out = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        out.push(r.u64()?);
    }
    Ok(Table { out })
}
