pub struct Sketch {
    counts: HashMap<u64, u64>,
    total: f64,
}

impl Sketch {
    pub fn estimate(&self) -> f64 {
        let mut acc = 0.0;
        for (_, &c) in &self.counts {
            acc += (c as f64) / self.total;
        }
        acc
    }
}
