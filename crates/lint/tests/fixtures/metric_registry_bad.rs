// One defect per entry, so the test can assert each diagnostic.
metric_table! {
    BadCase => Counter "sss_Ingest_items_total": "upper case in the name";
    MissingSuffix => Counter "sss_ingest_items": "counter without the _total suffix";
    WrongNamespace => Gauge "queue_depth": "missing the sss_ namespace";
    UnknownSubsystem => Counter "sss_frobnicator_calls_total": "no such layer";
    BadKind => Summary "sss_obs_lag_seconds": "kind outside Counter/Gauge/Histogram";
    Dup => Counter "sss_obs_events_dropped_total": "first declaration";
    DupAgain => Counter "sss_obs_events_dropped_total": "second declaration";
}
