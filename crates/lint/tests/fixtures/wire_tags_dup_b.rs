impl WireCodec for RivalSketch {
    const WIRE_TAG: u16 = 0x0205;

    fn encode_into(&self, out: &mut Vec<u8>) {}
}
