pub fn update_batch(&mut self, xs: &[u64]) {
    for &x in xs {
        let b = self.hash.hash_range(x, self.width);
        self.counters[b] += 1;
    }
}
