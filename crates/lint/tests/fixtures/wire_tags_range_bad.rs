impl WireCodec for StraySketch {
    const WIRE_TAG: u16 = 0x0401;

    fn encode_into(&self, out: &mut Vec<u8>) {}
}
