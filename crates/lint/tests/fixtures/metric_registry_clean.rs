metric_table! {
    IngestItemsTotal => Counter "sss_ingest_items_total": "Items folded into estimator state";
    ShardedQueueDepth => Gauge "sss_sharded_queue_depth": "Jobs dispatched but not yet completed";
    CodecEncodeNanos => Histogram "sss_codec_encode_nanos": "Checkpoint encode wall time";
}
