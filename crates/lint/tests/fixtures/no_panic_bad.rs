pub fn decode(r: &mut Reader) -> Result<Frame, CodecError> {
    let tag = r.u16().unwrap();
    let body = &r.buf[4..8];
    if tag == 0 {
        unreachable!("tag zero is reserved");
    }
    Ok(Frame { tag, body: body.to_vec() })
}
