pub fn update_batch(&mut self, xs: &[u64]) {
    for chunk in xs.chunks(1024) {
        reduce_inputs(chunk, &mut self.scratch.xr);
        self.scratch.idx.resize(chunk.len(), 0);
        self.hash
            .hash_range_batch(&self.scratch.xr, self.width, &mut self.scratch.idx);
        for &b in &self.scratch.idx {
            self.counters[b] += 1;
        }
    }
}

pub fn update(&mut self, x: u64) {
    let b = self.hash.hash_range(x, self.width);
    self.counters[b] += 1;
}
