pub fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}
