//! Fixture battery: one known-bad snippet per rule, asserting the rule
//! id, line and message, plus a clean negative per rule and the pragma
//! escape hatch.

use sss_lint::{lint_sources, LintOptions, Violation};

fn opts() -> LintOptions {
    LintOptions {
        require_registry: false,
        toplevel_types: Vec::new(),
    }
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn lint_one(krate: &str, name: &str) -> Vec<Violation> {
    let src = fixture(name);
    lint_sources(&[(krate, name, &src)], &opts())
}

#[test]
fn no_panic_bad_fires_on_every_site() {
    let v = lint_one("sss-demo", "no_panic_bad.rs");
    assert!(v.iter().all(|x| x.rule == "no_panic_decode"), "{v:?}");
    let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![2, 3, 5], "{v:?}");
    assert!(v[0].message.contains("`.unwrap()`"), "{}", v[0].message);
    assert!(v[1].message.contains("slice indexing"), "{}", v[1].message);
    assert!(v[2].message.contains("`unreachable!`"), "{}", v[2].message);
}

#[test]
fn no_panic_clean_is_clean() {
    let v = lint_one("sss-demo", "no_panic_clean.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn bounded_alloc_bad_fires_on_alloc_and_cast() {
    let v = lint_one("sss-demo", "bounded_alloc_bad.rs");
    assert!(!v.is_empty());
    assert!(v.iter().all(|x| x.rule == "bounded_decode_alloc"), "{v:?}");
    assert!(v.iter().all(|x| x.line == 3), "{v:?}");
    assert!(
        v.iter()
            .any(|x| x.message.contains("sized by decoded value `rows`")),
        "{v:?}"
    );
}

#[test]
fn bounded_alloc_clean_is_clean() {
    // `len_prefix` bounds the element count; the config scalar is
    // checked against a MAX_* bound before its usize cast.
    let v = lint_one("sss-demo", "bounded_alloc_clean.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn nan_ordering_bad_fires_on_comparator_and_unwrap() {
    let v = lint_one("sss-demo", "nan_ordering_bad.rs");
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v
        .iter()
        .all(|x| x.rule == "nan_safe_ordering" && x.line == 2));
    assert!(v.iter().any(|x| x.message.contains("`sort_by` comparator")));
    assert!(v
        .iter()
        .any(|x| x.message.contains("partial_cmp(..).unwrap()")));
}

#[test]
fn nan_ordering_clean_is_clean() {
    let v = lint_one("sss-demo", "nan_ordering_clean.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn canonical_iteration_bad_fires_in_estimate() {
    let v = lint_one("sss-demo", "canonical_iteration_bad.rs");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "canonical_iteration");
    assert_eq!(v[0].line, 9);
    assert!(
        v[0].message.contains("for .. in counts"),
        "{}",
        v[0].message
    );
}

#[test]
fn canonical_iteration_clean_collect_sort_is_clean() {
    let v = lint_one("sss-demo", "canonical_iteration_clean.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn duplicate_wire_tag_fires() {
    let a = fixture("wire_tags_dup_a.rs");
    let b = fixture("wire_tags_dup_b.rs");
    let v = lint_sources(
        &[
            ("sss-sketch", "wire_tags_dup_a.rs", &a),
            ("sss-sketch", "wire_tags_dup_b.rs", &b),
        ],
        &opts(),
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "wire_tag_registry");
    assert_eq!(v[0].path.to_string_lossy(), "wire_tags_dup_b.rs");
    assert!(
        v[0].message.contains("already taken by `AmsSketch`"),
        "{}",
        v[0].message
    );
}

#[test]
fn out_of_range_wire_tag_fires() {
    let src = fixture("wire_tags_range_bad.rs");
    let v = lint_sources(&[("sss-sketch", "wire_tags_range_bad.rs", &src)], &opts());
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "wire_tag_registry");
    assert!(
        v[0].message
            .contains("outside crate sss-sketch's 0x02xx range"),
        "{}",
        v[0].message
    );
}

#[test]
fn wire_tags_clean_is_clean() {
    let src = fixture("wire_tags_clean.rs");
    let v = lint_sources(&[("sss-sketch", "wire_tags_clean.rs", &src)], &opts());
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn batch_kernel_bad_fires_on_per_item_hashing() {
    let v = lint_one("sss-sketch", "batch_kernel_bad.rs");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "batch_kernel");
    assert_eq!(v[0].line, 3);
    assert!(
        v[0].message.contains("hash_range_batch"),
        "{}",
        v[0].message
    );
}

#[test]
fn batch_kernel_clean_kernel_calls_and_scalar_update_pass() {
    let v = lint_one("sss-sketch", "batch_kernel_clean.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn batch_kernel_blessed_module_is_exempt() {
    let src = fixture("batch_kernel_bad.rs");
    let v = lint_sources(&[("sss-hash", "crates/hash/src/batch.rs", &src)], &opts());
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn atomic_ordering_bad_fires_on_seqcst_and_hot_path_fences() {
    let v = lint_one("sss-sketch", "atomic_ordering_bad.rs");
    assert!(v.iter().all(|x| x.rule == "atomic_ordering"), "{v:?}");
    let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![2, 8, 9], "{v:?}");
    assert!(v[0].message.contains("SeqCst"), "{}", v[0].message);
    assert!(
        v[1].message
            .contains("`Ordering::Release` on the hot path `update_batch`"),
        "{}",
        v[1].message
    );
    assert!(v[2].message.contains("Acquire"), "{}", v[2].message);
}

#[test]
fn atomic_ordering_clean_relaxed_pragma_and_cold_paths_pass() {
    let v = lint_one("sss-sketch", "atomic_ordering_clean.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn metric_registry_bad_fires_per_defect() {
    let v = lint_one("sss-obs", "metric_registry_bad.rs");
    assert!(v.iter().all(|x| x.rule == "metric_registry"), "{v:?}");
    assert_eq!(v.len(), 6, "{v:?}");
    assert!(
        v.iter()
            .any(|x| x.line == 3 && x.message.contains("not snake_case")),
        "{v:?}"
    );
    assert!(
        v.iter()
            .any(|x| x.line == 4 && x.message.contains("must end with `_total`")),
        "{v:?}"
    );
    assert!(
        v.iter()
            .any(|x| x.line == 5 && x.message.contains("`sss_` namespace")),
        "{v:?}"
    );
    assert!(
        v.iter()
            .any(|x| x.line == 6 && x.message.contains("unknown subsystem `frobnicator`")),
        "{v:?}"
    );
    assert!(
        v.iter()
            .any(|x| x.line == 7 && x.message.contains("unknown kind `Summary`")),
        "{v:?}"
    );
    assert!(
        v.iter()
            .any(|x| x.line == 9 && x.message.contains("already declared")),
        "{v:?}"
    );
}

#[test]
fn metric_registry_clean_is_clean() {
    let v = lint_one("sss-obs", "metric_registry_clean.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn duplicate_metric_across_files_fires() {
    let a = "metric_table! { A => Counter \"sss_obs_events_dropped_total\": \"one\"; }";
    let b = "metric_table! { B => Counter \"sss_obs_events_dropped_total\": \"two\"; }";
    let v = lint_sources(
        &[
            ("sss-obs", "metrics_a.rs", a),
            ("sss-obs", "metrics_b.rs", b),
        ],
        &opts(),
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "metric_registry");
    assert_eq!(v[0].path.to_string_lossy(), "metrics_b.rs");
    assert!(
        v[0].message.contains("already declared at metrics_a.rs:1"),
        "{}",
        v[0].message
    );
}

#[test]
fn pragma_silences_an_audited_exception() {
    let src = "\
pub fn decode(r: &mut Reader) -> Result<u16, CodecError> {
    // sss-lint: allow(no_panic_decode) — buffer length pinned by caller
    let tag = r.u16().unwrap();
    Ok(tag)
}
";
    let v = lint_sources(&[("sss-demo", "pragma.rs", src)], &opts());
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn pragma_only_silences_the_named_rule() {
    let src = "\
pub fn decode(r: &mut Reader) -> Result<u16, CodecError> {
    // sss-lint: allow(bounded_decode_alloc) — wrong rule named
    let tag = r.u16().unwrap();
    Ok(tag)
}
";
    let v = lint_sources(&[("sss-demo", "pragma.rs", src)], &opts());
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "no_panic_decode");
}

#[test]
fn test_code_is_exempt() {
    let src = "\
#[cfg(test)]
mod tests {
    fn decode(r: &mut Reader) -> u16 {
        r.u16().unwrap()
    }
}
";
    let v = lint_sources(&[("sss-demo", "testcode.rs", src)], &opts());
    assert!(v.is_empty(), "{v:?}");
}
