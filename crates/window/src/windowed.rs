//! The tumbling-bucket sliding window over the `Monitor` merge algebra.

use std::collections::VecDeque;
use std::fmt;

use sss_codec::{put_len, CodecError, Reader, WireCodec};
use sss_core::{Estimate, MergeError, Monitor, Statistic};
use sss_obs::{EventKind, MetricId};

use crate::query::{Alert, Query, QuerySpec};

/// Shape of a sliding window: how many tumbling buckets stay live, and
/// how many event-time ticks each bucket spans. The window covers the
/// last `buckets × bucket_span` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Number of live buckets `W` (≥ 1).
    pub buckets: usize,
    /// Event-time ticks per bucket (≥ 1).
    pub bucket_span: u64,
}

/// Upper bound on [`WindowConfig::buckets`]: the bucket count must fit
/// in 32 bits, so snapshot decode can tell a plausible shape from a
/// corrupted one. (Live buckets materialise lazily, so a wide window is
/// cheap until epochs actually see items.)
pub const MAX_WINDOW_BUCKETS: u64 = u32::MAX as u64;

impl WindowConfig {
    /// A window of `buckets` tumbling buckets of `bucket_span` ticks.
    ///
    /// # Panics
    /// If either dimension is zero, or `buckets` exceeds
    /// [`MAX_WINDOW_BUCKETS`].
    pub fn new(buckets: usize, bucket_span: u64) -> Self {
        assert!(buckets >= 1, "window needs at least one bucket");
        assert!(
            buckets as u64 <= MAX_WINDOW_BUCKETS,
            "window bucket count must fit in 32 bits"
        );
        assert!(bucket_span >= 1, "bucket span must be at least one tick");
        Self {
            buckets,
            bucket_span,
        }
    }
}

/// Why two windowed monitors refused to merge.
#[derive(Debug)]
pub enum WindowMergeError {
    /// Window shapes (bucket count or span) disagree.
    ConfigMismatch {
        /// Left shape.
        left: WindowConfig,
        /// Right shape.
        right: WindowConfig,
    },
    /// Both sides have started but sit at different epochs — merging
    /// would mix windows covering different time ranges. Align with
    /// [`WindowedMonitor::advance_to`] first.
    ClockMismatch {
        /// Left current epoch.
        left: u64,
        /// Right current epoch.
        right: u64,
    },
    /// A bucket pair (or the prototypes) failed the monitor merge
    /// validation.
    Monitor(MergeError),
}

impl fmt::Display for WindowMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowMergeError::ConfigMismatch { left, right } => write!(
                f,
                "window shapes disagree: {}x{} vs {}x{}",
                left.buckets, left.bucket_span, right.buckets, right.bucket_span
            ),
            WindowMergeError::ClockMismatch { left, right } => {
                write!(f, "window clocks disagree: epoch {left} vs {right}")
            }
            WindowMergeError::Monitor(e) => write!(f, "bucket merge: {e}"),
        }
    }
}

impl std::error::Error for WindowMergeError {}

impl From<MergeError> for WindowMergeError {
    fn from(e: MergeError) -> Self {
        WindowMergeError::Monitor(e)
    }
}

/// One tumbling bucket: a full sub-`Monitor` covering one epoch.
#[derive(Clone)]
struct Bucket {
    epoch: u64,
    monitor: Monitor,
}

/// Sliding-window statistics: a ring of tumbling buckets, each a full
/// sub-[`Monitor`] forked from a pristine prototype under the
/// seed-splitting contract (`fork_shard(epoch)`: sketch hashes stay
/// epoch-invariant so the merge algebra holds across buckets;
/// shard-local randomness reseeds per epoch).
///
/// Items route by event time: `epoch = ts / bucket_span`. When the
/// first item of a later epoch arrives, the window *rolls*: continuous
/// queries are evaluated on the fold as of the closing epoch, the
/// clock advances, and buckets older than `buckets` epochs retire
/// whole — retirement is `O(1)` bucket drops, never per-item undo.
/// Buckets materialise lazily (an epoch that saw no survivors costs
/// nothing), and items older than the live window are counted in
/// [`WindowedMonitor::late_dropped`] and ignored.
///
/// [`WindowedMonitor::fold`] merges the live buckets (ascending epoch,
/// into a pristine prototype clone) into one `Monitor` answering for
/// exactly the window — deterministic, and bitwise-reproducible for
/// the exact substrates.
#[derive(Clone)]
pub struct WindowedMonitor {
    /// Pristine fold identity and fork source; never ingests.
    prototype: Monitor,
    cfg: WindowConfig,
    /// `false` until the first ingest or explicit advance sets the clock.
    started: bool,
    cur_epoch: u64,
    /// Materialised live buckets, ascending epoch.
    buckets: VecDeque<Bucket>,
    queries: Vec<Query>,
    /// Alerts emitted since the last [`WindowedMonitor::take_alerts`].
    alerts: Vec<Alert>,
    late_dropped: u64,
    retired: u64,
    total_ingested: u64,
}

impl WindowedMonitor {
    /// Wrap a **pristine** monitor configuration into a sliding window.
    ///
    /// # Panics
    /// If `prototype` has already ingested samples (its state would
    /// leak into every bucket fork).
    pub fn new(prototype: Monitor, cfg: WindowConfig) -> Self {
        assert!(
            prototype.samples_seen() == 0,
            "windowed prototype must be pristine (saw {} samples)",
            prototype.samples_seen()
        );
        assert!(cfg.buckets >= 1 && cfg.bucket_span >= 1);
        Self {
            prototype,
            cfg,
            started: false,
            cur_epoch: 0,
            buckets: VecDeque::new(),
            queries: Vec::new(),
            alerts: Vec::new(),
            late_dropped: 0,
            retired: 0,
            total_ingested: 0,
        }
    }

    /// The window shape.
    #[inline]
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// The sampling rate the underlying monitors were built for.
    #[inline]
    pub fn p(&self) -> f64 {
        self.prototype.p()
    }

    /// The epoch of the newest (open) bucket. Meaningless before the
    /// first ingest or [`WindowedMonitor::advance_to`].
    #[inline]
    pub fn cur_epoch(&self) -> u64 {
        self.cur_epoch
    }

    /// Has the window seen an item or an explicit clock advance yet?
    #[inline]
    pub fn started(&self) -> bool {
        self.started
    }

    /// Which epoch an event-time tick falls into.
    #[inline]
    pub fn epoch_of(&self, ts: u64) -> u64 {
        ts / self.cfg.bucket_span
    }

    /// Number of materialised live buckets (≤ `cfg.buckets`; epochs
    /// that saw no items never materialise).
    #[inline]
    pub fn live_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Epochs of the materialised live buckets, ascending.
    pub fn bucket_epochs(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.epoch).collect()
    }

    /// Items dropped because they were older than the live window.
    #[inline]
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Buckets retired so far.
    #[inline]
    pub fn retired_buckets(&self) -> u64 {
        self.retired
    }

    /// Sampled items ingested over the window's whole lifetime
    /// (including long-retired buckets; excludes late drops).
    #[inline]
    pub fn total_ingested(&self) -> u64 {
        self.total_ingested
    }

    /// Sampled items currently inside the window.
    pub fn window_samples(&self) -> u64 {
        self.buckets.iter().map(|b| b.monitor.samples_seen()).sum()
    }

    /// The pristine prototype (label → statistic metadata for the
    /// decayed weighting).
    pub(crate) fn prototype_ref(&self) -> &Monitor {
        &self.prototype
    }

    /// `(epoch, bucket)` over the live buckets, ascending epoch.
    pub(crate) fn iter_buckets(&self) -> impl Iterator<Item = (u64, &Monitor)> {
        self.buckets.iter().map(|b| (b.epoch, &b.monitor))
    }

    /// Oldest epoch still inside the window.
    #[inline]
    fn oldest_live_epoch(&self) -> u64 {
        self.cur_epoch.saturating_sub(self.cfg.buckets as u64 - 1)
    }

    /// Register a continuous query, evaluated on every bucket rollover
    /// from now on. Alerts accumulate until drained with
    /// [`WindowedMonitor::take_alerts`].
    ///
    /// # Panics
    /// If the spec's parameters are out of range, its label is not
    /// registered in the prototype, or the name is already taken —
    /// all configuration bugs worth failing fast on.
    pub fn register_query(&mut self, spec: QuerySpec) {
        spec.assert_valid();
        assert!(
            self.prototype.estimate_labeled(&spec.label).is_some(),
            "query '{}' watches unregistered label '{}'",
            spec.name,
            spec.label
        );
        assert!(
            !self.queries.iter().any(|q| q.spec.name == spec.name),
            "query name '{}' already registered",
            spec.name
        );
        self.queries.push(Query::new(spec));
    }

    /// Registered query specs, in registration order.
    pub fn queries(&self) -> Vec<QuerySpec> {
        self.queries.iter().map(|q| q.spec.clone()).collect()
    }

    /// Drain the alerts emitted since the last call.
    pub fn take_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.alerts)
    }

    /// Alerts currently pending (not yet drained).
    pub fn pending_alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Ingest one sampled item observed at event time `ts`.
    pub fn ingest_at(&mut self, ts: u64, x: u64) {
        let epoch = self.epoch_of(ts);
        if !self.route_to(epoch) {
            return;
        }
        self.total_ingested += 1;
        self.bucket_mut(epoch).update(x);
    }

    /// Ingest a batch of sampled items sharing the event time `ts` —
    /// the hot path for feeds that arrive in time-ordered chunks (one
    /// bucket lookup per chunk instead of per item).
    pub fn ingest_batch_at(&mut self, ts: u64, xs: &[u64]) {
        if xs.is_empty() {
            return;
        }
        let epoch = self.epoch_of(ts);
        if !self.route_to(epoch) {
            self.late_dropped += xs.len() as u64 - 1;
            sss_obs::global().add(MetricId::WindowLateDropsTotal, xs.len() as u64 - 1);
            return;
        }
        self.total_ingested += xs.len() as u64;
        self.bucket_mut(epoch).update_batch(xs);
    }

    /// Advance the clock (rolls, evaluates queries, retires) so that
    /// `epoch` is the newest epoch, without ingesting anything — how a
    /// coordinator aligns shards, and how a quiet stream still closes
    /// its windows.
    pub fn advance_to(&mut self, epoch: u64) {
        if !self.started {
            self.started = true;
            self.cur_epoch = epoch;
            return;
        }
        if epoch > self.cur_epoch {
            self.roll_to(epoch);
        }
    }

    /// Roll/start the clock for an arriving item of `epoch`; `false`
    /// means the item is older than the live window (and was counted
    /// as one late drop).
    fn route_to(&mut self, epoch: u64) -> bool {
        if !self.started {
            self.started = true;
            self.cur_epoch = epoch;
            return true;
        }
        if epoch > self.cur_epoch {
            self.roll_to(epoch);
            return true;
        }
        if epoch < self.oldest_live_epoch() {
            self.late_dropped += 1;
            sss_obs::global().inc(MetricId::WindowLateDropsTotal);
            return false;
        }
        true
    }

    /// Advance `cur_epoch` to `target > cur_epoch`, closing one epoch
    /// at a time: queries run on the fold as of each closing epoch,
    /// then buckets that fell out retire. A jump past the whole window
    /// collapses to one evaluation + wholesale retirement, so sparse
    /// timestamps cannot make rolling `O(jump)` expensive.
    fn roll_to(&mut self, target: u64) {
        debug_assert!(self.started && target > self.cur_epoch);
        let obs = sss_obs::global();
        if target - self.cur_epoch >= self.cfg.buckets as u64 {
            // Every live bucket falls out regardless of the epochs in
            // between: evaluate the pre-jump window once, retire it
            // wholesale. Query histories record the gap as a single
            // transition rather than one entry per empty epoch.
            self.eval_queries();
            let retired_now = self.buckets.len() as u64;
            self.retired += retired_now;
            self.buckets.clear();
            self.cur_epoch = target;
            obs.inc(MetricId::WindowRolloversTotal);
            obs.add(MetricId::WindowRetiredBucketsTotal, retired_now);
            obs.event(EventKind::BucketRollover, target, retired_now, "jump");
            return;
        }
        let mut rolls = 0u64;
        let mut retired_now = 0u64;
        while self.cur_epoch < target {
            self.eval_queries();
            self.cur_epoch += 1;
            rolls += 1;
            let oldest = self.oldest_live_epoch();
            while self.buckets.front().is_some_and(|b| b.epoch < oldest) {
                self.buckets.pop_front();
                self.retired += 1;
                retired_now += 1;
            }
        }
        obs.add(MetricId::WindowRolloversTotal, rolls);
        obs.add(MetricId::WindowRetiredBucketsTotal, retired_now);
        obs.event(EventKind::BucketRollover, target, retired_now, "");
    }

    fn eval_queries(&mut self) {
        if self.queries.is_empty() {
            return;
        }
        let fold = self.fold();
        for q in &mut self.queries {
            if let Some(alert) = q.observe(self.cur_epoch, &fold) {
                let obs = sss_obs::global();
                obs.inc(MetricId::WindowAlertsTotal);
                obs.event(EventKind::AlertFired, alert.epoch, 0, alert.query.as_str());
                self.alerts.push(alert);
            }
        }
    }

    /// The live bucket for `epoch`, materialising it on first use.
    fn bucket_mut(&mut self, epoch: u64) -> &mut Monitor {
        debug_assert!(epoch <= self.cur_epoch && epoch >= self.oldest_live_epoch());
        match self.buckets.binary_search_by(|b| b.epoch.cmp(&epoch)) {
            Ok(i) => &mut self.buckets[i].monitor,
            Err(i) => {
                // fork_shard(epoch): sketch hash seeds stay invariant
                // (bucket merges remain exact), reservoir randomness
                // re-derives per epoch — and the fork is a pure
                // function of (prototype, epoch), so a restored window
                // materialises bitwise-identical buckets.
                let monitor = self.prototype.fork_shard(epoch);
                self.buckets.insert(i, Bucket { epoch, monitor });
                &mut self.buckets[i].monitor
            }
        }
    }

    /// Merge the live buckets into one [`Monitor`] answering for
    /// exactly the current window: a pristine prototype clone folded
    /// with each bucket in ascending epoch order — a deterministic
    /// fold, bitwise-reproducible run to run.
    pub fn fold(&self) -> Monitor {
        let mut acc = self.prototype.clone();
        for b in &self.buckets {
            acc.merge(&b.monitor);
        }
        acc
    }

    /// The windowed estimate for `stat` (`None` if unregistered).
    pub fn estimate(&self, stat: Statistic) -> Option<Estimate> {
        self.fold().estimate(stat)
    }

    /// The windowed estimate under an explicit label.
    pub fn estimate_labeled(&self, label: &str) -> Option<Estimate> {
        self.fold().estimate_labeled(label)
    }

    /// All windowed estimates as `(label, estimate)` rows.
    pub fn report(&self) -> Vec<(String, Estimate)> {
        self.fold().report()
    }

    /// Total resident bytes across prototype and live buckets.
    pub fn space_bytes(&self) -> usize {
        self.prototype.space_bytes()
            + self
                .buckets
                .iter()
                .map(|b| b.monitor.space_bytes())
                .sum::<usize>()
    }

    /// A per-shard windowed monitor for worker `shard` of a sharded
    /// deployment: the prototype forks under `split_seed` (so bucket
    /// sketches across shards stay merge-compatible while shard-local
    /// randomness diverges), the window shape and clock carry over.
    /// Continuous queries do **not** fork — a shard sees only its
    /// slice of the traffic, so query evaluation belongs to the
    /// coordinator's merged window.
    ///
    /// # Panics
    /// If this window has already ingested — forked state would
    /// double-count on the merge back.
    pub fn fork_shard(&self, shard: u64) -> WindowedMonitor {
        assert!(
            self.buckets.is_empty() && self.total_ingested == 0,
            "fork_shard requires an empty window"
        );
        WindowedMonitor {
            prototype: self.prototype.fork_shard(shard),
            cfg: self.cfg,
            started: self.started,
            cur_epoch: self.cur_epoch,
            buckets: VecDeque::new(),
            queries: Vec::new(),
            alerts: Vec::new(),
            late_dropped: 0,
            retired: 0,
            total_ingested: 0,
        }
    }

    /// Merge a shard's window that observed a disjoint slice of the
    /// same timeline: buckets pair up **by epoch** and merge through
    /// `Monitor::try_merge`; epochs only one side materialised copy
    /// over. Validation happens before any mutation, so an `Err`
    /// leaves `self` untouched. Both clocks must agree (align with
    /// [`WindowedMonitor::advance_to`] first) — that is the epoch
    /// contract that keeps coordinator folds bitwise-deterministic:
    /// retirement boundaries come from shared event time, never from
    /// per-shard item counts.
    ///
    /// `other`'s queries and pending alerts are ignored: the query
    /// surface lives on the coordinator.
    pub fn try_merge(&mut self, other: &WindowedMonitor) -> Result<(), WindowMergeError> {
        if self.cfg != other.cfg {
            return Err(WindowMergeError::ConfigMismatch {
                left: self.cfg,
                right: other.cfg,
            });
        }
        if self.started && other.started && self.cur_epoch != other.cur_epoch {
            return Err(WindowMergeError::ClockMismatch {
                left: self.cur_epoch,
                right: other.cur_epoch,
            });
        }
        // Prototype compatibility check catches shape/rate/seed
        // divergence even when `other` only brings unpaired buckets.
        self.prototype.clone().try_merge(&other.prototype)?;
        // Stage the bucket merges on a scratch ring so a failing pair
        // cannot leave a half-merged window.
        let mut merged = self.buckets.clone();
        for ob in &other.buckets {
            match merged.binary_search_by(|b| b.epoch.cmp(&ob.epoch)) {
                Ok(i) => merged[i].monitor.try_merge(&ob.monitor)?,
                Err(i) => merged.insert(i, ob.clone()),
            }
        }
        self.buckets = merged;
        if !self.started {
            self.started = other.started;
            self.cur_epoch = other.cur_epoch;
        }
        self.late_dropped += other.late_dropped;
        self.retired += other.retired;
        self.total_ingested += other.total_ingested;
        Ok(())
    }

    /// [`WindowedMonitor::try_merge`] that panics on incompatibility.
    pub fn merge(&mut self, other: &WindowedMonitor) {
        if let Err(e) = self.try_merge(other) {
            panic!("windowed merge: {e}");
        }
    }

    /// Serialize the whole window — clock, bucket ring, query registry
    /// with runtime state, pending alerts — as a framed wire snapshot.
    ///
    /// # Errors
    /// [`CodecError::UnknownTag`] if the prototype registers an
    /// estimator outside the decode registry (surfaced now, not at
    /// restore time), exactly like [`Monitor::checkpoint`].
    pub fn checkpoint(&self) -> Result<Vec<u8>, CodecError> {
        // Every bucket is a fork of the prototype, so one registry
        // check covers the whole ring without a throwaway encode.
        self.prototype.validate_restorable()?;
        Ok(self.encode_framed())
    }

    /// Rebuild a window from [`WindowedMonitor::checkpoint`] bytes.
    /// The restored window is observationally identical: same fold,
    /// same pending alerts, and continued ingestion (bucket forks are
    /// pure functions of the prototype) matches the never-serialized
    /// run exactly.
    pub fn restore(bytes: &[u8]) -> Result<WindowedMonitor, CodecError> {
        WindowedMonitor::decode_framed(bytes)
    }
}

fn decode_monitor_section(r: &mut Reader) -> Result<Monitor, CodecError> {
    let len = r.len_prefix(1)?;
    // The section reader inherits the frame's format version so nested
    // monitor payloads decode under the layout the envelope announced.
    let mut section = Reader::with_version(r.take(len)?, r.version());
    let m = Monitor::decode(&mut section)?;
    section.expect_empty()?;
    Ok(m)
}

fn encode_monitor_section(out: &mut Vec<u8>, m: &Monitor) {
    let mut payload = Vec::new();
    m.encode_into(&mut payload);
    put_len(out, payload.len());
    out.extend_from_slice(&payload);
}

impl WireCodec for WindowedMonitor {
    const WIRE_TAG: u16 = 0x0601;

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_len(out, self.cfg.buckets);
        self.cfg.bucket_span.encode_into(out);
        self.started.encode_into(out);
        self.cur_epoch.encode_into(out);
        self.late_dropped.encode_into(out);
        self.retired.encode_into(out);
        self.total_ingested.encode_into(out);
        encode_monitor_section(out, &self.prototype);
        put_len(out, self.buckets.len());
        for b in &self.buckets {
            b.epoch.encode_into(out);
            encode_monitor_section(out, &b.monitor);
        }
        put_len(out, self.queries.len());
        for q in &self.queries {
            q.encode_into(out);
        }
        put_len(out, self.alerts.len());
        for a in &self.alerts {
            a.encode_into(out);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        // The bucket capacity is a config scalar, not a count of
        // elements present in the payload, so it gets a plain u64 with
        // its own sanity bound — `len_prefix`'s allocation guard would
        // reject any window wider than its snapshot's byte size (e.g. a
        // day of one-tick buckets checkpointed while sparse).
        let cap = r.u64()?;
        let bucket_span = r.u64()?;
        if !(1..=MAX_WINDOW_BUCKETS).contains(&cap) || bucket_span < 1 {
            return Err(CodecError::Invalid {
                what: "window shape must have 1..=2^32-1 buckets and span >= 1",
            });
        }
        let cap = cap as usize;
        let started = r.bool()?;
        let cur_epoch = r.u64()?;
        let late_dropped = r.u64()?;
        let retired = r.u64()?;
        let total_ingested = r.u64()?;
        let prototype = decode_monitor_section(r)?;
        if prototype.samples_seen() != 0 {
            return Err(CodecError::Invalid {
                what: "window prototype must be pristine",
            });
        }
        let count = r.len_prefix(9)?;
        if count > cap {
            return Err(CodecError::Invalid {
                what: "more live buckets than the window holds",
            });
        }
        if !started && count > 0 {
            return Err(CodecError::Invalid {
                what: "unstarted window cannot carry buckets",
            });
        }
        let oldest = cur_epoch.saturating_sub(cap as u64 - 1);
        let mut buckets: VecDeque<Bucket> = VecDeque::with_capacity(count);
        for _ in 0..count {
            let epoch = r.u64()?;
            if epoch > cur_epoch || epoch < oldest {
                return Err(CodecError::Invalid {
                    what: "bucket epoch outside the live window",
                });
            }
            if buckets.back().is_some_and(|b| b.epoch >= epoch) {
                return Err(CodecError::Invalid {
                    what: "bucket epochs must be strictly ascending",
                });
            }
            let monitor = decode_monitor_section(r)?;
            buckets.push_back(Bucket { epoch, monitor });
        }
        let qcount = r.len_prefix(4)?;
        let mut queries: Vec<Query> = Vec::with_capacity(qcount);
        for _ in 0..qcount {
            let q = Query::decode(r)?;
            if prototype.estimate_labeled(&q.spec.label).is_none() {
                return Err(CodecError::Invalid {
                    what: "query watches a label the prototype lacks",
                });
            }
            if queries.iter().any(|other| other.spec.name == q.spec.name) {
                return Err(CodecError::Invalid {
                    what: "duplicate query name",
                });
            }
            queries.push(q);
        }
        let acount = r.len_prefix(4)?;
        let mut alerts = Vec::with_capacity(acount);
        for _ in 0..acount {
            alerts.push(Alert::decode(r)?);
        }
        Ok(WindowedMonitor {
            prototype,
            cfg: WindowConfig {
                buckets: cap,
                bucket_span,
            },
            started,
            cur_epoch,
            buckets,
            queries,
            alerts,
            late_dropped,
            retired,
            total_ingested,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AlertKind;
    use sss_core::MonitorBuilder;

    fn proto(p: f64) -> Monitor {
        MonitorBuilder::with_seed(p, 77)
            .f0(0.05)
            .fk(2)
            .entropy(256)
            .build()
    }

    fn windowed(p: f64, buckets: usize, span: u64) -> WindowedMonitor {
        WindowedMonitor::new(proto(p), WindowConfig::new(buckets, span))
    }

    #[test]
    fn items_route_to_epochs_and_old_buckets_retire() {
        let mut w = windowed(1.0, 3, 10);
        for ts in 0..60u64 {
            w.ingest_at(ts, ts % 7);
        }
        assert_eq!(w.cur_epoch(), 5);
        assert_eq!(w.bucket_epochs(), vec![3, 4, 5]);
        assert_eq!(w.retired_buckets(), 3);
        assert_eq!(w.window_samples(), 30);
        assert_eq!(w.total_ingested(), 60);
    }

    #[test]
    fn late_items_within_window_route_late_beyond_drop() {
        let mut w = windowed(1.0, 3, 10);
        w.ingest_at(59, 1); // epoch 5; window = {3,4,5}
        w.ingest_at(35, 2); // epoch 3: late but live
        assert_eq!(w.bucket_epochs(), vec![3, 5]);
        assert_eq!(w.late_dropped(), 0);
        w.ingest_at(29, 3); // epoch 2: fell out
        assert_eq!(w.late_dropped(), 1);
        assert_eq!(w.window_samples(), 2);
    }

    #[test]
    fn a_jump_past_the_window_retires_everything_at_once() {
        let mut w = windowed(1.0, 4, 1);
        for e in 0..4u64 {
            w.ingest_at(e, e);
        }
        assert_eq!(w.live_buckets(), 4);
        w.ingest_at(1000, 9);
        assert_eq!(w.bucket_epochs(), vec![1000]);
        assert_eq!(w.retired_buckets(), 4);
        let f0 = w.estimate(Statistic::F0).expect("registered").value;
        assert_eq!(f0, 1.0, "only the post-jump item is in the window");
    }

    #[test]
    fn fold_matches_a_fresh_monitor_fed_the_window_items() {
        let mut w = windowed(1.0, 2, 100);
        let items: Vec<u64> = (0..400u64).map(|i| i * i % 257).collect();
        for (i, &x) in items.iter().enumerate() {
            w.ingest_at(i as u64, x);
        }
        // Window covers epochs {2, 3} = items 200..400.
        let mut fresh = proto(1.0);
        fresh.update_batch(&items[200..]);
        let fold = w.fold();
        for stat in [Statistic::F0, Statistic::Fk(2)] {
            let a = fold.estimate(stat).expect("registered").value;
            let b = fresh.estimate(stat).expect("registered").value;
            assert_eq!(a.to_bits(), b.to_bits(), "{stat} exact substrate");
        }
        assert_eq!(fold.samples_seen(), fresh.samples_seen());
    }

    #[test]
    fn empty_window_folds_to_the_prototype() {
        let w = windowed(0.5, 4, 10);
        assert_eq!(w.fold().samples_seen(), 0);
        assert_eq!(w.estimate(Statistic::F0).expect("registered").value, 0.0);
    }

    #[test]
    fn batch_and_item_ingestion_agree_bitwise() {
        let items: Vec<u64> = (0..500u64).map(|i| (i * 31) % 97).collect();
        let mut by_item = windowed(1.0, 3, 50);
        let mut by_batch = windowed(1.0, 3, 50);
        for (i, &x) in items.iter().enumerate() {
            by_item.ingest_at(i as u64, x);
        }
        for (c, chunk) in items.chunks(50).enumerate() {
            by_batch.ingest_batch_at(c as u64 * 50, chunk);
        }
        let (a, b) = (by_item.fold(), by_batch.fold());
        for ((la, ea), (lb, eb)) in a.report().iter().zip(b.report().iter()) {
            assert_eq!(la, lb);
            assert_eq!(ea.value.to_bits(), eb.value.to_bits(), "{la}");
        }
    }

    #[test]
    fn advance_without_items_closes_epochs_and_fires_queries() {
        let mut w = windowed(1.0, 2, 10);
        w.register_query(QuerySpec::threshold("nonzero", "F0", 0.5, true));
        for ts in 0..10u64 {
            w.ingest_at(ts, ts);
        }
        w.advance_to(3);
        let alerts = w.take_alerts();
        // Rollovers at epochs 0 (fold has 10 distinct) and the jump's
        // single evaluation; both see a nonempty window.
        assert!(!alerts.is_empty());
        assert!(alerts.iter().all(|a| a.kind == AlertKind::Threshold));
        assert_eq!(w.cur_epoch(), 3);
        assert_eq!(w.live_buckets(), 0, "quiet epochs retired the data");
    }

    #[test]
    fn shard_forks_align_and_merge_bitwise() {
        let items: Vec<u64> = (0..600u64).map(|i| (i * 13) % 101).collect();
        let base = windowed(1.0, 3, 100);

        // Two shards split the stream round-robin over the same timeline.
        let mut shards = [base.fork_shard(0), base.fork_shard(1)];
        for (i, &x) in items.iter().enumerate() {
            shards[i % 2].ingest_at(i as u64, x);
        }
        let top = shards.iter().map(|s| s.cur_epoch()).max().expect("two");
        for s in &mut shards {
            s.advance_to(top);
        }
        let mut merged = base.clone();
        for s in &shards {
            merged.try_merge(s).expect("epoch-aligned shards merge");
        }

        // The same items through one unsharded window of the same
        // timeline cover the same epochs; exact substrates agree.
        let mut single = base.fork_shard(0);
        for (i, &x) in items.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
            single.ingest_at(i as u64, x);
        }
        let mut single_b = base.fork_shard(1);
        for (i, &x) in items.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
            single_b.ingest_at(i as u64, x);
        }
        single.advance_to(top);
        single_b.advance_to(top);
        let mut merged2 = base.clone();
        merged2.try_merge(&single).expect("merge");
        merged2.try_merge(&single_b).expect("merge");

        for ((la, ea), (lb, eb)) in merged.report().iter().zip(merged2.report().iter()) {
            assert_eq!(la, lb);
            assert_eq!(
                ea.value.to_bits(),
                eb.value.to_bits(),
                "{la}: same shards, same fold order => bitwise"
            );
        }
        // Window = epochs {3, 4, 5} of six: exactly the last 300 items.
        assert_eq!(merged.window_samples(), 300);
    }

    #[test]
    fn merge_refuses_misaligned_clocks_and_shapes() {
        let base = windowed(1.0, 3, 10);
        let mut a = base.fork_shard(0);
        let mut b = base.fork_shard(1);
        a.ingest_at(5, 1); // epoch 0
        b.ingest_at(35, 2); // epoch 3
        let mut acc = base.clone();
        acc.try_merge(&a).expect("first shard adopts the clock");
        match acc.try_merge(&b) {
            Err(WindowMergeError::ClockMismatch { left: 0, right: 3 }) => {}
            other => panic!("expected clock mismatch, got {other:?}"),
        }
        let other_shape = windowed(1.0, 4, 10);
        match acc.try_merge(&other_shape) {
            Err(WindowMergeError::ConfigMismatch { .. }) => {}
            other => panic!("expected config mismatch, got {other:?}"),
        }
    }

    #[test]
    fn wire_round_trip_is_byte_identical() {
        let mut w = windowed(0.5, 3, 20);
        w.register_query(QuerySpec::delta_vs_prev("d", "F0", 0.5));
        let mut sampler = sss_stream::BernoulliSampler::new(0.5, 3);
        for ts in 0..200u64 {
            if sampler.keep() {
                w.ingest_at(ts, ts % 31);
            }
        }
        let bytes = w.checkpoint().expect("checkpoint");
        let back = WindowedMonitor::restore(&bytes).expect("restore");
        assert_eq!(back.checkpoint().expect("re-checkpoint"), bytes);
        assert_eq!(back.cur_epoch(), w.cur_epoch());
        assert_eq!(back.bucket_epochs(), w.bucket_epochs());
        assert_eq!(back.queries(), w.queries());
    }

    #[test]
    fn wide_sparse_window_checkpoint_restores() {
        // Regression: the bucket capacity is a config scalar, so a
        // window far wider than its snapshot's byte size (a day of
        // one-tick buckets, one of them live) must still restore.
        let mut w = windowed(1.0, 86_400, 1);
        w.ingest_at(3, 7);
        let bytes = w.checkpoint().expect("checkpoint");
        let back = WindowedMonitor::restore(&bytes).expect("wide window restores");
        assert_eq!(back.checkpoint().expect("re-checkpoint"), bytes);
        assert_eq!(back.config(), w.config());
        assert_eq!(back.bucket_epochs(), w.bucket_epochs());
    }

    #[test]
    fn long_change_point_history_survives_restore() {
        // Regression: a change-point history larger than the bytes that
        // happen to follow it in the snapshot is still a valid config.
        let mut w = windowed(1.0, 4, 10);
        w.register_query(QuerySpec::change_point("cp", "F0", 50, 3.0));
        let bytes = w.checkpoint().expect("checkpoint");
        let back = WindowedMonitor::restore(&bytes).expect("fresh long-history query restores");
        assert_eq!(back.queries(), w.queries());
    }

    #[test]
    fn corrupt_snapshots_are_rejected_with_typed_errors() {
        let mut w = windowed(1.0, 2, 10);
        for ts in 0..40u64 {
            w.ingest_at(ts, ts);
        }
        let bytes = w.checkpoint().expect("checkpoint");
        // Truncation anywhere inside the payload must error, never panic.
        for cut in [bytes.len() - 1, bytes.len() / 2, 25] {
            assert!(WindowedMonitor::restore(&bytes[..cut]).is_err());
        }
    }

    #[test]
    #[should_panic(expected = "pristine")]
    fn ingested_prototype_is_rejected() {
        let mut m = proto(1.0);
        m.update(3);
        let _ = WindowedMonitor::new(m, WindowConfig::new(2, 10));
    }

    #[test]
    #[should_panic(expected = "unregistered label")]
    fn query_on_unknown_label_is_rejected() {
        let mut w = windowed(1.0, 2, 10);
        w.register_query(QuerySpec::threshold("t", "no_such", 1.0, true));
    }
}
