//! The continuous-query surface: registered queries evaluated on every
//! bucket rollover, emitting typed [`Alert`]s.
//!
//! A query watches one estimator label of the window fold (`"entropy"`,
//! `"F0"`, …). Evaluation happens exactly once per closed epoch, on the
//! fold *as of* that epoch — so a query sees the same deterministic
//! sequence of values whether the window ran live, was checkpointed and
//! restored mid-stream, or was replayed from a transcript. Query
//! runtime state (previous value, change-point history) is part of the
//! window's wire snapshot for exactly that reason.

use std::collections::VecDeque;

use sss_codec::{put_len, CodecError, Reader, WireCodec};
use sss_core::Monitor;

/// Upper bound on [`QueryKind::ChangePoint`]'s `history`: the rolling
/// buffer grows to `history` floats at runtime, so a sane fixed cap
/// keeps both registration and snapshot decode from accepting a
/// nonsense length.
pub const MAX_CHANGE_POINT_HISTORY: usize = 1 << 20;

/// What a registered query tests on each rollover.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// Fire when the watched estimate crosses `level` (`above` picks
    /// the direction).
    Threshold {
        /// The fixed level to compare against.
        level: f64,
        /// `true`: fire on `value > level`; `false`: on `value < level`.
        above: bool,
    },
    /// Fire when the estimate moved by at least `rel_change` (relative)
    /// versus the previous window — i.e. versus the fold one rollover
    /// ago.
    DeltaVsPrev {
        /// Minimum relative change `|v − prev| / |prev|` that fires.
        rel_change: f64,
    },
    /// Fire when the estimate deviates from the rolling mean of the
    /// last `history` rollovers by more than `z` standard deviations —
    /// the classic lightweight change-point test.
    ChangePoint {
        /// Rolling history length (evaluation starts once it is full).
        history: usize,
        /// Deviation threshold in standard deviations.
        z: f64,
    },
}

impl QueryKind {
    fn validate(&self) -> Result<(), &'static str> {
        match self {
            QueryKind::Threshold { level, .. } if !level.is_finite() => {
                Err("threshold level must be finite")
            }
            QueryKind::DeltaVsPrev { rel_change } if rel_change.is_nan() || *rel_change <= 0.0 => {
                Err("delta rel_change must be > 0")
            }
            QueryKind::ChangePoint { history, z }
                if *history < 2
                    || *history > MAX_CHANGE_POINT_HISTORY
                    || z.is_nan()
                    || *z <= 0.0 =>
            {
                Err("change-point needs history in 2..=2^20 and z > 0")
            }
            _ => Ok(()),
        }
    }
}

/// A registered continuous query: a name, the estimator label it
/// watches, and the test to run on each rollover.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Caller-chosen name, echoed in alerts.
    pub name: String,
    /// The estimator label in the window's monitors (e.g. `"entropy"`).
    pub label: String,
    /// The rollover test.
    pub kind: QueryKind,
}

impl QuerySpec {
    /// A threshold query.
    pub fn threshold(name: &str, label: &str, level: f64, above: bool) -> Self {
        Self {
            name: name.into(),
            label: label.into(),
            kind: QueryKind::Threshold { level, above },
        }
    }

    /// A delta-vs-previous-window query.
    pub fn delta_vs_prev(name: &str, label: &str, rel_change: f64) -> Self {
        Self {
            name: name.into(),
            label: label.into(),
            kind: QueryKind::DeltaVsPrev { rel_change },
        }
    }

    /// A rolling-z-score change-point query.
    pub fn change_point(name: &str, label: &str, history: usize, z: f64) -> Self {
        Self {
            name: name.into(),
            label: label.into(),
            kind: QueryKind::ChangePoint { history, z },
        }
    }

    pub(crate) fn assert_valid(&self) {
        if let Err(what) = self.kind.validate() {
            panic!("query '{}': {what}", self.name);
        }
    }
}

/// Which test fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A [`QueryKind::Threshold`] crossing.
    Threshold,
    /// A [`QueryKind::DeltaVsPrev`] jump.
    Delta,
    /// A [`QueryKind::ChangePoint`] deviation.
    ChangePoint,
}

/// A typed alert emitted by a continuous query at a bucket rollover.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Name of the query that fired.
    pub query: String,
    /// The estimator label it watches.
    pub label: String,
    /// The epoch whose rollover triggered the evaluation.
    pub epoch: u64,
    /// The watched estimate on the window fold at that rollover.
    pub value: f64,
    /// What the value was compared against: the threshold level, the
    /// previous window's value, or the rolling mean.
    pub baseline: f64,
    /// Which test fired.
    pub kind: AlertKind,
}

/// A registered query plus its rollover-to-rollover runtime state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Query {
    pub(crate) spec: QuerySpec,
    /// The watched value at the previous rollover.
    prev: Option<f64>,
    /// Rolling history for change-point queries (most recent last).
    history: VecDeque<f64>,
}

impl Query {
    pub(crate) fn new(spec: QuerySpec) -> Self {
        Self {
            spec,
            prev: None,
            history: VecDeque::new(),
        }
    }

    /// Evaluate against the window fold at `epoch`'s rollover, update
    /// the runtime state, and return the alert if the test fired.
    pub(crate) fn observe(&mut self, epoch: u64, fold: &Monitor) -> Option<Alert> {
        // Registration validated the label against the prototype, so a
        // missing estimate cannot happen on a well-formed window.
        let value = fold.estimate_labeled(&self.spec.label)?.value;
        let alert = |baseline: f64, kind: AlertKind| Alert {
            query: self.spec.name.clone(),
            label: self.spec.label.clone(),
            epoch,
            value,
            baseline,
            kind,
        };
        let fired = match &self.spec.kind {
            QueryKind::Threshold { level, above } => {
                let crossed = if *above {
                    value > *level
                } else {
                    value < *level
                };
                crossed.then(|| alert(*level, AlertKind::Threshold))
            }
            QueryKind::DeltaVsPrev { rel_change } => self.prev.and_then(|prev| {
                let denom = prev.abs().max(f64::MIN_POSITIVE);
                ((value - prev).abs() / denom >= *rel_change).then(|| alert(prev, AlertKind::Delta))
            }),
            QueryKind::ChangePoint { history, z } => {
                if self.history.len() < *history {
                    None
                } else {
                    let n = self.history.len() as f64;
                    let mean = self.history.iter().sum::<f64>() / n;
                    let var = self
                        .history
                        .iter()
                        .map(|v| (v - mean) * (v - mean))
                        .sum::<f64>()
                        / n;
                    // Floor the deviation scale so a perfectly flat
                    // history still admits a finite trigger band.
                    let sd = var.sqrt().max(1e-9 * mean.abs().max(1.0));
                    ((value - mean).abs() > *z * sd).then(|| alert(mean, AlertKind::ChangePoint))
                }
            }
        };
        self.prev = Some(value);
        if let QueryKind::ChangePoint { history, .. } = &self.spec.kind {
            self.history.push_back(value);
            while self.history.len() > *history {
                self.history.pop_front();
            }
        }
        fired
    }
}

impl WireCodec for QuerySpec {
    const WIRE_TAG: u16 = 0x0603;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        self.label.encode_into(out);
        match &self.kind {
            QueryKind::Threshold { level, above } => {
                out.push(0);
                level.encode_into(out);
                above.encode_into(out);
            }
            QueryKind::DeltaVsPrev { rel_change } => {
                out.push(1);
                rel_change.encode_into(out);
            }
            QueryKind::ChangePoint { history, z } => {
                out.push(2);
                put_len(out, *history);
                z.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let name = String::decode(r)?;
        let label = String::decode(r)?;
        let kind = match r.u8()? {
            0 => QueryKind::Threshold {
                level: r.f64()?,
                above: r.bool()?,
            },
            1 => QueryKind::DeltaVsPrev {
                rel_change: r.f64()?,
            },
            2 => {
                // `history` is a config scalar, not a count of elements
                // in this payload (the runtime buffer is serialized
                // separately in `Query`), so it must not go through
                // `len_prefix`'s remaining-bytes allocation guard —
                // validate() below bounds it instead.
                let history = r.u64()?;
                if history > MAX_CHANGE_POINT_HISTORY as u64 {
                    return Err(CodecError::Invalid {
                        what: "query parameters out of range",
                    });
                }
                QueryKind::ChangePoint {
                    history: history as usize,
                    z: r.f64()?,
                }
            }
            _ => {
                return Err(CodecError::Invalid {
                    what: "unknown query kind discriminant",
                })
            }
        };
        if kind.validate().is_err() {
            return Err(CodecError::Invalid {
                what: "query parameters out of range",
            });
        }
        Ok(QuerySpec { name, label, kind })
    }
}

impl WireCodec for Query {
    const WIRE_TAG: u16 = QuerySpec::WIRE_TAG;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.spec.encode_into(out);
        self.prev.encode_into(out);
        put_len(out, self.history.len());
        for v in &self.history {
            v.encode_into(out);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let spec = QuerySpec::decode(r)?;
        let prev = Option::<f64>::decode(r)?;
        let len = r.len_prefix(8)?;
        let cap = match &spec.kind {
            QueryKind::ChangePoint { history, .. } => *history,
            _ => 0,
        };
        if len > cap {
            return Err(CodecError::Invalid {
                what: "query history longer than its configured window",
            });
        }
        let mut history = VecDeque::with_capacity(len);
        for _ in 0..len {
            history.push_back(r.f64()?);
        }
        Ok(Query {
            spec,
            prev,
            history,
        })
    }
}

impl WireCodec for Alert {
    const WIRE_TAG: u16 = 0x0604;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.query.encode_into(out);
        self.label.encode_into(out);
        self.epoch.encode_into(out);
        self.value.encode_into(out);
        self.baseline.encode_into(out);
        out.push(match self.kind {
            AlertKind::Threshold => 0,
            AlertKind::Delta => 1,
            AlertKind::ChangePoint => 2,
        });
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(Alert {
            query: String::decode(r)?,
            label: String::decode(r)?,
            epoch: r.u64()?,
            value: r.f64()?,
            baseline: r.f64()?,
            kind: match r.u8()? {
                0 => AlertKind::Threshold,
                1 => AlertKind::Delta,
                2 => AlertKind::ChangePoint,
                _ => {
                    return Err(CodecError::Invalid {
                        what: "unknown alert kind discriminant",
                    })
                }
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_core::MonitorBuilder;

    fn fold_with(items: &[u64]) -> Monitor {
        let mut m = MonitorBuilder::with_seed(1.0, 5).f0(0.05).build();
        m.update_batch(items);
        m
    }

    #[test]
    fn threshold_fires_in_the_requested_direction() {
        let mut q = Query::new(QuerySpec::threshold("big", "F0", 50.0, true));
        let low = fold_with(&(0..10u64).collect::<Vec<_>>());
        let high = fold_with(&(0..100u64).collect::<Vec<_>>());
        assert!(q.observe(0, &low).is_none());
        let a = q.observe(1, &high).expect("fires above level");
        assert_eq!(a.kind, AlertKind::Threshold);
        assert_eq!(a.epoch, 1);
        assert_eq!(a.baseline, 50.0);
        assert!(a.value > 50.0);

        let mut below = Query::new(QuerySpec::threshold("small", "F0", 50.0, false));
        assert!(below.observe(0, &high).is_none());
        assert!(below.observe(1, &low).is_some());
    }

    #[test]
    fn delta_needs_a_previous_window() {
        let mut q = Query::new(QuerySpec::delta_vs_prev("jump", "F0", 0.5));
        let low = fold_with(&(0..20u64).collect::<Vec<_>>());
        let high = fold_with(&(0..200u64).collect::<Vec<_>>());
        assert!(q.observe(0, &high).is_none(), "first rollover: no baseline");
        assert!(q.observe(1, &high).is_none(), "no change");
        let a = q.observe(2, &low).expect("large relative drop fires");
        assert_eq!(a.kind, AlertKind::Delta);
        assert!(a.baseline > a.value);
    }

    #[test]
    fn change_point_waits_for_history_then_fires_on_deviation() {
        let mut q = Query::new(QuerySpec::change_point("cp", "F0", 3, 4.0));
        let calm = fold_with(&(0..40u64).collect::<Vec<_>>());
        let spike = fold_with(&(0..400u64).collect::<Vec<_>>());
        for epoch in 0..3 {
            assert!(q.observe(epoch, &calm).is_none(), "history still filling");
        }
        assert!(q.observe(3, &calm).is_none(), "no deviation");
        let a = q.observe(4, &spike).expect("deviation fires");
        assert_eq!(a.kind, AlertKind::ChangePoint);
        assert!((a.baseline - a.value).abs() > 100.0);
    }

    #[test]
    fn query_state_round_trips_on_the_wire() {
        let mut q = Query::new(QuerySpec::change_point("cp", "F0", 4, 2.0));
        let fold = fold_with(&(0..30u64).collect::<Vec<_>>());
        for epoch in 0..3 {
            let _ = q.observe(epoch, &fold);
        }
        let bytes = q.encode();
        let back = Query::decode_slice(&bytes).expect("decodes");
        assert_eq!(back, q);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn change_point_history_decodes_as_a_scalar_not_a_length() {
        // Regression: history 50 exceeds the bytes remaining after it
        // in a bare spec encoding, which must not matter — it is a
        // config knob, not an element count.
        let spec = QuerySpec::change_point("cp", "F0", 50, 3.0);
        let back = QuerySpec::decode_slice(&spec.encode()).expect("decodes");
        assert_eq!(back, spec);

        let absurd = QuerySpec {
            name: "cp".into(),
            label: "F0".into(),
            kind: QueryKind::ChangePoint {
                history: MAX_CHANGE_POINT_HISTORY + 1,
                z: 3.0,
            },
        };
        assert!(QuerySpec::decode_slice(&absurd.encode()).is_err());
    }

    #[test]
    fn invalid_specs_are_rejected_on_decode() {
        let bad = QuerySpec {
            name: "bad".into(),
            label: "F0".into(),
            kind: QueryKind::DeltaVsPrev { rel_change: 0.0 },
        };
        let bytes = bad.encode();
        assert!(QuerySpec::decode_slice(&bytes).is_err());
    }

    #[test]
    fn alert_round_trips_on_the_wire() {
        let a = Alert {
            query: "q".into(),
            label: "entropy".into(),
            epoch: 17,
            value: 3.25,
            baseline: 1.5,
            kind: AlertKind::Delta,
        };
        let back = Alert::decode_slice(&a.encode()).expect("decodes");
        assert_eq!(back, a);
    }
}
