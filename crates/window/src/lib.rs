//! Sliding-window and time-decayed statistics over sub-sampled streams.
//!
//! Everything the [`sss_core::Monitor`] computes is whole-stream; the
//! production questions (telemetry, NIDS, netflow) are windowed —
//! "entropy over the last five minutes", "did the heavy-hitter set
//! shift this hour". This crate answers them **without new estimator
//! math**: the stream is partitioned into tumbling event-time buckets,
//! each bucket is a full sub-`Monitor` forked under the seed-splitting
//! contract, whole buckets retire as the window slides, and a query
//! folds the live buckets through the existing merge algebra.
//!
//! * [`WindowedMonitor`] — a ring of up to `W` tumbling buckets, each
//!   spanning `bucket_span` event-time ticks. Ingestion routes items by
//!   timestamp (`epoch = ts / bucket_span`), rollovers retire the
//!   bucket that fell out, and [`WindowedMonitor::fold`] merges the
//!   live buckets into one `Monitor` answering for exactly the window.
//!   Exact substrates (bottom-k `F_0`, collision-counting `F_k`,
//!   CountMin) merge losslessly, so the fold over the last `W` buckets
//!   is *bitwise-identical* to a fresh monitor fed only those items.
//! * [`DecayedMonitor`] — the same bucket ring with exponential time
//!   decay applied at query time: bucket at age `a` epochs weighs
//!   `2^(-a/half_life)`. No per-item cost; decay is a query-side
//!   weighting, and the answer is flagged
//!   [`sss_core::Guarantee::Heuristic`].
//! * [`QuerySpec`]/[`Alert`] — a continuous-query surface: threshold,
//!   delta-vs-previous-window and change-point queries registered
//!   against estimator labels, evaluated once per bucket rollover,
//!   emitting typed alerts drained via
//!   [`WindowedMonitor::take_alerts`].
//! * [`ShardedWindowedMonitor`] — the windowed analogue of
//!   [`sss_core::ShardedMonitor`]: per-shard windowed monitors fork
//!   under `split_seed`, retire buckets on the same global epoch
//!   boundaries (epochs come from event time, never from per-shard
//!   counts), and the coordinator folds shards in ascending order so
//!   the result is bitwise-deterministic.
//!
//! All window state implements [`sss_codec::WireCodec`] in the
//! `0x06xx` tag range (bucket ring, clock, query registry, pending
//! alerts), so windows checkpoint/restore and ship over
//! `sss-transport` like every other part of the stack.

#![forbid(unsafe_code)]

mod decayed;
mod query;
mod sharded;
mod windowed;

pub use decayed::DecayedMonitor;
pub use query::{Alert, AlertKind, QueryKind, QuerySpec};
pub use sharded::{ShardedWindowConfig, ShardedWindowedMonitor};
pub use windowed::{WindowConfig, WindowMergeError, WindowedMonitor};
