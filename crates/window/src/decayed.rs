//! Exponential time decay as a query-time weighting over the bucket
//! ring — the DGIM/exponential-histogram trade dressed in this stack's
//! merge algebra: per-item state is untouched (buckets are the same
//! sub-`Monitor`s a [`WindowedMonitor`] keeps), and "decay" is applied
//! when a question is asked, as a per-bucket weight `2^(−age/half_life)`.

use sss_codec::{put_len, CodecError, Reader, WireCodec};
use sss_core::{Estimate, Guarantee, Monitor, Statistic};

use crate::windowed::{WindowConfig, WindowedMonitor};

/// Time-decayed statistics: a [`WindowedMonitor`] bucket ring whose
/// estimates are combined with exponential per-bucket weights at query
/// time. A bucket `a` epochs old weighs `2^(−a / half_life)`.
///
/// The combination rule follows the statistic's type:
///
/// * **additive statistics** (`F_0`, `F_k`, heavy-hitter mass): the
///   decayed value is the *weighted sum* of per-bucket estimates — the
///   natural "recent traffic counts more" total. Note this is a
///   per-bucket decay of the paper's estimators, not an estimator over
///   a decayed stream: cross-bucket structure (e.g. an item recurring
///   in several buckets) is weighted per bucket, so answers carry
///   [`Guarantee::Heuristic`].
/// * **entropy**: a weighted *mean* of per-bucket entropies (entropy is
///   an average-type quantity; summing it would be meaningless).
///
/// The retention depth is the window's bucket count: buckets older than
/// `cfg.buckets` epochs have weight at most `2^(−buckets/half_life)`
/// *and* have been retired — choose `buckets ≳ 3·half_life` so the
/// truncation error stays below ~12% of the weight mass.
#[derive(Clone)]
pub struct DecayedMonitor {
    inner: WindowedMonitor,
    half_life: f64,
}

impl DecayedMonitor {
    /// Wrap a pristine monitor configuration into a decayed window with
    /// the given `half_life` measured in epochs.
    ///
    /// # Panics
    /// If `half_life` is not finite and positive, or the prototype is
    /// not pristine.
    pub fn new(prototype: Monitor, cfg: WindowConfig, half_life: f64) -> Self {
        assert!(
            half_life.is_finite() && half_life > 0.0,
            "half-life must be a positive number of epochs, got {half_life}"
        );
        Self {
            inner: WindowedMonitor::new(prototype, cfg),
            half_life,
        }
    }

    /// The decay half-life, in epochs.
    #[inline]
    pub fn half_life(&self) -> f64 {
        self.half_life
    }

    /// The underlying bucket ring (clock, retirement counters, …).
    #[inline]
    pub fn window(&self) -> &WindowedMonitor {
        &self.inner
    }

    /// Ingest one sampled item observed at event time `ts`.
    #[inline]
    pub fn ingest_at(&mut self, ts: u64, x: u64) {
        self.inner.ingest_at(ts, x);
    }

    /// Ingest a batch sharing event time `ts`.
    #[inline]
    pub fn ingest_batch_at(&mut self, ts: u64, xs: &[u64]) {
        self.inner.ingest_batch_at(ts, xs);
    }

    /// Advance the clock without ingesting (ages every bucket).
    #[inline]
    pub fn advance_to(&mut self, epoch: u64) {
        self.inner.advance_to(epoch);
    }

    /// `(epoch, weight)` of every live bucket, ascending epoch — the
    /// weights the next [`DecayedMonitor::estimate`] will apply.
    pub fn weights(&self) -> Vec<(u64, f64)> {
        self.inner
            .bucket_epochs()
            .into_iter()
            .map(|e| (e, self.weight_of(e)))
            .collect()
    }

    #[inline]
    fn weight_of(&self, epoch: u64) -> f64 {
        let age = (self.inner.cur_epoch() - epoch) as f64;
        (-(age / self.half_life) * std::f64::consts::LN_2).exp()
    }

    /// The decayed estimate for `stat` (`None` if unregistered).
    pub fn estimate(&self, stat: Statistic) -> Option<Estimate> {
        self.estimate_labeled(&stat.to_string())
    }

    /// The decayed estimate under an explicit label: weighted sum for
    /// additive statistics, weighted mean for entropy, always
    /// [`Guarantee::Heuristic`].
    pub fn estimate_labeled(&self, label: &str) -> Option<Estimate> {
        let stat = self
            .inner
            .prototype_ref()
            .space_breakdown()
            .into_iter()
            .find(|(l, _, _)| l == label)
            .map(|(_, s, _)| s)?;
        let average = matches!(stat, Statistic::Entropy);
        let mut value = 0.0;
        let mut weight_sum = 0.0;
        let mut samples = 0u64;
        for (epoch, bucket) in self.inner.iter_buckets() {
            let est = bucket.estimate_labeled(label)?;
            let w = self.weight_of(epoch);
            value += w * est.value;
            weight_sum += w;
            samples += est.samples_seen;
        }
        if average {
            if weight_sum == 0.0 {
                return Some(Estimate::scalar(
                    0.0,
                    Guarantee::Heuristic,
                    self.inner.p(),
                    0,
                ));
            }
            value /= weight_sum;
        }
        Some(Estimate::scalar(
            value,
            Guarantee::Heuristic,
            self.inner.p(),
            samples,
        ))
    }

    /// All decayed estimates as `(label, estimate)` rows.
    pub fn report(&self) -> Vec<(String, Estimate)> {
        self.inner
            .prototype_ref()
            .space_breakdown()
            .into_iter()
            .filter_map(|(label, _, _)| self.estimate_labeled(&label).map(|e| (label.clone(), e)))
            .collect()
    }

    /// Serialize as a framed wire snapshot (see
    /// [`WindowedMonitor::checkpoint`]).
    pub fn checkpoint(&self) -> Result<Vec<u8>, CodecError> {
        self.inner.prototype_ref().validate_restorable()?;
        Ok(self.encode_framed())
    }

    /// Rebuild from [`DecayedMonitor::checkpoint`] bytes.
    pub fn restore(bytes: &[u8]) -> Result<DecayedMonitor, CodecError> {
        DecayedMonitor::decode_framed(bytes)
    }
}

impl WireCodec for DecayedMonitor {
    const WIRE_TAG: u16 = 0x0602;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.half_life.encode_into(out);
        let mut payload = Vec::new();
        self.inner.encode_into(&mut payload);
        put_len(out, payload.len());
        out.extend_from_slice(&payload);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let half_life = r.f64()?;
        if !(half_life.is_finite() && half_life > 0.0) {
            return Err(CodecError::Invalid {
                what: "half-life must be finite and positive",
            });
        }
        let len = r.len_prefix(1)?;
        let mut section = Reader::with_version(r.take(len)?, r.version());
        let inner = WindowedMonitor::decode(&mut section)?;
        section.expect_empty()?;
        Ok(DecayedMonitor { inner, half_life })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_core::MonitorBuilder;

    fn decayed(buckets: usize, half_life: f64) -> DecayedMonitor {
        let proto = MonitorBuilder::with_seed(1.0, 11)
            .f0(0.01)
            .entropy(512)
            .build();
        DecayedMonitor::new(proto, WindowConfig::new(buckets, 100), half_life)
    }

    /// Epoch `e` gets `per_epoch` *distinct* items disjoint from every
    /// other epoch, so each bucket's F0 is exactly `per_epoch` at p = 1.
    fn fill_epochs(d: &mut DecayedMonitor, epochs: u64, per_epoch: u64) {
        for e in 0..epochs {
            for i in 0..per_epoch {
                d.ingest_at(e * 100, e * per_epoch + i);
            }
        }
    }

    #[test]
    fn weights_halve_per_half_life_and_sum_weighted_f0() {
        let mut d = decayed(8, 1.0);
        fill_epochs(&mut d, 4, 50);
        let weights = d.weights();
        assert_eq!(weights.len(), 4);
        for (i, (epoch, w)) in weights.iter().enumerate() {
            assert_eq!(*epoch, i as u64);
            let expect = 0.5f64.powi((3 - i) as i32);
            assert!((w - expect).abs() < 1e-12, "epoch {epoch}: {w}");
        }
        // Distinct disjoint items per epoch: decayed F0 = 50 · Σ w.
        let expect = 50.0 * (1.0 + 0.5 + 0.25 + 0.125);
        let got = d.estimate(Statistic::F0).expect("registered");
        assert!(matches!(got.guarantee, Guarantee::Heuristic));
        assert!(
            (got.value - expect).abs() < 1e-6,
            "decayed F0 {} vs {expect}",
            got.value
        );
        // Undecayed comparison: the plain window fold sees all 200
        // distinct (estimated — the union exceeds the bottom-k budget).
        let flat = d.window().estimate(Statistic::F0).expect("registered");
        assert!((flat.value - 200.0).abs() < 30.0, "flat F0 {}", flat.value);
    }

    #[test]
    fn aging_without_traffic_shrinks_the_answer() {
        let mut d = decayed(16, 2.0);
        fill_epochs(&mut d, 2, 100);
        let before = d.estimate(Statistic::F0).expect("registered").value;
        d.advance_to(6);
        let after = d.estimate(Statistic::F0).expect("registered").value;
        assert!(
            after < before / 3.0,
            "aging 5 epochs at half-life 2 must shrink the mass: {before} -> {after}"
        );
    }

    #[test]
    fn entropy_is_weight_averaged_not_summed() {
        let mut d = decayed(8, 1.0);
        // Same uniform-ish composition every epoch: per-bucket entropy
        // is ~equal, so the weighted mean must sit near it (a sum would
        // be ~4x larger).
        for e in 0..4u64 {
            for i in 0..400u64 {
                d.ingest_at(e * 100, i % 16);
            }
        }
        let per_bucket = d
            .window()
            .fold()
            .estimate(Statistic::Entropy)
            .expect("registered")
            .value;
        let decayed_h = d.estimate(Statistic::Entropy).expect("registered").value;
        assert!(
            (decayed_h - per_bucket).abs() < 0.5,
            "decayed entropy {decayed_h} should sit near per-bucket {per_bucket}"
        );
    }

    #[test]
    fn empty_ring_answers_zero_and_unknown_labels_none() {
        let d = decayed(4, 1.0);
        assert_eq!(d.estimate(Statistic::F0).expect("registered").value, 0.0);
        assert!(d.estimate(Statistic::Fk(2)).is_none());
    }

    #[test]
    fn wire_round_trip_is_byte_identical() {
        let mut d = decayed(6, 1.5);
        fill_epochs(&mut d, 3, 30);
        let bytes = d.checkpoint().expect("checkpoint");
        let back = DecayedMonitor::restore(&bytes).expect("restore");
        assert_eq!(back.checkpoint().expect("re-checkpoint"), bytes);
        assert_eq!(back.half_life(), d.half_life());
        let (a, b) = (
            d.estimate(Statistic::F0).expect("f0").value,
            back.estimate(Statistic::F0).expect("f0").value,
        );
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
