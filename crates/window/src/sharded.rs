//! The windowed analogue of `sss_core::ShardedMonitor`: N worker
//! threads, each owning a `fork_shard`-ed [`WindowedMonitor`] and an
//! independently forked `BernoulliSampler`, fed timestamped chunks
//! round-robin over bounded channels.
//!
//! The epoch contract that keeps the coordinator fold deterministic:
//! bucket boundaries come from **event time** (`epoch = ts /
//! bucket_span`), never from per-shard item counts — so every shard
//! retires the same epochs at the same timeline positions regardless of
//! how the dispatcher interleaved the chunks. At `finish()` the
//! coordinator aligns all shard clocks to the maximum epoch any shard
//! reached (retiring stragglers' old buckets exactly as the timeline
//! demands) and merges the shards in ascending shard order — a
//! bitwise-reproducible fold.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use sss_stream::{BernoulliSampler, Item};

use crate::windowed::WindowedMonitor;

/// Knobs for the sharded windowed pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ShardedWindowConfig {
    /// Worker thread count (≥ 1).
    pub shards: usize,
    /// Bounded depth of each worker's job queue.
    pub queue_depth: usize,
}

impl ShardedWindowConfig {
    /// Defaults tuned like the core sharded pipeline's.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self {
            shards,
            queue_depth: 4,
        }
    }
}

enum Job {
    /// A chunk of the raw timestamped stream to sample and ingest.
    Chunk(Vec<(u64, Item)>),
    Finish,
}

/// Parallel windowed ingestion over raw `(event time, item)` chunks.
///
/// Each worker Bernoulli-samples its chunks with a per-shard forked
/// sampler via the skip-position generator (`O(survivors)` RNG work)
/// and routes survivors into its shard window by timestamp. `finish()`
/// aligns the shard clocks and merges ascending — the returned window
/// is bitwise-deterministic for a fixed `(prototype, sampler seed,
/// chunk sequence, shard count)`.
pub struct ShardedWindowedMonitor {
    txs: Vec<SyncSender<Job>>,
    handles: Vec<JoinHandle<WindowedMonitor>>,
    /// Coordinator-side pristine window the shard results fold into.
    coordinator: WindowedMonitor,
    next: usize,
    raw_dispatched: u64,
}

impl ShardedWindowedMonitor {
    /// Launch the worker threads. `prototype` must be an empty window
    /// (it seeds every shard fork and receives the final fold);
    /// `sampler_seed` drives the per-shard Bernoulli forks at the
    /// window's rate.
    pub fn launch(
        prototype: &WindowedMonitor,
        sampler_seed: u64,
        cfg: ShardedWindowConfig,
    ) -> Self {
        let base_sampler = BernoulliSampler::new(prototype.p(), sampler_seed);
        let mut txs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx): (SyncSender<Job>, Receiver<Job>) = sync_channel(cfg.queue_depth);
            let window = prototype.fork_shard(shard as u64);
            let sampler = base_sampler.fork(shard as u64);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sss-window-shard-{shard}"))
                    .spawn(move || worker_loop(window, sampler, rx))
                    .expect("spawn shard worker"),
            );
            txs.push(tx);
        }
        Self {
            txs,
            handles,
            coordinator: prototype.clone(),
            next: 0,
            raw_dispatched: 0,
        }
    }

    /// Worker thread count.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Raw (pre-sampling) elements dispatched so far.
    pub fn raw_dispatched(&self) -> u64 {
        self.raw_dispatched
    }

    /// Dispatch one timestamped chunk to the next worker round-robin.
    /// Chunks should be time-ordered overall (the stream's arrival
    /// order); items late beyond the window are dropped and counted by
    /// the owning shard.
    pub fn ingest(&mut self, chunk: &[(u64, Item)]) {
        if chunk.is_empty() {
            return;
        }
        self.raw_dispatched += chunk.len() as u64;
        let shard = self.next;
        self.next = (self.next + 1) % self.txs.len();
        self.txs[shard]
            .send(Job::Chunk(chunk.to_vec()))
            .expect("shard worker alive");
    }

    /// Drain the queues, stop the workers, align every shard clock to
    /// the furthest epoch any shard reached, and fold the shards in
    /// ascending shard order into the coordinator window.
    pub fn finish(self) -> WindowedMonitor {
        for tx in &self.txs {
            tx.send(Job::Finish).expect("shard worker alive");
        }
        drop(self.txs);
        let mut shards: Vec<WindowedMonitor> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        let top = shards
            .iter()
            .filter(|s| s.started())
            .map(|s| s.cur_epoch())
            .max();
        let mut merged = self.coordinator;
        if let Some(top) = top {
            for s in &mut shards {
                s.advance_to(top);
            }
        }
        for s in &shards {
            merged.merge(s);
        }
        merged
    }
}

fn worker_loop(
    mut window: WindowedMonitor,
    mut sampler: BernoulliSampler,
    rx: Receiver<Job>,
) -> WindowedMonitor {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Chunk(chunk) => {
                // O(survivors): the skip-position generator jumps
                // straight between surviving offsets of the chunk.
                let n = chunk.len() as u64;
                for pos in sampler.skip_positions(n) {
                    let (ts, x) = chunk[pos as usize];
                    window.ingest_at(ts, x);
                }
            }
            Job::Finish => break,
        }
    }
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windowed::WindowConfig;
    use sss_core::MonitorBuilder;

    fn prototype(p: f64) -> WindowedMonitor {
        let m = MonitorBuilder::with_seed(p, 31)
            .f0(0.05)
            .fk(2)
            .entropy(256)
            .build();
        WindowedMonitor::new(m, WindowConfig::new(4, 1_000))
    }

    fn timed_stream(n: u64) -> Vec<(u64, Item)> {
        (0..n).map(|i| (i * 3, (i * 17) % 509)).collect()
    }

    fn run(shards: usize, chunk: usize, p: f64, seed: u64) -> WindowedMonitor {
        let proto = prototype(p);
        let mut driver =
            ShardedWindowedMonitor::launch(&proto, seed, ShardedWindowConfig::new(shards));
        let stream = timed_stream(12_000);
        for c in stream.chunks(chunk) {
            driver.ingest(c);
        }
        driver.finish()
    }

    #[test]
    fn repeated_runs_fold_bitwise_identically() {
        let a = run(3, 512, 0.5, 7);
        let b = run(3, 512, 0.5, 7);
        assert_eq!(a.cur_epoch(), b.cur_epoch());
        assert_eq!(a.bucket_epochs(), b.bucket_epochs());
        for ((la, ea), (lb, eb)) in a.report().iter().zip(b.report().iter()) {
            assert_eq!(la, lb);
            assert_eq!(ea.value.to_bits(), eb.value.to_bits(), "{la}");
        }
        let (wa, wb) = (a.checkpoint().expect("a"), b.checkpoint().expect("b"));
        assert_eq!(wa, wb, "whole window snapshots are bitwise equal");
    }

    #[test]
    fn sharded_matches_sequential_emulation_bitwise() {
        let shards = 3;
        let chunk = 256;
        let proto = prototype(0.5);
        let parallel = run(shards, chunk, 0.5, 21);

        // Sequential emulation: same forks, same round-robin chunk
        // assignment, same per-shard sampler draws.
        let base_sampler = BernoulliSampler::new(0.5, 21);
        let mut windows: Vec<WindowedMonitor> =
            (0..shards).map(|s| proto.fork_shard(s as u64)).collect();
        let mut samplers: Vec<BernoulliSampler> =
            (0..shards).map(|s| base_sampler.fork(s as u64)).collect();
        let stream = timed_stream(12_000);
        for (i, c) in stream.chunks(chunk).enumerate() {
            let s = i % shards;
            let n = c.len() as u64;
            for pos in samplers[s].skip_positions(n) {
                let (ts, x) = c[pos as usize];
                windows[s].ingest_at(ts, x);
            }
        }
        let top = windows
            .iter()
            .filter(|w| w.started())
            .map(|w| w.cur_epoch())
            .max()
            .expect("saw data");
        for w in &mut windows {
            w.advance_to(top);
        }
        let mut merged = proto.clone();
        for w in &windows {
            merged.merge(w);
        }

        assert_eq!(
            parallel.checkpoint().expect("parallel"),
            merged.checkpoint().expect("sequential"),
            "thread scheduling must not leak into the fold"
        );
    }

    #[test]
    fn shard_count_does_not_change_exact_substrates_at_p_one() {
        let one = run(1, 512, 1.0, 5);
        let four = run(4, 512, 1.0, 5);
        for stat in [sss_core::Statistic::F0, sss_core::Statistic::Fk(2)] {
            let a = one.estimate(stat).expect("registered").value;
            let b = four.estimate(stat).expect("registered").value;
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{stat}: at p=1 every shard count sees the same window multiset"
            );
        }
        assert_eq!(one.window_samples(), four.window_samples());
    }
}
