//! [`SiteClient`]: the sending end of the snapshot transport.
//!
//! A site wraps its local [`Monitor`] (or the trailing view of a
//! `ShardedMonitor`) in a client and pushes `checkpoint()` snapshots at
//! whatever cadence it likes. The client owns delivery: sequence
//! numbers, the hello handshake on every (re)connect, bounded retry
//! with exponential backoff, and the resume rule that makes retries
//! safe — a push that died before its ack is re-sent *with the same
//! sequence number*, and the collector's dedup answers `Duplicate` if
//! the first copy actually landed, so nothing is lost and nothing is
//! merged twice.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use sss_codec::WireCodec;
use sss_core::{snapshot_delta, Monitor};
use sss_obs::{global, EventKind, MetricId, MetricsSnapshot};

use crate::proto::{
    encode_push_frame, read_frame, write_frame, AckStatus, Goodbye, Hello, HelloAck, MetricsPush,
    SnapshotAck, SnapshotDeltaPush, FEATURE_DELTA_PUSH, FEATURE_METRICS_PUSH, TAG_HELLO_ACK,
    TAG_SNAPSHOT_ACK, TRANSPORT_PROTO_VERSION,
};
use crate::TransportError;

/// Bounded retry with exponential backoff, shared by connect and push.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Sleep after the first failure; doubles per failure.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// Client knobs; the defaults match [`ServerConfig`](crate::ServerConfig)'s.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Stable site identifier — sequence numbers are scoped to it, so
    /// it must not change across reconnects or restarts of the site.
    pub site_id: u64,
    /// Human-readable name shown in the collector's per-site stats.
    pub site_name: String,
    /// Retry budget for connects and pushes.
    pub retry: RetryPolicy,
    /// How long to wait for a handshake or snapshot ack before treating
    /// the connection as dead. Default 10 s.
    pub ack_timeout: Duration,
    /// Per-attempt TCP connect timeout. Default 5 s.
    pub connect_timeout: Duration,
    /// Payload cap on frames read back (acks are tiny; the cap only
    /// guards against a confused peer). Default 1 MiB.
    pub max_frame_payload: usize,
    /// Offer delta pushes in the hello and, when the collector grants
    /// them, ship each snapshot as a byte diff against the last one the
    /// collector accepted (falling back to a full push transparently
    /// when the collector's base moved, or when the diff would not be
    /// smaller). Costs retaining one snapshot buffer client-side.
    /// Default true.
    pub delta_pushes: bool,
}

impl ClientConfig {
    /// Defaults for a site.
    pub fn new(site_id: u64, site_name: impl Into<String>) -> Self {
        Self {
            site_id,
            site_name: site_name.into(),
            retry: RetryPolicy::default(),
            ack_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(5),
            max_frame_payload: 1 << 20,
            delta_pushes: true,
        }
    }
}

/// Delivery counters on the site side.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Snapshots accepted by the collector.
    pub snapshots_pushed: u64,
    /// Pushes answered `Duplicate` (the retry raced a lost ack; the
    /// collector already had the snapshot).
    pub snapshots_duplicate: u64,
    /// Snapshots that travelled as delta pushes (subset of
    /// `snapshots_pushed`).
    pub snapshots_delta: u64,
    /// Delta pushes the collector answered `RejectedUnknownBase`,
    /// transparently re-sent as full pushes with the same sequence.
    pub delta_fallbacks: u64,
    /// Frame bytes written (pushes only, including re-sends).
    pub bytes_out: u64,
    /// Successful handshakes after the first (reconnects).
    pub reconnects: u64,
    /// Failed attempts that were retried (connect or push).
    pub retries: u64,
}

/// How the collector answered an accepted push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Folded into the collector view.
    Accepted,
    /// Already there from a previous attempt — equally final.
    Duplicate,
}

/// A connection to a [`CollectorServer`](crate::CollectorServer) that
/// survives drops: pushes reconnect and resume transparently within the
/// retry budget.
///
/// ```no_run
/// use sss_core::MonitorBuilder;
/// use sss_transport::{ClientConfig, SiteClient};
///
/// let mut monitor = MonitorBuilder::with_seed(0.05, 7).f0(0.05).fk(2).build();
/// let mut client = SiteClient::connect("127.0.0.1:9009", ClientConfig::new(1, "site-1"))?;
/// monitor.update_batch(&[1, 2, 3]);
/// client.push_monitor(&monitor)?; // checkpoint + framed push + ack
/// client.close();
/// # Ok::<(), sss_transport::TransportError>(())
/// ```
pub struct SiteClient {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<TcpStream>,
    handshakes: u64,
    next_seq: u64,
    stats: ClientStats,
    /// Whether the current connection's hello ack granted delta pushes.
    delta_enabled: bool,
    /// Whether the current connection's hello ack granted telemetry
    /// pushes ([`SiteClient::push_metrics`]).
    metrics_enabled: bool,
    /// Sequence for telemetry pushes — separate from snapshot
    /// sequences, because metrics are last-write-wins rather than
    /// deduplicated and must not consume snapshot sequence numbers.
    metrics_seq: u64,
    /// The last snapshot the collector accepted (sequence + bytes) —
    /// the base the next push is diffed against.
    acked: Option<(u64, Vec<u8>)>,
}

/// What one push round trip concluded (internal: the public outcome
/// collapses `UnknownBase`, which triggers the full-push fallback).
enum AckOutcome {
    Accepted,
    Duplicate,
    UnknownBase,
}

impl SiteClient {
    /// Resolve `addr` and establish the first connection (handshake
    /// included), retrying per the config's [`RetryPolicy`].
    pub fn connect(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Self, TransportError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let mut client = Self {
            addr,
            cfg,
            conn: None,
            handshakes: 0,
            next_seq: 0,
            stats: ClientStats::default(),
            delta_enabled: false,
            metrics_enabled: false,
            metrics_seq: 0,
            acked: None,
        };
        client.with_retries(|c| {
            c.ensure_connected()?;
            Ok(())
        })?;
        Ok(client)
    }

    /// The collector address this client talks to.
    pub fn collector_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sequence number the next new snapshot will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Checkpoint `monitor` and push the snapshot. Equivalent to
    /// `push_wire(monitor.checkpoint()?)`.
    pub fn push_monitor(&mut self, monitor: &Monitor) -> Result<PushOutcome, TransportError> {
        let snapshot = monitor.checkpoint()?;
        self.push_wire(snapshot)
    }

    /// Push one already-framed snapshot buffer (e.g. from
    /// `ShardedMonitor::snapshot_wire`). Blocks until the collector
    /// acks, retrying through disconnects with the same sequence number
    /// so delivery is exactly-once from the collector's point of view.
    ///
    /// When the hello negotiated delta pushes and a previous snapshot
    /// from this client was accepted, the snapshot travels as a byte
    /// diff against it whenever the diff is smaller; a collector whose
    /// retained base moved answers `RejectedUnknownBase` and the client
    /// transparently re-sends the *full* snapshot with the same
    /// sequence number — delivery semantics are identical either way.
    ///
    /// # Errors
    /// [`TransportError::Rejected`] if the collector NACKed the
    /// snapshot (re-sending identical bytes cannot succeed — the
    /// sequence number is *not* consumed);
    /// [`TransportError::RetriesExhausted`] if the retry budget ran out
    /// without an ack.
    pub fn push_wire(&mut self, snapshot: Vec<u8>) -> Result<PushOutcome, TransportError> {
        let site_id = self.cfg.site_id;
        // Diff against the last landed snapshot up front (the diff is
        // pure CPU — no reason to redo it per retry). Kept only when it
        // actually beats the full payload.
        let delta: Option<(u64, Vec<u8>)> = if self.cfg.delta_pushes {
            self.acked.as_ref().and_then(|(base_seq, base)| {
                let d = snapshot_delta(base, &snapshot);
                (d.len() < snapshot.len()).then_some((*base_seq, d))
            })
        } else {
            None
        };

        // The sequence is captured on the first attempt (after any
        // initial reconnect) and every retry — and the unknown-base
        // fallback — re-sends it unchanged: the documented same-seq
        // rule. If a mid-push reconnect's hello ack fast-forwards
        // `next_seq` *past* the in-flight sequence, the collector
        // already accepted it and only the ack was lost: resolve
        // locally as `Duplicate` instead of renumbering, which would
        // double-count the snapshot in the collector's accept stats.
        let mut pushing: Option<u64> = None;
        let mut full_frame: Option<Vec<u8>> = None;
        let mut delta_frame: Option<Vec<u8>> = None;
        let mut attempt_delta = delta.is_some();
        let (seq, outcome, was_delta) = loop {
            let mut sent_delta = false;
            let (seq, outcome) = self.with_retries(|c| {
                c.ensure_connected()?;
                let seq = *pushing.get_or_insert(c.next_seq);
                if c.next_seq > seq {
                    return Ok((seq, AckOutcome::Duplicate));
                }
                let frame = if attempt_delta && c.delta_enabled {
                    sent_delta = true;
                    let (base_seq, d) = delta.as_ref().expect("attempt_delta implies delta");
                    delta_frame.get_or_insert_with(|| {
                        SnapshotDeltaPush {
                            site_id,
                            seq,
                            base_seq: *base_seq,
                            delta: d.clone(),
                        }
                        .encode_framed()
                    })
                } else {
                    sent_delta = false;
                    full_frame.get_or_insert_with(|| encode_push_frame(site_id, seq, &snapshot))
                };
                c.push_once(seq, frame).map(|outcome| (seq, outcome))
            })?;
            match outcome {
                AckOutcome::UnknownBase if sent_delta => {
                    // The collector's base moved (another connection
                    // advanced it, or it restarted): same sequence,
                    // full bytes.
                    self.stats.delta_fallbacks += 1;
                    global().inc(MetricId::TransportDeltaFallbacksTotal);
                    attempt_delta = false;
                }
                AckOutcome::UnknownBase => {
                    return Err(TransportError::Protocol {
                        what: "unknown-base ack answering a full push".to_string(),
                    });
                }
                AckOutcome::Accepted => break (seq, PushOutcome::Accepted, sent_delta),
                AckOutcome::Duplicate => break (seq, PushOutcome::Duplicate, sent_delta),
            }
        };
        self.next_seq = self.next_seq.max(seq + 1);
        match outcome {
            PushOutcome::Accepted => {
                self.stats.snapshots_pushed += 1;
                if was_delta {
                    self.stats.snapshots_delta += 1;
                    global().inc(MetricId::TransportPushesDeltaTotal);
                } else {
                    global().inc(MetricId::TransportPushesFullTotal);
                }
            }
            PushOutcome::Duplicate => self.stats.snapshots_duplicate += 1,
        }
        // Either way the collector now holds exactly these bytes under
        // `seq` (a duplicate whose bytes somehow differ self-heals: the
        // next delta's base checksum won't match and the push falls
        // back to full).
        self.acked = Some((seq, snapshot));
        Ok(outcome)
    }

    /// Push this site's telemetry snapshot (e.g.
    /// `sss_obs::global().snapshot()`) to the collector, where it is
    /// stored last-write-wins and served from the stats endpoint next
    /// to the collector's own registry.
    ///
    /// Requires the hello to have negotiated the metrics-push feature
    /// (always offered; a collector predating it declines). Telemetry
    /// carries its own sequence counter — it never consumes snapshot
    /// sequence numbers, and a retried push is harmless because the
    /// collector overwrites rather than merges.
    ///
    /// # Errors
    /// [`TransportError::Protocol`] if the collector did not grant the
    /// feature; otherwise as [`SiteClient::push_wire`].
    pub fn push_metrics(&mut self, snapshot: &MetricsSnapshot) -> Result<(), TransportError> {
        self.with_retries(|c| c.ensure_connected())?;
        if !self.metrics_enabled {
            return Err(TransportError::Protocol {
                what: "collector did not grant the metrics-push feature".to_string(),
            });
        }
        let frame = MetricsPush {
            site_id: self.cfg.site_id,
            seq: self.metrics_seq,
            snapshot: snapshot.clone(),
        }
        .encode_framed();
        self.with_retries(|c| {
            c.ensure_connected()?;
            let t0 = global().timer();
            let stream = c.conn.as_mut().expect("ensure_connected ran");
            write_frame(stream, &frame)?;
            c.stats.bytes_out += frame.len() as u64;
            global().add(MetricId::TransportBytesOutTotal, frame.len() as u64);
            let (fh, bytes) = read_frame(stream, c.cfg.max_frame_payload)?;
            global().observe_since(MetricId::TransportPushRttNanos, t0);
            if fh.tag != TAG_SNAPSHOT_ACK {
                return Err(TransportError::Protocol {
                    what: format!("expected SnapshotAck, got tag {:#06x}", fh.tag),
                });
            }
            let ack = SnapshotAck::decode_framed(&bytes)?;
            match ack.status {
                AckStatus::Rejected => Err(TransportError::Rejected { reason: ack.reason }),
                _ => Ok(()),
            }
        })?;
        self.metrics_seq += 1;
        Ok(())
    }

    /// Send a goodbye (best-effort) and drop the connection, returning
    /// the final delivery counters.
    pub fn close(mut self) -> ClientStats {
        if let Some(stream) = self.conn.as_mut() {
            let bye = Goodbye {
                site_id: self.cfg.site_id,
            };
            let _ = write_frame(stream, &bye.encode_framed());
        }
        self.conn = None;
        self.stats.clone()
    }

    /// Sever the current connection *without* a goodbye — what a cable
    /// pull looks like to the collector. The next push reconnects and
    /// resumes. Public so integration tests (and chaos drills) can
    /// exercise the recovery path deterministically.
    pub fn drop_connection(&mut self) {
        if let Some(stream) = self.conn.take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Whether a connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Run `op` under the retry policy. Transport-final errors
    /// (rejection, handshake refusal) pass through; anything else
    /// drops the connection, backs off exponentially and retries.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> Result<T, TransportError>,
    ) -> Result<T, TransportError> {
        let retry = self.cfg.retry.clone();
        let attempts = retry.max_attempts.max(1);
        let mut backoff = retry.initial_backoff;
        let mut last = String::new();
        for attempt in 1..=attempts {
            match op(self) {
                Ok(v) => return Ok(v),
                Err(
                    e @ (TransportError::Rejected { .. } | TransportError::HandshakeRefused { .. }),
                ) => return Err(e),
                Err(e) => {
                    self.drop_connection();
                    last = e.to_string();
                    if attempt < attempts {
                        self.stats.retries += 1;
                        global().inc(MetricId::TransportRetriesTotal);
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(retry.max_backoff);
                    }
                }
            }
        }
        Err(TransportError::RetriesExhausted { attempts, last })
    }

    /// Dial + handshake if not connected (one attempt; retries are the
    /// caller's loop).
    fn ensure_connected(&mut self) -> Result<(), TransportError> {
        if self.conn.is_some() {
            return Ok(());
        }
        if self.handshakes > 0 {
            // Dialing again after a successful session: a reconnect
            // attempt, recorded whether or not the dial succeeds.
            global().event(
                EventKind::ReconnectAttempt,
                self.cfg.site_id,
                self.handshakes,
                "",
            );
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.cfg.ack_timeout))?;
        // Bound writes too: a collector that stops reading must become
        // a retryable IO error, not a forever-blocked write_all.
        stream.set_write_timeout(Some(self.cfg.ack_timeout))?;
        let mut stream = stream;
        let hello = Hello {
            proto_version: TRANSPORT_PROTO_VERSION,
            site_id: self.cfg.site_id,
            site_name: self.cfg.site_name.clone(),
            // Telemetry pushes are always offered (they cost nothing
            // until used); delta pushes only when configured.
            features: FEATURE_METRICS_PUSH
                | if self.cfg.delta_pushes {
                    FEATURE_DELTA_PUSH
                } else {
                    0
                },
        };
        write_frame(&mut stream, &hello.encode_framed())?;
        let (fh, bytes) = read_frame(&mut stream, self.cfg.max_frame_payload)?;
        if fh.tag != TAG_HELLO_ACK {
            return Err(TransportError::Protocol {
                what: format!("expected HelloAck, got tag {:#06x}", fh.tag),
            });
        }
        let ack = HelloAck::decode_framed(&bytes)?;
        if !ack.accepted {
            return Err(TransportError::HandshakeRefused { reason: ack.reason });
        }
        self.delta_enabled = self.cfg.delta_pushes && ack.features & FEATURE_DELTA_PUSH != 0;
        self.metrics_enabled = ack.features & FEATURE_METRICS_PUSH != 0;
        // Fast-forward past the collector's dedup window: a restarted
        // site whose counter reset to 0 resumes where it left off
        // instead of pushing sequences the server would swallow as
        // duplicates.
        self.next_seq = self.next_seq.max(ack.resume_seq);
        self.handshakes += 1;
        if self.handshakes > 1 {
            self.stats.reconnects += 1;
            global().inc(MetricId::TransportReconnectsTotal);
        }
        self.conn = Some(stream);
        Ok(())
    }

    /// One write-push-await-ack round trip on the current connection.
    fn push_once(&mut self, expected_seq: u64, frame: &[u8]) -> Result<AckOutcome, TransportError> {
        let cap = self.cfg.max_frame_payload;
        let stream = self.conn.as_mut().expect("ensure_connected ran");
        let t0 = global().timer();
        write_frame(stream, frame)?;
        self.stats.bytes_out += frame.len() as u64;
        global().add(MetricId::TransportBytesOutTotal, frame.len() as u64);
        let (fh, bytes) = read_frame(stream, cap)?;
        global().observe_since(MetricId::TransportPushRttNanos, t0);
        if fh.tag != TAG_SNAPSHOT_ACK {
            return Err(TransportError::Protocol {
                what: format!("expected SnapshotAck, got tag {:#06x}", fh.tag),
            });
        }
        let ack = SnapshotAck::decode_framed(&bytes)?;
        match ack.status {
            AckStatus::Rejected => Err(TransportError::Rejected { reason: ack.reason }),
            _ if ack.seq != expected_seq => Err(TransportError::Protocol {
                what: format!("ack for seq {} while pushing seq {expected_seq}", ack.seq),
            }),
            AckStatus::Accepted => Ok(AckOutcome::Accepted),
            AckStatus::Duplicate => Ok(AckOutcome::Duplicate),
            AckStatus::RejectedUnknownBase => Ok(AckOutcome::UnknownBase),
        }
    }
}
