//! TCP snapshot transport for the distributed collector.
//!
//! The paper's deployment picture is many observation sites, each
//! Bernoulli-sampling its own slice of the traffic, and a collector
//! combining their summaries into one answer for the union. The lower
//! layers already make that possible *in memory* (mergeable estimators,
//! `Monitor::try_merge`) and *as bytes* (the `sss-codec` framed wire
//! format, `Monitor::checkpoint`/`restore`); this crate makes the bytes
//! actually flow: a length-delimited stream protocol over TCP built
//! directly on the existing `encode_framed` envelope.
//!
//! * [`proto`] — the protocol messages (hello/version handshake,
//!   snapshot push, typed acks, graceful goodbye), each travelling as a
//!   self-describing checksummed frame, plus the shared frame I/O used
//!   by both ends (header pre-validation via
//!   [`sss_codec::parse_frame_header`] before the payload is read, with
//!   a hard payload cap so a corrupt length cannot OOM the receiver).
//! * [`server`] — [`CollectorServer`]: accepts N site connections on
//!   worker threads, decodes snapshots through the codec registry,
//!   rejects corrupt or incompatible ones with per-reason counters
//!   ([`TransportStats`]) and folds accepted snapshots into a merged
//!   [`sss_core::Monitor`] behind `try_merge` — a bad shard is a
//!   counter bump and a typed NACK, never a collector panic.
//! * [`client`] — [`SiteClient`]: wraps a local monitor, ships
//!   `checkpoint()` snapshots with sequence numbers, bounded retry and
//!   exponential-backoff reconnect, and resumes cleanly after a dropped
//!   connection (the server deduplicates re-sent sequence numbers, so a
//!   lost ACK never double-counts a snapshot).
//!
//! The protocol is documented in `crates/transport/src/README.md`; the
//! std-only constraint (`std::net` + `std::thread`, no external
//! dependencies) matches the rest of the workspace.

#![forbid(unsafe_code)]

use std::fmt;
use std::io;

use sss_codec::CodecError;

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, ClientStats, PushOutcome, RetryPolicy, SiteClient};
pub use proto::{
    read_frame, write_frame, AckStatus, Goodbye, Hello, HelloAck, MetricsPush, SnapshotAck,
    SnapshotDeltaPush, SnapshotPush, FEATURE_DELTA_PUSH, FEATURE_METRICS_PUSH, SUPPORTED_FEATURES,
    TRANSPORT_PROTO_VERSION,
};
pub use server::{CollectorServer, RejectReason, ServerConfig, SiteTransportStats, TransportStats};

/// Why a transport operation failed. IO and codec problems keep their
/// typed causes; protocol-level outcomes (a refused handshake, a
/// rejected snapshot, an exhausted retry budget) get their own variants
/// so callers can distinguish "retry later" from "this snapshot will
/// never be accepted".
#[derive(Debug)]
pub enum TransportError {
    /// The socket failed (connect, read or write).
    Io(io::Error),
    /// A frame failed header validation or payload decoding.
    Codec(CodecError),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// The transport is shutting down (server-side read loops only).
    Shutdown,
    /// A frame announced a payload larger than the configured cap.
    Oversize {
        /// Payload length announced by the frame header.
        payload_len: usize,
        /// The receiver's configured cap.
        cap: usize,
    },
    /// The collector refused the hello handshake.
    HandshakeRefused {
        /// The collector's stated reason.
        reason: String,
    },
    /// The collector rejected a pushed snapshot (typed NACK) — the
    /// snapshot is corrupt or incompatible; re-sending the same bytes
    /// cannot succeed.
    Rejected {
        /// The collector's stated reason.
        reason: String,
    },
    /// The peer answered with a message that violates the protocol
    /// state machine (wrong tag, or an ack for a different sequence).
    Protocol {
        /// What was wrong.
        what: String,
    },
    /// The bounded retry budget ran out.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The last attempt's error.
        last: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "io: {e}"),
            TransportError::Codec(e) => write!(f, "codec: {e}"),
            TransportError::Closed => write!(f, "peer closed the connection"),
            TransportError::Shutdown => write!(f, "transport shutting down"),
            TransportError::Oversize { payload_len, cap } => {
                write!(f, "frame payload {payload_len} bytes exceeds cap {cap}")
            }
            TransportError::HandshakeRefused { reason } => {
                write!(f, "handshake refused: {reason}")
            }
            TransportError::Rejected { reason } => write!(f, "snapshot rejected: {reason}"),
            TransportError::Protocol { what } => write!(f, "protocol violation: {what}"),
            TransportError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last error: {last})")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}
