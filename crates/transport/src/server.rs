//! [`CollectorServer`]: the receiving end of the snapshot transport.
//!
//! One accept loop, one handler thread per site connection. Every
//! incoming frame is pre-validated (header), checksum-checked and
//! decoded through the codec before any of it is trusted; every failure
//! is a *counter bump and a typed NACK*, never a collector panic — a
//! fleet of sites keeps streaming while one corrupt peer is rejected
//! frame by frame.
//!
//! Merging is idempotent per site: the collector keeps the **latest
//! accepted snapshot per site** (sites push cumulative checkpoints, so
//! a newer snapshot supersedes the older one) and remembers the highest
//! sequence number accepted; a re-sent sequence — the retry after a
//! lost ack — answers `Duplicate` and changes nothing. The merged view
//! ([`CollectorServer::merged`]) folds the per-site snapshots into a
//! clone of the prototype in ascending `site_id` order through
//! [`Monitor::try_merge`], so it is bitwise-identical to an in-memory
//! merge of the same snapshots in the same order.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sss_codec::{CodecError, WireCodec};
use sss_core::{Monitor, SnapshotDelta};
use sss_obs::{render_json, render_prometheus, EventKind, MetricId, MetricsSnapshot, Registry};

use crate::proto::AckStatus;
use crate::proto::{
    read_frame_inner, write_frame, FrameRead, Goodbye, Hello, HelloAck, MetricsPush, SnapshotAck,
    SnapshotDeltaPush, SnapshotPush, SEQ_UNKNOWN, SUPPORTED_FEATURES, TAG_GOODBYE, TAG_HELLO,
    TAG_METRICS_PUSH, TAG_SNAPSHOT_DELTA_PUSH, TAG_SNAPSHOT_PUSH, TRANSPORT_PROTO_VERSION,
};
use crate::TransportError;

/// Why the collector refused a frame or snapshot — the index set of the
/// per-reason rejection counters in [`TransportStats`]. Codec-driven
/// reasons mirror [`CodecError`] variant by variant; the rest are
/// transport-level verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum RejectReason {
    /// Frame did not start with the wire magic.
    BadMagic,
    /// Frame written by an incompatible wire format version.
    UnsupportedVersion,
    /// Frame tag did not match the expected type.
    TagMismatch,
    /// A polymorphic slot carried a tag this build cannot decode.
    UnknownTag,
    /// The connection ended (or the buffer ran out) mid-frame.
    Truncated,
    /// Bytes left over after a complete object.
    TrailingBytes,
    /// Payload checksum mismatch — bytes corrupted in flight.
    ChecksumMismatch,
    /// A decoded value violated a structural invariant.
    InvalidPayload,
    /// Frame announced a payload above the configured cap.
    Oversize,
    /// The snapshot decoded fine but cannot merge with the collector's
    /// prototype configuration (rate/shape/label/type mismatch).
    MergeIncompatible,
    /// A push's `site_id` disagreed with the connection's hello.
    SiteMismatch,
    /// A message tag arrived out of protocol order.
    UnexpectedMessage,
    /// The hello handshake was refused (transport protocol version).
    HandshakeRefused,
    /// A delta push named a base snapshot the collector does not hold
    /// (sequence moved or bytes disagree) — answered
    /// `RejectedUnknownBase`, prompting a full-push fallback.
    UnknownBase,
}

impl RejectReason {
    /// Number of distinct reasons (length of the counter array).
    pub const COUNT: usize = 14;

    /// Every reason, index-aligned with the counter array.
    pub const ALL: [RejectReason; Self::COUNT] = [
        RejectReason::BadMagic,
        RejectReason::UnsupportedVersion,
        RejectReason::TagMismatch,
        RejectReason::UnknownTag,
        RejectReason::Truncated,
        RejectReason::TrailingBytes,
        RejectReason::ChecksumMismatch,
        RejectReason::InvalidPayload,
        RejectReason::Oversize,
        RejectReason::MergeIncompatible,
        RejectReason::SiteMismatch,
        RejectReason::UnexpectedMessage,
        RejectReason::HandshakeRefused,
        RejectReason::UnknownBase,
    ];

    /// Stable label for logs and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::BadMagic => "bad_magic",
            RejectReason::UnsupportedVersion => "unsupported_version",
            RejectReason::TagMismatch => "tag_mismatch",
            RejectReason::UnknownTag => "unknown_tag",
            RejectReason::Truncated => "truncated",
            RejectReason::TrailingBytes => "trailing_bytes",
            RejectReason::ChecksumMismatch => "checksum_mismatch",
            RejectReason::InvalidPayload => "invalid_payload",
            RejectReason::Oversize => "oversize",
            RejectReason::MergeIncompatible => "merge_incompatible",
            RejectReason::SiteMismatch => "site_mismatch",
            RejectReason::UnexpectedMessage => "unexpected_message",
            RejectReason::HandshakeRefused => "handshake_refused",
            RejectReason::UnknownBase => "unknown_base",
        }
    }

    /// The counter a [`CodecError`] lands in — variant for variant, so
    /// "flipped payload byte" and "stale writer version" are separate
    /// numbers on the dashboard.
    pub fn from_codec(e: &CodecError) -> Self {
        match e {
            CodecError::Truncated { .. } => RejectReason::Truncated,
            CodecError::BadMagic { .. } => RejectReason::BadMagic,
            CodecError::UnsupportedVersion { .. } => RejectReason::UnsupportedVersion,
            CodecError::TagMismatch { .. } => RejectReason::TagMismatch,
            CodecError::UnknownTag { .. } => RejectReason::UnknownTag,
            CodecError::TrailingBytes { .. } => RejectReason::TrailingBytes,
            CodecError::ChecksumMismatch { .. } => RejectReason::ChecksumMismatch,
            CodecError::Invalid { .. } => RejectReason::InvalidPayload,
            CodecError::BadBase { .. } => RejectReason::UnknownBase,
        }
    }
}

/// The registry counter behind each rejection reason. The per-reason
/// counters live in the shared metric registry (one source of truth for
/// [`TransportStats`], the wire export and the `/metrics` renders);
/// this is the index mapping.
fn reject_metric(reason: RejectReason) -> MetricId {
    match reason {
        RejectReason::BadMagic => MetricId::TransportRejectBadMagicTotal,
        RejectReason::UnsupportedVersion => MetricId::TransportRejectUnsupportedVersionTotal,
        RejectReason::TagMismatch => MetricId::TransportRejectTagMismatchTotal,
        RejectReason::UnknownTag => MetricId::TransportRejectUnknownTagTotal,
        RejectReason::Truncated => MetricId::TransportRejectTruncatedTotal,
        RejectReason::TrailingBytes => MetricId::TransportRejectTrailingBytesTotal,
        RejectReason::ChecksumMismatch => MetricId::TransportRejectChecksumMismatchTotal,
        RejectReason::InvalidPayload => MetricId::TransportRejectInvalidPayloadTotal,
        RejectReason::Oversize => MetricId::TransportRejectOversizeTotal,
        RejectReason::MergeIncompatible => MetricId::TransportRejectMergeIncompatibleTotal,
        RejectReason::SiteMismatch => MetricId::TransportRejectSiteMismatchTotal,
        RejectReason::UnexpectedMessage => MetricId::TransportRejectUnexpectedMessageTotal,
        RejectReason::HandshakeRefused => MetricId::TransportRejectHandshakeRefusedTotal,
        RejectReason::UnknownBase => MetricId::TransportRejectUnknownBaseTotal,
    }
}

/// Collector tuning knobs. Defaults suit a LAN deployment; tests dial
/// the timeouts down.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Hard cap on any frame's payload (a corrupt length larger than
    /// this is rejected before allocation). Default 64 MiB.
    pub max_frame_payload: usize,
    /// Read-poll granularity: how often blocked reads check the
    /// shutdown flag. Default 25 ms.
    pub poll_interval: Duration,
    /// How long a fresh connection may take to complete the hello
    /// handshake before being dropped. Default 10 s.
    pub handshake_timeout: Duration,
    /// Cap on any single ack/refusal write: a peer that stops reading
    /// (full send buffer) fails the connection after this long instead
    /// of blocking its handler thread forever. Default 10 s.
    pub write_timeout: Duration,
    /// Optional address for the HTTP stats endpoint (`GET /metrics` →
    /// Prometheus text, `GET /metrics.json` → JSON; the collector's
    /// own registry plus the latest telemetry pushed by each site).
    /// `None` (the default) serves no endpoint; `"127.0.0.1:0"` binds
    /// an OS-picked port, read back with
    /// [`CollectorServer::stats_addr`].
    pub stats_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_frame_payload: 64 << 20,
            poll_interval: Duration::from_millis(25),
            handshake_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            stats_addr: None,
        }
    }
}

/// Per-site observability row in [`TransportStats`].
#[derive(Debug, Clone)]
pub struct SiteTransportStats {
    /// The site's stable identifier (from its hello).
    pub site_id: u64,
    /// The site's self-reported name.
    pub name: String,
    /// Snapshots accepted and folded into the collector view.
    pub snapshots_accepted: u64,
    /// Highest sequence number accepted (`None` before the first).
    pub last_seq: Option<u64>,
    /// Frame bytes received from this site (accepted pushes only).
    pub bytes_in: u64,
    /// Time since the site's last accepted snapshot (or hello),
    /// measured on the collector registry's session clock (monotonic
    /// milliseconds since this collector bound).
    ///
    /// **Restart semantics:** the underlying timestamp is a
    /// session-relative offset, not a wall-clock time or a raw
    /// [`Instant`] (which would be meaningless after checkpoint/restore
    /// of collector state). Within one collector process the value is
    /// exact; after a collector restart the session clock restarts too,
    /// so the first row for a site reads as "seen at hello time" —
    /// elapsed time across the restart gap is deliberately not
    /// invented.
    pub since_last_seen: Duration,
}

/// A point-in-time snapshot of the collector's transport counters —
/// the observability surface the ISSUE calls `TransportStats`.
#[derive(Debug, Clone)]
pub struct TransportStats {
    /// Connections accepted since bind.
    pub connections_accepted: u64,
    /// Connections currently in a session.
    pub connections_active: u64,
    /// Connections that ended with a goodbye.
    pub clean_closes: u64,
    /// Connections that ended without one (drop, IO error).
    pub disconnects: u64,
    /// Snapshot pushes accepted and folded into the collector view.
    pub snapshots_accepted: u64,
    /// Re-sent sequence numbers answered `Duplicate` (retries after a
    /// lost ack) — received again, merged zero times.
    pub snapshots_duplicate: u64,
    /// Total frame bytes successfully read off all connections
    /// (header + payload, including frames later rejected).
    pub bytes_in: u64,
    rejected: [u64; RejectReason::COUNT],
    /// Per-site rows, ascending `site_id`.
    pub sites: Vec<SiteTransportStats>,
}

impl TransportStats {
    /// Frames rejected for `reason`.
    pub fn rejected(&self, reason: RejectReason) -> u64 {
        self.rejected[reason as usize]
    }

    /// Frames rejected across all reasons.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.iter().sum()
    }

    /// `(label, count)` for every reason with a nonzero counter.
    pub fn rejected_nonzero(&self) -> Vec<(&'static str, u64)> {
        RejectReason::ALL
            .iter()
            .filter(|r| self.rejected[**r as usize] > 0)
            .map(|r| (r.label(), self.rejected[*r as usize]))
            .collect()
    }
}

/// Per-site connection state. The counters live as shared registry
/// cells — resolved once at hello via [`Registry::labeled_handle`],
/// plain atomic adds afterwards — so the per-site rows in
/// [`TransportStats`], the wire export and the `/metrics` renders all
/// read the same storage. One source of truth, no parallel bookkeeping
/// to drift.
struct SiteState {
    name: String,
    /// `sss_transport_site_snapshots_total{site}` cell.
    accepted: Arc<AtomicU64>,
    /// `sss_transport_site_bytes_in_total{site}` cell.
    bytes_in: Arc<AtomicU64>,
    /// `sss_transport_site_last_seq{site}` cell. Stores `seq + 1`, with
    /// `0` meaning "none accepted yet", so the gauge stays one plain
    /// u64 cell. The `+ 1` cannot wrap: `SEQ_UNKNOWN` (`u64::MAX`) is
    /// rejected before any accept.
    last_seq_cell: Arc<AtomicU64>,
    /// `sss_transport_site_last_seen_ms{site}` cell: session-relative
    /// milliseconds (see [`SiteTransportStats::since_last_seen`] for
    /// the restart semantics).
    last_seen_ms: Arc<AtomicU64>,
    latest: Option<Monitor>,
    /// The framed checkpoint bytes behind `latest` — the base the next
    /// delta push from this site is applied against. `Arc` so a handler
    /// thread can diff outside the sites lock without a multi-MiB copy.
    latest_bytes: Option<Arc<Vec<u8>>>,
}

impl SiteState {
    fn new(reg: &Registry, site_id: u64, name: String) -> Self {
        Self {
            name,
            accepted: reg.labeled_handle(MetricId::TransportSiteSnapshotsTotal, site_id),
            bytes_in: reg.labeled_handle(MetricId::TransportSiteBytesInTotal, site_id),
            last_seq_cell: reg.labeled_handle(MetricId::TransportSiteLastSeq, site_id),
            last_seen_ms: reg.labeled_handle(MetricId::TransportSiteLastSeenMs, site_id),
            latest: None,
            latest_bytes: None,
        }
    }

    /// Highest accepted sequence (`None` before the first).
    fn last_seq(&self) -> Option<u64> {
        self.last_seq_cell.load(Ordering::Relaxed).checked_sub(1)
    }

    fn set_last_seq(&self, seq: u64) {
        self.last_seq_cell.store(seq + 1, Ordering::Relaxed);
    }

    /// Stamp "seen now" on the session clock.
    fn touch(&self, reg: &Registry) {
        self.last_seen_ms.store(reg.session_ms(), Ordering::Relaxed);
    }
}

struct Shared {
    prototype: Monitor,
    cfg: ServerConfig,
    sites: Mutex<BTreeMap<u64, SiteState>>,
    /// This collector's own metric registry — deliberately *not* the
    /// process-global one, so concurrent collectors in one process (the
    /// test suite, most of all) never share counters.
    reg: Arc<Registry>,
    /// Latest telemetry snapshot pushed by each site over
    /// [`MetricsPush`]: `site_id → (seq, snapshot)`, last-write-wins
    /// guarded by `seq` so a late retry never rolls the view backwards.
    site_metrics: Mutex<BTreeMap<u64, (u64, MetricsSnapshot)>>,
    shutdown: AtomicBool,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn reject(&self, reason: RejectReason) {
        self.reg.inc(reject_metric(reason));
        self.reg
            .event(EventKind::SnapshotRejected, 0, 0, reason.label());
    }

    /// Count a failed read/decode; returns the reason when the error
    /// was a frame-level rejection (vs a connection-level end).
    fn reject_err(&self, e: &TransportError) -> Option<RejectReason> {
        let reason = match e {
            TransportError::Codec(c) => RejectReason::from_codec(c),
            TransportError::Oversize { .. } => RejectReason::Oversize,
            _ => return None,
        };
        self.reject(reason);
        Some(reason)
    }
}

/// The collector's TCP endpoint: accepts site connections, validates
/// and folds their snapshot pushes, and exposes the merged monitor and
/// the transport counters at any time.
///
/// ```no_run
/// use sss_core::MonitorBuilder;
/// use sss_transport::{CollectorServer, ServerConfig};
///
/// let prototype = MonitorBuilder::with_seed(0.05, 7).f0(0.05).fk(2).build();
/// let server = CollectorServer::bind("127.0.0.1:0", prototype, ServerConfig::default())?;
/// println!("collector on {}", server.local_addr());
/// // ... sites connect and push ...
/// let (merged, stats) = server.shutdown();
/// println!("accepted {} snapshots", stats.snapshots_accepted);
/// # let _ = merged;
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct CollectorServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    stats_addr: Option<SocketAddr>,
    accept_handle: Option<JoinHandle<()>>,
    stats_handle: Option<JoinHandle<()>>,
}

impl CollectorServer {
    /// Bind the collector and start accepting connections. `prototype`
    /// is the builder configuration every site must match (it defines
    /// what "mergeable" means); pass `"127.0.0.1:0"` to let the OS pick
    /// a port and read it back with [`CollectorServer::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        prototype: Monitor,
        cfg: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stats_listener = match &cfg.stats_addr {
            Some(a) => {
                let l = TcpListener::bind(a.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let stats_addr = match &stats_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let shared = Arc::new(Shared {
            prototype,
            cfg,
            sites: Mutex::new(BTreeMap::new()),
            reg: Arc::new(Registry::new()),
            site_metrics: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
            conn_handles: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("sss-collector-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        let stats_handle = match stats_listener {
            Some(l) => {
                let stats_shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("sss-collector-stats".to_string())
                        .spawn(move || stats_loop(l, stats_shared))?,
                )
            }
            None => None,
        };
        Ok(Self {
            shared,
            addr,
            stats_addr,
            accept_handle: Some(accept_handle),
            stats_handle,
        })
    }

    /// The address the collector is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The address the HTTP stats endpoint is listening on, when
    /// [`ServerConfig::stats_addr`] asked for one.
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.stats_addr
    }

    /// This collector's metric registry — per-server, not the
    /// process-global one. Snapshot it for the wire export, or render
    /// it directly.
    pub fn registry(&self) -> &Registry {
        &self.shared.reg
    }

    /// The latest telemetry snapshot each site pushed over
    /// [`MetricsPush`], ascending `site_id`.
    pub fn site_metrics(&self) -> Vec<(u64, MetricsSnapshot)> {
        let metrics = self.shared.site_metrics.lock().expect("site metrics lock");
        metrics
            .iter()
            .map(|(id, (_seq, snap))| (*id, snap.clone()))
            .collect()
    }

    /// The collector view right now: a clone of the prototype with
    /// every site's latest accepted snapshot folded in, ascending
    /// `site_id` — deterministic order, so the result is bitwise equal
    /// to an in-memory [`Monitor::try_merge`] of the same snapshots.
    pub fn merged(&self) -> Monitor {
        let sites = self.shared.sites.lock().expect("sites lock");
        let mut view = self.shared.prototype.clone();
        for site in sites.values() {
            if let Some(snap) = &site.latest {
                // Mergeability was proven when the snapshot was
                // accepted; a failure here would mean the prototype
                // changed underneath us, which it cannot.
                if view.try_merge(snap).is_err() {
                    self.shared.reject(RejectReason::MergeIncompatible);
                }
            }
        }
        view
    }

    /// Point-in-time transport counters and per-site rows. A thin view
    /// over the collector's metric registry — the same cells the wire
    /// export and `/metrics` renders read — kept as a typed struct so
    /// existing callers keep their field access.
    pub fn stats(&self) -> TransportStats {
        let reg = &self.shared.reg;
        let sites = self.shared.sites.lock().expect("sites lock");
        let now_ms = reg.session_ms();
        TransportStats {
            connections_accepted: reg.value(MetricId::TransportConnectionsTotal),
            connections_active: reg.gauge_value(MetricId::TransportConnectionsActive).max(0) as u64,
            clean_closes: reg.value(MetricId::TransportCleanClosesTotal),
            disconnects: reg.value(MetricId::TransportDisconnectsTotal),
            snapshots_accepted: reg.value(MetricId::TransportSnapshotsAcceptedTotal),
            snapshots_duplicate: reg.value(MetricId::TransportSnapshotsDuplicateTotal),
            bytes_in: reg.value(MetricId::TransportBytesInTotal),
            rejected: std::array::from_fn(|i| reg.value(reject_metric(RejectReason::ALL[i]))),
            sites: sites
                .iter()
                .map(|(id, s)| SiteTransportStats {
                    site_id: *id,
                    name: s.name.clone(),
                    snapshots_accepted: s.accepted.load(Ordering::Relaxed),
                    last_seq: s.last_seq(),
                    bytes_in: s.bytes_in.load(Ordering::Relaxed),
                    since_last_seen: Duration::from_millis(
                        now_ms.saturating_sub(s.last_seen_ms.load(Ordering::Relaxed)),
                    ),
                })
                .collect(),
        }
    }

    /// Stop accepting, wind down every connection handler (all reads —
    /// idle or mid-frame — abort at the next poll tick, so shutdown is
    /// bounded by `poll_interval` even against a stalled peer; writes
    /// are bounded by `write_timeout`), and return the final merged
    /// monitor and counters. A push whose frame was aborted mid-read
    /// never acks, so its site re-sends it on reconnect; the sequence
    /// dedup keeps that safe.
    ///
    /// Merely dropping the server has the same winding-down effect
    /// (threads joined, port released) but discards the final view.
    pub fn shutdown(mut self) -> (Monitor, TransportStats) {
        self.wind_down();
        (self.merged(), self.stats())
    }

    /// Idempotent: set the flag, join the accept loop, join every
    /// handler. Shared by [`CollectorServer::shutdown`] and `Drop`.
    fn wind_down(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.stats_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .shared
            .conn_handles
            .lock()
            .expect("handles lock")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for CollectorServer {
    fn drop(&mut self) {
        // Without this, a server dropped on an early-return path would
        // leak its accept thread (spinning every poll tick), its
        // handler threads and the bound port for the process lifetime.
        self.wind_down();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.reg.inc(MetricId::TransportConnectionsTotal);
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("sss-collector-conn".to_string())
                    .spawn(move || handle_connection(stream, conn_shared))
                    .expect("spawn connection handler");
                // Reap handlers that already finished before tracking
                // the new one — sites reconnect for a living, and a
                // long-lived collector must not accumulate one dead
                // JoinHandle per connection ever accepted.
                let mut handles = shared.conn_handles.lock().expect("handles lock");
                let mut i = 0;
                while i < handles.len() {
                    if handles[i].is_finished() {
                        let _ = handles.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                handles.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval);
            }
            Err(_) => {
                // Transient accept error (e.g. aborted connection):
                // keep serving.
                std::thread::sleep(shared.cfg.poll_interval);
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    shared
        .reg
        .gauge_add(MetricId::TransportConnectionsActive, 1);
    let clean = serve(&mut stream, &shared);
    shared
        .reg
        .gauge_add(MetricId::TransportConnectionsActive, -1);
    match clean {
        true => shared.reg.inc(MetricId::TransportCleanClosesTotal),
        false => shared.reg.inc(MetricId::TransportDisconnectsTotal),
    };
}

/// Run one connection to completion. Returns whether it ended cleanly
/// (goodbye, or shutdown while idle).
fn serve(stream: &mut TcpStream, shared: &Shared) -> bool {
    // Accepted sockets can inherit the listener's nonblocking mode;
    // switch to blocking reads with a short timeout so the read loop
    // doubles as the shutdown poll. Acks are tiny request-response
    // writes — disable Nagle so they are not held hostage to delayed
    // ACKs, and bound writes so a peer that stops *reading* (full send
    // buffer) fails the connection instead of wedging the handler
    // thread (and therefore `shutdown()`) forever.
    if stream.set_nonblocking(false).is_err()
        || stream.set_nodelay(true).is_err()
        || stream
            .set_read_timeout(Some(shared.cfg.poll_interval))
            .is_err()
        || stream
            .set_write_timeout(Some(shared.cfg.write_timeout))
            .is_err()
    {
        return false;
    }
    let cap = shared.cfg.max_frame_payload;

    // Phase 1: hello handshake, under a deadline.
    let deadline = Instant::now() + shared.cfg.handshake_timeout;
    let site_id = match read_frame_inner(stream, cap, Some(&shared.shutdown), Some(deadline)) {
        Ok(FrameRead::Closed) => return true, // connected, said nothing, left
        Ok(FrameRead::Frame(fh, bytes)) if fh.tag == TAG_HELLO => {
            shared
                .reg
                .add(MetricId::TransportBytesInTotal, bytes.len() as u64);
            match Hello::decode_framed(&bytes) {
                Ok(hello) if hello.proto_version == TRANSPORT_PROTO_VERSION => {
                    let mut sites = shared.sites.lock().expect("sites lock");
                    let entry = sites.entry(hello.site_id).or_insert_with(|| {
                        SiteState::new(&shared.reg, hello.site_id, hello.site_name.clone())
                    });
                    entry.name = hello.site_name.clone();
                    entry.touch(&shared.reg);
                    // Tell the site where its sequence left off, so a
                    // restarted site (counter back at 0) fast-forwards
                    // past the dedup window instead of having its
                    // fresh snapshots swallowed as duplicates.
                    // (Saturating: SEQ_UNKNOWN is rejected at accept
                    // time, but a stored u64::MAX must still not panic
                    // the handler under debug assertions.)
                    let resume_seq = entry.last_seq().map_or(0, |s| s.saturating_add(1));
                    drop(sites);
                    let ack = HelloAck {
                        accepted: true,
                        proto_version: TRANSPORT_PROTO_VERSION,
                        resume_seq,
                        reason: String::new(),
                        // Grant the intersection of what the site
                        // offered and what this build implements.
                        features: hello.features & SUPPORTED_FEATURES,
                    };
                    if write_frame(stream, &ack.encode_framed()).is_err() {
                        return false;
                    }
                    hello.site_id
                }
                Ok(hello) => {
                    shared.reject(RejectReason::HandshakeRefused);
                    refuse_hello(
                        stream,
                        format!(
                            "transport protocol version {} not supported (this collector speaks {})",
                            hello.proto_version, TRANSPORT_PROTO_VERSION
                        ),
                    );
                    return false;
                }
                Err(e) => {
                    shared.reject(RejectReason::from_codec(&e));
                    refuse_hello(stream, format!("hello failed to decode: {e}"));
                    return false;
                }
            }
        }
        Ok(FrameRead::Frame(fh, _)) => {
            shared.reject(RejectReason::UnexpectedMessage);
            refuse_hello(stream, format!("expected Hello, got tag {:#06x}", fh.tag));
            return false;
        }
        Err(TransportError::Shutdown) => return true,
        Err(e) => {
            // A frame-level failure during handshake (bad magic, wrong
            // wire version, oversize, truncation) is counted under its
            // reason and refused best-effort — the refusal is written
            // in *our* wire version, which a stale peer may not parse,
            // but the bytes are there for it to log.
            let refused = shared.reject_err(&e).is_some();
            if refused {
                refuse_hello(stream, format!("handshake frame rejected: {e}"));
            }
            return false;
        }
    };

    // Phase 2: snapshot session.
    loop {
        match read_frame_inner(stream, cap, Some(&shared.shutdown), None) {
            Ok(FrameRead::Closed) => return false, // dropped without goodbye
            Err(TransportError::Shutdown) => return true,
            Err(e) => {
                shared.reject_err(&e);
                // An oversize frame is the one read failure with a
                // still-valid header: NACK it so the site learns the
                // push is *terminal* instead of burning its retry
                // budget re-sending it, then close (the unread payload
                // makes the stream position unrecoverable).
                if matches!(e, TransportError::Oversize { .. }) {
                    let ack = SnapshotAck {
                        seq: SEQ_UNKNOWN,
                        status: AckStatus::Rejected,
                        reason: format!("frame rejected: {e}"),
                    };
                    let _ = write_frame(stream, &ack.encode_framed());
                }
                return false;
            }
            Ok(FrameRead::Frame(fh, bytes)) => {
                shared
                    .reg
                    .add(MetricId::TransportBytesInTotal, bytes.len() as u64);
                match fh.tag {
                    TAG_SNAPSHOT_PUSH => {
                        let ack = match SnapshotPush::decode_framed(&bytes) {
                            Ok(push) => handle_push(shared, site_id, push, bytes.len() as u64),
                            Err(e) => {
                                shared.reject(RejectReason::from_codec(&e));
                                SnapshotAck {
                                    seq: SEQ_UNKNOWN,
                                    status: AckStatus::Rejected,
                                    reason: format!("push frame rejected: {e}"),
                                }
                            }
                        };
                        if write_frame(stream, &ack.encode_framed()).is_err() {
                            return false;
                        }
                    }
                    TAG_SNAPSHOT_DELTA_PUSH => {
                        let ack = match SnapshotDeltaPush::decode_framed(&bytes) {
                            Ok(push) => {
                                handle_delta_push(shared, site_id, push, bytes.len() as u64)
                            }
                            Err(e) => {
                                shared.reject(RejectReason::from_codec(&e));
                                SnapshotAck {
                                    seq: SEQ_UNKNOWN,
                                    status: AckStatus::Rejected,
                                    reason: format!("delta push frame rejected: {e}"),
                                }
                            }
                        };
                        if write_frame(stream, &ack.encode_framed()).is_err() {
                            return false;
                        }
                    }
                    TAG_METRICS_PUSH => {
                        let ack = match MetricsPush::decode_framed(&bytes) {
                            Ok(push) => handle_metrics_push(shared, site_id, push),
                            Err(e) => {
                                shared.reject(RejectReason::from_codec(&e));
                                SnapshotAck {
                                    seq: SEQ_UNKNOWN,
                                    status: AckStatus::Rejected,
                                    reason: format!("metrics push frame rejected: {e}"),
                                }
                            }
                        };
                        if write_frame(stream, &ack.encode_framed()).is_err() {
                            return false;
                        }
                    }
                    TAG_GOODBYE => {
                        let _ = Goodbye::decode_framed(&bytes);
                        return true;
                    }
                    other => {
                        shared.reject(RejectReason::UnexpectedMessage);
                        let ack = SnapshotAck {
                            seq: SEQ_UNKNOWN,
                            status: AckStatus::Rejected,
                            reason: format!("unexpected message tag {other:#06x}"),
                        };
                        if write_frame(stream, &ack.encode_framed()).is_err() {
                            return false;
                        }
                    }
                }
            }
        }
    }
}

/// O(1) duplicate answer shared by both push paths.
fn duplicate_ack(shared: &Shared, seq: u64) -> SnapshotAck {
    shared.reg.inc(MetricId::TransportSnapshotsDuplicateTotal);
    SnapshotAck {
        seq,
        status: AckStatus::Duplicate,
        reason: String::new(),
    }
}

/// Whether `seq` is already covered by the site's accepted window.
fn is_duplicate(shared: &Shared, site: u64, seq: u64) -> bool {
    let sites = shared.sites.lock().expect("sites lock");
    let entry = sites.get(&site).expect("site registered at hello");
    matches!(entry.last_seq(), Some(last) if seq <= last)
}

/// Reject pushes carrying the reserved sequence: `u64::MAX` is
/// [`SEQ_UNKNOWN`] (the undecodable-payload ack sentinel), and
/// accepting it would also wedge the dedup window at the top of the
/// range. No honest client gets near it (sequences count up from 0).
fn check_reserved_seq(shared: &Shared, seq: u64) -> Option<SnapshotAck> {
    if seq == SEQ_UNKNOWN {
        shared.reject(RejectReason::InvalidPayload);
        return Some(SnapshotAck {
            seq,
            status: AckStatus::Rejected,
            reason: "sequence u64::MAX is reserved".to_string(),
        });
    }
    None
}

/// Validate one decoded full push and fold it in. Returns the ack to
/// send; every rejection increments exactly one reason counter.
fn handle_push(
    shared: &Shared,
    session_site: u64,
    push: SnapshotPush,
    frame_bytes: u64,
) -> SnapshotAck {
    if push.site_id != session_site {
        shared.reject(RejectReason::SiteMismatch);
        return SnapshotAck {
            seq: push.seq,
            status: AckStatus::Rejected,
            reason: format!(
                "push for site {} on a connection that authenticated as site {}",
                push.site_id, session_site
            ),
        };
    }

    if let Some(ack) = check_reserved_seq(shared, push.seq) {
        return ack;
    }

    // Sequence dedup FIRST: a retry after a lost ack (the normal
    // recovery path) re-sends a multi-MiB snapshot the collector
    // already holds — answer `Duplicate` in O(1) instead of paying a
    // full decode for bytes that will be discarded.
    if is_duplicate(shared, session_site, push.seq) {
        return duplicate_ack(shared, push.seq);
    }

    accept_snapshot(shared, session_site, push.seq, push.snapshot, frame_bytes)
}

/// Validate one decoded delta push: resolve the base, rebuild the full
/// snapshot bytes, then run the ordinary accept path on them. A base
/// the collector does not hold (sequence moved, or the bytes disagree
/// with the delta's recorded base checksum) answers
/// [`AckStatus::RejectedUnknownBase`] — the site's cue to fall back to
/// a full push with the same sequence.
fn handle_delta_push(
    shared: &Shared,
    session_site: u64,
    push: SnapshotDeltaPush,
    frame_bytes: u64,
) -> SnapshotAck {
    if push.site_id != session_site {
        shared.reject(RejectReason::SiteMismatch);
        return SnapshotAck {
            seq: push.seq,
            status: AckStatus::Rejected,
            reason: format!(
                "delta push for site {} on a connection that authenticated as site {}",
                push.site_id, session_site
            ),
        };
    }
    if let Some(ack) = check_reserved_seq(shared, push.seq) {
        return ack;
    }
    if is_duplicate(shared, session_site, push.seq) {
        return duplicate_ack(shared, push.seq);
    }

    let unknown_base = |text: String| {
        shared.reject(RejectReason::UnknownBase);
        SnapshotAck {
            seq: push.seq,
            status: AckStatus::RejectedUnknownBase,
            reason: text,
        }
    };

    // Resolve the retained base under the lock; the `Arc` clone makes
    // the (multi-MiB) reconstruction below run outside it.
    let base: Arc<Vec<u8>> = {
        let sites = shared.sites.lock().expect("sites lock");
        let entry = sites.get(&session_site).expect("site registered at hello");
        if entry.last_seq() != Some(push.base_seq) {
            let held = entry.last_seq();
            drop(sites);
            return unknown_base(format!(
                "delta names base seq {} but the collector holds {:?}",
                push.base_seq, held
            ));
        }
        match &entry.latest_bytes {
            Some(bytes) => Arc::clone(bytes),
            None => {
                drop(sites);
                return unknown_base(format!(
                    "no snapshot bytes retained for base seq {}",
                    push.base_seq
                ));
            }
        }
    };

    let delta = match SnapshotDelta::decode_framed(&push.delta) {
        Ok(d) => d,
        Err(e) => {
            shared.reject(RejectReason::from_codec(&e));
            return SnapshotAck {
                seq: push.seq,
                status: AckStatus::Rejected,
                reason: format!("delta rejected: {e}"),
            };
        }
    };
    // The reconstructed snapshot obeys the same payload cap as one that
    // arrived whole — checked before paying for the reconstruction.
    if delta.target_len() > shared.cfg.max_frame_payload {
        shared.reject(RejectReason::Oversize);
        return SnapshotAck {
            seq: push.seq,
            status: AckStatus::Rejected,
            reason: format!(
                "delta reconstructs {} bytes, above the {} cap",
                delta.target_len(),
                shared.cfg.max_frame_payload
            ),
        };
    }
    let snapshot = match delta.apply_with_limit(&base, shared.cfg.max_frame_payload) {
        Ok(bytes) => bytes,
        Err(e @ CodecError::BadBase { .. }) => {
            return unknown_base(format!("delta does not apply: {e}"));
        }
        Err(e) => {
            shared.reject(RejectReason::from_codec(&e));
            return SnapshotAck {
                seq: push.seq,
                status: AckStatus::Rejected,
                reason: format!("delta rejected: {e}"),
            };
        }
    };

    accept_snapshot(shared, session_site, push.seq, snapshot, frame_bytes)
}

/// Decode, merge-probe and store one full snapshot (arrived whole or
/// rebuilt from a delta). Returns the ack to send.
fn accept_snapshot(
    shared: &Shared,
    session_site: u64,
    seq: u64,
    snapshot: Vec<u8>,
    frame_bytes: u64,
) -> SnapshotAck {
    let reject = |reason: RejectReason, text: String| {
        shared.reject(reason);
        SnapshotAck {
            seq,
            status: AckStatus::Rejected,
            reason: text,
        }
    };

    // The snapshot is its own checksummed frame: restore re-validates
    // magic, version, tag and payload checksum independently of the
    // transport frame that carried it. (The sites lock is NOT held
    // across the decode — other sites keep landing pushes meanwhile.)
    let snap = match Monitor::restore(&snapshot) {
        Ok(m) => m,
        Err(e) => {
            return reject(
                RejectReason::from_codec(&e),
                format!("snapshot rejected: {e}"),
            )
        }
    };

    // Prove mergeability against the prototype *before* storing: a bad
    // shard is rejected here and never reaches the collector view. The
    // prototype is immutable shared state, so the (multi-MiB for a
    // full monitor) clone + merge probe also runs outside the lock —
    // concurrent sites only serialize on the cheap store below.
    let mut probe = shared.prototype.clone();
    if let Err(e) = probe.try_merge(&snap) {
        return reject(
            RejectReason::MergeIncompatible,
            format!("snapshot does not merge with the collector prototype: {e}"),
        );
    }

    let mut sites = shared.sites.lock().expect("sites lock");
    let entry = sites
        .get_mut(&session_site)
        .expect("site registered at hello");

    // Re-check under the lock: a second connection for the same site
    // id could have advanced the sequence while we were decoding.
    if matches!(entry.last_seq(), Some(last) if seq <= last) {
        drop(sites);
        return duplicate_ack(shared, seq);
    }

    entry.latest = Some(snap);
    // Retain the framed bytes as the base for this site's next delta
    // push (one snapshot per site, the price of delta support).
    entry.latest_bytes = Some(Arc::new(snapshot));
    entry.set_last_seq(seq);
    entry.accepted.fetch_add(1, Ordering::Relaxed);
    entry.bytes_in.fetch_add(frame_bytes, Ordering::Relaxed);
    entry.touch(&shared.reg);
    drop(sites);
    shared.reg.inc(MetricId::TransportSnapshotsAcceptedTotal);
    shared
        .reg
        .event(EventKind::SnapshotAccepted, session_site, seq, "");
    SnapshotAck {
        seq,
        status: AckStatus::Accepted,
        reason: String::new(),
    }
}

/// Store one site telemetry push: last-write-wins guarded by `seq`, so
/// a late retry never rolls the stored view backwards. No dedup window
/// — telemetry is an overwrite, not a merge, so replaying a sequence
/// is harmless and always acks `Accepted`.
fn handle_metrics_push(shared: &Shared, session_site: u64, push: MetricsPush) -> SnapshotAck {
    if push.site_id != session_site {
        shared.reject(RejectReason::SiteMismatch);
        return SnapshotAck {
            seq: push.seq,
            status: AckStatus::Rejected,
            reason: format!(
                "metrics push for site {} on a connection that authenticated as site {}",
                push.site_id, session_site
            ),
        };
    }
    {
        let mut metrics = shared.site_metrics.lock().expect("site metrics lock");
        let slot = metrics
            .entry(session_site)
            .or_insert_with(|| (0, MetricsSnapshot::default()));
        if push.seq >= slot.0 {
            *slot = (push.seq, push.snapshot);
        }
    }
    shared.reg.inc(MetricId::TransportMetricsPushesTotal);
    SnapshotAck {
        seq: push.seq,
        status: AckStatus::Accepted,
        reason: String::new(),
    }
}

/// Accept loop for the HTTP stats endpoint. Requests are tiny and the
/// renders are cheap, so each one is served inline on this thread —
/// no handler pool, and shutdown needs to join exactly one thread.
fn stats_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => serve_stats(stream, &shared),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.cfg.poll_interval),
        }
    }
}

/// Answer one HTTP request: `GET /metrics` (Prometheus text) or
/// `GET /metrics.json` (JSON). Minimal HTTP/1.0 — enough for a scraper
/// or `curl`, not a web server: one request per connection, bounded
/// head read, close after the response.
fn serve_stats(mut stream: TcpStream, shared: &Shared) {
    use std::io::{Read, Write};
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(shared.cfg.handshake_timeout))
            .is_err()
        || stream
            .set_write_timeout(Some(shared.cfg.write_timeout))
            .is_err()
    {
        return;
    }
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > (8 << 10) {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_stats_prometheus(shared),
            ),
            "/metrics.json" => ("200 OK", "application/json", render_stats_json(shared)),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found (try /metrics or /metrics.json)\n".to_string(),
            ),
        }
    };
    let resp = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(resp.as_bytes());
}

/// Prometheus text: the collector's own registry first, then the
/// latest telemetry pushed by each site with every series stamped
/// `site="<id>"`, so collector-side and site-side series with the same
/// metric name never collide.
fn render_stats_prometheus(shared: &Shared) -> String {
    let mut out = render_prometheus(&shared.reg.snapshot(), None);
    let metrics = shared.site_metrics.lock().expect("site metrics lock");
    for (site, (_seq, snap)) in metrics.iter() {
        out.push_str(&render_prometheus(snap, Some(*site)));
    }
    out
}

/// JSON: `{"collector": <snapshot>, "sites": [<snapshot>, ...]}`, the
/// site snapshots each carrying their `site` id.
fn render_stats_json(shared: &Shared) -> String {
    let mut out = String::from("{\"collector\":");
    out.push_str(&render_json(&shared.reg.snapshot(), None));
    out.push_str(",\"sites\":[");
    let metrics = shared.site_metrics.lock().expect("site metrics lock");
    for (i, (site, (_seq, snap))) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_json(snap, Some(*site)));
    }
    out.push_str("]}");
    out
}

/// Best-effort handshake refusal: the peer may already be gone, or may
/// not speak our wire version; either way the collector moves on.
fn refuse_hello(stream: &mut TcpStream, reason: String) {
    let ack = HelloAck {
        accepted: false,
        proto_version: TRANSPORT_PROTO_VERSION,
        resume_seq: 0,
        reason,
        features: 0,
    };
    let _ = write_frame(stream, &ack.encode_framed());
}
