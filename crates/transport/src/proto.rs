//! The wire protocol: message types and framed stream I/O.
//!
//! A connection is a sequence of standard `sss-codec` frames — the same
//! `magic ‖ version ‖ tag ‖ payload_len ‖ checksum ‖ payload` envelope
//! every checkpoint already uses — so the envelope itself delimits the
//! stream: a receiver reads the fixed-size header, pre-validates it
//! ([`sss_codec::parse_frame_header`]: magic and format version checked
//! before a single payload byte is trusted), then reads exactly
//! `payload_len` more bytes and routes on the tag. There is no second
//! length prefix and no out-of-band state.
//!
//! Conversation shape (client = site, server = collector):
//!
//! ```text
//! site                          collector
//!  │ ── Hello {proto, site id, features} ──► │   refused ⇒ HelloAck{accepted:false} + close
//!  │ ◄── HelloAck {accepted, features} ───── │   granted = offered ∩ supported
//!  │ ── SnapshotPush {seq, bytes} ─────────► │   decode + try_merge; dedup on seq
//!  │ ◄── SnapshotAck {seq, status} ───────── │   Accepted / Duplicate / Rejected+reason
//!  │ ── SnapshotDeltaPush {seq, base, diff}► │   apply to retained base, then as above
//!  │ ◄── SnapshotAck {seq, status} ───────── │   + RejectedUnknownBase ⇒ site re-sends full
//!  │            …                            │
//!  │ ── Goodbye ───────────────────────────► │   clean close
//! ```
//!
//! Transport messages use the `0x05xx` tag range (the next free crate
//! range after `0x04xx` = `sss-core`). The snapshot payload inside a
//! [`SnapshotPush`] is itself a complete framed `Monitor` checkpoint —
//! nested envelope, nested checksum — so the collector re-validates the
//! monitor bytes independently of the transport frame around them.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use sss_codec::{
    parse_frame_header, put_len, CodecError, FrameHeader, Reader, WireCodec, FRAME_HEADER_BYTES,
};

use sss_obs::MetricsSnapshot;

use crate::TransportError;

/// Version of the *conversation* (message set and state machine),
/// independent of the codec's `WIRE_VERSION` (byte layout). Both are
/// checked during the hello handshake; optional capabilities on top of
/// the base conversation (delta pushes) are negotiated through the
/// hello's feature bitmask instead of version bumps.
pub const TRANSPORT_PROTO_VERSION: u16 = 1;

/// Hello feature bit: the peer understands [`SnapshotDeltaPush`] — the
/// collector retains each site's latest accepted snapshot bytes as the
/// delta base, and the site may push deltas against it. A client only
/// sends deltas when the collector's [`HelloAck`] echoes this bit.
pub const FEATURE_DELTA_PUSH: u64 = 1 << 0;

/// Hello feature bit: the peer understands [`MetricsPush`] — sites may
/// ship telemetry snapshots ([`sss_obs::MetricsSnapshot`]) next to
/// sketch snapshots, and the collector retains the latest per site for
/// its stats endpoint. A client only sends telemetry when the
/// collector's [`HelloAck`] echoes this bit.
pub const FEATURE_METRICS_PUSH: u64 = 1 << 1;

/// Every feature bit this build implements.
pub const SUPPORTED_FEATURES: u64 = FEATURE_DELTA_PUSH | FEATURE_METRICS_PUSH;

/// Wire tag of [`Hello`].
pub const TAG_HELLO: u16 = 0x0501;
/// Wire tag of [`HelloAck`].
pub const TAG_HELLO_ACK: u16 = 0x0502;
/// Wire tag of [`SnapshotPush`].
pub const TAG_SNAPSHOT_PUSH: u16 = 0x0503;
/// Wire tag of [`SnapshotAck`].
pub const TAG_SNAPSHOT_ACK: u16 = 0x0504;
/// Wire tag of [`Goodbye`].
pub const TAG_GOODBYE: u16 = 0x0505;
/// Wire tag of [`SnapshotDeltaPush`].
pub const TAG_SNAPSHOT_DELTA_PUSH: u16 = 0x0506;
/// Wire tag of [`MetricsPush`].
pub const TAG_METRICS_PUSH: u16 = 0x0507;

/// First message on every connection: the site introduces itself,
/// states its protocol version and offers its optional capabilities.
/// The collector answers [`HelloAck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The site's [`TRANSPORT_PROTO_VERSION`].
    pub proto_version: u16,
    /// Stable identifier of the site; snapshot sequence numbers are
    /// scoped to it, so it must survive reconnects.
    pub site_id: u64,
    /// Human-readable site name for the collector's observability.
    pub site_name: String,
    /// Capability bits the site offers ([`FEATURE_DELTA_PUSH`], …).
    /// Wire-v1 hellos predate the field and decode as 0 (no optional
    /// features), which is exactly what a v1 peer supports.
    pub features: u64,
}

impl WireCodec for Hello {
    const WIRE_TAG: u16 = TAG_HELLO;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.proto_version.encode_into(out);
        self.site_id.encode_into(out);
        self.site_name.encode_into(out);
        self.features.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(Hello {
            proto_version: r.u16()?,
            site_id: r.u64()?,
            site_name: String::decode(r)?,
            features: if r.v2() { r.u64()? } else { 0 },
        })
    }
}

/// The collector's handshake verdict. On `accepted: false` the
/// collector closes the connection right after sending this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// Whether the site may start pushing snapshots.
    pub accepted: bool,
    /// The collector's [`TRANSPORT_PROTO_VERSION`].
    pub proto_version: u16,
    /// The next snapshot sequence number the collector will accept
    /// from this site (0 for a site it has never accepted from). A
    /// (re)connecting client fast-forwards its own counter to at least
    /// this value, so a *restarted* site — whose in-memory counter
    /// reset to 0 — cannot push sequences the collector's dedup would
    /// silently answer `Duplicate` without merging.
    pub resume_seq: u64,
    /// Refusal reason (empty when accepted).
    pub reason: String,
    /// Capability bits granted for this session: the intersection of
    /// the hello's offer and what the collector implements. A client
    /// must not send feature-gated messages the ack did not grant.
    pub features: u64,
}

impl WireCodec for HelloAck {
    const WIRE_TAG: u16 = TAG_HELLO_ACK;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.accepted.encode_into(out);
        self.proto_version.encode_into(out);
        self.resume_seq.encode_into(out);
        self.reason.encode_into(out);
        self.features.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(HelloAck {
            accepted: r.bool()?,
            proto_version: r.u16()?,
            resume_seq: r.u64()?,
            reason: String::decode(r)?,
            features: if r.v2() { r.u64()? } else { 0 },
        })
    }
}

/// One snapshot travelling site → collector. `snapshot` is a complete
/// framed `Monitor::checkpoint` buffer (nested envelope and checksum);
/// `seq` makes delivery idempotent: the collector remembers the highest
/// sequence accepted per site and answers [`AckStatus::Duplicate`] for
/// re-sends, so a push retried after a lost ack is never double-merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotPush {
    /// Must match the connection's [`Hello::site_id`].
    pub site_id: u64,
    /// Site-scoped sequence number, strictly increasing per new
    /// snapshot; re-sent unchanged on retry.
    pub seq: u64,
    /// Framed `Monitor` checkpoint bytes.
    pub snapshot: Vec<u8>,
}

impl WireCodec for SnapshotPush {
    const WIRE_TAG: u16 = TAG_SNAPSHOT_PUSH;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.site_id.encode_into(out);
        self.seq.encode_into(out);
        put_len(out, self.snapshot.len());
        out.extend_from_slice(&self.snapshot);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let site_id = r.u64()?;
        let seq = r.u64()?;
        let len = r.len_prefix(1)?;
        let snapshot = r.take(len)?.to_vec();
        Ok(SnapshotPush {
            site_id,
            seq,
            snapshot,
        })
    }
}

/// One *delta* snapshot travelling site → collector: the byte diff
/// (`sss_core::delta` framed [`SnapshotDelta`]) between the site's new
/// cumulative checkpoint and the snapshot the collector last accepted
/// from it (`base_seq`). Sent only when the hello negotiated
/// [`FEATURE_DELTA_PUSH`]. If the collector's retained base no longer
/// matches `base_seq` it answers [`AckStatus::RejectedUnknownBase`] and
/// the site falls back to a full [`SnapshotPush`] with the *same*
/// sequence number — exactly-once delivery is unchanged.
///
/// [`SnapshotDelta`]: sss_core::SnapshotDelta
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDeltaPush {
    /// Must match the connection's [`Hello::site_id`].
    pub site_id: u64,
    /// Site-scoped sequence number of the snapshot this delta
    /// reconstructs (same rules as [`SnapshotPush::seq`]).
    pub seq: u64,
    /// Sequence number of the accepted snapshot the delta was computed
    /// against — the collector applies it only if this is exactly its
    /// latest accepted sequence for the site.
    pub base_seq: u64,
    /// Framed `SnapshotDelta` bytes (nested envelope, nested checksum,
    /// plus base/target checksums inside).
    pub delta: Vec<u8>,
}

impl WireCodec for SnapshotDeltaPush {
    const WIRE_TAG: u16 = TAG_SNAPSHOT_DELTA_PUSH;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.site_id.encode_into(out);
        self.seq.encode_into(out);
        self.base_seq.encode_into(out);
        put_len(out, self.delta.len());
        out.extend_from_slice(&self.delta);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let site_id = r.u64()?;
        let seq = r.u64()?;
        let base_seq = r.u64()?;
        let len = r.len_prefix(1)?;
        let delta = r.take(len)?.to_vec();
        Ok(SnapshotDeltaPush {
            site_id,
            seq,
            base_seq,
            delta,
        })
    }
}

/// Telemetry travelling site → collector: a metrics snapshot of the
/// site's process-wide registry, sent only when the hello negotiated
/// [`FEATURE_METRICS_PUSH`]. Delivery is last-write-wins, not
/// exactly-once — the collector keeps the newest snapshot per site
/// (guarded by `seq` so a reordered retry cannot replace a newer one)
/// and never merges telemetry, so the snapshot dedup machinery does
/// not apply. Acked with [`SnapshotAck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsPush {
    /// Must match the connection's [`Hello::site_id`].
    pub site_id: u64,
    /// Site-scoped telemetry sequence (independent of the snapshot
    /// sequence); the collector stores a push only if `seq` is at or
    /// above the last stored one.
    pub seq: u64,
    /// The telemetry itself, decoded inline (its layout is versioned by
    /// the same `WIRE_VERSION` as the enclosing frame).
    pub snapshot: MetricsSnapshot,
}

impl WireCodec for MetricsPush {
    const WIRE_TAG: u16 = TAG_METRICS_PUSH;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.site_id.encode_into(out);
        self.seq.encode_into(out);
        self.snapshot.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(MetricsPush {
            site_id: r.u64()?,
            seq: r.u64()?,
            snapshot: MetricsSnapshot::decode(r)?,
        })
    }
}

/// Collector verdict on one [`SnapshotPush`] or [`SnapshotDeltaPush`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// Decoded, validated and folded into the collector view.
    Accepted,
    /// Sequence already accepted (retry after a lost ack) — the
    /// collector state is unchanged; the site should move on.
    Duplicate,
    /// Corrupt or incompatible — counted under a typed reason and never
    /// merged. Re-sending the same bytes cannot succeed.
    Rejected,
    /// A delta push named a base the collector does not hold (its
    /// retained sequence moved, or it restarted). Not terminal for the
    /// *snapshot*: the site re-sends it as a full push with the same
    /// sequence number.
    RejectedUnknownBase,
}

impl AckStatus {
    fn to_u8(self) -> u8 {
        match self {
            AckStatus::Accepted => 0,
            AckStatus::Duplicate => 1,
            AckStatus::Rejected => 2,
            AckStatus::RejectedUnknownBase => 3,
        }
    }

    fn from_u8(b: u8) -> Result<Self, CodecError> {
        match b {
            0 => Ok(AckStatus::Accepted),
            1 => Ok(AckStatus::Duplicate),
            2 => Ok(AckStatus::Rejected),
            3 => Ok(AckStatus::RejectedUnknownBase),
            _ => Err(CodecError::Invalid {
                what: "AckStatus byte not 0/1/2/3",
            }),
        }
    }
}

/// Sequence number used in a [`SnapshotAck`] answering a frame whose
/// payload could not be decoded (the real sequence is unknowable).
pub const SEQ_UNKNOWN: u64 = u64::MAX;

/// The collector's answer to a [`SnapshotPush`] — sent for rejected
/// frames too (with [`SEQ_UNKNOWN`] when the payload was undecodable),
/// so the site is never left waiting on a corrupt frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotAck {
    /// Sequence being acknowledged ([`SEQ_UNKNOWN`] if undecodable).
    pub seq: u64,
    /// The verdict.
    pub status: AckStatus,
    /// Rejection reason (empty otherwise).
    pub reason: String,
}

impl WireCodec for SnapshotAck {
    const WIRE_TAG: u16 = TAG_SNAPSHOT_ACK;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.seq.encode_into(out);
        out.push(self.status.to_u8());
        self.reason.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(SnapshotAck {
            seq: r.u64()?,
            status: AckStatus::from_u8(r.u8()?)?,
            reason: String::decode(r)?,
        })
    }
}

/// Encode a [`SnapshotPush`] frame directly from a borrowed snapshot
/// buffer — byte-identical to building the owned struct and calling
/// `encode_framed()`, without the extra copy of the (multi-MiB for a
/// full monitor) snapshot into the struct first.
pub fn encode_push_frame(site_id: u64, seq: u64, snapshot: &[u8]) -> Vec<u8> {
    struct PushRef<'a> {
        site_id: u64,
        seq: u64,
        snapshot: &'a [u8],
    }
    impl WireCodec for PushRef<'_> {
        const WIRE_TAG: u16 = TAG_SNAPSHOT_PUSH;

        fn encode_into(&self, out: &mut Vec<u8>) {
            self.site_id.encode_into(out);
            self.seq.encode_into(out);
            put_len(out, self.snapshot.len());
            out.extend_from_slice(self.snapshot);
        }

        fn decode(_: &mut Reader) -> Result<Self, CodecError> {
            // Borrowing encoder only — frames decode via `SnapshotPush`.
            Err(CodecError::Invalid {
                what: "PushRef does not decode; use SnapshotPush",
            })
        }
    }
    PushRef {
        site_id,
        seq,
        snapshot,
    }
    .encode_framed()
}

/// Graceful close: the site is done pushing; the collector marks the
/// connection cleanly closed and keeps the site's accepted snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Goodbye {
    /// Must match the connection's [`Hello::site_id`].
    pub site_id: u64,
}

impl WireCodec for Goodbye {
    const WIRE_TAG: u16 = TAG_GOODBYE;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.site_id.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(Goodbye { site_id: r.u64()? })
    }
}

/// Write one already-framed buffer to the stream and flush it.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// What [`read_frame_inner`] saw on the stream.
pub(crate) enum FrameRead {
    /// A complete frame: validated header plus the full frame bytes
    /// (header included), ready for `decode_framed`.
    Frame(FrameHeader, Vec<u8>),
    /// Clean EOF exactly at a frame boundary.
    Closed,
}

/// Fill `buf` from `r`. The `stop` flag and `deadline` are checked on
/// **every** loop iteration — not just on `WouldBlock` poll ticks — so
/// neither a shutdown nor a timeout can be postponed indefinitely by a
/// peer stalling mid-frame or trickling one byte per read. Returns the
/// number of bytes filled before EOF (shorter than `buf` only on EOF).
fn read_full_poll(
    r: &mut impl Read,
    buf: &mut [u8],
    stop: Option<&AtomicBool>,
    deadline: Option<Instant>,
) -> Result<usize, TransportError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if let Some(stop) = stop {
            // A stop request aborts even a partially read frame: the
            // server is going away, so finishing the frame would only
            // delay shutdown (the site re-pushes after reconnecting).
            if stop.load(Ordering::Relaxed) {
                return Err(TransportError::Shutdown);
            }
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Err(TransportError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "deadline exceeded waiting for a frame",
                )));
            }
        }
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // With neither a stop flag nor a deadline there is no
                // poll loop to return to: the caller is relying on the
                // socket's own read timeout, so let it surface instead
                // of spinning forever (the `SiteClient` ack wait).
                if stop.is_none() && deadline.is_none() {
                    return Err(TransportError::Io(e));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
    Ok(filled)
}

/// Read one frame off the stream: fixed-size header first (magic and
/// format version validated by [`parse_frame_header`] before anything
/// else), then exactly `payload_len` payload bytes, with `payload_len`
/// capped at `max_payload` so a corrupt length cannot OOM the receiver.
///
/// EOF at a frame boundary is [`FrameRead::Closed`]; EOF mid-frame is a
/// typed [`CodecError::Truncated`]. `stop`/`deadline` make the read
/// interruptible for server-side poll loops.
pub(crate) fn read_frame_inner(
    r: &mut impl Read,
    max_payload: usize,
    stop: Option<&AtomicBool>,
    deadline: Option<Instant>,
) -> Result<FrameRead, TransportError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    let got = read_full_poll(r, &mut header, stop, deadline)?;
    if got == 0 {
        return Ok(FrameRead::Closed);
    }
    if got < FRAME_HEADER_BYTES {
        return Err(TransportError::Codec(CodecError::Truncated {
            needed: FRAME_HEADER_BYTES,
            available: got,
        }));
    }
    let fh = parse_frame_header(&header)?;
    if fh.payload_len > max_payload {
        return Err(TransportError::Oversize {
            payload_len: fh.payload_len,
            cap: max_payload,
        });
    }
    let mut frame = vec![0u8; FRAME_HEADER_BYTES + fh.payload_len];
    frame[..FRAME_HEADER_BYTES].copy_from_slice(&header);
    let got = read_full_poll(r, &mut frame[FRAME_HEADER_BYTES..], stop, deadline)?;
    if got < fh.payload_len {
        return Err(TransportError::Codec(CodecError::Truncated {
            needed: fh.payload_len,
            available: got,
        }));
    }
    Ok(FrameRead::Frame(fh, frame))
}

/// Blocking single-frame read (public for tests and hand-rolled peers):
/// returns the validated header and the complete frame bytes. Honors
/// the stream's own read timeout — a timeout surfaces as
/// [`TransportError::Io`]; a clean close as [`TransportError::Closed`].
pub fn read_frame(
    r: &mut impl Read,
    max_payload: usize,
) -> Result<(FrameHeader, Vec<u8>), TransportError> {
    match read_frame_inner(r, max_payload, None, None)? {
        FrameRead::Frame(fh, bytes) => Ok((fh, bytes)),
        FrameRead::Closed => Err(TransportError::Closed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_roundtrip_framed() {
        let hello = Hello {
            proto_version: TRANSPORT_PROTO_VERSION,
            site_id: 9,
            site_name: "edge-router-9".to_string(),
            features: SUPPORTED_FEATURES,
        };
        assert_eq!(Hello::decode_framed(&hello.encode_framed()).unwrap(), hello);

        let ack = HelloAck {
            accepted: false,
            proto_version: TRANSPORT_PROTO_VERSION,
            resume_seq: 17,
            reason: "speak v1".to_string(),
            features: FEATURE_DELTA_PUSH,
        };
        assert_eq!(HelloAck::decode_framed(&ack.encode_framed()).unwrap(), ack);

        let push = SnapshotPush {
            site_id: 9,
            seq: 3,
            snapshot: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(
            SnapshotPush::decode_framed(&push.encode_framed()).unwrap(),
            push
        );

        let dpush = SnapshotDeltaPush {
            site_id: 9,
            seq: 4,
            base_seq: 3,
            delta: vec![7, 7, 7],
        };
        assert_eq!(
            SnapshotDeltaPush::decode_framed(&dpush.encode_framed()).unwrap(),
            dpush
        );

        let sack = SnapshotAck {
            seq: 3,
            status: AckStatus::Rejected,
            reason: "checksum".to_string(),
        };
        assert_eq!(
            SnapshotAck::decode_framed(&sack.encode_framed()).unwrap(),
            sack
        );
        let sack = SnapshotAck {
            seq: 4,
            status: AckStatus::RejectedUnknownBase,
            reason: "base moved".to_string(),
        };
        assert_eq!(
            SnapshotAck::decode_framed(&sack.encode_framed()).unwrap(),
            sack
        );

        let bye = Goodbye { site_id: 9 };
        assert_eq!(Goodbye::decode_framed(&bye.encode_framed()).unwrap(), bye);
    }

    #[test]
    fn v1_hello_decodes_with_no_features() {
        // A wire-v1 peer's hello has no feature mask: hand-build the v1
        // frame and check it decodes as "no optional features".
        let mut payload = Vec::new();
        TRANSPORT_PROTO_VERSION.encode_into(&mut payload);
        5u64.encode_into(&mut payload);
        "old-site".to_string().encode_into(&mut payload);
        let mut frame = Vec::new();
        frame.extend_from_slice(&sss_codec::WIRE_MAGIC);
        frame.extend_from_slice(&1u16.to_le_bytes());
        frame.extend_from_slice(&TAG_HELLO.to_le_bytes());
        put_len(&mut frame, payload.len());
        frame.extend_from_slice(&sss_codec::fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let hello = Hello::decode_framed(&frame).unwrap();
        assert_eq!(hello.site_id, 5);
        assert_eq!(hello.features, 0);
    }

    #[test]
    fn borrowed_push_encoder_matches_owned_struct_bytes() {
        let snapshot = vec![9u8; 777];
        let owned = SnapshotPush {
            site_id: 3,
            seq: 12,
            snapshot: snapshot.clone(),
        }
        .encode_framed();
        assert_eq!(encode_push_frame(3, 12, &snapshot), owned);
    }

    #[test]
    fn frames_self_delimit_on_a_stream() {
        // Two frames back to back on one buffer: read_frame must stop
        // exactly at the boundary.
        let a = Hello {
            proto_version: 1,
            site_id: 1,
            site_name: "a".into(),
            features: 0,
        }
        .encode_framed();
        let b = Goodbye { site_id: 1 }.encode_framed();
        let mut stream: Vec<u8> = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let mut cursor = io::Cursor::new(stream);
        let (fh, bytes) = read_frame(&mut cursor, 1 << 20).unwrap();
        assert_eq!(fh.tag, TAG_HELLO);
        assert_eq!(bytes, a);
        let (fh, bytes) = read_frame(&mut cursor, 1 << 20).unwrap();
        assert_eq!(fh.tag, TAG_GOODBYE);
        assert_eq!(bytes, b);
        assert!(matches!(
            read_frame(&mut cursor, 1 << 20),
            Err(TransportError::Closed)
        ));
    }

    #[test]
    fn oversize_and_truncation_are_typed() {
        let push = SnapshotPush {
            site_id: 1,
            seq: 0,
            snapshot: vec![0u8; 256],
        };
        let frame = push.encode_framed();
        // Payload cap below the frame's payload size.
        let mut cursor = io::Cursor::new(frame.clone());
        assert!(matches!(
            read_frame(&mut cursor, 16),
            Err(TransportError::Oversize { .. })
        ));
        // EOF mid-payload.
        let mut cursor = io::Cursor::new(frame[..frame.len() - 5].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, 1 << 20),
            Err(TransportError::Codec(CodecError::Truncated { .. }))
        ));
        // EOF mid-header.
        let mut cursor = io::Cursor::new(frame[..10].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, 1 << 20),
            Err(TransportError::Codec(CodecError::Truncated { .. }))
        ));
    }
}
