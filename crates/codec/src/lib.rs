//! A dependency-free versioned binary wire codec for the workspace.
//!
//! Everything a monitor deployment ships across a process boundary —
//! sketch snapshots mailed from remote shards to a collector, monitor
//! checkpoints written before a restart — travels through the
//! [`WireCodec`] trait defined here. The format is deliberately boring:
//!
//! * **fixed-width little-endian integers** (no varints: encoding is
//!   branch-free, sizes are predictable, and the numbers being shipped
//!   are sketch counters, not text),
//! * **`u64` length prefixes** for every variable-length section,
//! * **`f64` as IEEE-754 bit patterns** (`to_bits`/`from_bits`), so
//!   round-trips are bitwise exact including negative zero and NaN
//!   payloads,
//! * a **framed envelope** for top-level objects: magic, format version,
//!   type tag, payload length (see [`WireCodec::encode_framed`]).
//!
//! The contract every implementation upholds (and the workspace test
//! battery pins): `decode(encode(x))` is *observationally identical* to
//! `x` — bitwise-equal estimates, equal `space_bytes`, and continued
//! ingestion after a restore matches the never-serialized run exactly —
//! and corrupt or mismatched buffers surface as typed [`CodecError`]s,
//! never panics or unbounded allocations.
//!
//! ## Format version 2: compact integer packing
//!
//! Version 2 keeps the envelope and every tag, but re-encodes the big
//! counter sections with
//!
//! * **canonical LEB128 varints** ([`put_varint_u64`] /
//!   [`Reader::varint_u64`], zigzag for `i64`) for lengths and small
//!   scalars — overlong encodings and encodings above 64 bits are
//!   rejected, so every value has exactly one wire image,
//! * **frame-of-reference bit packing** ([`put_packed_u64s`] /
//!   [`Reader::packed_u64s`]) for counter grids: `min` plus a fixed bit
//!   width sized to `max − min`, then a little-endian bit stream,
//! * **sorted-delta packing** ([`put_packed_sorted_u64s`]) for the
//!   strictly-increasing key columns of counter maps: first key, then
//!   FoR-packed gaps.
//!
//! `f64` stays a fixed IEEE-754 bit pattern in every version.
//!
//! ## Versioning policy
//!
//! [`WIRE_VERSION`] covers the whole format: any layout change to any
//! implementor bumps it. Decoders accept every version in
//! `[`[`WIRE_VERSION_MIN`]`, `[`WIRE_VERSION`]`]` — the frame header's
//! version byte routes each payload to the matching layout (the
//! [`Reader`] carries it, so nested sections decode under the frame's
//! version) — and reject anything else with
//! [`CodecError::UnsupportedVersion`] (no silent misparses). Encoders
//! always write the current version. Per-type evolution *within* a
//! version happens by assigning a **new tag** to the new layout and
//! keeping the old tag decodable for a deprecation window. Tags are
//! allocated in per-crate ranges: `0x01xx` = `sss-hash`, `0x02xx` =
//! `sss-sketch`, `0x03xx` = `sss-stream`, `0x04xx` = `sss-core`,
//! `0x05xx` = `sss-transport`, `0x06xx` = `sss-window` (bucket ring,
//! decayed ring, query registry, alerts), `0x07xx` = `sss-obs`
//! (metrics snapshots).
//!
//! The never-panic / bounded-allocation contract and the tag ranges are
//! machine-enforced by `sss-lint` (see "Invariants & static analysis"
//! in `crates/core/src/README.md`).

#![forbid(unsafe_code)]

use std::fmt;

/// The 4-byte magic prefix of every framed wire object.
pub const WIRE_MAGIC: [u8; 4] = *b"SSWC";

/// The format version written by this build.
pub const WIRE_VERSION: u16 = 2;

/// The oldest format version this build still decodes. The committed
/// `tests/fixtures/wire_v1/` corpus pins that version-1 frames keep
/// decoding for as long as this stays at 1.
pub const WIRE_VERSION_MIN: u16 = 1;

/// Why a buffer failed to decode. Every variant is a *data* error: the
/// decoder never panics on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the decoder got what it needed.
    Truncated {
        /// Bytes the decoder asked for.
        needed: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The frame was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the frame.
        found: u16,
        /// Version this build speaks.
        supported: u16,
    },
    /// The frame carries a different type than the caller asked for.
    TagMismatch {
        /// The tag the caller expected.
        expected: u16,
        /// The tag found in the frame.
        found: u16,
    },
    /// A polymorphic slot carries a tag this build cannot decode.
    UnknownTag {
        /// The unrecognised tag.
        found: u16,
    },
    /// Bytes remained after the object was fully decoded.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
    /// The frame's payload checksum does not match its contents.
    ChecksumMismatch {
        /// Checksum recorded in the frame header.
        expected: u64,
        /// Checksum of the payload actually received.
        found: u64,
    },
    /// A decoded value violates a structural invariant of its type.
    Invalid {
        /// Which invariant was violated.
        what: &'static str,
    },
    /// A snapshot delta was applied to a base snapshot other than the
    /// one it was computed against (length or checksum disagree).
    BadBase {
        /// Checksum of the base the delta was computed against.
        expected: u64,
        /// Checksum of the base it was applied to.
        found: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated buffer: needed {needed} bytes, had {available}"
                )
            }
            CodecError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            CodecError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported wire version {found} (this build speaks {supported})"
                )
            }
            CodecError::TagMismatch { expected, found } => {
                write!(
                    f,
                    "type tag mismatch: expected {expected:#06x}, found {found:#06x}"
                )
            }
            CodecError::UnknownTag { found } => write!(f, "unknown type tag {found:#06x}"),
            CodecError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete object")
            }
            CodecError::ChecksumMismatch { expected, found } => {
                write!(f, "payload checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}")
            }
            CodecError::Invalid { what } => write!(f, "invalid wire data: {what}"),
            CodecError::BadBase { expected, found } => {
                write!(f, "delta applied to the wrong base snapshot: delta was computed against base {expected:#018x}, got {found:#018x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over an untrusted byte buffer.
///
/// All reads are explicit-width and fail with [`CodecError::Truncated`]
/// instead of panicking; length prefixes are validated against the bytes
/// actually remaining ([`Reader::len_prefix`]) before any allocation, so
/// a corrupted length cannot trigger an OOM.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    version: u16,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer, assuming the current
    /// [`WIRE_VERSION`] layout (unframed payloads produced by this
    /// build). Frame-routed decoding goes through
    /// [`Reader::with_version`] so nested sections inherit the frame's
    /// version byte.
    pub fn new(buf: &'a [u8]) -> Self {
        Self::with_version(buf, WIRE_VERSION)
    }

    /// A reader decoding under an explicit format version (what
    /// [`WireCodec::decode_framed`] uses after validating the header,
    /// and what nested section readers must be constructed with so the
    /// whole tree decodes under the frame's version).
    pub fn with_version(buf: &'a [u8], version: u16) -> Self {
        Self {
            buf,
            pos: 0,
            version,
        }
    }

    /// The format version this reader decodes under.
    #[inline]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Whether this reader decodes the compact version-2 layouts.
    #[inline]
    pub fn v2(&self) -> bool {
        self.version >= 2
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the buffer is fully consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` raw bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        match self.buf.get(self.pos..self.pos.saturating_add(n)) {
            Some(out) => {
                self.pos += n;
                Ok(out)
            }
            None => Err(CodecError::Truncated {
                needed: n,
                available: self.remaining(),
            }),
        }
    }

    /// Take the next `N` bytes as a fixed-size array. The length is
    /// checked once by [`take`](Self::take), so the conversion cannot
    /// fail.
    #[inline]
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let bytes = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }

    /// Fail with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn expect_empty(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    /// Read one byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(u8::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u16`.
    #[inline]
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u128`.
    #[inline]
    pub fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `i64`.
    #[inline]
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Read an `f64` from its IEEE-754 bit pattern (bitwise exact).
    #[inline]
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool` encoded as one byte (strictly 0 or 1).
    #[inline]
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid {
                what: "bool byte not 0/1",
            }),
        }
    }

    /// Read an `f64` and require a Bernoulli sampling rate in `(0, 1]`.
    pub fn rate(&mut self) -> Result<f64, CodecError> {
        let p = self.f64()?;
        if !(p > 0.0 && p <= 1.0) {
            return Err(CodecError::Invalid {
                what: "sampling rate outside (0,1]",
            });
        }
        Ok(p)
    }

    /// Read an `f64` and require a parameter in the open interval `(0, 1)`
    /// (the domain of every `alpha`/`eps`/`delta` knob in the workspace).
    pub fn prob_open(&mut self) -> Result<f64, CodecError> {
        let v = self.f64()?;
        if !(v > 0.0 && v < 1.0) {
            return Err(CodecError::Invalid {
                what: "probability parameter outside (0,1)",
            });
        }
        Ok(v)
    }

    /// Read a `u64` length prefix and validate that `len` elements of at
    /// least `min_elem_bytes` each could still fit in the buffer — the
    /// allocation guard that makes a corrupted length a typed error
    /// instead of an OOM. `min_elem_bytes` of 0 is treated as 1.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let raw = self.u64()?;
        let min = min_elem_bytes.max(1);
        let cap = (self.remaining() / min) as u64;
        if raw > cap {
            return Err(CodecError::Truncated {
                needed: (raw as usize).saturating_mul(min),
                available: self.remaining(),
            });
        }
        Ok(raw as usize)
    }

    /// Read a canonical LEB128 varint `u64`. Rejects overlong encodings
    /// (a non-terminal final byte of 0 — every value has exactly one
    /// wire image) and encodings above 64 bits, so corrupt varints are
    /// typed errors rather than silent misparses.
    pub fn varint_u64(&mut self) -> Result<u64, CodecError> {
        let mut x = 0u64;
        for i in 0..10u32 {
            let b = self.u8()?;
            let payload = (b & 0x7F) as u64;
            if i == 9 && payload > 1 {
                return Err(CodecError::Invalid {
                    what: "varint encodes more than 64 bits",
                });
            }
            x |= payload << (7 * i);
            if b & 0x80 == 0 {
                if i > 0 && payload == 0 {
                    return Err(CodecError::Invalid {
                        what: "overlong varint encoding",
                    });
                }
                return Ok(x);
            }
        }
        Err(CodecError::Invalid {
            what: "varint longer than 10 bytes",
        })
    }

    /// Read a zigzag-varint `i64`.
    pub fn varint_i64(&mut self) -> Result<i64, CodecError> {
        Ok(zigzag_decode(self.varint_u64()?))
    }

    /// Read a varint length prefix with the same allocation guard as
    /// [`Reader::len_prefix`]: `len` elements of at least
    /// `min_elem_bytes` each must still fit in the buffer.
    pub fn varint_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let raw = self.varint_u64()?;
        let min = min_elem_bytes.max(1);
        let cap = (self.remaining() / min) as u64;
        if raw > cap {
            return Err(CodecError::Truncated {
                needed: (raw as usize).saturating_mul(min),
                available: self.remaining(),
            });
        }
        Ok(raw as usize)
    }

    /// Read a frame-of-reference bit-packed `u64` slice written by
    /// [`put_packed_u64s`]: `varint len ‖ varint min ‖ u8 width ‖
    /// ⌈len·width/8⌉ packed bytes`. Length, width and every
    /// reconstructed value are validated; a corrupt length cannot
    /// allocate beyond [`PACKED_MAX_RUN`] elements.
    pub fn packed_u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.varint_u64()?;
        if len == 0 {
            return Ok(Vec::new());
        }
        let min = self.varint_u64()?;
        let width = self.u8()? as u32;
        if width > 64 {
            return Err(CodecError::Invalid {
                what: "packed slice bit width above 64",
            });
        }
        // Width 0 is the all-equal run: it carries no data bytes, so the
        // byte-budget guard below cannot bound it — cap it explicitly.
        if len > PACKED_MAX_RUN {
            return Err(CodecError::Invalid {
                what: "packed slice length above the decode cap",
            });
        }
        let len = len as usize;
        let data_bytes = ((len as u128 * width as u128).div_ceil(8)) as usize;
        let data = self.take(data_bytes)?;
        let mut out = Vec::with_capacity(len);
        if width == 0 {
            out.resize(len, min);
            return Ok(out);
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut acc: u128 = 0;
        let mut nbits: u32 = 0;
        let mut di = 0usize;
        for _ in 0..len {
            while nbits < width {
                let b = *data.get(di).ok_or(CodecError::Invalid {
                    what: "packed slice bit stream underrun",
                })?;
                acc |= (b as u128) << nbits;
                di += 1;
                nbits += 8;
            }
            let delta = (acc as u64) & mask;
            acc >>= width;
            nbits -= width;
            let v = min.checked_add(delta).ok_or(CodecError::Invalid {
                what: "packed slice value overflows u64",
            })?;
            out.push(v);
        }
        Ok(out)
    }

    /// Read a zigzag frame-of-reference packed `i64` slice written by
    /// [`put_packed_i64s`].
    pub fn packed_i64s(&mut self) -> Result<Vec<i64>, CodecError> {
        Ok(self.packed_u64s()?.into_iter().map(zigzag_decode).collect())
    }

    /// Read a plain varint `u64` slice written by [`put_varint_u64s`]:
    /// `varint len ‖ len varints`. The byte-aligned cousin of
    /// [`Reader::packed_u64s`] for columns that take mid-stream
    /// insertions (see the writer's docs).
    pub fn varint_u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.varint_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.varint_u64()?);
        }
        Ok(out)
    }

    /// Read a strictly-increasing `u64` slice written by
    /// [`put_packed_sorted_u64s`]: `varint len ‖ varint first ‖ varint
    /// gaps`. Validates strict monotonicity (every gap ≥ 1, no
    /// overflow), so decoded key columns are unique and sorted by
    /// construction.
    pub fn packed_sorted_u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.varint_u64()?;
        if len == 0 {
            return Ok(Vec::new());
        }
        // Every gap costs at least one byte — the allocation guard.
        if len - 1 > self.remaining() as u64 {
            return Err(CodecError::Truncated {
                needed: (len - 1) as usize,
                available: self.remaining(),
            });
        }
        let first = self.varint_u64()?;
        let mut out = Vec::with_capacity(len as usize);
        out.push(first);
        let mut prev = first;
        for _ in 1..len {
            let g = self.varint_u64()?;
            if g == 0 {
                return Err(CodecError::Invalid {
                    what: "sorted slice is not strictly increasing",
                });
            }
            prev = prev.checked_add(g).ok_or(CodecError::Invalid {
                what: "sorted slice value overflows u64",
            })?;
            out.push(prev);
        }
        Ok(out)
    }
}

/// Hard cap on the element count a packed slice may claim (the width-0
/// all-equal run carries no data bytes, so the usual bytes-remaining
/// guard cannot bound its allocation). 2^27 matches the largest counter
/// grid any in-tree constructor allows.
pub const PACKED_MAX_RUN: u64 = 1 << 27;

#[inline]
fn zigzag_encode(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

#[inline]
fn zigzag_decode(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Append a `u64` little-endian.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Append a `usize` as `u64`.
#[inline]
pub fn put_len(out: &mut Vec<u8>, n: usize) {
    put_u64(out, n as u64);
}

/// Append a LEB128 varint `u64` (canonical: minimal length).
#[inline]
pub fn put_varint_u64(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Append a zigzag-varint `i64`.
#[inline]
pub fn put_varint_i64(out: &mut Vec<u8>, x: i64) {
    put_varint_u64(out, zigzag_encode(x));
}

/// Number of bits needed to represent `x` (0 for 0).
#[inline]
fn bits_for(x: u64) -> u32 {
    64 - x.leading_zeros()
}

/// Append a frame-of-reference bit-packed `u64` slice:
/// `varint len ‖ varint min ‖ u8 width ‖ ⌈len·width/8⌉ packed bytes`,
/// with `width = bits(max − min)`. Deterministic (minimal width), so
/// encode∘decode is the byte identity. An all-equal slice (width 0)
/// costs a handful of bytes regardless of length.
pub fn put_packed_u64s(out: &mut Vec<u8>, vals: &[u64]) {
    put_varint_u64(out, vals.len() as u64);
    if vals.is_empty() {
        return;
    }
    let mut min = u64::MAX;
    let mut max = 0u64;
    for &v in vals {
        min = min.min(v);
        max = max.max(v);
    }
    let width = bits_for(max - min);
    put_varint_u64(out, min);
    out.push(width as u8);
    if width == 0 {
        return;
    }
    out.reserve(((vals.len() as u128 * width as u128).div_ceil(8)) as usize);
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    for &v in vals {
        acc |= ((v - min) as u128) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(acc as u8);
    }
}

/// Append a zigzag frame-of-reference packed `i64` slice (the counter
/// grids of sign-based sketches).
pub fn put_packed_i64s(out: &mut Vec<u8>, vals: &[i64]) {
    // Zigzag first so mixed-sign counters land in a tight band around
    // zero; FoR then squeezes the band.
    let mapped: Vec<u64> = vals.iter().map(|&v| zigzag_encode(v)).collect();
    put_packed_u64s(out, &mapped);
}

/// Append a `u64` slice as plain varints (`varint len ‖ len varints`) —
/// the byte-aligned cousin of [`put_packed_u64s`] for the *value
/// columns of growing maps*. FoR bit packing is a little denser, but a
/// mid-stream insertion shifts everything after it by a sub-byte
/// amount, which defeats the byte-level delta checkpoints; varints keep
/// every element byte-aligned, so an insertion shifts the suffix by
/// whole bytes and the rolling-hash diff still matches it.
pub fn put_varint_u64s(out: &mut Vec<u8>, vals: &[u64]) {
    put_varint_u64(out, vals.len() as u64);
    for &v in vals {
        put_varint_u64(out, v);
    }
}

/// Append a strictly-increasing `u64` slice as first value + varint
/// gaps — the key columns of sorted counter maps, where gaps are tiny
/// compared to the raw 8-byte keys. Gaps are varints rather than FoR
/// bit-packed for the same delta-friendliness reason as
/// [`put_varint_u64s`]: key columns grow by insertion.
///
/// # Panics
/// Debug-asserts strict monotonicity; release builds would produce a
/// stream the (strict) decoder rejects.
pub fn put_packed_sorted_u64s(out: &mut Vec<u8>, vals: &[u64]) {
    put_varint_u64(out, vals.len() as u64);
    let Some((&first, rest)) = vals.split_first() else {
        return;
    };
    put_varint_u64(out, first);
    let mut prev = first;
    for &v in rest {
        debug_assert!(v > prev, "put_packed_sorted_u64s input not sorted");
        put_varint_u64(out, v.wrapping_sub(prev));
        prev = v;
    }
}

/// A type with a versioned binary wire representation.
///
/// `encode_into`/`decode` are the raw (unframed) payload codec used for
/// nesting; top-level objects crossing a process boundary should travel
/// framed ([`WireCodec::encode_framed`] / [`WireCodec::decode_framed`])
/// so the receiver can check magic, version and type before trusting a
/// single payload byte.
pub trait WireCodec: Sized {
    /// The type's wire tag (unique across the workspace; `0` for
    /// primitives and internal helper types that never travel framed).
    const WIRE_TAG: u16 = 0;

    /// Lower bound on the encoded size of one value, used to validate
    /// length prefixes before allocating (`Vec<T>` decoding).
    const MIN_WIRE_BYTES: usize = 1;

    /// Append this value's payload bytes.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader, validating every structural
    /// invariant of the type.
    fn decode(r: &mut Reader) -> Result<Self, CodecError>;

    /// The payload bytes as a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode a value that must span the whole buffer exactly.
    fn decode_slice(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.expect_empty()?;
        Ok(v)
    }

    /// Encode with the self-describing envelope:
    /// `magic(4) ‖ version(2) ‖ tag(2) ‖ payload_len(8) ‖ fnv1a64(8) ‖ payload`.
    ///
    /// The checksum covers the payload only (the header fields are
    /// individually validated), so any single corrupted byte anywhere in
    /// the frame is guaranteed to surface as a typed error.
    fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&Self::WIRE_TAG.to_le_bytes());
        put_len(&mut out, payload.len());
        put_u64(&mut out, fnv1a64(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a framed buffer, checking magic, version, tag, exact
    /// payload length and payload checksum before touching the payload.
    /// Every version in `[WIRE_VERSION_MIN, WIRE_VERSION]` is accepted;
    /// the header's version byte routes the payload (and every nested
    /// section) to the matching layout.
    fn decode_framed(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let magic: [u8; 4] = r.take_array()?;
        if magic != WIRE_MAGIC {
            return Err(CodecError::BadMagic { found: magic });
        }
        let version = r.u16()?;
        if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: WIRE_VERSION,
            });
        }
        r.version = version;
        let tag = r.u16()?;
        if tag != Self::WIRE_TAG {
            return Err(CodecError::TagMismatch {
                expected: Self::WIRE_TAG,
                found: tag,
            });
        }
        let payload_len = r.len_prefix(1)?;
        let expected = r.u64()?;
        if payload_len != r.remaining() {
            return Err(if payload_len > r.remaining() {
                CodecError::Truncated {
                    needed: payload_len,
                    available: r.remaining(),
                }
            } else {
                CodecError::TrailingBytes {
                    count: r.remaining() - payload_len,
                }
            });
        }
        let found = fnv1a64(buf.get(FRAME_HEADER_BYTES..).unwrap_or(&[]));
        if found != expected {
            return Err(CodecError::ChecksumMismatch { expected, found });
        }
        let v = Self::decode(&mut r)?;
        r.expect_empty()?;
        Ok(v)
    }
}

/// Bytes of the framed envelope ahead of the payload.
pub const FRAME_HEADER_BYTES: usize = 24;

/// FNV-1a 64-bit over a byte slice — the frame's payload checksum. Not
/// cryptographic; guards against truncation, bit rot and split-brain
/// writes, which is the threat model of a checkpoint file or a snapshot
/// crossing an internal transport.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The validated header of a framed wire object — what a streaming
/// receiver learns from the first [`FRAME_HEADER_BYTES`] bytes before a
/// single payload byte arrives. [`parse_frame_header`] checks magic and
/// format version up front, so a transport can size its payload read
/// (and enforce a payload cap) from trusted fields only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Format version stamped in the frame (within
    /// `[WIRE_VERSION_MIN, WIRE_VERSION]` — anything else is rejected
    /// at parse time).
    pub version: u16,
    /// The payload's type tag.
    pub tag: u16,
    /// Payload bytes following the header.
    pub payload_len: usize,
    /// FNV-1a-64 checksum the payload must hash to.
    pub checksum: u64,
}

/// Parse and validate the fixed-size frame header: magic and format
/// version are checked here; tag routing, payload length and checksum
/// verification are the caller's (or [`WireCodec::decode_framed`]'s)
/// job once the payload is in hand. This is the read-path pre-validation
/// a socket transport runs before allocating the payload buffer.
pub fn parse_frame_header(header: &[u8; FRAME_HEADER_BYTES]) -> Result<FrameHeader, CodecError> {
    let mut r = Reader::new(header);
    let magic: [u8; 4] = r.take_array()?;
    if magic != WIRE_MAGIC {
        return Err(CodecError::BadMagic { found: magic });
    }
    let version = r.u16()?;
    if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
        return Err(CodecError::UnsupportedVersion {
            found: version,
            supported: WIRE_VERSION,
        });
    }
    let tag = r.u16()?;
    let payload_len = r.u64()? as usize;
    let checksum = r.u64()?;
    Ok(FrameHeader {
        version,
        tag,
        payload_len,
        checksum,
    })
}

/// Read the `(version, tag, payload_len)` of a framed buffer without
/// decoding the payload — what a collector uses to route incoming
/// snapshots. Unlike [`parse_frame_header`] this reports the version
/// found without rejecting foreign ones, so callers can log what an
/// incompatible peer sent.
pub fn peek_frame(buf: &[u8]) -> Result<(u16, u16, usize), CodecError> {
    let mut r = Reader::new(buf);
    let magic: [u8; 4] = r.take_array()?;
    if magic != WIRE_MAGIC {
        return Err(CodecError::BadMagic { found: magic });
    }
    let version = r.u16()?;
    let tag = r.u16()?;
    let len = r.u64()? as usize;
    Ok((version, tag, len))
}

macro_rules! impl_primitive {
    ($ty:ty, $bytes:expr, $write:expr, $read:expr) => {
        impl WireCodec for $ty {
            const MIN_WIRE_BYTES: usize = $bytes;

            #[inline]
            fn encode_into(&self, out: &mut Vec<u8>) {
                #[allow(clippy::redundant_closure_call)]
                ($write)(self, out)
            }

            #[inline]
            fn decode(r: &mut Reader) -> Result<Self, CodecError> {
                #[allow(clippy::redundant_closure_call)]
                ($read)(r)
            }
        }
    };
}

impl_primitive!(
    u8,
    1,
    |x: &u8, o: &mut Vec<u8>| o.push(*x),
    |r: &mut Reader| r.u8()
);
impl_primitive!(
    u16,
    2,
    |x: &u16, o: &mut Vec<u8>| o.extend_from_slice(&x.to_le_bytes()),
    |r: &mut Reader| r.u16()
);
impl_primitive!(
    u32,
    4,
    |x: &u32, o: &mut Vec<u8>| o.extend_from_slice(&x.to_le_bytes()),
    |r: &mut Reader| r.u32()
);
impl_primitive!(
    u64,
    8,
    |x: &u64, o: &mut Vec<u8>| o.extend_from_slice(&x.to_le_bytes()),
    |r: &mut Reader| r.u64()
);
impl_primitive!(
    u128,
    16,
    |x: &u128, o: &mut Vec<u8>| o.extend_from_slice(&x.to_le_bytes()),
    |r: &mut Reader| r.u128()
);
impl_primitive!(
    i64,
    8,
    |x: &i64, o: &mut Vec<u8>| o.extend_from_slice(&x.to_le_bytes()),
    |r: &mut Reader| r.i64()
);
impl_primitive!(
    f64,
    8,
    |x: &f64, o: &mut Vec<u8>| o.extend_from_slice(&x.to_bits().to_le_bytes()),
    |r: &mut Reader| r.f64()
);
impl_primitive!(
    bool,
    1,
    |x: &bool, o: &mut Vec<u8>| o.push(*x as u8),
    |r: &mut Reader| r.bool()
);

impl WireCodec for usize {
    const MIN_WIRE_BYTES: usize = 8;

    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, *self as u64);
    }

    #[inline]
    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let raw = r.u64()?;
        usize::try_from(raw).map_err(|_| CodecError::Invalid {
            what: "usize value exceeds this platform's pointer width",
        })
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    const MIN_WIRE_BYTES: usize = 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_len(out, self.len());
        for item in self {
            item.encode_into(out);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let len = r.len_prefix(T::MIN_WIRE_BYTES)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    const MIN_WIRE_BYTES: usize = 1;

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CodecError::Invalid {
                what: "Option discriminant not 0/1",
            }),
        }
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    const MIN_WIRE_BYTES: usize = A::MIN_WIRE_BYTES + B::MIN_WIRE_BYTES;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: WireCodec, B: WireCodec, C: WireCodec> WireCodec for (A, B, C) {
    const MIN_WIRE_BYTES: usize = A::MIN_WIRE_BYTES + B::MIN_WIRE_BYTES + C::MIN_WIRE_BYTES;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl WireCodec for String {
    const MIN_WIRE_BYTES: usize = 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_len(out, self.len());
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let len = r.len_prefix(1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid {
            what: "string is not valid UTF-8",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut out = Vec::new();
        42u8.encode_into(&mut out);
        0xBEEFu16.encode_into(&mut out);
        7u32.encode_into(&mut out);
        u64::MAX.encode_into(&mut out);
        (u128::MAX - 5).encode_into(&mut out);
        (-12i64).encode_into(&mut out);
        f64::NAN.encode_into(&mut out);
        (-0.0f64).encode_into(&mut out);
        true.encode_into(&mut out);
        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 42);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u128().unwrap(), u128::MAX - 5);
        assert_eq!(r.i64().unwrap(), -12);
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.bool().unwrap());
        r.expect_empty().unwrap();
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::decode_slice(&v.encode()).unwrap(), v);
        let o: Option<(u64, f64)> = Some((9, 2.5));
        assert_eq!(Option::<(u64, f64)>::decode_slice(&o.encode()).unwrap(), o);
        let n: Option<u64> = None;
        assert_eq!(Option::<u64>::decode_slice(&n.encode()).unwrap(), n);
        let s = "héllo".to_string();
        assert_eq!(String::decode_slice(&s.encode()).unwrap(), s);
    }

    #[test]
    fn truncation_is_typed_not_panic() {
        let v: Vec<u64> = (0..100).collect();
        let bytes = v.encode();
        for cut in 0..bytes.len() {
            match Vec::<u64>::decode_slice(&bytes[..cut]) {
                Err(CodecError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_length_prefix_cannot_oom() {
        // A length prefix claiming 2^60 elements on a 16-byte buffer must
        // fail before allocating.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 1u64 << 60);
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            Vec::<u64>::decode_slice(&bytes),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u64.encode();
        bytes.push(0);
        assert_eq!(
            u64::decode_slice(&bytes),
            Err(CodecError::TrailingBytes { count: 1 })
        );
    }

    #[derive(Debug, PartialEq)]
    struct Framed(u64);

    impl WireCodec for Framed {
        const WIRE_TAG: u16 = 0x7777;

        fn encode_into(&self, out: &mut Vec<u8>) {
            self.0.encode_into(out);
        }

        fn decode(r: &mut Reader) -> Result<Self, CodecError> {
            Ok(Framed(r.u64()?))
        }
    }

    #[test]
    fn framed_envelope_roundtrip_and_checks() {
        let x = Framed(123);
        let bytes = x.encode_framed();
        assert_eq!(&bytes[..4], &WIRE_MAGIC);
        assert_eq!(Framed::decode_framed(&bytes).unwrap(), x);
        assert_eq!(peek_frame(&bytes).unwrap(), (WIRE_VERSION, 0x7777, 8));

        // Bad magic.
        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        assert!(matches!(
            Framed::decode_framed(&b),
            Err(CodecError::BadMagic { .. })
        ));

        // Flipped version byte.
        let mut b = bytes.clone();
        b[4] ^= 0x01;
        assert_eq!(
            Framed::decode_framed(&b),
            Err(CodecError::UnsupportedVersion {
                found: WIRE_VERSION ^ 0x01,
                supported: WIRE_VERSION
            })
        );

        // Wrong tag.
        let mut b = bytes.clone();
        b[6] ^= 0x01;
        assert!(matches!(
            Framed::decode_framed(&b),
            Err(CodecError::TagMismatch { .. })
        ));

        // Truncated payload.
        assert!(matches!(
            Framed::decode_framed(&bytes[..bytes.len() - 1]),
            Err(CodecError::Truncated { .. })
        ));

        // Trailing bytes after the frame.
        let mut b = bytes.clone();
        b.push(9);
        assert!(matches!(
            Framed::decode_framed(&b),
            Err(CodecError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn frame_header_parse_validates_magic_and_version() {
        let bytes = Framed(55).encode_framed();
        let header: [u8; FRAME_HEADER_BYTES] = bytes[..FRAME_HEADER_BYTES].try_into().unwrap();
        let fh = parse_frame_header(&header).unwrap();
        assert_eq!(fh.version, WIRE_VERSION);
        assert_eq!(fh.tag, 0x7777);
        assert_eq!(fh.payload_len, 8);
        assert_eq!(fh.checksum, fnv1a64(&bytes[FRAME_HEADER_BYTES..]));

        let mut bad = header;
        bad[0] ^= 0xFF;
        assert!(matches!(
            parse_frame_header(&bad),
            Err(CodecError::BadMagic { .. })
        ));

        let mut bad = header;
        bad[4] ^= 0x02;
        assert_eq!(
            parse_frame_header(&bad),
            Err(CodecError::UnsupportedVersion {
                found: WIRE_VERSION ^ 0x02,
                supported: WIRE_VERSION
            })
        );
    }

    #[test]
    fn varints_roundtrip_canonically() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &x in &cases {
            let mut out = Vec::new();
            put_varint_u64(&mut out, x);
            assert!(out.len() <= 10);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint_u64().unwrap(), x);
            r.expect_empty().unwrap();
        }
        for &x in &[0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, -1_000_000] {
            let mut out = Vec::new();
            put_varint_i64(&mut out, x);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint_i64().unwrap(), x);
        }
    }

    #[test]
    fn corrupt_varints_are_typed_errors() {
        // Truncated mid-continuation.
        let mut r = Reader::new(&[0x80]);
        assert!(matches!(r.varint_u64(), Err(CodecError::Truncated { .. })));
        // Overlong: 0 encoded in two bytes.
        let mut r = Reader::new(&[0x80, 0x00]);
        assert_eq!(
            r.varint_u64(),
            Err(CodecError::Invalid {
                what: "overlong varint encoding"
            })
        );
        // Overlong: 1 encoded with a redundant continuation.
        let mut r = Reader::new(&[0x81, 0x00]);
        assert!(r.varint_u64().is_err());
        // More than 64 bits: 10th byte above 1.
        let mut bytes = vec![0xFF; 9];
        bytes.push(0x02);
        let mut r = Reader::new(&bytes);
        assert_eq!(
            r.varint_u64(),
            Err(CodecError::Invalid {
                what: "varint encodes more than 64 bits"
            })
        );
        // 11-byte varint (never terminates in 10).
        let mut r = Reader::new(&[0xFF; 11]);
        assert!(r.varint_u64().is_err());
        // u64::MAX is exactly 10 bytes with a final 0x01 — valid.
        let mut out = Vec::new();
        put_varint_u64(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
        assert_eq!(*out.last().unwrap(), 0x01);
    }

    #[test]
    fn packed_slices_roundtrip() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![7; 1000],                       // width-0 all-equal run
            vec![0, 1, 2, 3, 4, 5, 6, 7],        // width 3
            vec![1_000_000, 1_000_001, 999_999], // tight band, big offset
            vec![0, u64::MAX],                   // full width
            (0..257u64).map(|i| i * i).collect(),
        ];
        for vals in &cases {
            let mut out = Vec::new();
            put_packed_u64s(&mut out, vals);
            let mut r = Reader::new(&out);
            assert_eq!(&r.packed_u64s().unwrap(), vals);
            r.expect_empty().unwrap();
        }
        let signed: Vec<Vec<i64>> = vec![
            vec![],
            vec![0; 500],
            vec![-3, -2, -1, 0, 1, 2, 3],
            vec![i64::MIN, i64::MAX, 0],
            (-100..100).collect(),
        ];
        for vals in &signed {
            let mut out = Vec::new();
            put_packed_i64s(&mut out, vals);
            let mut r = Reader::new(&out);
            assert_eq!(&r.packed_i64s().unwrap(), vals);
        }
        // All-equal run is a handful of bytes regardless of length.
        let mut out = Vec::new();
        put_packed_u64s(&mut out, &vec![42u64; 100_000]);
        assert!(out.len() < 16, "width-0 run took {} bytes", out.len());
    }

    #[test]
    fn packed_sorted_roundtrips_and_rejects_disorder() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![9],
            vec![0, 1, 2, 3],
            vec![5, 100, 101, 1 << 40, u64::MAX],
            (0..1000u64).map(|i| i * 3 + 1).collect(),
        ];
        for vals in &cases {
            let mut out = Vec::new();
            put_packed_sorted_u64s(&mut out, vals);
            let mut r = Reader::new(&out);
            assert_eq!(&r.packed_sorted_u64s().unwrap(), vals);
            r.expect_empty().unwrap();
        }
        // A zero gap (duplicate key) must be rejected.
        let mut out = Vec::new();
        put_varint_u64(&mut out, 3); // len
        put_varint_u64(&mut out, 5); // first
        put_varint_u64(&mut out, 1); // gap 1
        put_varint_u64(&mut out, 0); // zero gap
        let mut r = Reader::new(&out);
        assert_eq!(
            r.packed_sorted_u64s(),
            Err(CodecError::Invalid {
                what: "sorted slice is not strictly increasing"
            })
        );
        // Overflowing accumulation must be rejected.
        let mut out = Vec::new();
        put_varint_u64(&mut out, 2);
        put_varint_u64(&mut out, u64::MAX - 1);
        put_varint_u64(&mut out, 5);
        let mut r = Reader::new(&out);
        assert!(r.packed_sorted_u64s().is_err());

        // Varint value columns round-trip too.
        let vals: Vec<u64> = (0..500u64).map(|i| i * 31 % 997).collect();
        let mut out = Vec::new();
        put_varint_u64s(&mut out, &vals);
        let mut r = Reader::new(&out);
        assert_eq!(r.varint_u64s().unwrap(), vals);
        r.expect_empty().unwrap();
    }

    #[test]
    fn packed_corruption_cannot_oom_or_panic() {
        // Huge claimed length with width > 0: bounded by remaining bytes.
        let mut out = Vec::new();
        put_varint_u64(&mut out, 1 << 26);
        put_varint_u64(&mut out, 0);
        out.push(17); // width 17 bits
        out.extend_from_slice(&[0u8; 32]);
        let mut r = Reader::new(&out);
        assert!(r.packed_u64s().is_err());
        // Huge claimed length with width 0: bounded by PACKED_MAX_RUN.
        let mut out = Vec::new();
        put_varint_u64(&mut out, PACKED_MAX_RUN + 1);
        put_varint_u64(&mut out, 0);
        out.push(0);
        let mut r = Reader::new(&out);
        assert_eq!(
            r.packed_u64s(),
            Err(CodecError::Invalid {
                what: "packed slice length above the decode cap"
            })
        );
        // Width above 64.
        let mut out = Vec::new();
        put_varint_u64(&mut out, 2);
        put_varint_u64(&mut out, 0);
        out.push(65);
        out.extend_from_slice(&[0u8; 32]);
        let mut r = Reader::new(&out);
        assert_eq!(
            r.packed_u64s(),
            Err(CodecError::Invalid {
                what: "packed slice bit width above 64"
            })
        );
        // min + delta overflowing u64.
        let mut out = Vec::new();
        put_varint_u64(&mut out, 1);
        put_varint_u64(&mut out, u64::MAX);
        out.push(1);
        out.push(1); // delta 1 → u64::MAX + 1
        let mut r = Reader::new(&out);
        assert_eq!(
            r.packed_u64s(),
            Err(CodecError::Invalid {
                what: "packed slice value overflows u64"
            })
        );
        // Truncation anywhere inside a packed stream is typed.
        let vals: Vec<u64> = (0..500u64).map(|i| i * 7).collect();
        let mut out = Vec::new();
        put_packed_u64s(&mut out, &vals);
        for cut in 0..out.len() {
            let mut r = Reader::new(&out[..cut]);
            assert!(r.packed_u64s().is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn v1_frames_still_decode_and_route_the_reader_version() {
        // Hand-build a version-1 frame for `Framed` and check it decodes
        // under the v2 codec with the reader reporting version 1.
        let payload = 123u64.encode();
        let mut frame = Vec::new();
        frame.extend_from_slice(&WIRE_MAGIC);
        frame.extend_from_slice(&1u16.to_le_bytes());
        frame.extend_from_slice(&0x7777u16.to_le_bytes());
        put_len(&mut frame, payload.len());
        put_u64(&mut frame, fnv1a64(&payload));
        frame.extend_from_slice(&payload);
        assert_eq!(Framed::decode_framed(&frame).unwrap(), Framed(123));
        let header: [u8; FRAME_HEADER_BYTES] = frame[..FRAME_HEADER_BYTES].try_into().unwrap();
        assert_eq!(parse_frame_header(&header).unwrap().version, 1);
        assert_eq!(peek_frame(&frame).unwrap().0, 1);
        // A version outside [MIN, CURRENT] is rejected by both paths.
        let mut bad = frame.clone();
        bad[4] = 0x07;
        assert!(matches!(
            Framed::decode_framed(&bad),
            Err(CodecError::UnsupportedVersion { found: 7, .. })
        ));
        let mut r = Reader::with_version(&payload, 1);
        assert_eq!(r.version(), 1);
        assert!(!r.v2());
        assert_eq!(r.u64().unwrap(), 123);
    }

    #[test]
    fn errors_display() {
        let e = CodecError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(CodecError::UnknownTag { found: 0x0404 }
            .to_string()
            .contains("0x0404"));
    }
}
