//! E10 — Lemma 2 validation: `E[C_ℓ(L)] = p^ℓ·C_ℓ(P)` with variance
//! `O(p^{2ℓ−1}·F_ℓ^{2−1/ℓ})`.
//!
//! The identity is the engine of Algorithm 1; we verify it empirically by
//! sampling many independent copies of `L` from fixed streams of different
//! shapes and comparing the sample mean (and variance) of `C_ℓ(L)` against
//! the formula.

use sss_bench::table::fmt_g;
use sss_bench::{mean, print_header, run_trials, std_dev, Table};
use sss_core::{CollisionOracle, ExactCollisions};
use sss_stream::{
    BernoulliSampler, ConstantStream, ExactStats, StreamGen, UniformStream, ZipfStream,
};

fn main() {
    print_header(
        "E10: collision moments under sampling (Lemma 2)",
        "E[C_l(L)] = p^l * C_l(P); Var[C_l(L)] = O(p^(2l-1) * F_l^(2-1/l))",
        "constant / uniform / zipf streams, n=100k; 60 sampling trials per cell",
    );

    let n: u64 = 100_000;
    let trials = 60;
    let workloads: Vec<(&str, Vec<u64>)> = vec![
        ("constant", ConstantStream::new(3, 10).generate(n, 61)),
        ("uniform m=1k", UniformStream::new(1000).generate(n, 62)),
        (
            "zipf(1.5) m=10k",
            ZipfStream::new(10_000, 1.5).generate(n, 63),
        ),
    ];

    let mut table = Table::new(
        "sample mean of C_l(L) vs p^l * C_l(P)",
        &[
            "workload",
            "l",
            "p",
            "p^l*C_l(P)",
            "mean C_l(L)",
            "ratio",
            "sd/mean",
            "var bound ok",
        ],
    );

    for (name, stream) in &workloads {
        let stats = ExactStats::from_stream(stream.iter().copied());
        for ell in [2u32, 3] {
            let c_p = stats.collisions(ell);
            let f_ell = stats.fk(ell);
            for &p in &[0.3f64, 0.1] {
                let samples = run_trials(trials, 7000 + ell as u64, |seed| {
                    let mut oracle = ExactCollisions::new(ell);
                    let mut sampler = BernoulliSampler::new(p, seed);
                    sampler.sample_slice(stream, |x| oracle.update(x));
                    oracle.estimate(ell)
                });
                let m = mean(&samples);
                let sd = std_dev(&samples);
                let expect = p.powi(ell as i32) * c_p;
                // Lemma 2 bound with constant 4: Var <= 4 p^(2l-1) F_l^(2-1/l).
                let var_bound =
                    4.0 * p.powi(2 * ell as i32 - 1) * f_ell.powf(2.0 - 1.0 / ell as f64);
                table.row(vec![
                    name.to_string(),
                    ell.to_string(),
                    format!("{p}"),
                    fmt_g(expect),
                    fmt_g(m),
                    fmt_g(m / expect),
                    fmt_g(sd / m.max(1e-12)),
                    (sd * sd <= var_bound).to_string(),
                ]);
            }
        }
    }
    table.print();

    println!(
        "\nReading: every ratio column sits at 1.00 within sampling noise —\n\
         the unbiasedness E[C_l(L)] = p^l C_l(P) that Algorithm 1 inverts.\n\
         Observed variances respect the Lemma 2 envelope (shown with its\n\
         constant set to 4)."
    );
}
