//! E2 — Theorem 1 space: the sketched estimator needs width
//! `Θ(p⁻¹·m^{1−2/k})`; error vs. allocated space at a fixed rate, and
//! space needed as the rate shrinks.
//!
//! Two sweeps on `F_2` with the full Indyk–Woodruff pipeline:
//! (a) fixed `p`, growing sketch width — error should drop to the
//!     sampling-noise floor once width passes the theorem's threshold;
//! (b) width chosen by [`sss_core::recommended_levelset_config`] as `p`
//!     shrinks — counters allocated should grow as `1/p` while the error
//!     stays flat (the paper's space/rate tradeoff, §1.2 item 1).

use sss_bench::table::fmt_g;
use sss_bench::{print_header, run_trials, Summary, Table};
use sss_core::{recommended_levelset_config, ApproxParams, SampledFkEstimator};
use sss_sketch::levelset::LevelSetConfig;
use sss_stream::{BernoulliSampler, ExactStats, StreamGen, ZipfStream};

fn main() {
    print_header(
        "E2: Fk space (Theorem 1)",
        "Sketched Algorithm 1 reaches (1+eps) at width ~ p^-1 * m^(1-2/k); space scales as 1/p",
        "Zipf(1.3) m=20k, n=300k, k=2; trials=6 per cell",
    );

    let n: u64 = 300_000;
    let m: u64 = 20_000;
    let trials = 6;
    let stream = ZipfStream::new(m, 1.3).generate(n, 7);
    let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);

    // Sweep (a): fixed p, growing width.
    let p = 0.2;
    let mut ta = Table::new(
        &format!("error vs sketch width at p = {p}"),
        &["width", "space (words)", "med err", "p90 err"],
    );
    for width in [64usize, 128, 256, 512, 1024, 2048] {
        let mut space = 0usize;
        let errs = run_trials(trials, 500, |seed| {
            let cfg = LevelSetConfig {
                width,
                track: width,
                ..LevelSetConfig::for_universe(m, width)
            };
            let mut est = SampledFkEstimator::sketched(2, p, &cfg, seed);
            let mut sampler = BernoulliSampler::new(p, seed ^ 0x5EED);
            sampler.sample_slice(&stream, |x| est.update(x));
            space = est.space_words();
            ApproxParams::mult_error(est.estimate(), truth) - 1.0
        });
        let s = Summary::of(&errs);
        ta.row(vec![
            width.to_string(),
            space.to_string(),
            fmt_g(s.median),
            fmt_g(s.p90),
        ]);
    }
    ta.print();

    // Sweep (b): recommended width as p shrinks.
    let mut tb = Table::new(
        "space and error with the theorem's width ~ p^-1 * m^0 (k=2)",
        &["p", "width", "space (words)", "med err", "p90 err"],
    );
    for &p in &[0.5f64, 0.25, 0.1, 0.05] {
        let cfg = recommended_levelset_config(2, m, p, 0.2);
        let mut space = 0usize;
        let errs = run_trials(trials, 900, |seed| {
            let mut est = SampledFkEstimator::sketched(2, p, &cfg, seed);
            let mut sampler = BernoulliSampler::new(p, seed ^ 0xBEEF);
            sampler.sample_slice(&stream, |x| est.update(x));
            space = est.space_words();
            ApproxParams::mult_error(est.estimate(), truth) - 1.0
        });
        let s = Summary::of(&errs);
        tb.row(vec![
            format!("{p}"),
            cfg.width.to_string(),
            space.to_string(),
            fmt_g(s.median),
            fmt_g(s.p90),
        ]);
    }
    tb.print();

    println!(
        "\nReading: in (a) error falls with width until the sampling-noise\n\
         floor; in (b) width doubles as p halves (the O~(p^-1 m^(1-2/k))\n\
         bound) while the error band stays roughly constant."
    );
}
