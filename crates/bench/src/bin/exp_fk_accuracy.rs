//! E1 — Theorem 1: `(1+ε, δ)` estimation of `F_k(P)` from the sampled
//! stream, across sampling rates and stream shapes.
//!
//! For each `(k, workload, p)` cell we run independent sampling trials of
//! Algorithm 1 (exact-collision oracle, isolating the sampling error the
//! theorem's Lemma 5 bounds) and report the median/p90 multiplicative
//! error, plus the admissibility threshold `p_min = min(m,n)^{−1/k}` below
//! which no algorithm can succeed (Bar-Yossef; the paper's remark after
//! Theorem 1).

use sss_bench::table::fmt_g;
use sss_bench::{print_header, run_trials, Summary, Table};
use sss_core::{min_sampling_probability, ApproxParams, SampledFkEstimator};
use sss_stream::{BernoulliSampler, ExactStats, StreamGen, UniformStream, ZipfStream};

fn main() {
    print_header(
        "E1: Fk accuracy vs sampling rate (Theorem 1)",
        "Algorithm 1 is a (1+eps, delta)-estimator of F_k(P) for p above min(m,n)^(-1/k)",
        "Zipf(1.1) m=10k and Uniform m=10k, n=500k; trials=20 per cell",
    );

    let n: u64 = 500_000;
    let m: u64 = 10_000;
    let trials = 20;
    let workloads: Vec<(&str, Vec<u64>)> = vec![
        ("zipf(1.1)", ZipfStream::new(m, 1.1).generate(n, 42)),
        ("uniform", UniformStream::new(m).generate(n, 43)),
    ];

    for k in [2u32, 3, 4] {
        let mut table = Table::new(
            &format!("F_{k}: multiplicative error of Algorithm 1 (exact collisions)"),
            &[
                "workload",
                "p",
                "p_min(thm)",
                "med err",
                "p90 err",
                "max err",
            ],
        );
        for (name, stream) in &workloads {
            let truth = ExactStats::from_stream(stream.iter().copied()).fk(k);
            for &p in &[1.0f64, 0.3, 0.1, 0.03, 0.01, 0.003] {
                let errs = run_trials(trials, 1000 * k as u64, |seed| {
                    let mut est = SampledFkEstimator::exact(k, p);
                    let mut sampler = BernoulliSampler::new(p, seed);
                    sampler.sample_slice(stream, |x| est.update(x));
                    ApproxParams::mult_error(est.estimate(), truth) - 1.0
                });
                let s = Summary::of(&errs);
                table.row(vec![
                    name.to_string(),
                    format!("{p}"),
                    fmt_g(min_sampling_probability(k, m, n)),
                    fmt_g(s.median),
                    fmt_g(s.p90),
                    fmt_g(s.max),
                ]);
            }
        }
        table.print();
    }

    println!(
        "\nReading: errors stay at the few-percent level while p is well above\n\
         p_min and degrade as p approaches it — the Theorem 1 tradeoff. The\n\
         Zipf head keeps F_k concentrated on well-sampled items, so skewed\n\
         streams tolerate smaller p than uniform ones at the same k."
    );
}
