//! E5 — Lemma 9: entropy admits **no** multiplicative approximation from a
//! Bernoulli sample, even at constant rates.
//!
//! Scenario pair (part 1): `f_1 = n` (H = 0) versus `f_1 = n − k` plus
//! `k = ⌈1/(10p)⌉` singletons (H > 0). With probability `> 9/10` no
//! singleton survives sampling, making the two sampled streams literally
//! identical — we measure how often that happens and what any estimator
//! must therefore output.
//!
//! All-singleton stream (part 2): `H(f) = lg n` but `H(g) = lg|L|`, an
//! additive `lg(1/p)` loss that no multiplicative promise can absorb.

use sss_bench::table::fmt_g;
use sss_bench::{print_header, run_trials, Table};
use sss_core::SampledEntropyEstimator;
use sss_stream::{BernoulliSampler, EntropyScenarioPair, ExactStats};

fn main() {
    print_header(
        "E5: entropy impossibility (Lemma 9)",
        "No multiplicative approximation of H(f) is possible in general, even for p > 1/2",
        "scenario pair with k = ceil(1/(10p)) singletons; all-singleton stream; trials=200/20",
    );

    let n: u64 = 200_000;

    // Part 1: how often are the sampled streams identical?
    let mut t1 = Table::new(
        "scenario pair: sampled streams coincide w.p. > 9/10",
        &[
            "p",
            "k",
            "H(f1)",
            "H(f2)",
            "P[samples identical]",
            "est H on S2",
        ],
    );
    for &p in &[0.5f64, 0.1, 0.02] {
        let pair = EntropyScenarioPair::new(n, p, 1 << 21);
        let s1 = pair.scenario_one(9);
        let s2 = pair.scenario_two(9);
        let h1 = ExactStats::from_stream(s1.iter().copied()).entropy();
        let h2 = ExactStats::from_stream(s2.iter().copied()).entropy();
        // A sampled copy of S2 equals (in distribution) a sampled copy of S1
        // iff none of the k singletons survives.
        let trials = 200;
        let identical = run_trials(trials, 700, |seed| {
            let mut sampler = BernoulliSampler::new(p, seed);
            let mut survivors = 0u64;
            let bulk = s2[0];
            sampler.sample_slice(&s2, |x| {
                if x != bulk {
                    survivors += 1;
                }
            });
            (survivors == 0) as u64 as f64
        });
        let p_same: f64 = identical.iter().sum::<f64>() / trials as f64;
        // What the paper's own estimator says about scenario 2:
        let est = {
            let mut e = SampledEntropyEstimator::new(p, 2000, 31);
            let mut sampler = BernoulliSampler::new(p, 33);
            sampler.sample_slice(&s2, |x| e.update(x));
            e.estimate()
        };
        t1.row(vec![
            format!("{p}"),
            pair.k().to_string(),
            fmt_g(h1),
            fmt_g(h2),
            fmt_g(p_same),
            fmt_g(est),
        ]);
    }
    t1.print();

    // Part 2: all-singleton stream.
    let mut t2 = Table::new(
        "all-singleton stream: additive lg(1/p) loss (Lemma 9 part 2)",
        &["p", "H(f) = lg n", "lg(pn) (theory)", "estimated H(g)"],
    );
    for &p in &[0.5f64, 1.0 / 16.0, 1.0 / 64.0] {
        let pair = EntropyScenarioPair::new(n, p, 1 << 21);
        let stream = pair.all_singletons(13);
        let hf = (n as f64).log2();
        let expected = hf + p.log2();
        let est = {
            let mut e = SampledEntropyEstimator::new(p, 2000, 35);
            let mut sampler = BernoulliSampler::new(p, 37);
            sampler.sample_slice(&stream, |x| e.update(x));
            e.estimate()
        };
        t2.row(vec![format!("{p}"), fmt_g(hf), fmt_g(expected), fmt_g(est)]);
    }
    t2.print();

    println!(
        "\nReading: in part 1 the two streams have entropies 0 vs > 0 yet\n\
         their samples coincide with probability ~0.9 — any estimator's\n\
         multiplicative error is unbounded on one of them. In part 2 the\n\
         estimate tracks lg(pn), i.e. H(g), sitting a full lg(1/p) bits\n\
         below H(f) = lg n: exactly Lemma 9's two failure modes."
    );
}
