//! E15 (ablation) — the Indyk–Woodruff level-set estimator's design knobs
//! (DESIGN.md calls these out): CountSketch depth, the reliability slack,
//! and the class ratio `ε′`.
//!
//! One knob varies per sweep, everything else at defaults; metric is the
//! relative error of `C̃_2(L)` against exact `C_2(L)` on a mixed-class
//! stream — exactly the quantity Algorithm 1 consumes (event `E²_ℓ`,
//! Lemma 7).

use sss_bench::table::fmt_g;
use sss_bench::{print_header, run_trials, Summary, Table};
use sss_core::{CollisionOracle, ExactCollisions, LevelSetCollisions};
use sss_sketch::levelset::LevelSetConfig;
use sss_stream::{BernoulliSampler, StreamGen, ZipfStream};

fn c2_errors(
    sampled: &[u64],
    exact_c2: f64,
    make: impl Fn() -> LevelSetConfig,
    trials: u64,
) -> Summary {
    let errs = run_trials(trials, 900, |seed| {
        let cfg = make();
        let mut ls = LevelSetCollisions::new(2, &cfg, seed);
        for &x in sampled {
            ls.update(x);
        }
        (ls.estimate(2) - exact_c2).abs() / exact_c2
    });
    Summary::of(&errs)
}

fn main() {
    print_header(
        "E15 (ablation): Indyk-Woodruff level-set design knobs",
        "depth drives recovery reliability; slack trades bias for variance; eps' sets class resolution",
        "zipf(1.3) m=20k n=300k sampled at p=0.2; metric: rel err of C2(L); trials=8",
    );

    let stream = ZipfStream::new(20_000, 1.3).generate(300_000, 5);
    let sampled = BernoulliSampler::new(0.2, 6).sample_to_vec(&stream);
    let exact_c2 = {
        let mut ex = ExactCollisions::new(2);
        for &x in &sampled {
            ex.update(x);
        }
        ex.estimate(2)
    };
    let trials = 8;
    let base = || LevelSetConfig {
        width: 512,
        track: 512,
        ..LevelSetConfig::for_universe(20_000, 512)
    };

    let mut t = Table::new(
        "one knob at a time (defaults: depth=5, slack=32, eps'=0.1, width=512)",
        &["knob", "value", "med err", "p90 err"],
    );

    for depth in [1usize, 3, 5, 9] {
        let s = c2_errors(
            &sampled,
            exact_c2,
            || LevelSetConfig { depth, ..base() },
            trials,
        );
        t.row(vec![
            "depth".into(),
            depth.to_string(),
            fmt_g(s.median),
            fmt_g(s.p90),
        ]);
    }
    for slack in [2.0f64, 8.0, 32.0, 128.0] {
        let s = c2_errors(
            &sampled,
            exact_c2,
            || LevelSetConfig { slack, ..base() },
            trials,
        );
        t.row(vec![
            "slack".into(),
            format!("{slack}"),
            fmt_g(s.median),
            fmt_g(s.p90),
        ]);
    }
    for eps_prime in [0.05f64, 0.1, 0.2, 0.4] {
        let s = c2_errors(
            &sampled,
            exact_c2,
            || LevelSetConfig {
                eps_prime,
                ..base()
            },
            trials,
        );
        t.row(vec![
            "eps'".into(),
            format!("{eps_prime}"),
            fmt_g(s.median),
            fmt_g(s.p90),
        ]);
    }
    t.print();

    println!(
        "\nReading: depth 1 has no median concentration and fails; accuracy\n\
         saturates by depth ~5. Tiny slack reads classes off levels where\n\
         they are not yet reliable (bias); huge slack pushes classes deeper\n\
         than necessary (subsampling variance) — the middle is flat, which\n\
         is why a loose constant suffices, as the theory's poly-factors\n\
         suggest. eps' trades class resolution against per-class occupancy\n\
         with a broad optimum near 0.1."
    );
}
