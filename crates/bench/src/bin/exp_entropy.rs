//! E6 — Theorem 5 (+ Proposition 1, Lemma 10): when `H(f)` is above the
//! vanishing threshold `p^{−1/2}·n^{−1/6}`, estimating entropy **on the
//! sampled stream** is a constant-factor approximation of `H(f)`.
//!
//! We sweep stream entropy from under 1 bit to ~13 bits and sampling rates
//! from 1 down to 0.01, reporting the ratio `Ĥ(g)/H(f)` (Theorem 5 promises
//! it stays within constant bounds once `H(f)` clears the threshold) and
//! the Proposition 1 residual `|H_pn(g) − H(g)|`.

use sss_bench::table::fmt_g;
use sss_bench::{print_header, run_trials, Summary, Table};
use sss_core::SampledEntropyEstimator;
use sss_stream::{BernoulliSampler, ExactStats, StreamGen, UniformStream, ZipfStream};

fn main() {
    print_header(
        "E6: entropy positive result (Theorem 5, Proposition 1, Lemma 10)",
        "H(g) estimated on L is a constant-factor approximation of H(f) when H(f) = omega(p^-1/2 n^-1/6)",
        "streams of increasing entropy; n=400k; trials=8 per cell",
    );

    let n: u64 = 400_000;
    let trials = 8;
    let workloads: Vec<(&str, Vec<u64>)> = vec![
        ("zipf(2.0) m=64", ZipfStream::new(64, 2.0).generate(n, 51)),
        (
            "zipf(1.2) m=4096",
            ZipfStream::new(4096, 1.2).generate(n, 52),
        ),
        ("uniform m=256", UniformStream::new(256).generate(n, 53)),
        ("uniform m=8192", UniformStream::new(8192).generate(n, 54)),
    ];

    let mut table = Table::new(
        "ratio estimate/H(f) across rates (constant-factor band expected)",
        &[
            "workload",
            "H(f)",
            "p",
            "threshold",
            "med ratio",
            "min ratio",
            "max ratio",
        ],
    );
    for (name, stream) in &workloads {
        let h = ExactStats::from_stream(stream.iter().copied()).entropy();
        for &p in &[1.0f64, 0.1, 0.01] {
            let ratios = run_trials(trials, 1700, |seed| {
                let mut est = SampledEntropyEstimator::new(p, 3000, seed);
                let mut sampler = BernoulliSampler::new(p, seed ^ 0xE6);
                sampler.sample_slice(stream, |x| est.update(x));
                est.estimate() / h
            });
            let s = Summary::of(&ratios);
            let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
            let threshold = SampledEntropyEstimator::new(p, 16, 0).guarantee_threshold(n);
            table.row(vec![
                name.to_string(),
                fmt_g(h),
                format!("{p}"),
                fmt_g(threshold),
                fmt_g(s.median),
                fmt_g(min),
                fmt_g(s.max),
            ]);
        }
    }
    table.print();

    // Proposition 1: |H_pn(g) − H(g)| = O(log m / sqrt(pn)).
    let mut t2 = Table::new(
        "Proposition 1 residual |H_pn(g) - H(g)|",
        &["workload", "p", "med |residual|", "bound lg(m)/sqrt(pn)"],
    );
    let stream = &workloads[3].1; // uniform m=8192
    for &p in &[0.5f64, 0.1, 0.01] {
        let residuals = run_trials(trials, 2100, |seed| {
            // Exact H(g) by materialising the same sample.
            let mut sampler = BernoulliSampler::new(p, seed ^ 0xE7);
            let mut sampled = Vec::new();
            sampler.sample_slice(stream, |x| sampled.push(x));
            let stats = ExactStats::from_stream(sampled.iter().copied());
            let hg = stats.entropy();
            let n_prime = stats.n() as f64;
            let pn = p * n as f64;
            // Exact H_pn(g) from the sampled frequencies.
            let hpn: f64 = stats
                .iter()
                .map(|(_, g)| (g as f64 / pn) * (pn / g as f64).log2())
                .sum();
            let _ = n_prime;
            (hpn - hg).abs()
        });
        let s = Summary::of(&residuals);
        let bound = (8192f64).log2() / (p * n as f64).sqrt();
        t2.row(vec![
            "uniform m=8192".to_string(),
            format!("{p}"),
            fmt_g(s.median),
            fmt_g(bound),
        ]);
    }
    t2.print();

    println!(
        "\nReading: ratios sit in a narrow constant band (lg(1/p)-sized dips\n\
         appear only for the highest-entropy stream at the smallest p, where\n\
         the singleton tail dominates — the H_pn ≥ H(f)/2 − o(1) side of\n\
         Lemma 10 is the binding one there). The Proposition 1 residual is\n\
         orders of magnitude below H and shrinks as 1/sqrt(pn)."
    );
}
