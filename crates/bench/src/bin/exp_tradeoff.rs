//! E3 — §1.2 time/space tradeoff: estimating `F_2` with `n = Θ(m)` and
//! `p = Θ(1/√n)` takes `Õ(√n)` total processing and `Õ(√n)` workspace.
//!
//! We sweep `n`, set `p = c/√n`, and measure (i) how many sampled elements
//! the estimator actually processes (its total work — every other stream
//! algorithm must touch all `n` elements) and (ii) its resident space,
//! then report both against `√n`.

use sss_bench::table::fmt_g;
use sss_bench::{print_header, run_trials, Table};
use sss_core::{ApproxParams, SampledFkEstimator};
use sss_stream::{BernoulliSampler, ExactStats, StreamGen, ZipfStream};

fn main() {
    print_header(
        "E3: time/space tradeoff at p = c/sqrt(n) (paper §1.2)",
        "F_2 with n = Theta(m): O~(sqrt n) total work and O~(sqrt n) workspace",
        "Zipf(1.05), m = n, p = 4/sqrt(n); trials=10",
    );

    let trials = 10;
    let mut table = Table::new(
        "work and space vs n  (expect items/sqrt(n) and space/sqrt(n) ~ constant)",
        &[
            "n",
            "p=4/sqrt(n)",
            "samples seen",
            "samples/sqrt(n)",
            "space (words)",
            "space/sqrt(n)",
            "med err",
        ],
    );

    for exp in [14u32, 16, 18, 20] {
        let n: u64 = 1 << exp;
        let p = (4.0 / (n as f64).sqrt()).min(1.0);
        let stream = ZipfStream::new(n, 1.05).generate(n, 11);
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
        let mut seen = 0.0f64;
        let mut space = 0.0f64;
        let errs = run_trials(trials, 3000 + exp as u64, |seed| {
            let mut est = SampledFkEstimator::exact(2, p);
            let mut sampler = BernoulliSampler::new(p, seed);
            sampler.sample_slice(&stream, |x| est.update(x));
            seen += est.samples_seen() as f64 / trials as f64;
            space += est.space_words() as f64 / trials as f64;
            ApproxParams::mult_error(est.estimate(), truth) - 1.0
        });
        let mut sorted = errs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let sqrt_n = (n as f64).sqrt();
        table.row(vec![
            n.to_string(),
            fmt_g(p),
            fmt_g(seen),
            fmt_g(seen / sqrt_n),
            fmt_g(space),
            fmt_g(space / sqrt_n),
            fmt_g(sorted[trials as usize / 2]),
        ]);
    }
    table.print();

    println!(
        "\nReading: both normalised columns stay O(1) as n grows 64x —\n\
         the estimator reads and stores only ~sqrt(n) elements, versus the\n\
         Omega(n) reading cost of any conventional streaming algorithm,\n\
         while the error column shows accuracy is retained (constant-factor\n\
         here; drive it down with the constant in p = c/sqrt(n))."
    );
}
