//! E9 — §1.3 baseline comparison: collision-based `F_2` (this paper,
//! `Õ(1/p)` space) versus Rusu–Dobra scaling (`Õ(1/p²)` space for the same
//! guarantee).
//!
//! Both observe identical samples. Part 1 fixes the space budget and
//! sweeps `p`: the scaling estimator's error grows much faster as `p`
//! drops. Part 2 asks the operational question — how much AMS space does
//! Rusu–Dobra need to match the collision estimator's error at each `p`?
//! The answer grows like `1/p` *relative* to ours, i.e. `1/p²` absolute.

use sss_bench::table::fmt_g;
use sss_bench::{print_header, run_trials, Summary, Table};
use sss_core::{ApproxParams, RusuDobraF2, SampledFkEstimator};
use sss_stream::{BernoulliSampler, ExactStats, StreamGen, UniformStream};

fn rd_median_err(
    stream: &[u64],
    truth: f64,
    p: f64,
    groups: usize,
    copies: usize,
    trials: u64,
) -> f64 {
    let errs = run_trials(trials, 4400, |seed| {
        let mut rd = RusuDobraF2::new(p, groups, copies, seed);
        let mut sampler = BernoulliSampler::new(p, seed ^ 0x9D);
        sampler.sample_slice(stream, |x| rd.update(x));
        ApproxParams::mult_error(rd.estimate(), truth) - 1.0
    });
    Summary::of(&errs).median
}

fn main() {
    print_header(
        "E9: collision method vs Rusu-Dobra scaling (paper §1.3)",
        "Ours needs O~(1/p) space for (1+eps, delta) F2; RD scaling needs O~(1/p^2)",
        "uniform m=50k, n=300k (light tail: the adversarial regime for scaling); trials=10",
    );

    let stream = UniformStream::new(50_000).generate(300_000, 77);
    let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
    let trials = 10;

    // Part 1: fixed space, sweep p.
    let groups = 7;
    let copies = 96;
    let mut t1 = Table::new(
        "fixed space (RD: 7x96 AMS counters), error vs p",
        &["p", "ours med err", "RD med err", "RD/ours"],
    );
    for &p in &[0.3f64, 0.1, 0.03, 0.01] {
        let ours = {
            let errs = run_trials(trials, 4000, |seed| {
                let mut est = SampledFkEstimator::exact(2, p);
                let mut sampler = BernoulliSampler::new(p, seed ^ 0x9D);
                sampler.sample_slice(&stream, |x| est.update(x));
                ApproxParams::mult_error(est.estimate(), truth) - 1.0
            });
            Summary::of(&errs).median
        };
        let rd = rd_median_err(&stream, truth, p, groups, copies, trials);
        t1.row(vec![
            format!("{p}"),
            fmt_g(ours),
            fmt_g(rd),
            fmt_g(rd / ours.max(1e-9)),
        ]);
    }
    t1.print();

    // Part 2: AMS copies RD needs to match our error.
    let mut t2 = Table::new(
        "AMS copies Rusu-Dobra needs to reach <= 10% median error",
        &[
            "p",
            "copies needed",
            "counters total",
            "growth vs previous p",
        ],
    );
    let mut prev: Option<f64> = None;
    for &p in &[0.3f64, 0.1, 0.03] {
        let mut needed = None;
        for copies in [16usize, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
            if rd_median_err(&stream, truth, p, groups, copies, trials) <= 0.10 {
                needed = Some(copies);
                break;
            }
        }
        let label = needed.map_or("> 4096".to_string(), |c| c.to_string());
        let total = needed.map_or(">28672".to_string(), |c| (groups * c).to_string());
        let growth = match (prev, needed) {
            (Some(a), Some(b)) => fmt_g(b as f64 / a),
            _ => "-".to_string(),
        };
        prev = needed.map(|c| c as f64);
        t2.row(vec![format!("{p}"), label, total, growth]);
    }
    t2.print();

    println!(
        "\nReading: at fixed space the scaling estimator degrades roughly an\n\
         order of magnitude faster per decade of p; to hold 10% error its\n\
         sketch must grow ~1/p-fold each time p drops ~3x — i.e. O~(1/p^2)\n\
         absolute space versus the collision method's O~(1/p). This is the\n\
         gap the paper claims over [34]."
    );
}
