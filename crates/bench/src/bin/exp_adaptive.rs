//! E13 (extension) — the paper's open problem #2 (Conclusion): can an
//! algorithm that *adapts* the sampling probability observe fewer
//! elements for the same accuracy?
//!
//! Answer demonstrated here: yes, for `F_2`. Per-occurrence importance
//! weighting keeps the collision estimator unbiased under any past-
//! measurable rate schedule, and a bank-collisions-then-throttle policy
//! matches the fixed-rate estimator's accuracy while observing a fraction
//! of the elements — most dramatically on skewed streams, where the first
//! stretch of high-rate sampling already pins the head of the
//! distribution.

use sss_bench::table::fmt_g;
use sss_bench::{print_header, run_trials, Summary, Table};
use sss_core::{AdaptiveF2Estimator, ApproxParams, TargetCollisionsPolicy};
use sss_hash::{RngCore64, Xoshiro256pp};
use sss_stream::{ExactStats, StreamGen, UniformStream, ZipfStream};

fn run_fixed(stream: &[u64], p: f64, seed: u64) -> (f64, u64) {
    let mut est = AdaptiveF2Estimator::new(p);
    let mut rng = Xoshiro256pp::new(seed);
    for &x in stream {
        if rng.next_bool(p) {
            est.update(x);
        }
    }
    (est.estimate(), est.samples_seen())
}

fn run_policy(stream: &[u64], policy: &TargetCollisionsPolicy, seed: u64) -> (f64, u64) {
    let mut est = AdaptiveF2Estimator::new(policy.p_high);
    let mut rng = Xoshiro256pp::new(seed);
    for &x in stream {
        let r = policy.rate_for(&est);
        if r != est.current_rate() {
            est.set_rate(r);
        }
        if rng.next_bool(est.current_rate()) {
            est.update(x);
        }
    }
    (est.estimate(), est.samples_seen())
}

fn main() {
    print_header(
        "E13 (extension): adaptive sampling rates (open problem #2)",
        "Importance-weighted collisions stay unbiased under adaptive rates; throttling saves samples",
        "zipf(1.5) and uniform, n=400k; fixed p=0.2 vs bank-then-throttle to 0.02; trials=10",
    );

    let n = 400_000u64;
    let workloads: Vec<(&str, Vec<u64>)> = vec![
        ("zipf(1.5)", ZipfStream::new(5_000, 1.5).generate(n, 7)),
        ("uniform", UniformStream::new(2_000).generate(n, 8)),
    ];
    let trials = 10;

    let mut table = Table::new(
        "fixed-rate vs adaptive policy (same p_high)",
        &[
            "workload",
            "scheme",
            "med err",
            "p90 err",
            "mean samples",
            "samples vs fixed",
        ],
    );

    for (name, stream) in &workloads {
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
        let policy = TargetCollisionsPolicy {
            p_high: 0.2,
            p_low: 0.02,
            target: truth / 50.0, // bank ~2% relative-sd worth of collisions
        };
        let mut fixed_samples = 0.0;
        let fixed_errs = run_trials(trials, 100, |seed| {
            let (est, samples) = run_fixed(stream, 0.2, seed);
            fixed_samples += samples as f64 / trials as f64;
            ApproxParams::mult_error(est, truth) - 1.0
        });
        let mut adaptive_samples = 0.0;
        let adaptive_errs = run_trials(trials, 200, |seed| {
            let (est, samples) = run_policy(stream, &policy, seed);
            adaptive_samples += samples as f64 / trials as f64;
            ApproxParams::mult_error(est, truth) - 1.0
        });
        let fs = Summary::of(&fixed_errs);
        let as_ = Summary::of(&adaptive_errs);
        table.row(vec![
            name.to_string(),
            "fixed p=0.2".to_string(),
            fmt_g(fs.median),
            fmt_g(fs.p90),
            fmt_g(fixed_samples),
            "1.00".to_string(),
        ]);
        table.row(vec![
            name.to_string(),
            "adaptive".to_string(),
            fmt_g(as_.median),
            fmt_g(as_.p90),
            fmt_g(adaptive_samples),
            fmt_g(adaptive_samples / fixed_samples),
        ]);
    }
    table.print();

    println!(
        "\nReading: the adaptive schedule reaches errors in the same band\n\
         while observing a fraction of the elements — an affirmative data\n\
         point for the paper's open problem. The saving is larger on the\n\
         skewed stream, where high-rate exploration pays for itself\n\
         quickly; on flat streams collisions accrue slowly and the policy\n\
         throttles later."
    );
}
