//! E11 — the introduction's motivation: estimating on the sampled stream
//! and normalising is **not** enough; the paper's corrections are.
//!
//! For `F_2` and `F_0` we race the naive scaling (`F_2(L)/p²`, `F_0(L)/p`)
//! against the paper's estimators (Algorithm 1, Algorithm 2) across
//! sampling rates on a light-tailed stream — the regime where naive
//! scaling collapses.

use sss_bench::table::fmt_g;
use sss_bench::{print_header, run_trials, Summary, Table};
use sss_core::{
    ApproxParams, NaiveScaledF0, NaiveScaledFk, SampledF0Estimator, SampledFkEstimator,
};
use sss_stream::{BernoulliSampler, ExactStats, StreamGen, UniformStream};

fn main() {
    print_header(
        "E11: naive normalisation vs the paper's estimators (intro motivation)",
        "F_k(L)/p^k and F_0(L)/p are biased; Algorithms 1 and 2 are the corrections",
        "uniform m=40k, n=200k (per-item frequency ~5); trials=10",
    );

    let stream = UniformStream::new(40_000).generate(200_000, 88);
    let stats = ExactStats::from_stream(stream.iter().copied());
    let f2 = stats.fk(2);
    let f0 = stats.f0() as f64;
    let trials = 10;

    let mut t = Table::new(
        "median multiplicative error (1.0 = exact)",
        &[
            "p",
            "naive F2(L)/p^2",
            "Alg.1 F2",
            "naive F0(L)/p",
            "Alg.2 F0",
            "Alg.2 ceiling",
        ],
    );
    for &p in &[0.5f64, 0.1, 0.02] {
        let naive_f2 = Summary::of(&run_trials(trials, 5000, |seed| {
            let mut e = NaiveScaledFk::new(2, p);
            let mut s = BernoulliSampler::new(p, seed);
            s.sample_slice(&stream, |x| e.update(x));
            ApproxParams::mult_error(e.estimate(), f2)
        }))
        .median;
        let ours_f2 = Summary::of(&run_trials(trials, 5000, |seed| {
            let mut e = SampledFkEstimator::exact(2, p);
            let mut s = BernoulliSampler::new(p, seed);
            s.sample_slice(&stream, |x| e.update(x));
            ApproxParams::mult_error(e.estimate(), f2)
        }))
        .median;
        let naive_f0 = Summary::of(&run_trials(trials, 6000, |seed| {
            let mut e = NaiveScaledF0::new(p, seed);
            let mut s = BernoulliSampler::new(p, seed ^ 3);
            s.sample_slice(&stream, |x| e.update(x));
            ApproxParams::mult_error(e.estimate(), f0)
        }))
        .median;
        let ours_f0 = Summary::of(&run_trials(trials, 6000, |seed| {
            let mut e = SampledF0Estimator::new(p, 0.05, seed);
            let mut s = BernoulliSampler::new(p, seed ^ 3);
            s.sample_slice(&stream, |x| e.update(x));
            ApproxParams::mult_error(e.estimate(), f0)
        }))
        .median;
        t.row(vec![
            format!("{p}"),
            fmt_g(naive_f2),
            fmt_g(ours_f2),
            fmt_g(naive_f0),
            fmt_g(ours_f0),
            fmt_g(4.0 / p.sqrt()),
        ]);
    }
    t.print();

    println!(
        "\nReading: naive F2 scaling drifts to ~1/p-factor errors (the\n\
         p(1-p)F1 cross-term dominates a light-tailed F2), while Algorithm 1\n\
         stays within a few percent. Naive F0 cannot beat its systematic\n\
         bias either; Algorithm 2's sqrt(p) scaling splits the error\n\
         symmetrically and respects the 4/sqrt(p) ceiling — the best any\n\
         algorithm can do by Theorem 4."
    );
}
