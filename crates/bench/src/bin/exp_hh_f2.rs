//! E8 — Theorem 7: `F_2` heavy hitters of the original stream via
//! CountSketch on the sampled stream.
//!
//! The workload plants one elephant over a sea of singletons — an item that
//! is `F_2`-heavy while holding a negligible share of `F_1`, the regime
//! where `F_2`-heavy-hitter machinery (and not Theorem 6) is required. We
//! measure recall of `{i : f_i ≥ α√F_2}`, false positives against the
//! theorem's weakened cutoff `(1−ε)·√p·α·√F_2`, frequency error, and the
//! `Õ(1/p)` space growth from the `α′ = α√p` shift.

use sss_bench::table::{fmt_g, fmt_pct};
use sss_bench::{print_header, Table};
use sss_core::SampledF2HeavyHitters;
use sss_hash::RngCore64;
use sss_stream::{BernoulliSampler, ExactStats};

fn elephant_stream(n_background: u64, elephant: u64, freq: u64, seed: u64) -> Vec<u64> {
    let mut stream: Vec<u64> = (0..n_background)
        .map(|i| sss_hash::fingerprint64(i ^ (seed << 32)))
        .collect();
    stream.extend(std::iter::repeat_n(elephant, freq as usize));
    let mut rng = sss_hash::Xoshiro256pp::new(seed);
    for i in (1..stream.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        stream.swap(i, j);
    }
    stream
}

fn main() {
    print_header(
        "E8: F2 heavy hitters from the sampled stream (Theorem 7)",
        "CountSketch(alpha*sqrt(p), eps/10, delta/4) on L finds every f_i >= alpha*sqrt(F2(P))",
        "1 elephant (f=8k) over 300k singletons; alpha=0.5 eps=0.2 delta=0.05; trials=5",
    );

    let n_background = 300_000u64;
    let elephant = 424_242u64;
    let freq = 8_000u64;
    let alpha = 0.5;
    let eps = 0.2;
    let delta = 0.05;
    let trials = 5u64;

    let mut table = Table::new(
        "recall / precision / frequency error / space",
        &[
            "p",
            "recall",
            "false pos",
            "med f err",
            "space (words)",
            "space x vs p=1",
        ],
    );

    let mut base_space = 0usize;
    for &p in &[1.0f64, 0.25, 0.0625] {
        let mut recall_hits = 0u64;
        let mut false_pos = 0u64;
        let mut ferrs: Vec<f64> = Vec::new();
        let mut space = 0usize;
        for t in 0..trials {
            let stream = elephant_stream(n_background, elephant, freq, 7 + t);
            let stats = ExactStats::from_stream(stream.iter().copied());
            let sqrt_f2 = stats.fk(2).sqrt();
            assert!(freq as f64 >= alpha * sqrt_f2, "workload not F2-heavy");
            let weak_cutoff = (1.0 - eps) * p.sqrt() * alpha * sqrt_f2;

            let mut hh = SampledF2HeavyHitters::new(alpha, eps, delta, p, 900 + t);
            let mut sampler = BernoulliSampler::new(p, 1100 + t);
            sampler.sample_slice(&stream, |x| hh.update(x));
            space = hh.space_words();
            let report = hh.report();
            if report.iter().any(|&(i, _)| i == elephant) {
                recall_hits += 1;
                let f_est = report.iter().find(|&&(i, _)| i == elephant).unwrap().1;
                ferrs.push((f_est - freq as f64).abs() / freq as f64);
            }
            for &(i, _) in &report {
                if (stats.freq(i) as f64) < weak_cutoff {
                    false_pos += 1;
                }
            }
        }
        if p == 1.0 {
            base_space = space;
        }
        ferrs.sort_by(|a, b| a.total_cmp(b));
        table.row(vec![
            format!("{p}"),
            fmt_pct(recall_hits as f64 / trials as f64),
            false_pos.to_string(),
            fmt_g(ferrs.get(ferrs.len() / 2).copied().unwrap_or(f64::NAN)),
            space.to_string(),
            fmt_g(space as f64 / base_space as f64),
        ]);
    }
    table.print();

    println!(
        "\nReading: the elephant — invisible to any F1-based reporter at\n\
         this share — is recovered at every rate, with no reported item\n\
         below the theorem's (1-eps)*sqrt(p)*alpha*sqrt(F2) cutoff. Space\n\
         grows as ~1/p via the alpha' = alpha*sqrt(p) shift: the paper's\n\
         O~(1/p) bound for k=2 made visible."
    );
}
