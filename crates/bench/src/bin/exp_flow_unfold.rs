//! E12 (extension) — flow-size distribution recovery from the sampled
//! stream (the Duffield et al. line the paper situates itself against,
//! §1.3 [17, 18]).
//!
//! Part 1: EM unfolding recovers the shape of heavy-tailed flow-size
//! distributions (total flows, mean size, CCDF markers) from a Bernoulli
//! sample.
//!
//! Part 2: the unfolder's implied `F_0` on the Theorem 4 hard pair —
//! parametric structure does not evade the information-theoretic floor:
//! whichever side matches its implicit prior wins, the other loses.

use sss_bench::table::fmt_g;
use sss_bench::{print_header, Table};
use sss_core::{FlowSizeUnfolder, SampledFlowHistogram};
use sss_stream::{BernoulliSampler, ExactStats, F0HardPair, NetFlowStream, StreamGen};

fn main() {
    print_header(
        "E12 (extension): flow-size distribution unfolding (paper §1.3 [17,18])",
        "EM inversion of binomial thinning recovers the flow-size histogram from L",
        "NetFlow traces (bounded Pareto); hard pair for the caveat; p in {0.3, 0.1}",
    );

    let mut t1 = Table::new(
        "recovered flow statistics on a NetFlow trace (n = 500k packets)",
        &[
            "p",
            "true flows",
            "est flows",
            "true mean",
            "est mean",
            "true P[sz>=10]",
            "est P[sz>=10]",
        ],
    );
    let trace = NetFlowStream::new(1 << 22, 1.2, 3000).generate(500_000, 3);
    let exact = ExactStats::from_stream(trace.iter().copied());
    let true_flows = exact.f0() as f64;
    let true_mean = exact.n() as f64 / true_flows;
    let big = exact.iter().filter(|&(_, f)| f >= 10).count() as f64 / true_flows;

    for &p in &[0.3f64, 0.1] {
        let mut hist = SampledFlowHistogram::new();
        let mut sampler = BernoulliSampler::new(p, 11);
        sampler.sample_slice(&trace, |x| hist.update(x));
        let est = FlowSizeUnfolder::new(p, 4000, 300).unfold(&hist);
        t1.row(vec![
            format!("{p}"),
            fmt_g(true_flows),
            fmt_g(est.total_flows()),
            fmt_g(true_mean),
            fmt_g(est.mean_size()),
            fmt_g(big),
            fmt_g(est.ccdf(10)),
        ]);
    }
    t1.print();

    let mut t2 = Table::new(
        "caveat: implied F0 on the Theorem 4 hard pair (p = 0.01)",
        &["stream", "true F0", "unfolded F0", "mult err"],
    );
    let p = 0.01;
    let pair = F0HardPair::new(200_000, p, 1 << 21);
    for (name, stream) in [
        ("A (distinct)", pair.stream_a(5)),
        ("B (1/sqrt p reps)", pair.stream_b(5)),
    ] {
        let truth = ExactStats::from_stream(stream.iter().copied()).f0() as f64;
        let mut hist = SampledFlowHistogram::new();
        let mut sampler = BernoulliSampler::new(p, 13);
        sampler.sample_slice(&stream, |x| hist.update(x));
        let est = FlowSizeUnfolder::new(p, 64, 300).unfold(&hist);
        let f0 = est.total_flows();
        t2.row(vec![
            name.to_string(),
            fmt_g(truth),
            fmt_g(f0),
            fmt_g((f0 / truth).max(truth / f0)),
        ]);
    }
    t2.print();

    println!(
        "\nReading: at p = 0.3 the unfolding recovers totals, mean and tail\n\
         mass; at p = 0.1 the mice (sizes 1-2, the bulk of a Pareto trace)\n\
         are mostly invisible and the flow total degrades — distribution\n\
         recovery needs p well above 1/mean-flow-size, a premise Duffield\n\
         et al. state too. On the hard pair the unfolder keeps the Theorem\n\
         4 floor company: no model structure distinguishes streams whose\n\
         samples are statistically identical."
    );
}
