//! E14 (extension) — sampling-model comparison: Bernoulli ("sampled
//! NetFlow", this paper's model) vs deterministic 1-in-N vs
//! sample-and-hold (§1.3, [22, 23]).
//!
//! Same packet trace, same nominal budget `p`. We compare (a) per-flow
//! size estimates for elephants and (b) an `F_2` estimate, under each
//! model — quantifying the trade the paper describes qualitatively:
//! sample-and-hold is sharper per elephant but holds per-flow state and
//! gives no handle on the aggregate moments machinery; Bernoulli sampling
//! supports the full estimator suite of this crate; 1-in-N mimics
//! Bernoulli on aggregates but voids the independence the guarantees
//! need.

use sss_bench::table::fmt_g;
use sss_bench::{mean, print_header, Table};
use sss_core::SampledFkEstimator;
use sss_stream::{
    BernoulliSampler, ExactStats, NetFlowStream, OneInNSampler, SampleAndHold, StreamGen,
};

fn main() {
    print_header(
        "E14 (extension): Bernoulli vs 1-in-N vs sample-and-hold (paper §1.3)",
        "Same budget, three sampling models: per-elephant accuracy vs aggregate estimation",
        "NetFlow trace n=1M, p=0.02 (1-in-50); trials=5",
    );

    let n = 1_000_000u64;
    let p = 0.02;
    let trace = NetFlowStream::new(1 << 24, 1.1, 100_000).generate(n, 21);
    let exact = ExactStats::from_stream(trace.iter().copied());
    let f2_true = exact.fk(2);
    // The ten largest flows are the elephants routers bill on.
    let mut flows: Vec<(u64, u64)> = exact.iter().collect();
    flows.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
    let elephants: Vec<(u64, u64)> = flows.into_iter().take(10).collect();

    let trials = 5u64;
    let mut per_flow = Table::new(
        "mean relative error of elephant size estimates",
        &["model", "mean rel err (top 10 flows)", "state (entries)"],
    );

    // Bernoulli: estimate flow size as sampled count / p.
    let mut bern_errs = Vec::new();
    let mut bern_state = 0.0;
    for t in 0..trials {
        let mut sampler = BernoulliSampler::new(p, 31 + t);
        let mut counts = sss_hash::fp_hash_map::<u64, u64>();
        sampler.sample_slice(&trace, |x| *counts.entry(x).or_insert(0) += 1);
        bern_state += counts.len() as f64 / trials as f64;
        for &(flow, size) in &elephants {
            let est = counts.get(&flow).copied().unwrap_or(0) as f64 / p;
            bern_errs.push((est - size as f64).abs() / size as f64);
        }
    }
    per_flow.row(vec![
        "Bernoulli (count/p)".to_string(),
        fmt_g(mean(&bern_errs)),
        fmt_g(bern_state),
    ]);

    // 1-in-N deterministic.
    let mut det_errs = Vec::new();
    let det_state;
    {
        let mut sampler = OneInNSampler::new((1.0 / p) as u64);
        let mut counts = sss_hash::fp_hash_map::<u64, u64>();
        for &x in &trace {
            if sampler.keep() {
                *counts.entry(x).or_insert(0) += 1;
            }
        }
        det_state = counts.len() as f64;
        for &(flow, size) in &elephants {
            let est = counts.get(&flow).copied().unwrap_or(0) as f64 / p;
            det_errs.push((est - size as f64).abs() / size as f64);
        }
    }
    per_flow.row(vec![
        "1-in-N (count/p)".to_string(),
        fmt_g(mean(&det_errs)),
        fmt_g(det_state),
    ]);

    // Sample-and-hold.
    let mut sh_errs = Vec::new();
    let mut sh_state = 0.0;
    for t in 0..trials {
        let mut sh = SampleAndHold::new(p, 41 + t);
        for &x in &trace {
            sh.update(x);
        }
        sh_state += sh.tracked_flows() as f64 / trials as f64;
        for &(flow, size) in &elephants {
            sh_errs.push((sh.estimate(flow) - size as f64).abs() / size as f64);
        }
    }
    per_flow.row(vec![
        "sample-and-hold".to_string(),
        fmt_g(mean(&sh_errs)),
        fmt_g(sh_state),
    ]);
    per_flow.print();

    // Aggregate estimation: Algorithm 1 under each sampling model.
    let mut agg = Table::new(
        "F2 estimation (Algorithm 1 fed by each model's sample)",
        &["model", "mean mult err", "guarantee applies"],
    );
    let mut errs = Vec::new();
    for t in 0..trials {
        let mut est = SampledFkEstimator::exact(2, p);
        let mut sampler = BernoulliSampler::new(p, 51 + t);
        sampler.sample_slice(&trace, |x| est.update(x));
        errs.push((est.estimate() / f2_true).max(f2_true / est.estimate()));
    }
    agg.row(vec![
        "Bernoulli".to_string(),
        fmt_g(mean(&errs)),
        "yes (Thm 1)".to_string(),
    ]);
    let mut errs = Vec::new();
    {
        let mut est = SampledFkEstimator::exact(2, p);
        let mut sampler = OneInNSampler::new((1.0 / p) as u64);
        for &x in &trace {
            if sampler.keep() {
                est.update(x);
            }
        }
        errs.push((est.estimate() / f2_true).max(f2_true / est.estimate()));
    }
    agg.row(vec![
        "1-in-N".to_string(),
        fmt_g(mean(&errs)),
        "no (deterministic survival)".to_string(),
    ]);
    agg.print();

    println!(
        "\nReading: sample-and-hold wins per-elephant (it counts exactly\n\
         after first sample) at similar state, but provides nothing for\n\
         aggregate moments; Bernoulli feeds the whole estimator suite with\n\
         guarantees. 1-in-N tracks Bernoulli numerically on this trace —\n\
         but its survival events are not independent, so every analysis in\n\
         the paper is void under it (shuffled flows make it behave; crafted\n\
         periodic traces break it)."
    );
}
