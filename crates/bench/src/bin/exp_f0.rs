//! E4 — `F_0` under sub-sampling: Lemma 8's `4/√p` upper bound and
//! Theorem 4's `Ω(1/√p)` lower bound.
//!
//! Part 1: Algorithm 2 (`X/√p` with a streaming `F_0(L)` sketch) across
//! rates on a benign stream — the measured multiplicative error must stay
//! below `4/√p`.
//!
//! Part 2: the Charikar-style hard pair (all-distinct vs. `n√p` values of
//! frequency `1/√p`): `F_0(L)` is statistically indistinguishable across
//! the pair, so *any* estimator — including Algorithm 2 — eats the
//! `Θ(1/√p)` gap on one side. We report Algorithm 2's error on both.

use sss_bench::table::fmt_g;
use sss_bench::{print_header, run_trials, Summary, Table};
use sss_core::{f0_lower_bound_factor, ApproxParams, SampledF0Estimator};
use sss_stream::{BernoulliSampler, ExactStats, F0HardPair, StreamGen, UniformStream};

fn main() {
    print_header(
        "E4: F0 estimation (Lemma 8 upper bound, Theorem 4 lower bound)",
        "Algorithm 2 errs by at most 4/sqrt(p); no algorithm beats Omega(1/sqrt(p))",
        "benign: uniform m=30k, n=300k; hard pair: n=200k tuned per p; trials=10",
    );

    let trials = 10;

    // Part 1: benign stream, error vs bound.
    let stream = UniformStream::new(30_000).generate(300_000, 21);
    let truth = ExactStats::from_stream(stream.iter().copied()).f0() as f64;
    let mut t1 = Table::new(
        "Algorithm 2 on a benign stream",
        &["p", "bound 4/sqrt(p)", "med mult err", "max mult err", "ok"],
    );
    for &p in &[1.0f64, 0.25, 0.0625, 0.01] {
        let errs = run_trials(trials, 400, |seed| {
            let mut est = SampledF0Estimator::new(p, 0.01, seed);
            let mut sampler = BernoulliSampler::new(p, seed ^ 0xF0);
            sampler.sample_slice(&stream, |x| est.update(x));
            ApproxParams::mult_error(est.estimate(), truth)
        });
        let s = Summary::of(&errs);
        let bound = 4.0 / p.sqrt();
        t1.row(vec![
            format!("{p}"),
            fmt_g(bound),
            fmt_g(s.median),
            fmt_g(s.max),
            (s.max <= bound).to_string(),
        ]);
    }
    t1.print();

    // Part 2: the hard pair.
    let mut t2 = Table::new(
        "hard pair: Algorithm 2's error on each side (Theorem 4)",
        &[
            "p",
            "F0(A)",
            "F0(B)",
            "gap 1/sqrt(p)",
            "err on A",
            "err on B",
            "worst",
            "lower bnd",
        ],
    );
    for &p in &[0.25f64, 0.0625, 0.01] {
        let pair = F0HardPair::new(200_000, p, 1 << 21);
        let a = pair.stream_a(5);
        let b = pair.stream_b(5);
        let f0a = ExactStats::from_stream(a.iter().copied()).f0() as f64;
        let f0b = ExactStats::from_stream(b.iter().copied()).f0() as f64;
        let err_on = |stream: &Vec<u64>, truth: f64| {
            let errs = run_trials(trials, 800, |seed| {
                let mut est = SampledF0Estimator::new(p, 0.01, seed);
                let mut sampler = BernoulliSampler::new(p, seed ^ 0xF1);
                sampler.sample_slice(stream, |x| est.update(x));
                ApproxParams::mult_error(est.estimate(), truth)
            });
            Summary::of(&errs).median
        };
        let ea = err_on(&a, f0a);
        let eb = err_on(&b, f0b);
        t2.row(vec![
            format!("{p}"),
            fmt_g(f0a),
            fmt_g(f0b),
            fmt_g(pair.gap()),
            fmt_g(ea),
            fmt_g(eb),
            fmt_g(ea.max(eb)),
            fmt_g(f0_lower_bound_factor(p)),
        ]);
    }
    t2.print();

    println!(
        "\nReading: part 1 shows the 4/sqrt(p) ceiling always holds. Part 2\n\
         shows the flip side: the same estimator is near-exact on stream B\n\
         but pays ~1/sqrt(p) on stream A, matching the Theorem 4 floor —\n\
         sub-sampled F0 error genuinely scales as 1/sqrt(p), in both\n\
         directions."
    );
}
