//! E7 — Theorem 6: `F_1` heavy hitters of the original stream via CountMin
//! on the sampled stream.
//!
//! Planted-heavy-hitter streams; for each `(p, α)` we measure recall over
//! the true heavy set `{i : f_i ≥ α·F_1}`, false positives against the
//! `(1−ε)·α·F_1` cutoff, and the relative error of the `1/p`-scaled
//! frequency estimates — plus whether the theorem's premise
//! `F_1 ≥ C·p⁻¹α⁻¹ε⁻²·log(n/δ)` holds for the cell.

use sss_bench::table::{fmt_g, fmt_pct};
use sss_bench::{print_header, Table};
use sss_stream::{BernoulliSampler, ExactStats, PlantedHeavyHitters, StreamGen};

use sss_core::SampledF1HeavyHitters;

fn main() {
    print_header(
        "E7: F1 heavy hitters from the sampled stream (Theorem 6)",
        "CountMin(alpha', eps', delta') on L + 1/p rescaling solves (alpha, eps, delta)-HH of P when F1 is large enough",
        "8 planted heavies sharing 60% over m=2^20; n=600k; eps=0.2 delta=0.05; trials=5",
    );

    let n: u64 = 600_000;
    let m: u64 = 1 << 20;
    let eps = 0.2;
    let delta = 0.05;
    let gen = PlantedHeavyHitters::new(m, 8, 0.6);
    let trials = 5u64;

    let mut table = Table::new(
        "recall / precision / frequency error",
        &[
            "alpha",
            "p",
            "premise ok",
            "recall",
            "false pos",
            "med f err",
            "space (words)",
        ],
    );

    for &alpha in &[0.05f64, 0.02] {
        for &p in &[1.0f64, 0.1, 0.01] {
            let mut recall_hits = 0u64;
            let mut recall_total = 0u64;
            let mut false_pos = 0u64;
            let mut ferrs: Vec<f64> = Vec::new();
            let mut space = 0usize;
            let mut premise_ok = true;
            for t in 0..trials {
                let stream = gen.generate(n, 100 + t);
                let stats = ExactStats::from_stream(stream.iter().copied());
                let truth: Vec<(u64, u64)> = stats.heavy_hitters_f1(alpha);
                let cutoff = (1.0 - eps) * alpha * n as f64;

                let mut hh = SampledF1HeavyHitters::new(alpha, eps, delta, p, 300 + t);
                premise_ok &= n as f64 >= hh.premise_min_f1(n);
                let mut sampler = BernoulliSampler::new(p, 500 + t);
                sampler.sample_slice(&stream, |x| hh.update(x));
                let report = hh.report();
                space = hh.space_words();

                let reported: Vec<u64> = report.iter().map(|&(i, _)| i).collect();
                for &(i, _) in &truth {
                    recall_total += 1;
                    if reported.contains(&i) {
                        recall_hits += 1;
                    }
                }
                for &(i, f_est) in &report {
                    let f_true = stats.freq(i) as f64;
                    if f_true < cutoff {
                        false_pos += 1;
                    } else {
                        ferrs.push((f_est - f_true).abs() / f_true);
                    }
                }
            }
            ferrs.sort_by(|a, b| a.total_cmp(b));
            let med_ferr = ferrs.get(ferrs.len() / 2).copied().unwrap_or(f64::NAN);
            table.row(vec![
                format!("{alpha}"),
                format!("{p}"),
                premise_ok.to_string(),
                fmt_pct(recall_hits as f64 / recall_total.max(1) as f64),
                false_pos.to_string(),
                fmt_g(med_ferr),
                space.to_string(),
            ]);
        }
    }
    table.print();

    println!(
        "\nReading: recall is 100% with zero sub-cutoff false positives in\n\
         every premise-satisfied cell, and the 1/p-scaled frequencies land\n\
         within eps of truth. Cells whose premise fails (tiny p at small\n\
         alpha·F1) are exactly where the theorem withdraws its promise."
    );
}
