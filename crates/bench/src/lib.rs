//! Experiment harness: trial orchestration, summary statistics and table
//! rendering for the per-theorem reproduction binaries (`src/bin/exp_*`).
//!
//! The paper is a theory paper — its "evaluation" is its theorems. Every
//! binary in this crate regenerates the quantitative content of one claim
//! as a table; `EXPERIMENTS.md` archives the output. All experiments are
//! deterministic: trial `t` of an experiment uses seed `base_seed + t`.

#![forbid(unsafe_code)]

pub mod stats;
pub mod table;
pub mod timing;

pub use stats::{mean, quantile, std_dev, Summary};
pub use table::Table;
pub use timing::BenchGroup;

/// Run `trials` deterministic trials and collect one `f64` metric each.
pub fn run_trials<F: FnMut(u64) -> f64>(trials: u64, base_seed: u64, mut f: F) -> Vec<f64> {
    (0..trials).map(|t| f(base_seed + t)).collect()
}

/// Standard experiment header: claim, workload, and knobs.
pub fn print_header(id: &str, claim: &str, workload: &str) {
    println!("\n=== {id} ===");
    println!("claim    : {claim}");
    println!("workload : {workload}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_trials_is_deterministic_and_seeded() {
        let a = run_trials(5, 100, |s| s as f64);
        assert_eq!(a, vec![100.0, 101.0, 102.0, 103.0, 104.0]);
    }
}
