//! Experiment harness: trial orchestration, summary statistics and table
//! rendering for the per-theorem reproduction binaries (`src/bin/exp_*`).
//!
//! The paper is a theory paper — its "evaluation" is its theorems. Every
//! binary in this crate regenerates the quantitative content of one claim
//! as a table; `EXPERIMENTS.md` archives the output. All experiments are
//! deterministic: trial `t` of an experiment uses seed `base_seed + t`.

#![forbid(unsafe_code)]

pub mod stats;
pub mod table;
pub mod timing;

/// Schema versions of the committed `BENCH_*.json` trajectory files.
///
/// Every JSON-writing bench stamps `"schema_version"` with its constant
/// here, and the `bench_schema_versions_current` test compares the
/// committed files against these values — so changing a bench's JSON
/// layout without bumping its constant *and* regenerating the committed
/// file (a full, non-`--quick` run) fails CI instead of silently letting
/// the trajectory drift from the binary that claims to produce it.
pub mod schema {
    /// `BENCH_codec.json` (written by `bench_codec`).
    pub const CODEC: u32 = 2;
    /// `BENCH_transport.json` (written by `bench_transport`).
    pub const TRANSPORT: u32 = 2;
    /// `BENCH_window.json` (written by `bench_window`). v3 pins the
    /// windowed/segmented ratio (fresh forked monitor per epoch — the
    /// warm-up-matched control) and demotes the whole-stream ratio to
    /// an informational row.
    pub const WINDOW: u32 = 3;
    /// `BENCH_ingest.json` (written by `bench_ingest`).
    pub const INGEST: u32 = 1;
    /// `BENCH_obs.json` (written by `bench_obs`).
    pub const OBS: u32 = 1;
    /// `BENCH_concurrent.json` (written by `bench_concurrent`).
    pub const CONCURRENT: u32 = 1;
}

pub use stats::{mean, quantile, std_dev, Summary};
pub use table::Table;
pub use timing::BenchGroup;

/// Run `trials` deterministic trials and collect one `f64` metric each.
pub fn run_trials<F: FnMut(u64) -> f64>(trials: u64, base_seed: u64, mut f: F) -> Vec<f64> {
    (0..trials).map(|t| f(base_seed + t)).collect()
}

/// Standard experiment header: claim, workload, and knobs.
pub fn print_header(id: &str, claim: &str, workload: &str) {
    println!("\n=== {id} ===");
    println!("claim    : {claim}");
    println!("workload : {workload}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_trials_is_deterministic_and_seeded() {
        let a = run_trials(5, 100, |s| s as f64);
        assert_eq!(a, vec![100.0, 101.0, 102.0, 103.0, 104.0]);
    }
}
