//! Summary statistics over trial outcomes.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for fewer than two values).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// The `q`-quantile (nearest-rank on a sorted copy), `q ∈ [0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let idx = ((q * (v.len() - 1) as f64).round() as usize).min(v.len() - 1);
    v[idx]
}

/// A five-number summary of a metric across trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub std: f64,
    pub median: f64,
    pub p90: f64,
    pub max: f64,
}

impl Summary {
    /// Summarise a set of trial outcomes.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            mean: mean(xs),
            std: std_dev(xs),
            median: quantile(xs, 0.5),
            p90: quantile(xs, 0.9),
            max: xs.iter().copied().fold(0.0f64, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((std_dev(&xs) - 1.2909944).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
    }
}
