//! Minimal aligned-table renderer for experiment output.

/// A printable table with a title and aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("-- {} --\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 4 significant digits (scientific for extremes).
pub fn fmt_g(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let a = x.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{x:.3e}")
    } else if a >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

/// Format a ratio as a percentage with 2 decimals.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["a", "long_header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["100".into(), "x".into(), "yy".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long_header"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_g(0.0), "0");
        assert!(fmt_g(1234567.0).contains('e'));
        assert_eq!(fmt_pct(0.1234), "12.34%");
    }
}
