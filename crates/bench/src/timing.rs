//! Minimal dependency-free benchmark harness (the container carries no
//! criterion; benches are `harness = false` binaries built on this).
//!
//! Usage pattern:
//!
//! ```no_run
//! let mut b = sss_bench::timing::BenchGroup::new("sketch_update", 100_000);
//! b.bench("countmin", || {
//!     // ... do 100_000 elements of work, return something observable
//!     42u64
//! });
//! ```
//!
//! Each closure runs once to warm up, then `REPS` timed repetitions; the
//! report is the **median** per-element time (robust to scheduler noise)
//! plus min, and throughput in Melem/s. The closure's return value is
//! written through [`std::hint::black_box`] so the work cannot be
//! optimised away.

use std::hint::black_box;
use std::time::Instant;

/// Timed repetitions per benchmark (after one warm-up run).
pub const REPS: usize = 7;

/// A group of benchmarks over workloads of a fixed element count.
pub struct BenchGroup {
    name: String,
    elements: u64,
    /// Collected `(label, median ns/elem, min ns/elem)` rows.
    results: Vec<(String, f64, f64)>,
}

impl BenchGroup {
    /// A group whose benchmarks each process `elements` elements per run.
    pub fn new(name: &str, elements: u64) -> Self {
        println!("\n== {name} ({elements} elements/run, median of {REPS} runs) ==");
        println!(
            "{:<36} {:>12} {:>12} {:>12}",
            "benchmark", "ns/elem", "min", "Melem/s"
        );
        Self {
            name: name.to_string(),
            elements,
            results: Vec::new(),
        }
    }

    /// Run one benchmark: warm up once, then time `REPS` repetitions of
    /// `f` and report per-element cost.
    pub fn bench<T, F: FnMut() -> T>(&mut self, label: &str, mut f: F) {
        black_box(f()); // warm-up: page in code and data
        let mut times: Vec<f64> = (0..REPS)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed().as_nanos() as f64 / self.elements as f64
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        let min = times[0];
        println!(
            "{label:<36} {median:>12.2} {min:>12.2} {:>12.1}",
            1e3 / median
        );
        self.results.push((label.to_string(), median, min));
    }

    /// The recorded `(label, median ns/elem, min ns/elem)` rows.
    pub fn results(&self) -> &[(String, f64, f64)] {
        &self.results
    }

    /// Median ns/elem of a recorded benchmark (panics if absent).
    pub fn median_of(&self, label: &str) -> f64 {
        self.results
            .iter()
            .find(|(l, _, _)| l == label)
            .unwrap_or_else(|| panic!("no benchmark '{label}' in group '{}'", self.name))
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_results() {
        let mut g = BenchGroup::new("selftest", 1000);
        g.bench("noop_sum", || (0..1000u64).sum::<u64>());
        assert_eq!(g.results().len(), 1);
        assert!(g.median_of("noop_sum") >= 0.0);
    }
}
