//! Cost of the Bernoulli sampling layer itself: per-element coin flips vs
//! the skip-based geometric sampler (whose cost is per *sampled* element —
//! the enabler of the §1.2 sub-linear total-work claim).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sss_stream::{BernoulliSampler, StreamGen, UniformStream};

const N: u64 = 1_000_000;

fn bench_sampler(c: &mut Criterion) {
    let stream = UniformStream::new(1 << 20).generate(N, 42);
    let mut g = c.benchmark_group("bernoulli_sampler");
    g.throughput(Throughput::Elements(N));

    for &p in &[0.5f64, 0.01] {
        g.bench_function(format!("skip_based_p{p}"), |b| {
            b.iter(|| {
                let mut s = BernoulliSampler::new(p, 7);
                let mut count = 0u64;
                s.sample_slice(&stream, |x| {
                    count += black_box(x) & 1;
                });
                black_box(count)
            })
        });

        g.bench_function(format!("per_item_flip_p{p}"), |b| {
            b.iter(|| {
                let mut s = BernoulliSampler::new(p, 7);
                let mut count = 0u64;
                for &x in &stream {
                    if s.keep() {
                        count += black_box(x) & 1;
                    }
                }
                black_box(count)
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_sampler);
criterion_main!(benches);
