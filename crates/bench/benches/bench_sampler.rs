//! Cost of the Bernoulli sampling layer itself: per-element coin flips vs
//! the skip-based geometric sampler (whose cost is per *sampled* element —
//! the enabler of the §1.2 sub-linear total-work claim), plus the batched
//! feed.

use sss_bench::BenchGroup;
use sss_stream::{BernoulliSampler, StreamGen, UniformStream};
use std::hint::black_box;

const N: u64 = 1_000_000;

fn main() {
    let stream = UniformStream::new(1 << 20).generate(N, 42);
    let mut g = BenchGroup::new("bernoulli_sampler", N);

    for &p in &[0.5f64, 0.01] {
        g.bench(&format!("skip_based_p{p}"), || {
            let mut s = BernoulliSampler::new(p, 7);
            let mut count = 0u64;
            s.sample_slice(&stream, |x| {
                count += black_box(x) & 1;
            });
            count
        });

        g.bench(&format!("batched_4096_p{p}"), || {
            let mut s = BernoulliSampler::new(p, 7);
            let mut count = 0u64;
            s.sample_batches(&stream, 4096, |chunk| {
                for &x in chunk {
                    count += black_box(x) & 1;
                }
            });
            count
        });

        g.bench(&format!("per_item_flip_p{p}"), || {
            let mut s = BernoulliSampler::new(p, 7);
            let mut count = 0u64;
            for &x in &stream {
                if s.keep() {
                    count += black_box(x) & 1;
                }
            }
            count
        });
    }
}
