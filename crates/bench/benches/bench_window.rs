//! Windowed-monitor overhead and query-fold latency, with
//! machine-readable results written to `BENCH_window.json` at the
//! workspace root.
//!
//! ```text
//! cargo bench --bench bench_window            # full workload
//! cargo bench --bench bench_window -- --quick # CI smoke
//! ```
//!
//! Two questions:
//!
//! * **Ingest overhead** — a [`WindowedMonitor`] routes every batch to
//!   its epoch bucket (clock check + binary search over the live ring +
//!   rollover bookkeeping) before the same `Monitor::update_batch` hot
//!   path runs. The controlled baseline is **segmented**: one fresh
//!   forked monitor per epoch, fed the identical survivor segments, so
//!   both sides pay the same per-bucket warm-up (cold duplicate filter,
//!   reservoir fill, bottom-k fill) and the ratio isolates the window
//!   machinery itself. A scalar fallback in the windowed path would
//!   blow straight past the pin. The acceptance target: windowed ingest
//!   stays within **1.3×** of the segmented baseline. A whole-stream
//!   monitor is also timed as an informational row — the batch kernels
//!   amortise warm-up over stream length, so that ratio conflates
//!   windowing cost with bucket-size effects and is not pinned.
//! * **Query-fold latency** — answering a window query clones the
//!   prototype and merges every live bucket, so cost scales with the
//!   bucket count; measured at 1, 2, 4 and 8 live buckets.

use sss_bench::BenchGroup;
use sss_core::{Monitor, MonitorBuilder, Statistic};
use sss_stream::{BernoulliSampler, StreamGen, ZipfStream};
use sss_window::{WindowConfig, WindowedMonitor};

const P: f64 = 0.25;
const BATCH: usize = 4096;
const EPOCHS: u64 = 8;
const BUCKETS: usize = 4;

fn prototype() -> Monitor {
    MonitorBuilder::with_seed(P, 7)
        .f0(0.05)
        .fk(2)
        .entropy(512)
        .build()
}

/// Survivors of a dense unit-tick zipf trace, grouped by epoch so the
/// windowed path ingests epoch-aligned batches (the natural shape for
/// `ingest_batch_at`: one timestamp per chunk).
fn epoch_batches(n: u64, span: u64) -> Vec<(u64, Vec<u64>)> {
    let stream = ZipfStream::new(1 << 16, 1.2).generate(n, 42);
    let mut batches: Vec<(u64, Vec<u64>)> = Vec::new();
    let mut sampler = BernoulliSampler::new(P, 43);
    sampler.sample_indexed(&stream, |i, x| {
        let ts = i as u64;
        match batches.last_mut() {
            Some((first, xs)) if *first / span == ts / span => xs.push(x),
            _ => batches.push((ts, vec![x])),
        }
    });
    batches
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Epochs must stay large even in --quick: each fresh bucket re-pays
    // its estimators' fill phase (bottom-k heap, entropy reservoir), so
    // tiny epochs overstate the amortised windowing overhead.
    let n: u64 = if quick { 800_000 } else { 2_000_000 };
    let span = n / EPOCHS; // dense unit ticks → 8 epochs, window of 4

    let batches = epoch_batches(n, span);
    let survivors: u64 = batches.iter().map(|(_, xs)| xs.len() as u64).sum();
    let flat: Vec<u64> = batches
        .iter()
        .flat_map(|(_, xs)| xs.iter().copied())
        .collect();

    let mut g = BenchGroup::new("windowed_ingestion", survivors);
    g.bench("monitor_update_batch", || {
        let mut m = prototype();
        for chunk in flat.chunks(BATCH) {
            m.update_batch(chunk);
        }
        m.samples_seen()
    });
    g.bench("segmented_monitor_update_batch", || {
        let proto = prototype();
        let mut acc = 0u64;
        for (ts, xs) in &batches {
            let mut m = proto.fork_shard(*ts / span);
            for chunk in xs.chunks(BATCH) {
                m.update_batch(chunk);
            }
            acc += m.samples_seen();
        }
        acc
    });
    g.bench("windowed_ingest_batch", || {
        let mut w = WindowedMonitor::new(prototype(), WindowConfig::new(BUCKETS, span));
        for (ts, xs) in &batches {
            for chunk in xs.chunks(BATCH) {
                w.ingest_batch_at(*ts, chunk);
            }
        }
        w.total_ingested()
    });
    g.bench("windowed_ingest_at_per_item", || {
        let mut w = WindowedMonitor::new(prototype(), WindowConfig::new(BUCKETS, span));
        for (ts, xs) in &batches {
            for &x in xs {
                w.ingest_at(*ts, x);
            }
        }
        w.total_ingested()
    });

    let whole_stream = g.median_of("monitor_update_batch");
    let segmented = g.median_of("segmented_monitor_update_batch");
    let windowed = g.median_of("windowed_ingest_batch");
    let ratio = windowed / segmented;
    let whole_ratio = windowed / whole_stream;
    println!(
        "\nwindowed/segmented ingest ratio: {ratio:.3}x (target <= 1.3x; \
         vs whole-stream monitor: {whole_ratio:.3}x, informational)"
    );
    assert!(
        ratio <= 1.3,
        "windowed ingest {windowed:.2} ns/elem exceeds 1.3x the segmented \
         baseline's {segmented:.2} ns/elem"
    );

    // Query-fold latency as the live ring grows: fill `b` epochs of a
    // `b`-bucket window, then time fold + one estimate. Elements = 1 so
    // ns/elem IS ns/fold.
    let fold_n: u64 = if quick { 40_000 } else { 400_000 };
    let mut f = BenchGroup::new("window_query_fold", 1);
    let mut fold_rows: Vec<(usize, f64)> = Vec::new();
    for buckets in [1usize, 2, 4, 8] {
        let fold_span = fold_n / buckets as u64;
        let mut w = WindowedMonitor::new(prototype(), WindowConfig::new(buckets, fold_span));
        for (ts, xs) in epoch_batches(fold_n, fold_span) {
            w.ingest_batch_at(ts, &xs);
        }
        assert_eq!(w.live_buckets(), buckets, "ring must be full");
        let label = format!("fold_{buckets}_buckets");
        f.bench(&label, || {
            let fold = w.fold();
            fold.estimate(Statistic::F0)
                .expect("registered")
                .value
                .to_bits()
        });
        fold_rows.push((buckets, f.median_of(&label)));
    }

    // Machine-readable trajectory datapoint (hand-rolled JSON: the
    // workspace is dependency-free by contract).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"window\",\n");
    json.push_str(&format!(
        "  \"schema_version\": {},\n",
        sss_bench::schema::WINDOW
    ));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"stream_elements\": {n},\n"));
    json.push_str(&format!("  \"sampling_rate\": {P},\n"));
    json.push_str(&format!("  \"survivors\": {survivors},\n"));
    json.push_str(&format!("  \"epochs\": {EPOCHS},\n"));
    json.push_str(&format!("  \"window_buckets\": {BUCKETS},\n"));
    json.push_str("  \"ingest\": {\n");
    json.push_str(&format!(
        "    \"monitor_update_batch_ns_per_elem\": {whole_stream:.2},\n"
    ));
    json.push_str(&format!(
        "    \"segmented_monitor_ns_per_elem\": {segmented:.2},\n"
    ));
    json.push_str(&format!(
        "    \"windowed_ingest_batch_ns_per_elem\": {windowed:.2},\n"
    ));
    json.push_str(&format!(
        "    \"windowed_ingest_at_ns_per_elem\": {:.2},\n",
        g.median_of("windowed_ingest_at_per_item")
    ));
    json.push_str(&format!("    \"windowed_over_plain\": {ratio:.3},\n"));
    json.push_str(&format!(
        "    \"windowed_over_whole_stream\": {whole_ratio:.3},\n"
    ));
    json.push_str("    \"target_max_ratio\": 1.3\n");
    json.push_str("  },\n");
    json.push_str("  \"query_fold\": [\n");
    for (i, (buckets, ns)) in fold_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"live_buckets\": {buckets}, \"ns_per_fold\": {ns:.0}}}{}\n",
            if i + 1 == fold_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    // The committed trajectory datapoint comes from the full workload;
    // the --quick CI smoke must not clobber it.
    if quick {
        println!("\n--quick: skipping BENCH_window.json write");
    } else {
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_window.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }
}
