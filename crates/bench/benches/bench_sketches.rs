//! Per-update throughput of every sketch substrate — the constant behind
//! the paper's `Õ(1)` per-sampled-item processing cost (§1.2) — with the
//! batched (row/copy-major) paths alongside the per-item ones.

use sss_bench::BenchGroup;
use sss_sketch::{AmsF2, CountMin, CountSketch, HyperLogLog, KmvSketch, MisraGries, SpaceSaving};
use sss_stream::{StreamGen, ZipfStream};

const N: u64 = 100_000;

fn main() {
    let stream = ZipfStream::new(1 << 16, 1.2).generate(N, 42);
    let mut g = BenchGroup::new("sketch_update", N);

    g.bench("countmin_5x1024", || {
        let mut cm = CountMin::new(5, 1024, 7);
        for &x in &stream {
            cm.update(x, 1);
        }
        cm.total()
    });

    g.bench("countmin_5x1024_batched", || {
        let mut cm = CountMin::new(5, 1024, 7);
        for chunk in stream.chunks(4096) {
            cm.update_batch(chunk);
        }
        cm.total()
    });

    g.bench("countsketch_5x1024", || {
        let mut cs = CountSketch::new(5, 1024, 7);
        for &x in &stream {
            cs.update(x, 1);
        }
        cs.total()
    });

    g.bench("countsketch_5x1024_batched", || {
        let mut cs = CountSketch::new(5, 1024, 7);
        for chunk in stream.chunks(4096) {
            cs.update_batch(chunk);
        }
        cs.total()
    });

    g.bench("misra_gries_256", || {
        let mut mg = MisraGries::new(256);
        for &x in &stream {
            mg.update(x);
        }
        mg.n()
    });

    g.bench("space_saving_256", || {
        let mut ss = SpaceSaving::new(256);
        for &x in &stream {
            ss.update(x);
        }
        ss.n()
    });

    g.bench("ams_7x64", || {
        let mut ams = AmsF2::new(7, 64, 7);
        for &x in &stream {
            ams.update(x, 1);
        }
        ams.estimate()
    });

    g.bench("ams_7x64_batched", || {
        let mut ams = AmsF2::new(7, 64, 7);
        for chunk in stream.chunks(4096) {
            ams.update_batch(chunk);
        }
        ams.estimate()
    });

    g.bench("kmv_1024", || {
        let mut kmv = KmvSketch::new(1024, 7);
        for &x in &stream {
            kmv.update(x);
        }
        kmv.estimate()
    });

    g.bench("hll_p12", || {
        let mut hll = HyperLogLog::new(12, 7);
        for &x in &stream {
            hll.update(x);
        }
        hll.estimate()
    });
}
