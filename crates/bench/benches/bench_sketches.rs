//! Per-update throughput of every sketch substrate — the constant behind
//! the paper's `Õ(1)` per-sampled-item processing cost (§1.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sss_sketch::{
    AmsF2, CountMin, CountSketch, HyperLogLog, KmvSketch, MisraGries, SpaceSaving,
};
use sss_stream::{StreamGen, ZipfStream};

const N: u64 = 100_000;

fn workload() -> Vec<u64> {
    ZipfStream::new(1 << 16, 1.2).generate(N, 42)
}

fn bench_sketch_updates(c: &mut Criterion) {
    let stream = workload();
    let mut g = c.benchmark_group("sketch_update");
    g.throughput(Throughput::Elements(N));

    g.bench_function("countmin_5x1024", |b| {
        b.iter(|| {
            let mut cm = CountMin::new(5, 1024, 7);
            for &x in &stream {
                cm.update(black_box(x), 1);
            }
            black_box(cm.total())
        })
    });

    g.bench_function("countsketch_5x1024", |b| {
        b.iter(|| {
            let mut cs = CountSketch::new(5, 1024, 7);
            for &x in &stream {
                cs.update(black_box(x), 1);
            }
            black_box(cs.total())
        })
    });

    g.bench_function("misra_gries_256", |b| {
        b.iter(|| {
            let mut mg = MisraGries::new(256);
            for &x in &stream {
                mg.update(black_box(x));
            }
            black_box(mg.n())
        })
    });

    g.bench_function("space_saving_256", |b| {
        b.iter(|| {
            let mut ss = SpaceSaving::new(256);
            for &x in &stream {
                ss.update(black_box(x));
            }
            black_box(ss.n())
        })
    });

    g.bench_function("ams_7x64", |b| {
        b.iter(|| {
            let mut ams = AmsF2::new(7, 64, 7);
            for &x in &stream {
                ams.update(black_box(x), 1);
            }
            black_box(ams.estimate())
        })
    });

    g.bench_function("kmv_1024", |b| {
        b.iter(|| {
            let mut kmv = KmvSketch::new(1024, 7);
            for &x in &stream {
                kmv.update(black_box(x));
            }
            black_box(kmv.estimate())
        })
    });

    g.bench_function("hll_p12", |b| {
        b.iter(|| {
            let mut hll = HyperLogLog::new(12, 7);
            for &x in &stream {
                hll.update(black_box(x));
            }
            black_box(hll.estimate())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_sketch_updates);
criterion_main!(benches);
