//! Batch-ingestion trajectory: scalar per-item `update` vs the
//! structure-of-arrays `update_batch` hot path, per estimator and for the
//! full monitor, with machine-readable results written to
//! `BENCH_ingest.json` at the workspace root.
//!
//! ```text
//! cargo bench --bench bench_ingest            # full workload, writes JSON
//! cargo bench --bench bench_ingest -- --quick # CI smoke
//! ```
//!
//! The scalar paths are the reference implementation (one hash evaluation
//! per row per item); the batch paths reduce each chunk into the hash
//! field once, run the SWAR lane kernels over the whole chunk, and sweep
//! the sketch grids row-major. Both produce bitwise-identical state — the
//! equivalence batteries in `sss-sketch` pin that — so this bench is pure
//! like-for-like throughput. Acceptance: the full monitor's batch path is
//! at least **4×** its scalar path (3× under `--quick`, where the short
//! workload inflates fixed costs).

use sss_bench::{schema, BenchGroup};
use sss_core::{Monitor, MonitorBuilder};
use sss_stream::{BernoulliSampler, StreamGen, ZipfStream};

const P: f64 = 0.25;
const BATCH: usize = 4096;

/// The standard four-estimator monitor — same config as `bench_monitor`,
/// so its historical numbers are directly comparable.
fn full_monitor() -> Monitor {
    MonitorBuilder::with_seed(P, 7)
        .f0(0.05)
        .fk(2)
        .entropy(512)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .build()
}

/// A monitor carrying one estimator, to isolate its ingestion cost.
fn single_monitor(which: &str) -> Monitor {
    let b = MonitorBuilder::with_seed(P, 7);
    match which {
        "f0" => b.f0(0.05),
        "fk2" => b.fk(2),
        "entropy" => b.entropy(512),
        "f1_heavy_hitters" => b.f1_heavy_hitters(0.05, 0.2, 0.05),
        other => unreachable!("unknown estimator {other}"),
    }
    .build()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: u64 = if quick { 120_000 } else { 400_000 };
    let target = if quick { 3.0 } else { 4.0 };

    let stream = ZipfStream::new(1 << 16, 1.2).generate(n, 42);
    let sampled = BernoulliSampler::new(P, 43).sample_to_vec(&stream);
    let survivors = sampled.len() as u64;

    // Per-estimator scalar vs batch.
    let names = ["f0", "fk2", "entropy", "f1_heavy_hitters"];
    let mut g = BenchGroup::new("estimator_ingestion", survivors);
    let mut rows: Vec<(&str, f64, f64)> = Vec::new();
    for name in names {
        let scalar_label = format!("{name}_scalar");
        let batch_label = format!("{name}_batch_{BATCH}");
        g.bench(&scalar_label, || {
            let mut m = single_monitor(name);
            for &x in &sampled {
                m.update(x);
            }
            m.samples_seen()
        });
        g.bench(&batch_label, || {
            let mut m = single_monitor(name);
            for chunk in sampled.chunks(BATCH) {
                m.update_batch(chunk);
            }
            m.samples_seen()
        });
        rows.push((name, g.median_of(&scalar_label), g.median_of(&batch_label)));
    }

    // The full monitor, scalar vs batch — the acceptance metric.
    let mut m = BenchGroup::new("monitor_ingestion", survivors);
    m.bench("monitor_scalar", || {
        let mut mon = full_monitor();
        for &x in &sampled {
            mon.update(x);
        }
        mon.samples_seen()
    });
    m.bench(&format!("monitor_batch_{BATCH}"), || {
        let mut mon = full_monitor();
        for chunk in sampled.chunks(BATCH) {
            mon.update_batch(chunk);
        }
        mon.samples_seen()
    });

    let scalar = m.median_of("monitor_scalar");
    let batch = m.median_of(&format!("monitor_batch_{BATCH}"));
    let speedup = scalar / batch;
    println!("\nmonitor batch speedup over scalar: {speedup:.2}x (target >= {target}x)");
    assert!(
        speedup >= target,
        "batch ingestion at {batch:.2} ns/elem is only {speedup:.2}x the scalar \
         path's {scalar:.2} ns/elem (target {target}x)"
    );

    // Machine-readable trajectory datapoint (hand-rolled JSON: the
    // workspace is dependency-free by contract).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ingest\",\n");
    json.push_str(&format!("  \"schema_version\": {},\n", schema::INGEST));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"stream_elements\": {n},\n"));
    json.push_str(&format!("  \"sampling_rate\": {P},\n"));
    json.push_str(&format!("  \"survivors\": {survivors},\n"));
    json.push_str(&format!("  \"batch_size\": {BATCH},\n"));
    json.push_str("  \"estimators\": [\n");
    for (i, (name, s, b)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"scalar_ns_per_elem\": {s:.2}, \
             \"batch_ns_per_elem\": {b:.2}, \"speedup\": {:.2}}}{}\n",
            s / b,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"monitor\": {\n");
    json.push_str(&format!("    \"scalar_ns_per_elem\": {scalar:.2},\n"));
    json.push_str(&format!("    \"batch_ns_per_elem\": {batch:.2},\n"));
    json.push_str(&format!("    \"speedup\": {speedup:.2},\n"));
    json.push_str("    \"target_min_speedup\": 4.0\n");
    json.push_str("  }\n}\n");

    // The committed trajectory datapoint comes from the full workload;
    // the --quick CI smoke must not clobber it.
    if quick {
        println!("\n--quick: skipping BENCH_ingest.json write");
    } else {
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_ingest.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }
}
