//! Parallel-ingestion trajectory: shared-atomic `ConcurrentMonitor` vs
//! replicated `ShardedMonitor` on the grid substrates, across thread
//! counts, with machine-readable results written to
//! `BENCH_concurrent.json` at the workspace root.
//!
//! ```text
//! cargo bench --bench bench_concurrent            # full workload, writes JSON
//! cargo bench --bench bench_concurrent -- --quick # CI smoke
//! ```
//!
//! Both pipelines race the same prototype — the CountMin (`F_1`) and
//! CountSketch (`F_2`) heavy-hitter substrates, the two that
//! `ParallelStrategy::Auto` routes to shared-atomic grids — over the
//! standard 400k-element Zipf workload. Throughput rows are measured;
//! the memory rows are structural: the sharded pipeline forks one full
//! monitor replica per worker (`threads x` the prototype's sketch
//! bytes), while the shared-atomic grids are a single allocation the
//! size of the prototype's, whatever the thread count (`AtomicU64`
//! cells are layout-identical to the plain grids' `u64`s). The
//! `speedup >= 3x at 8 threads` acceptance gate is enforced only when
//! the host actually has 8 hardware threads; on smaller boxes the bench
//! records honest (flat) curves and says so in the JSON.

use std::sync::Arc;

use sss_bench::{schema, BenchGroup};
use sss_core::{
    ConcurrentConfig, ConcurrentMonitor, Monitor, MonitorBuilder, ShardedConfig, ShardedMonitor,
};
use sss_stream::{StreamGen, ZipfStream};

const P: f64 = 0.25;
const SAMPLER_SEED: u64 = 43;
/// Small enough that every worker gets several round-robin chunks even
/// at 16 threads on the quick workload.
const DISPATCH_CHUNK: usize = 8192;

/// The grid-substrate prototype: both entries route to shared-atomic
/// grids under `ParallelStrategy::Auto`, so this isolates the
/// one-shared-state-vs-N-replicas comparison the bench is about.
fn grid_proto() -> Monitor {
    MonitorBuilder::with_seed(P, 7)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .f2_heavy_hitters(0.4, 0.2, 0.05)
        .build()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: u64 = if quick { 120_000 } else { 400_000 };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8, 16] };
    let hw = std::thread::available_parallelism().map_or(1, |c| c.get());

    let stream = Arc::new(ZipfStream::new(1 << 16, 1.2).generate(n, 42));
    let proto_bytes = grid_proto().space_bytes();

    // ns/elem is normalised by the *dispatched* stream length: both
    // pipelines sample internally, so this is end-to-end ingest cost.
    let mut g = BenchGroup::new("parallel_ingestion", n);
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    for &t in thread_counts {
        let conc_label = format!("concurrent_t{t}");
        let shard_label = format!("sharded_t{t}");
        g.bench(&conc_label, || {
            let mut cfg = ConcurrentConfig::new(t);
            cfg.dispatch_chunk = DISPATCH_CHUNK;
            let mut cm = ConcurrentMonitor::launch(&grid_proto(), SAMPLER_SEED, cfg);
            cm.ingest_shared(&stream);
            cm.finish().samples_seen()
        });
        g.bench(&shard_label, || {
            let mut cfg = ShardedConfig::new(t);
            cfg.dispatch_chunk = DISPATCH_CHUNK;
            let mut sm = ShardedMonitor::launch(&grid_proto(), SAMPLER_SEED, cfg);
            sm.ingest_shared(&stream);
            sm.finish().samples_seen()
        });
        rows.push((t, g.median_of(&conc_label), g.median_of(&shard_label)));
    }

    let conc_t1 = rows[0].1;
    println!("\nthreads  concurrent ns/e  sharded ns/e  conc speedup vs t1  sketch bytes (conc / sharded)");
    for &(t, c, s) in &rows {
        println!(
            "{t:>7}  {c:>15.2}  {s:>12.2}  {:>18.2}  {proto_bytes} / {}",
            conc_t1 / c,
            proto_bytes * t
        );
    }

    // Acceptance: >= 3x over single-thread at 8 threads — a statement
    // about cores, so only enforceable where 8 cores exist. The memory
    // side needs no cores: shared grids are one prototype-sized
    // allocation at every thread count, vs the sharded pipeline's
    // threads x replicas.
    let speedup_at_8 = rows
        .iter()
        .find(|&&(t, _, _)| t == 8)
        .map(|&(_, c, _)| conc_t1 / c);
    if hw >= 8 {
        let s8 = speedup_at_8.expect("full run benches 8 threads");
        assert!(
            s8 >= 3.0,
            "concurrent ingest at 8 threads is only {s8:.2}x single-thread (target 3x)"
        );
    } else {
        println!(
            "\nhost has {hw} hardware thread(s): the 3x-at-8-threads gate needs 8 cores; \
             recording honest scaling curves without enforcing it"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"concurrent\",\n");
    json.push_str(&format!("  \"schema_version\": {},\n", schema::CONCURRENT));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"stream_elements\": {n},\n"));
    json.push_str(&format!("  \"sampling_rate\": {P},\n"));
    json.push_str(&format!("  \"dispatch_chunk\": {DISPATCH_CHUNK},\n"));
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str(&format!(
        "  \"hardware_note\": \"measured on a {hw}-hardware-thread host: thread counts above \
         {hw} time-slice one core, so the throughput curves are flat by construction and the \
         3x-at-8-threads target is not enforceable here; the memory column is structural and \
         host-independent\",\n"
    ));
    json.push_str(&format!(
        "  \"grid_monitor_sketch_bytes\": {proto_bytes},\n"
    ));
    json.push_str("  \"scaling\": [\n");
    for (i, &(t, c, s)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {t}, \"concurrent_ns_per_elem\": {c:.2}, \
             \"sharded_ns_per_elem\": {s:.2}, \"concurrent_speedup_vs_t1\": {:.2}, \
             \"concurrent_sketch_bytes\": {proto_bytes}, \"sharded_sketch_bytes\": {}, \
             \"memory_ratio_sharded_over_concurrent\": {t}}}{}\n",
            conc_t1 / c,
            proto_bytes * t,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"acceptance\": {\n");
    json.push_str("    \"target_min_speedup_at_8_threads\": 3.0,\n");
    json.push_str(&format!(
        "    \"speedup_at_8_threads\": {},\n",
        speedup_at_8.map_or("null".into(), |s| format!("{s:.2}"))
    ));
    json.push_str(&format!("    \"enforced\": {}\n", hw >= 8));
    json.push_str("  }\n}\n");

    // The committed trajectory datapoint comes from the full workload;
    // the --quick CI smoke must not clobber it.
    if quick {
        println!("\n--quick: skipping BENCH_concurrent.json write");
    } else {
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_concurrent.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }
}
