//! The batched monitor hot path: per-item `Monitor::update` (one virtual
//! dispatch per estimator per element) vs `Monitor::update_batch` (one
//! dispatch per estimator per chunk, estimator state cache-resident for
//! the whole chunk). Also times the underlying per-estimator batch paths
//! in isolation.

use sss_bench::BenchGroup;
use sss_core::{MonitorBuilder, SampledF0Estimator, SubsampledEstimator};
use sss_stream::{BernoulliSampler, StreamGen, ZipfStream};

const N: u64 = 400_000;
const BATCH: usize = 4096;

fn build_monitor(p: f64) -> sss_core::Monitor {
    MonitorBuilder::with_seed(p, 7)
        .f0(0.05)
        .fk(2)
        .entropy(512)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .build()
}

fn main() {
    let p = 0.25;
    let stream = ZipfStream::new(1 << 16, 1.2).generate(N, 42);
    let sampled = BernoulliSampler::new(p, 43).sample_to_vec(&stream);

    let mut g = BenchGroup::new("monitor_ingestion", sampled.len() as u64);

    g.bench("update_per_item", || {
        let mut m = build_monitor(p);
        for &x in &sampled {
            m.update(x);
        }
        m.samples_seen()
    });

    g.bench(&format!("update_batch_{BATCH}"), || {
        let mut m = build_monitor(p);
        for chunk in sampled.chunks(BATCH) {
            m.update_batch(chunk);
        }
        m.samples_seen()
    });

    g.bench("sampler_feed_batched", || {
        let mut m = build_monitor(p);
        let mut sampler = BernoulliSampler::new(p, 43);
        sampler.sample_batches(&stream, BATCH, |chunk| m.update_batch(chunk));
        m.samples_seen()
    });

    let speedup = g.median_of("update_per_item") / g.median_of(&format!("update_batch_{BATCH}"));
    println!("\nbatch speedup over per-item: {speedup:.2}x");

    // Isolated substrate: the F0 estimator's copy-major batch loop.
    let mut s = BenchGroup::new("f0_estimator_ingestion", sampled.len() as u64);
    s.bench("f0_update_per_item", || {
        let mut est = SampledF0Estimator::new(p, 0.05, 7);
        for &x in &sampled {
            est.update(x);
        }
        est.samples_seen()
    });
    s.bench("f0_update_batch", || {
        let mut est = SampledF0Estimator::new(p, 0.05, 7);
        for chunk in sampled.chunks(BATCH) {
            SubsampledEstimator::update_batch(&mut est, chunk);
        }
        est.samples_seen()
    });
}
