//! Snapshot-transport throughput over loopback TCP, with
//! machine-readable results written to `BENCH_transport.json` next to
//! `BENCH_codec.json` at the workspace root.
//!
//! ```text
//! cargo bench --bench bench_transport            # full workload
//! cargo bench --bench bench_transport -- --quick # CI smoke
//! ```
//!
//! Each measured push is the complete production round trip: client
//! frames and writes the snapshot, collector pre-validates the header,
//! checksums the payload, decodes the monitor through the codec
//! registry, proves mergeability against its prototype, stores it and
//! acks — so frames/s here is *accepted collector throughput*, not raw
//! socket bandwidth. Scenarios cover a small snapshot (F0-only
//! monitor), the full five-statistic monitor, and four sites pushing
//! the full snapshot concurrently.

use std::time::{Duration, Instant};

use sss_core::{Monitor, MonitorBuilder};
use sss_stream::{BernoulliSampler, StreamGen, ZipfStream};
use sss_transport::{ClientConfig, CollectorServer, ServerConfig, SiteClient};

const P: f64 = 0.25;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

fn small_prototype() -> Monitor {
    MonitorBuilder::with_seed(P, 7).f0(0.05).build()
}

fn full_prototype() -> Monitor {
    MonitorBuilder::with_seed(P, 7)
        .f0(0.05)
        .fk(2)
        .entropy(2000)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .f2_heavy_hitters(0.3, 0.2, 0.05)
        .build()
}

fn ingested(mut monitor: Monitor, n: u64) -> Monitor {
    let stream = ZipfStream::new(1 << 14, 1.2).generate(n, 42);
    let mut sampler = BernoulliSampler::new(P, 43);
    sampler.sample_batches(&stream, 1024, |c| monitor.update_batch(c));
    monitor
}

struct Row {
    scenario: &'static str,
    snapshot_bytes: usize,
    sites: usize,
    ns_per_push: f64,
    frames_per_s: f64,
    mib_per_s: f64,
    /// Mean wire bytes per steady-state delta push (delta scenario only).
    delta_bytes_per_push: Option<f64>,
}

/// `sites` clients each push `pushes` snapshots; returns median
/// per-push wall time across `runs` repetitions (aggregate across
/// sites: total pushes / total wall time).
fn bench_scenario(
    scenario: &'static str,
    prototype: &Monitor,
    snapshot: &[u8],
    sites: usize,
    pushes: usize,
    runs: usize,
) -> Row {
    let server = CollectorServer::bind("127.0.0.1:0", prototype.clone(), ServerConfig::default())
        .expect("bind");
    let addr = server.local_addr();

    let mut per_push_ns = Vec::new();
    for run in 0..runs + 1 {
        // Connect + handshake OUTSIDE the timed region (accept latency
        // is bounded by the server's poll interval and would otherwise
        // drown small-snapshot numbers); a barrier releases all sites
        // into their push loops at once.
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(sites + 1));
        let handles: Vec<_> = (0..sites)
            .map(|s| {
                let snapshot = snapshot.to_vec();
                let barrier = std::sync::Arc::clone(&barrier);
                // Fresh site ids per run keep per-site stats rows
                // separate (re-used ids would also work — the hello
                // ack resumes the sequence).
                let site_id = (run * sites + s) as u64;
                std::thread::spawn(move || {
                    let mut cfg = ClientConfig::new(site_id, format!("bench-{site_id}"));
                    cfg.ack_timeout = Duration::from_secs(30);
                    let mut client = SiteClient::connect(addr, cfg).expect("connect");
                    barrier.wait();
                    for _ in 0..pushes {
                        client.push_wire(snapshot.clone()).expect("push accepted");
                    }
                    client.close();
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for h in handles {
            h.join().expect("bench site");
        }
        let elapsed = t0.elapsed().as_nanos() as f64;
        if run > 0 {
            // run 0 is warm-up.
            per_push_ns.push(elapsed / (sites * pushes) as f64);
        }
    }
    let (_, stats) = server.shutdown();
    assert_eq!(
        stats.rejected_total(),
        0,
        "bench pushes must all be accepted"
    );

    let ns = median(per_push_ns);
    Row {
        scenario,
        snapshot_bytes: snapshot.len(),
        sites,
        ns_per_push: ns,
        frames_per_s: 1e9 / ns,
        mib_per_s: (snapshot.len() as f64 / (1 << 20) as f64) / (ns / 1e9),
        delta_bytes_per_push: None,
    }
}

/// Steady-state delta pushes: ingest a long warm-up, push the full
/// snapshot once, then push after each of `increments` small ingest
/// steps — the `SiteClient` ships those as delta pushes. Measures the
/// mean wire bytes and wall time per delta push (checkpoint diff +
/// write + collector reconstruction + decode + merge-probe + ack).
fn bench_delta_scenario(n: u64, increments: usize) -> Row {
    let server = CollectorServer::bind("127.0.0.1:0", full_prototype(), ServerConfig::default())
        .expect("bind");

    // Warm up to a saturated monitor, then precompute the per-increment
    // checkpoints so the timed loop is transport work only.
    let stream = ZipfStream::new(1 << 14, 1.2).generate(n, 42);
    let warm = (n as usize) * 4 / 5;
    let mut monitor = full_prototype();
    let mut sampler = BernoulliSampler::new(P, 43);
    sampler.sample_batches(&stream[..warm], 1024, |c| monitor.update_batch(c));
    let base_wire = monitor.checkpoint().expect("base checkpoint");
    let step = (stream.len() - warm) / increments;
    let mut checkpoints = Vec::with_capacity(increments);
    for i in 0..increments {
        let lo = warm + i * step;
        let hi = if i + 1 == increments {
            stream.len()
        } else {
            lo + step
        };
        sampler.sample_batches(&stream[lo..hi], 1024, |c| monitor.update_batch(c));
        checkpoints.push(monitor.checkpoint().expect("incremental checkpoint"));
    }

    let mut cfg = ClientConfig::new(900, "bench-delta");
    cfg.ack_timeout = Duration::from_secs(30);
    let mut client = SiteClient::connect(server.local_addr(), cfg).expect("connect");
    client.push_wire(base_wire.clone()).expect("base push");
    let bytes_before = client.stats().bytes_out;

    let t0 = Instant::now();
    for wire in &checkpoints {
        client.push_wire(wire.clone()).expect("delta push");
    }
    let elapsed = t0.elapsed().as_nanos() as f64;
    let stats = client.stats().clone();
    client.close();
    assert_eq!(
        stats.snapshots_delta, increments as u64,
        "steady-state pushes must ride as deltas"
    );
    let (_, sstats) = server.shutdown();
    assert_eq!(sstats.rejected_total(), 0, "bench pushes must be accepted");

    let full_bytes = checkpoints.last().expect("nonempty").len();
    let delta_bytes = (stats.bytes_out - bytes_before) as f64 / increments as f64;
    let ns = elapsed / increments as f64;
    Row {
        scenario: "full_delta_steady_state",
        snapshot_bytes: full_bytes,
        sites: 1,
        ns_per_push: ns,
        frames_per_s: 1e9 / ns,
        mib_per_s: (delta_bytes / (1 << 20) as f64) / (ns / 1e9),
        delta_bytes_per_push: Some(delta_bytes),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, pushes, runs) = if quick {
        (50_000, 10, 3)
    } else {
        (1_000_000, 50, 5)
    };

    let small = ingested(small_prototype(), n);
    let small_wire = small.checkpoint().expect("checkpoint");
    let full = ingested(full_prototype(), n);
    let full_wire = full.checkpoint().expect("checkpoint");

    let rows = vec![
        bench_scenario(
            "small_single_site",
            &small_prototype(),
            &small_wire,
            1,
            pushes,
            runs,
        ),
        bench_scenario(
            "full_single_site",
            &full_prototype(),
            &full_wire,
            1,
            pushes,
            runs,
        ),
        bench_scenario(
            "full_concurrent_4_sites",
            &full_prototype(),
            &full_wire,
            4,
            pushes,
            runs,
        ),
        bench_delta_scenario(n, if quick { 8 } else { 25 }),
    ];

    // Delta acceptance: steady-state delta pushes must run at least 2x
    // smaller than the full snapshot they replace (they are far
    // smaller).
    let delta_row = rows
        .iter()
        .find(|r| r.scenario == "full_delta_steady_state")
        .unwrap();
    let per_push = delta_row.delta_bytes_per_push.unwrap();
    assert!(
        per_push * 2.0 <= delta_row.snapshot_bytes as f64,
        "delta pushes average {per_push:.0} B against a {} B full snapshot",
        delta_row.snapshot_bytes
    );

    println!(
        "\n== transport over loopback ({} raw elements ingested{}) ==",
        n,
        if quick { ", quick" } else { "" }
    );
    println!(
        "{:<24} {:>10} {:>7} {:>12} {:>12} {:>12}",
        "scenario", "snap KiB", "sites", "us/push", "frames/s", "MiB/s"
    );
    for r in &rows {
        println!(
            "{:<24} {:>10.1} {:>7} {:>12.1} {:>12.0} {:>12.1}{}",
            r.scenario,
            r.snapshot_bytes as f64 / 1024.0,
            r.sites,
            r.ns_per_push / 1e3,
            r.frames_per_s,
            r.mib_per_s,
            r.delta_bytes_per_push.map_or(String::new(), |b| format!(
                "   ({:.1} KiB/delta push, {:.1}x smaller)",
                b / 1024.0,
                r.snapshot_bytes as f64 / b
            ))
        );
    }

    // Machine-readable trajectory datapoint (hand-rolled JSON: the
    // workspace is dependency-free by contract).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"transport\",\n");
    json.push_str(&format!(
        "  \"schema_version\": {},\n",
        sss_bench::schema::TRANSPORT
    ));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"stream_elements\": {n},\n"));
    json.push_str(&format!("  \"sampling_rate\": {P},\n"));
    json.push_str(&format!("  \"pushes_per_site\": {pushes},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let delta = r.delta_bytes_per_push.map_or(String::new(), |b| {
            format!(
                " \"delta_bytes_per_push\": {:.0}, \"full_over_delta\": {:.2},",
                b,
                r.snapshot_bytes as f64 / b
            )
        });
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"snapshot_bytes\": {},{} \"sites\": {}, \
             \"ns_per_push\": {:.0}, \"frames_per_s\": {:.1}, \"mib_per_s\": {:.2}}}{}\n",
            r.scenario,
            r.snapshot_bytes,
            delta,
            r.sites,
            r.ns_per_push,
            r.frames_per_s,
            r.mib_per_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    // The committed trajectory datapoint comes from the full workload;
    // the --quick CI smoke must not clobber it.
    if quick {
        println!("\n--quick: skipping BENCH_transport.json write");
    } else {
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_transport.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }
}
