//! Throughput of Algorithm 1 (both collision oracles) and of the
//! Indyk–Woodruff level-set structure itself, per-item vs batched.

use sss_bench::BenchGroup;
use sss_core::{recommended_levelset_config, SampledFkEstimator};
use sss_sketch::levelset::{LevelSetConfig, LevelSetEstimator};
use sss_stream::{BernoulliSampler, StreamGen, ZipfStream};
use std::hint::black_box;

const N: u64 = 100_000;

fn main() {
    let stream = ZipfStream::new(1 << 16, 1.2).generate(N, 42);
    let sampled = BernoulliSampler::new(0.2, 43).sample_to_vec(&stream);
    let mut g = BenchGroup::new("fk_update", sampled.len() as u64);

    for k in [2u32, 4] {
        g.bench(&format!("alg1_exact_k{k}"), || {
            let mut est = SampledFkEstimator::exact(k, 0.2);
            for &x in &sampled {
                est.update(x);
            }
            est.estimate()
        });
        g.bench(&format!("alg1_exact_k{k}_batched"), || {
            let mut est = SampledFkEstimator::exact(k, 0.2);
            for chunk in sampled.chunks(4096) {
                est.update_batch(chunk);
            }
            est.estimate()
        });
    }

    let cfg = LevelSetConfig::for_universe(1 << 16, 512);
    g.bench("alg1_sketched_k2_w512", || {
        let mut est = SampledFkEstimator::sketched(2, 0.2, &cfg, 7);
        for &x in &sampled {
            est.update(x);
        }
        est.estimate()
    });

    g.bench("levelset_update_only_w512", || {
        let mut ls = LevelSetEstimator::new(&cfg, 7);
        for &x in &sampled {
            ls.update(x);
        }
        ls.n()
    });

    // Query cost (estimate from a built structure) — the paper's
    // O~(p^-1 m^(1-2/k)) output-time claim. One element per "run" so the
    // ns/elem column reads as ns/query.
    let mut q = BenchGroup::new("fk_query", 1);
    let qcfg = recommended_levelset_config(2, 1 << 16, 0.2, 0.2);
    let mut est = SampledFkEstimator::sketched(2, 0.2, &qcfg, 7);
    for &x in &sampled {
        est.update(x);
    }
    q.bench("alg1_sketched_estimate", || black_box(est.estimate()));
}
