//! Throughput of Algorithm 1 (both collision oracles) and of the
//! Indyk–Woodruff level-set structure itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sss_core::{recommended_levelset_config, SampledFkEstimator};
use sss_sketch::levelset::{LevelSetConfig, LevelSetEstimator};
use sss_stream::{BernoulliSampler, StreamGen, ZipfStream};

const N: u64 = 100_000;

fn sampled_stream(p: f64) -> Vec<u64> {
    let stream = ZipfStream::new(1 << 16, 1.2).generate(N, 42);
    BernoulliSampler::new(p, 43).sample_to_vec(&stream)
}

fn bench_fk(c: &mut Criterion) {
    let sampled = sampled_stream(0.2);
    let mut g = c.benchmark_group("fk_update");
    g.throughput(Throughput::Elements(sampled.len() as u64));

    for k in [2u32, 4] {
        g.bench_function(format!("alg1_exact_k{k}"), |b| {
            b.iter(|| {
                let mut est = SampledFkEstimator::exact(k, 0.2);
                for &x in &sampled {
                    est.update(black_box(x));
                }
                black_box(est.estimate())
            })
        });
    }

    g.bench_function("alg1_sketched_k2_w512", |b| {
        let cfg = LevelSetConfig::for_universe(1 << 16, 512);
        b.iter(|| {
            let mut est = SampledFkEstimator::sketched(2, 0.2, &cfg, 7);
            for &x in &sampled {
                est.update(black_box(x));
            }
            black_box(est.estimate())
        })
    });

    g.bench_function("levelset_update_only_w512", |b| {
        let cfg = LevelSetConfig::for_universe(1 << 16, 512);
        b.iter(|| {
            let mut ls = LevelSetEstimator::new(&cfg, 7);
            for &x in &sampled {
                ls.update(black_box(x));
            }
            black_box(ls.n())
        })
    });

    g.finish();

    // Query cost (estimate from a built structure) — the paper's
    // O~(p^-1 m^(1-2/k)) output-time claim.
    let mut q = c.benchmark_group("fk_query");
    let cfg = recommended_levelset_config(2, 1 << 16, 0.2, 0.2);
    let mut est = SampledFkEstimator::sketched(2, 0.2, &cfg, 7);
    for &x in &sampled {
        est.update(x);
    }
    q.bench_function("alg1_sketched_estimate", |b| {
        b.iter(|| black_box(est.estimate()))
    });
    q.finish();
}

criterion_group!(benches, bench_fk);
criterion_main!(benches);
