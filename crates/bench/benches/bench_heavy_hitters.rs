//! Throughput of the Theorem 6/7 heavy-hitter estimators.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sss_core::{SampledF1HeavyHitters, SampledF2HeavyHitters};
use sss_stream::{BernoulliSampler, PlantedHeavyHitters, StreamGen};

const N: u64 = 100_000;

fn bench_hh(c: &mut Criterion) {
    let stream = PlantedHeavyHitters::new(1 << 20, 8, 0.5).generate(N, 42);
    let sampled = BernoulliSampler::new(0.2, 43).sample_to_vec(&stream);
    let mut g = c.benchmark_group("hh_update");
    g.throughput(Throughput::Elements(sampled.len() as u64));

    g.bench_function("thm6_f1_hh", |b| {
        b.iter(|| {
            let mut hh = SampledF1HeavyHitters::new(0.05, 0.2, 0.05, 0.2, 7);
            for &x in &sampled {
                hh.update(black_box(x));
            }
            black_box(hh.report().len())
        })
    });

    g.bench_function("thm7_f2_hh", |b| {
        b.iter(|| {
            let mut hh = SampledF2HeavyHitters::new(0.3, 0.2, 0.05, 0.2, 7);
            for &x in &sampled {
                hh.update(black_box(x));
            }
            black_box(hh.report().len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_hh);
criterion_main!(benches);
