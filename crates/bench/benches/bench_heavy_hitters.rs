//! Throughput of the Theorem 6/7 heavy-hitter estimators, per-item vs
//! batched (the batched path sketches row-major and admits candidates at
//! batch boundaries).

use sss_bench::BenchGroup;
use sss_core::{SampledF1HeavyHitters, SampledF2HeavyHitters};
use sss_stream::{BernoulliSampler, PlantedHeavyHitters, StreamGen};

const N: u64 = 100_000;

fn main() {
    let stream = PlantedHeavyHitters::new(1 << 20, 8, 0.5).generate(N, 42);
    let sampled = BernoulliSampler::new(0.2, 43).sample_to_vec(&stream);
    let mut g = BenchGroup::new("hh_update", sampled.len() as u64);

    g.bench("thm6_f1_hh", || {
        let mut hh = SampledF1HeavyHitters::new(0.05, 0.2, 0.05, 0.2, 7);
        for &x in &sampled {
            hh.update(x);
        }
        hh.report().len()
    });

    g.bench("thm6_f1_hh_batched", || {
        let mut hh = SampledF1HeavyHitters::new(0.05, 0.2, 0.05, 0.2, 7);
        for chunk in sampled.chunks(4096) {
            hh.update_batch(chunk);
        }
        hh.report().len()
    });

    g.bench("thm7_f2_hh", || {
        let mut hh = SampledF2HeavyHitters::new(0.3, 0.2, 0.05, 0.2, 7);
        for &x in &sampled {
            hh.update(x);
        }
        hh.report().len()
    });

    g.bench("thm7_f2_hh_batched", || {
        let mut hh = SampledF2HeavyHitters::new(0.3, 0.2, 0.05, 0.2, 7);
        for chunk in sampled.chunks(4096) {
            hh.update_batch(chunk);
        }
        hh.report().len()
    });
}
