//! Observability overhead pricing: the same batch-ingestion workload as
//! `bench_ingest`, run with the global metrics registry enabled vs
//! disarmed via its kill-switch, with the ratio pinned and written to
//! `BENCH_obs.json` at the workspace root.
//!
//! ```text
//! cargo bench --bench bench_obs            # full workload, writes JSON
//! cargo bench --bench bench_obs -- --quick # CI smoke
//! ```
//!
//! Instrumentation in the hot path is a handful of relaxed atomic adds
//! per *batch* (never per item), so the per-element cost amortises to
//! fractions of a nanosecond. Acceptance: instrumented ingest is at most
//! **1.03×** the uninstrumented path (1.05× under `--quick`, where the
//! short workload inflates timer noise).
//!
//! Unlike `BenchGroup`'s back-to-back repetitions, the two modes here are
//! measured in *interleaved* repetitions — enabled, disabled, enabled,
//! disabled, … — so frequency scaling or a scheduler hiccup lands on both
//! sides of the ratio instead of biasing one.

use std::hint::black_box;
use std::time::Instant;

use sss_bench::schema;
use sss_core::{Monitor, MonitorBuilder};
use sss_obs::global;
use sss_stream::{BernoulliSampler, StreamGen, ZipfStream};

const P: f64 = 0.25;
const BATCH: usize = 4096;

/// Interleaved timed repetitions per mode (after one warm-up each).
const REPS: usize = 9;

/// Same four-estimator monitor as `bench_ingest`, so the absolute
/// numbers are directly comparable across the two trajectories.
fn full_monitor() -> Monitor {
    MonitorBuilder::with_seed(P, 7)
        .f0(0.05)
        .fk(2)
        .entropy(512)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .build()
}

/// One full batch-ingest pass; returns samples_seen as the black-box
/// observable.
fn ingest_once(sampled: &[u64]) -> u64 {
    let mut mon = full_monitor();
    for chunk in sampled.chunks(BATCH) {
        mon.update_batch(chunk);
    }
    mon.samples_seen()
}

/// Time one pass in ns/elem.
fn time_once(sampled: &[u64], survivors: u64) -> f64 {
    let t0 = Instant::now();
    black_box(ingest_once(sampled));
    t0.elapsed().as_nanos() as f64 / survivors as f64
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: u64 = if quick { 120_000 } else { 400_000 };
    let target = if quick { 1.05 } else { 1.03 };

    let stream = ZipfStream::new(1 << 16, 1.2).generate(n, 42);
    let sampled = BernoulliSampler::new(P, 43).sample_to_vec(&stream);
    let survivors = sampled.len() as u64;

    let reg = global();
    let was_enabled = reg.enabled();

    // Warm up both modes: page in code, fault in the registry slots.
    reg.set_enabled(true);
    black_box(ingest_once(&sampled));
    reg.set_enabled(false);
    black_box(ingest_once(&sampled));

    println!(
        "\n== obs_overhead ({survivors} survivors/run, median of {REPS} \
         interleaved runs per mode) =="
    );

    let mut on_times = Vec::with_capacity(REPS);
    let mut off_times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        reg.set_enabled(true);
        on_times.push(time_once(&sampled, survivors));
        reg.set_enabled(false);
        off_times.push(time_once(&sampled, survivors));
    }
    reg.set_enabled(was_enabled);

    let on = median(&mut on_times);
    let off = median(&mut off_times);
    let ratio = on / off;

    println!("instrumented   {on:>10.2} ns/elem");
    println!("uninstrumented {off:>10.2} ns/elem");
    println!("overhead ratio {ratio:>10.3}x (budget <= {target}x)");

    // How much the instrumented pass actually records, for the record:
    // a non-trivial metric count proves the enabled runs were live.
    let metrics_live = {
        reg.set_enabled(true);
        let snap = {
            let r = global();
            r.inc(sss_obs::MetricId::ObsSnapshotsTotal);
            r.snapshot()
        };
        reg.set_enabled(was_enabled);
        snap.counters.len() + snap.gauges.len() + snap.hists.len()
    };

    assert!(
        ratio <= target,
        "instrumented ingest at {on:.2} ns/elem is {ratio:.3}x the \
         uninstrumented path's {off:.2} ns/elem (budget {target}x)"
    );

    // Machine-readable trajectory datapoint (hand-rolled JSON: the
    // workspace is dependency-free by contract).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"obs\",\n");
    json.push_str(&format!("  \"schema_version\": {},\n", schema::OBS));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"stream_elements\": {n},\n"));
    json.push_str(&format!("  \"sampling_rate\": {P},\n"));
    json.push_str(&format!("  \"survivors\": {survivors},\n"));
    json.push_str(&format!("  \"batch_size\": {BATCH},\n"));
    json.push_str(&format!("  \"reps_per_mode\": {REPS},\n"));
    json.push_str(&format!("  \"metrics_exported\": {metrics_live},\n"));
    json.push_str("  \"overhead\": {\n");
    json.push_str(&format!("    \"instrumented_ns_per_elem\": {on:.2},\n"));
    json.push_str(&format!("    \"uninstrumented_ns_per_elem\": {off:.2},\n"));
    json.push_str(&format!("    \"ratio\": {ratio:.3},\n"));
    json.push_str("    \"budget_max_ratio\": 1.03\n");
    json.push_str("  }\n}\n");

    // The committed trajectory datapoint comes from the full workload;
    // the --quick CI smoke must not clobber it.
    if quick {
        println!("\n--quick: skipping BENCH_obs.json write");
    } else {
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_obs.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }
}
