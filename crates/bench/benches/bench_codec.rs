//! Wire-codec throughput and snapshot sizes per estimator, with
//! machine-readable results written to `BENCH_codec.json` at the
//! workspace root — the first datapoint of the BENCH_*.json trajectory.
//!
//! ```text
//! cargo bench --bench bench_codec            # full workload
//! cargo bench --bench bench_codec -- --quick # CI smoke (small stream)
//! ```
//!
//! For each estimator (and the full monitor) we measure `encode` and
//! `decode` wall time over the snapshot of a seeded ingested state, and
//! record the snapshot size. Encode/decode throughput is reported in
//! MiB/s of wire bytes; the JSON also carries ns per operation so later
//! PRs can track regressions without re-deriving units.

use std::hint::black_box;
use std::time::Instant;

use sss_codec::WireCodec;
use sss_core::{
    AdaptiveF2Estimator, Monitor, MonitorBuilder, NaiveScaledFk, RusuDobraF2,
    SampledEntropyEstimator, SampledF0Estimator, SampledF1HeavyHitters, SampledF2HeavyHitters,
    SampledFkEstimator, SubsampledEstimator,
};
use sss_sketch::levelset::LevelSetConfig;
use sss_stream::{BernoulliSampler, StreamGen, ZipfStream};

/// Timed repetitions per measurement (median reported).
const REPS: usize = 9;

struct Row {
    name: &'static str,
    snapshot_bytes: usize,
    encode_ns: f64,
    decode_ns: f64,
    state_bytes: usize,
}

/// Committed wire-v1 snapshot sizes for the same seeds / stream /
/// parameters (the full-workload BENCH_codec.json datapoint recorded by
/// the last version-1 build) — encoders only write the current version,
/// so the v1-vs-v2 column quotes the frozen baseline instead of
/// re-measuring it.
fn v1_baseline_bytes(name: &str) -> Option<usize> {
    Some(match name {
        "f0" => 14_248,
        "fk_exact" => 177_893,
        "fk_sketched" => 408_377,
        "entropy" => 122_601,
        "hh_f1" => 24_161,
        "hh_f2" => 2_269_464,
        "rusu_dobra_f2" => 32_328,
        "naive_fk" => 177_860,
        "adaptive_f2" => 177_872,
        "monitor_full" => 2_608_414,
        _ => return None,
    })
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

fn time_median<T>(mut f: impl FnMut() -> T) -> f64 {
    black_box(f()); // warm-up
    median(
        (0..REPS)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed().as_nanos() as f64
            })
            .collect(),
    )
}

fn bench_one<E>(name: &'static str, est: &E) -> Row
where
    E: SubsampledEstimator + WireCodec,
{
    let bytes = est.encode_framed();
    let encode_ns = time_median(|| est.encode_framed());
    let decode_ns = time_median(|| E::decode_framed(&bytes).expect("decode"));
    Row {
        name,
        snapshot_bytes: bytes.len(),
        encode_ns,
        decode_ns,
        state_bytes: est.space_bytes(),
    }
}

fn bench_monitor(name: &'static str, m: &Monitor) -> Row {
    let bytes = m.checkpoint().expect("checkpoint");
    let encode_ns = time_median(|| m.checkpoint().expect("checkpoint"));
    let decode_ns = time_median(|| Monitor::restore(&bytes).expect("restore"));
    Row {
        name,
        snapshot_bytes: bytes.len(),
        encode_ns,
        decode_ns,
        state_bytes: m.space_bytes(),
    }
}

fn mibps(bytes: usize, ns: f64) -> f64 {
    (bytes as f64 / (1 << 20) as f64) / (ns / 1e9)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: u64 = if quick { 100_000 } else { 1_000_000 };
    let p = 0.25;
    let stream = ZipfStream::new(1 << 14, 1.2).generate(n, 42);
    let sampled = BernoulliSampler::new(p, 43).sample_to_vec(&stream);

    let mut rows = Vec::new();

    let mut f0 = SampledF0Estimator::new(p, 0.05, 1);
    f0.update_batch(&sampled);
    rows.push(bench_one("f0", &f0));

    let mut fk = SampledFkEstimator::exact(2, p);
    fk.update_batch(&sampled);
    rows.push(bench_one("fk_exact", &fk));

    let cfg = LevelSetConfig::for_universe(1 << 14, 512);
    let mut fk_s = SampledFkEstimator::sketched(2, p, &cfg, 2);
    fk_s.update_batch(&sampled);
    rows.push(bench_one("fk_sketched", &fk_s));

    let mut entropy = SampledEntropyEstimator::new(p, 2000, 3);
    entropy.update_batch(&sampled);
    rows.push(bench_one("entropy", &entropy));

    let mut hh1 = SampledF1HeavyHitters::new(0.05, 0.2, 0.05, p, 4);
    hh1.update_batch(&sampled);
    rows.push(bench_one("hh_f1", &hh1));

    let mut hh2 = SampledF2HeavyHitters::new(0.3, 0.2, 0.05, p, 5);
    hh2.update_batch(&sampled);
    rows.push(bench_one("hh_f2", &hh2));

    let mut rd = RusuDobraF2::new(p, 7, 96, 6);
    rd.update_batch(&sampled);
    rows.push(bench_one("rusu_dobra_f2", &rd));

    let mut naive = NaiveScaledFk::new(2, p);
    naive.update_batch(&sampled);
    rows.push(bench_one("naive_fk", &naive));

    let mut adaptive = AdaptiveF2Estimator::new(p);
    adaptive.update_batch(&sampled);
    rows.push(bench_one("adaptive_f2", &adaptive));

    let mut monitor = MonitorBuilder::with_seed(p, 7)
        .f0(0.05)
        .fk(2)
        .entropy(2000)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .f2_heavy_hitters(0.3, 0.2, 0.05)
        .build();
    monitor.update_batch(&sampled);
    rows.push(bench_monitor("monitor_full", &monitor));

    // Human-readable table.
    println!(
        "\n== codec ({} sampled elements{}) ==",
        sampled.len(),
        if quick { ", quick" } else { "" }
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>8} {:>11} {:>11} {:>11}",
        "estimator",
        "v1 KiB",
        "v2 KiB",
        "state KiB",
        "v1/v2",
        "enc MiB/s",
        "dec MiB/s",
        "wire/state"
    );
    for r in &rows {
        // The baseline corresponds to the full workload only.
        let v1 = if quick {
            None
        } else {
            v1_baseline_bytes(r.name)
        };
        println!(
            "{:<16} {:>10} {:>10.1} {:>10.1} {:>8} {:>11.1} {:>11.1} {:>11.2}",
            r.name,
            v1.map_or("-".to_string(), |b| format!("{:.1}", b as f64 / 1024.0)),
            r.snapshot_bytes as f64 / 1024.0,
            r.state_bytes as f64 / 1024.0,
            v1.map_or("-".to_string(), |b| {
                format!("{:.1}x", b as f64 / r.snapshot_bytes as f64)
            }),
            mibps(r.snapshot_bytes, r.encode_ns),
            mibps(r.snapshot_bytes, r.decode_ns),
            r.snapshot_bytes as f64 / r.state_bytes as f64
        );
    }

    // Machine-readable trajectory datapoint. Hand-rolled JSON: the
    // workspace is dependency-free by contract.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"codec\",\n");
    json.push_str(&format!(
        "  \"schema_version\": {},\n",
        sss_bench::schema::CODEC
    ));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"stream_elements\": {n},\n"));
    json.push_str(&format!("  \"sampled_elements\": {},\n", sampled.len()));
    json.push_str(&format!("  \"sampling_rate\": {p},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let v1 = (if quick {
            None
        } else {
            v1_baseline_bytes(r.name)
        })
        .map_or(String::new(), |b| {
            format!(
                " \"snapshot_bytes_v1\": {}, \"v1_over_v2\": {:.2},",
                b,
                b as f64 / r.snapshot_bytes as f64
            )
        });
        json.push_str(&format!(
            "    {{\"estimator\": \"{}\", \"snapshot_bytes\": {},{} \"state_bytes\": {}, \
             \"encode_ns\": {:.0}, \"decode_ns\": {:.0}, \
             \"encode_mib_per_s\": {:.2}, \"decode_mib_per_s\": {:.2}}}{}\n",
            r.name,
            r.snapshot_bytes,
            v1,
            r.state_bytes,
            r.encode_ns,
            r.decode_ns,
            mibps(r.snapshot_bytes, r.encode_ns),
            mibps(r.snapshot_bytes, r.decode_ns),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    // The committed trajectory datapoint comes from the full workload;
    // the --quick CI smoke must not clobber it.
    if quick {
        println!("\n--quick: skipping BENCH_codec.json write");
    } else {
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_codec.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("\nwrote {}", out.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", out.display()),
        }
    }

    // Compaction acceptance: the full-monitor v2 snapshot must be at
    // least 2x smaller than the committed v1 baseline (it is ~5x).
    let monitor_row = rows.iter().find(|r| r.name == "monitor_full").unwrap();
    if !quick {
        let v1 = v1_baseline_bytes("monitor_full").unwrap();
        assert!(
            monitor_row.snapshot_bytes * 2 <= v1,
            "v2 monitor snapshot {} B lost the 2x target against v1's {} B",
            monitor_row.snapshot_bytes,
            v1
        );
    }

    // Round-trip sanity: the decoded monitor must answer identically.
    let restored = Monitor::restore(&monitor.checkpoint().expect("checkpoint")).expect("restore");
    for ((la, ea), (lb, eb)) in monitor.report().iter().zip(&restored.report()) {
        assert_eq!(la, lb);
        assert_eq!(ea.value.to_bits(), eb.value.to_bits(), "{la} diverged");
    }
    println!("round-trip consistency check passed");
}
