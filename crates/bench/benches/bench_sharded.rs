//! Sharded vs single-threaded ingestion throughput, plus an end-of-run
//! consistency check that the merged answer stays within tolerance of the
//! single-threaded one for every registered statistic.
//!
//! ```text
//! cargo bench --bench bench_sharded            # full workload
//! cargo bench --bench bench_sharded -- --quick # CI smoke (small stream)
//! ```
//!
//! Numbers to read: the `shards_N` rows against `single_thread`. On a
//! machine with ≥ N free cores the pipeline should approach N× on the
//! zipf workload (workers do sampling + estimator updates; the dispatcher
//! only hands out zero-copy ranges of the shared trace). On a one-core
//! container every configuration serialises onto the same CPU and the
//! rows mostly measure queueing overhead — the consistency check is still
//! meaningful there.

use std::sync::Arc;

use sss_bench::BenchGroup;
use sss_core::{Monitor, MonitorBuilder, ShardedConfig, ShardedMonitor, Statistic};
use sss_stream::{BernoulliSampler, StreamGen, ZipfStream};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn proto(p: f64) -> Monitor {
    MonitorBuilder::with_seed(p, 7)
        .f0(0.05)
        .fk(2)
        .entropy(1024)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .build()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: u64 = if quick { 200_000 } else { 2_000_000 };
    let p = 0.25;
    let stream = Arc::new(ZipfStream::new(1 << 16, 1.2).generate(n, 42));

    let mut g = BenchGroup::new(
        if quick {
            "sharded_ingestion (quick)"
        } else {
            "sharded_ingestion"
        },
        n,
    );

    g.bench("single_thread", || {
        let mut m = proto(p);
        let mut sampler = BernoulliSampler::new(p, 43);
        // 4096 mirrors the ShardedConfig::new sample_batch default.
        sampler.sample_batches(&stream, 4096, |chunk| m.update_batch(chunk));
        m.samples_seen()
    });

    for shards in SHARD_COUNTS {
        g.bench(&format!("shards_{shards}"), || {
            let mut sm = ShardedMonitor::launch(&proto(p), 43, ShardedConfig::new(shards));
            sm.ingest_shared(&stream);
            sm.finish().samples_seen()
        });
    }

    println!("\nscaling vs single thread (cores available: {}):", cores());
    let base = g.median_of("single_thread");
    for shards in SHARD_COUNTS {
        let t = g.median_of(&format!("shards_{shards}"));
        println!("  {shards} shard(s): {:.2}x", base / t);
    }

    // Consistency: merged sharded answers vs the single-threaded monitor.
    let mut single = proto(p);
    let mut sampler = BernoulliSampler::new(p, 43);
    sampler.sample_batches(&stream, 4096, |chunk| single.update_batch(chunk));
    let mut sm = ShardedMonitor::launch(&proto(p), 43, ShardedConfig::new(4));
    sm.ingest_shared(&stream);
    let merged = sm.finish();

    println!("\nconsistency (4 shards vs single thread, independent samples):");
    let mut worst: f64 = 1.0;
    for stat in [Statistic::F0, Statistic::Fk(2), Statistic::Entropy] {
        let a = merged.estimate(stat).unwrap().value;
        let b = single.estimate(stat).unwrap().value;
        let ratio = if b != 0.0 { a / b } else { f64::NAN };
        worst = worst.max(ratio.max(1.0 / ratio));
        println!("  {stat:?}: sharded {a:.4e}  single {b:.4e}  ratio {ratio:.3}");
    }
    // Both pipelines see independent Bernoulli samples of the same
    // stream, so agreement is statistical, not bitwise: F0/F2 concentrate
    // tightly, entropy within its constant-factor band.
    assert!(
        worst < 1.5,
        "sharded and single-threaded answers diverged: worst ratio {worst}"
    );
    println!("  ok (worst ratio {worst:.3})");
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
