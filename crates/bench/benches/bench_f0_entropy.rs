//! Throughput of Algorithm 2 (`F_0`) and the Theorem 5 entropy estimator.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sss_core::{SampledEntropyEstimator, SampledF0Estimator};
use sss_stream::{BernoulliSampler, StreamGen, UniformStream};

const N: u64 = 100_000;

fn bench_f0_entropy(c: &mut Criterion) {
    let stream = UniformStream::new(1 << 14).generate(N, 42);
    let sampled = BernoulliSampler::new(0.2, 43).sample_to_vec(&stream);
    let mut g = c.benchmark_group("f0_entropy_update");
    g.throughput(Throughput::Elements(sampled.len() as u64));

    g.bench_function("alg2_f0", |b| {
        b.iter(|| {
            let mut est = SampledF0Estimator::new(0.2, 0.05, 7);
            for &x in &sampled {
                est.update(black_box(x));
            }
            black_box(est.estimate())
        })
    });

    for t in [256usize, 2048] {
        g.bench_function(format!("entropy_t{t}"), |b| {
            b.iter(|| {
                let mut est = SampledEntropyEstimator::new(0.2, t, 7);
                for &x in &sampled {
                    est.update(black_box(x));
                }
                black_box(est.estimate())
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_f0_entropy);
criterion_main!(benches);
