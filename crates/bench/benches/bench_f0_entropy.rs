//! Throughput of Algorithm 2 (`F_0`) and the Theorem 5 entropy estimator,
//! per-item vs batched.

use sss_bench::BenchGroup;
use sss_core::{SampledEntropyEstimator, SampledF0Estimator};
use sss_stream::{BernoulliSampler, StreamGen, UniformStream};

const N: u64 = 100_000;

fn main() {
    let stream = UniformStream::new(1 << 14).generate(N, 42);
    let sampled = BernoulliSampler::new(0.2, 43).sample_to_vec(&stream);
    let mut g = BenchGroup::new("f0_entropy_update", sampled.len() as u64);

    g.bench("alg2_f0", || {
        let mut est = SampledF0Estimator::new(0.2, 0.05, 7);
        for &x in &sampled {
            est.update(x);
        }
        est.estimate()
    });

    g.bench("alg2_f0_batched", || {
        let mut est = SampledF0Estimator::new(0.2, 0.05, 7);
        for chunk in sampled.chunks(4096) {
            est.update_batch(chunk);
        }
        est.estimate()
    });

    for t in [256usize, 2048] {
        g.bench(&format!("entropy_t{t}"), || {
            let mut est = SampledEntropyEstimator::new(0.2, t, 7);
            for &x in &sampled {
                est.update(x);
            }
            est.estimate()
        });
    }
}
