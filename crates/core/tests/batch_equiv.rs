//! Batch-vs-scalar equivalence battery for the paper's estimators and
//! the full `Monitor`, through the shared harness in
//! `sss_sketch::equiv` — estimates bit-for-bit AND encoded snapshots
//! byte-for-byte, across seeds × chunk sizes.

use sss_core::{
    recommended_levelset_config, AdaptiveF2Estimator, MonitorBuilder, NaiveScaledF0, NaiveScaledFk,
    RusuDobraF2, SampledEntropyEstimator, SampledF0Estimator, SampledF1HeavyHitters,
    SampledF2HeavyHitters, SampledFkEstimator,
};
use sss_hash::{RngCore64, Xoshiro256pp};
use sss_sketch::equiv::assert_batch_equals_scalar;

const P: f64 = 0.25;

/// Skewed mixture standing in for a Bernoulli(p)-sampled stream `L`.
fn sampled_stream(seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256pp::new(seed);
    let mut xs: Vec<u64> = (0..3_000).map(|_| 42).collect();
    for _ in 0..9_000 {
        xs.push(if rng.next_bool(0.4) {
            rng.next_below(3)
        } else {
            3 + rng.next_below(4096)
        });
    }
    xs
}

fn weighted_pairs(v: Vec<(u64, f64)>) -> Vec<f64> {
    v.into_iter().flat_map(|(i, e)| [i as f64, e]).collect()
}

#[test]
fn sampled_f0() {
    assert_batch_equals_scalar(
        "SampledF0Estimator",
        sampled_stream,
        |seed| SampledF0Estimator::new(P, 0.05, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate(), s.samples_seen() as f64],
    );
}

#[test]
fn sampled_entropy() {
    assert_batch_equals_scalar(
        "SampledEntropyEstimator",
        sampled_stream,
        |seed| SampledEntropyEstimator::new(P, 128, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

#[test]
fn sampled_fk_exact() {
    assert_batch_equals_scalar(
        "SampledFkEstimator<Exact>",
        sampled_stream,
        |_seed| SampledFkEstimator::exact(2, P),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

#[test]
fn sampled_fk_level_sets() {
    assert_batch_equals_scalar(
        "SampledFkEstimator<LevelSets>",
        sampled_stream,
        |seed| {
            let cfg = recommended_levelset_config(2, 1 << 12, P, 0.2);
            SampledFkEstimator::sketched(2, P, &cfg, seed)
        },
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

#[test]
fn sampled_f1_heavy_hitters() {
    assert_batch_equals_scalar(
        "SampledF1HeavyHitters",
        sampled_stream,
        |seed| SampledF1HeavyHitters::new(0.05, 0.2, 0.05, P, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| weighted_pairs(s.report()),
    );
}

#[test]
fn sampled_f2_heavy_hitters() {
    assert_batch_equals_scalar(
        "SampledF2HeavyHitters",
        sampled_stream,
        |seed| SampledF2HeavyHitters::new(0.05, 0.2, 0.05, P, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| weighted_pairs(s.report()),
    );
}

#[test]
fn rusu_dobra_baseline() {
    assert_batch_equals_scalar(
        "RusuDobraF2",
        sampled_stream,
        |seed| RusuDobraF2::new(P, 16, 5, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

#[test]
fn naive_scaled_baselines() {
    assert_batch_equals_scalar(
        "NaiveScaledFk",
        sampled_stream,
        |_seed| NaiveScaledFk::new(2, P),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
    assert_batch_equals_scalar(
        "NaiveScaledF0",
        sampled_stream,
        |seed| NaiveScaledF0::new(P, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

#[test]
fn adaptive_f2() {
    assert_batch_equals_scalar(
        "AdaptiveF2Estimator",
        sampled_stream,
        |_seed| AdaptiveF2Estimator::new(P),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

/// The full monitor: every registered estimator's batch path at once,
/// including the fan-out/dispatch layer in `Monitor::update_batch`.
#[test]
fn full_monitor() {
    assert_batch_equals_scalar(
        "Monitor",
        sampled_stream,
        |seed| {
            MonitorBuilder::with_seed(P, seed)
                .f0(0.05)
                .fk(2)
                .entropy(128)
                .f1_heavy_hitters(0.05, 0.2, 0.05)
                .f2_heavy_hitters(0.05, 0.2, 0.05)
                .build()
        },
        |m, x| m.update(x),
        |m, xs| m.update_batch(xs),
        |m| m.report().into_iter().map(|(_, e)| e.value).collect(),
    );
}
