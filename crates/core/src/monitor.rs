//! The single-pass monitor: register any subset of the paper's statistics
//! and drive them all over one Bernoulli-sampled stream.
//!
//! The paper's deployment picture (§1) is a router that forwards a packet
//! stream, samples it at rate `p`, and hands the sample to a monitor that
//! must answer *several* questions about the original traffic — how many
//! flows, how skewed, which elephants. Each theorem gives one estimator;
//! [`Monitor`] runs them together so the sampled stream is consumed once:
//!
//! ```
//! use sss_core::monitor::MonitorBuilder;
//! use sss_core::Statistic;
//!
//! let mut monitor = MonitorBuilder::new(0.25)
//!     .f0(0.05)
//!     .fk(2)
//!     .entropy(512)
//!     .f1_heavy_hitters(0.1, 0.2, 0.05)
//!     .build();
//!
//! // One pass over the sampled stream (batched hot path).
//! monitor.update_batch(&[7, 7, 9, 4, 7, 9]);
//!
//! let f2 = monitor.estimate(Statistic::Fk(2)).unwrap();
//! assert!(f2.value > 0.0);
//! assert_eq!(monitor.samples_seen(), 6);
//! ```
//!
//! Monitors built from the **same builder configuration** (rate, seed and
//! registration sequence) are mergeable: each registered estimator merges
//! with its counterpart, so a collector can combine per-site monitors
//! into one answering for the union of all traffic
//! (`examples/distributed_collector.rs`). [`Monitor::try_merge`] is the
//! fallible variant for summaries arriving from outside the process, and
//! [`Monitor::fork_shard`] derives per-worker clones for the
//! multi-threaded pipeline in [`crate::sharded`] (see
//! `crates/core/src/README.md` for the architecture and the
//! seed-splitting contract).

use std::any::Any;

use sss_codec::{put_len, CodecError, Reader, WireCodec};
use sss_hash::{split_seed, SplitMix64};
use sss_obs::MetricId;
use sss_sketch::levelset::LevelSetConfig;

use crate::entropy::SampledEntropyEstimator;
use crate::estimate::{rates_compatible, Estimate, MergeError, Statistic, SubsampledEstimator};
use crate::f0::SampledF0Estimator;
use crate::fk::{recommended_levelset_config, SampledFkEstimator};
use crate::heavy_hitters::{SampledF1HeavyHitters, SampledF2HeavyHitters};
use crate::params::ApproxParams;

/// Object-safe adapter over [`SubsampledEstimator`] so a [`Monitor`] can
/// hold heterogeneous estimators. `merge` is recovered through `Any`
/// downcasting (both sides must be the same concrete type).
/// `Send + Sync + Clone` are required so monitors can be forked onto
/// worker threads
/// ([`crate::sharded::ShardedMonitor`]) and shared read-only by a
/// collector server (`sss-transport`); `WireCodec` so monitors can be
/// checkpointed and shipped ([`Monitor::checkpoint`]). Every estimator
/// in the tree is plain data (no interior mutability), so the `Sync`
/// bound costs nothing.
pub(crate) trait DynEstimator: Send + Sync {
    fn update(&mut self, x: u64);
    fn update_batch(&mut self, xs: &[u64]);
    fn estimate(&self) -> Estimate;
    fn statistic(&self) -> Statistic;
    fn space_bytes(&self) -> usize;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Whether `other` could merge into this slot (same concrete type and
    /// [`SubsampledEstimator::merge_compatible`]) — without mutating
    /// anything. Checked for *all* slots before any state is mutated, so
    /// a failed monitor merge never half-applies.
    fn check_merge(&self, other: &dyn Any, label: &str) -> Result<(), MergeError>;
    fn merge_dyn(&mut self, other: &dyn Any, label: &str) -> Result<(), MergeError>;
    fn reseed_shard_local_dyn(&mut self, seed: u64);
    fn clone_box(&self) -> Box<dyn DynEstimator>;
    /// The concrete type's wire tag ([`WireCodec::WIRE_TAG`]).
    fn wire_tag(&self) -> u16;
    /// Append the concrete type's wire payload.
    fn encode_wire(&self, out: &mut Vec<u8>);
}

impl<T: SubsampledEstimator + Any + Clone + Send + Sync + WireCodec> DynEstimator for T {
    fn update(&mut self, x: u64) {
        SubsampledEstimator::update(self, x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        SubsampledEstimator::update_batch(self, xs);
    }

    fn estimate(&self) -> Estimate {
        SubsampledEstimator::estimate(self)
    }

    fn statistic(&self) -> Statistic {
        SubsampledEstimator::statistic(self)
    }

    fn space_bytes(&self) -> usize {
        SubsampledEstimator::space_bytes(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn check_merge(&self, other: &dyn Any, label: &str) -> Result<(), MergeError> {
        let other = other
            .downcast_ref::<T>()
            .ok_or_else(|| MergeError::TypeMismatch {
                label: label.to_string(),
            })?;
        SubsampledEstimator::merge_compatible(self, other)
    }

    fn merge_dyn(&mut self, other: &dyn Any, label: &str) -> Result<(), MergeError> {
        let other = other
            .downcast_ref::<T>()
            .ok_or_else(|| MergeError::TypeMismatch {
                label: label.to_string(),
            })?;
        // Compatibility was already proven by the all-slots `check_merge`
        // pre-pass; re-running it here would just add a dead error path
        // that could half-apply the monitor merge.
        SubsampledEstimator::merge(self, other);
        Ok(())
    }

    fn reseed_shard_local_dyn(&mut self, seed: u64) {
        SubsampledEstimator::reseed_shard_local(self, seed);
    }

    fn clone_box(&self) -> Box<dyn DynEstimator> {
        Box::new(self.clone())
    }

    fn wire_tag(&self) -> u16 {
        T::WIRE_TAG
    }

    fn encode_wire(&self, out: &mut Vec<u8>) {
        WireCodec::encode_into(self, out);
    }
}

/// Decode one registered estimator by wire tag — the registry behind
/// [`Monitor::restore`]. Every estimator the [`MonitorBuilder`] can
/// register is listed; a `register()`-ed *custom* estimator encodes fine
/// (it implements [`WireCodec`]) but decodes only if its tag is known
/// here, so snapshots carrying third-party estimators fail with
/// [`CodecError::UnknownTag`] instead of misparsing.
const F0: u16 = SampledF0Estimator::WIRE_TAG;
const FK_EXACT: u16 =
    <SampledFkEstimator<crate::collisions::ExactCollisions> as WireCodec>::WIRE_TAG;
const FK_SKETCHED: u16 =
    <SampledFkEstimator<crate::collisions::LevelSetCollisions> as WireCodec>::WIRE_TAG;
const ENTROPY: u16 = SampledEntropyEstimator::WIRE_TAG;
const HH_F1: u16 = SampledF1HeavyHitters::WIRE_TAG;
const HH_F2: u16 = SampledF2HeavyHitters::WIRE_TAG;
const RUSU_DOBRA: u16 = crate::baselines::RusuDobraF2::WIRE_TAG;
const NAIVE_FK: u16 = crate::baselines::NaiveScaledFk::WIRE_TAG;
const NAIVE_F0: u16 = crate::baselines::NaiveScaledF0::WIRE_TAG;
const ADAPTIVE: u16 = crate::adaptive::AdaptiveF2Estimator::WIRE_TAG;

/// Whether [`decode_estimator`] can rebuild an estimator with this tag —
/// checked at *checkpoint* time too, so a snapshot that could never be
/// restored fails while the live state still exists.
fn registry_knows(tag: u16) -> bool {
    matches!(
        tag,
        F0 | FK_EXACT
            | FK_SKETCHED
            | ENTROPY
            | HH_F1
            | HH_F2
            | RUSU_DOBRA
            | NAIVE_FK
            | NAIVE_F0
            | ADAPTIVE
    )
}

fn decode_estimator(tag: u16, r: &mut Reader) -> Result<Box<dyn DynEstimator>, CodecError> {
    use crate::adaptive::AdaptiveF2Estimator;
    use crate::baselines::{NaiveScaledF0, NaiveScaledFk, RusuDobraF2};
    use crate::collisions::{ExactCollisions, LevelSetCollisions};

    Ok(match tag {
        F0 => Box::new(SampledF0Estimator::decode(r)?),
        FK_EXACT => Box::new(SampledFkEstimator::<ExactCollisions>::decode(r)?),
        FK_SKETCHED => Box::new(SampledFkEstimator::<LevelSetCollisions>::decode(r)?),
        ENTROPY => Box::new(SampledEntropyEstimator::decode(r)?),
        HH_F1 => Box::new(SampledF1HeavyHitters::decode(r)?),
        HH_F2 => Box::new(SampledF2HeavyHitters::decode(r)?),
        RUSU_DOBRA => Box::new(RusuDobraF2::decode(r)?),
        NAIVE_FK => Box::new(NaiveScaledFk::decode(r)?),
        NAIVE_F0 => Box::new(NaiveScaledF0::decode(r)?),
        ADAPTIVE => Box::new(AdaptiveF2Estimator::decode(r)?),
        found => return Err(CodecError::UnknownTag { found }),
    })
}

pub(crate) struct Entry {
    pub(crate) label: String,
    pub(crate) est: Box<dyn DynEstimator>,
}

impl Clone for Entry {
    fn clone(&self) -> Self {
        Entry {
            label: self.label.clone(),
            est: self.est.clone_box(),
        }
    }
}

/// Builder for a [`Monitor`]: pick the sampling rate, register statistics,
/// build. Two monitors are mergeable iff they were built with the same
/// rate, seed and registration sequence (so every sketch pair shares its
/// hash functions).
pub struct MonitorBuilder {
    p: f64,
    seed: u64,
    seeds: SplitMix64,
    entries: Vec<Entry>,
}

impl MonitorBuilder {
    /// Builder for sampling rate `p ∈ (0, 1]` with the default sketch
    /// seed.
    pub fn new(p: f64) -> Self {
        Self::with_seed(p, 0x5u64 << 60 | 0x5353)
    }

    /// Builder with an explicit sketch seed (per-estimator seeds are
    /// derived from it in registration order).
    pub fn with_seed(p: f64, seed: u64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "sampling probability must be in (0,1], got {p}"
        );
        Self {
            p,
            seed,
            seeds: SplitMix64::new(seed),
            entries: Vec::new(),
        }
    }

    fn push(mut self, label: String, est: Box<dyn DynEstimator>) -> Self {
        assert!(
            self.entries.iter().all(|e| e.label != label),
            "statistic '{label}' registered twice — use register() with a distinct label"
        );
        self.entries.push(Entry { label, est });
        self
    }

    /// Register Algorithm 2: `F_0(P)` within `4/√p` at confidence
    /// `1 − delta` (Lemma 8).
    pub fn f0(mut self, delta: f64) -> Self {
        let seed = self.seeds.derive();
        let est = SampledF0Estimator::new(self.p, delta, seed);
        self.push(Statistic::F0.to_string(), Box::new(est))
    }

    /// Register Algorithm 1 with exact collision counting: a `(1+ε, δ)`
    /// estimator of `F_k(P)` in `O(F_0(L))` space.
    pub fn fk(mut self, k: u32) -> Self {
        let est = SampledFkEstimator::exact(k, self.p);
        let _ = self.seeds.derive(); // keep seed schedule aligned across variants
        self.push(Statistic::Fk(k).to_string(), Box::new(est))
    }

    /// Register Algorithm 1 with the Indyk–Woodruff sketched collision
    /// oracle sized by [`recommended_levelset_config`] for universe `m`
    /// and target error `eps` — the paper's full small-space pipeline.
    pub fn fk_sketched(mut self, k: u32, m: u64, eps: f64) -> Self {
        let seed = self.seeds.derive();
        let cfg = recommended_levelset_config(k, m, self.p, eps);
        let est = SampledFkEstimator::sketched(k, self.p, &cfg, seed)
            .with_target(ApproxParams::new(eps, 0.1));
        self.push(Statistic::Fk(k).to_string(), Box::new(est))
    }

    /// Register Algorithm 1 (sketched) with an explicit level-set
    /// configuration.
    pub fn fk_sketched_with(mut self, k: u32, cfg: &LevelSetConfig) -> Self {
        let seed = self.seeds.derive();
        let est = SampledFkEstimator::sketched(k, self.p, cfg, seed);
        self.push(Statistic::Fk(k).to_string(), Box::new(est))
    }

    /// Register Theorem 5: constant-factor entropy with `slots` reservoir
    /// slots.
    pub fn entropy(mut self, slots: usize) -> Self {
        let seed = self.seeds.derive();
        let est = SampledEntropyEstimator::new(self.p, slots, seed);
        self.push(Statistic::Entropy.to_string(), Box::new(est))
    }

    /// Register Theorem 6: `(α, ε, δ)` `F_1` heavy hitters.
    pub fn f1_heavy_hitters(mut self, alpha: f64, eps: f64, delta: f64) -> Self {
        let seed = self.seeds.derive();
        let est = SampledF1HeavyHitters::new(alpha, eps, delta, self.p, seed);
        self.push(Statistic::F1HeavyHitters.to_string(), Box::new(est))
    }

    /// Register Theorem 7: `(α, 1 − √p(1−ε))` `F_2` heavy hitters.
    pub fn f2_heavy_hitters(mut self, alpha: f64, eps: f64, delta: f64) -> Self {
        let seed = self.seeds.derive();
        let est = SampledF2HeavyHitters::new(alpha, eps, delta, self.p, seed);
        self.push(Statistic::F2HeavyHitters.to_string(), Box::new(est))
    }

    /// Register an arbitrary [`SubsampledEstimator`] under an explicit
    /// label — the escape hatch for baselines, sketched variants riding
    /// alongside exact ones, and extensions.
    pub fn register<E>(mut self, label: &str, est: E) -> Self
    where
        E: SubsampledEstimator + Any + Clone + Send + Sync + WireCodec,
    {
        let _ = self.seeds.derive();
        self.push(label.to_string(), Box::new(est))
    }

    /// Finish: a monitor driving every registered estimator.
    pub fn build(self) -> Monitor {
        Monitor {
            p: self.p,
            seed: self.seed,
            entries: self.entries,
            samples: 0,
            obs_pending: 0,
            obs_batches: 0,
        }
    }
}

/// A single-pass monitor over the sampled stream `L`, fanning each element
/// (or batch) out to every registered estimator.
#[derive(Clone)]
pub struct Monitor {
    p: f64,
    seed: u64,
    entries: Vec<Entry>,
    samples: u64,
    /// Scalar-`update` items not yet flushed to the metrics registry
    /// (scratch — excluded from the wire format and from merges; a
    /// per-item atomic would tax the 10 ns scalar path, so items flush
    /// in blocks of [`OBS_FLUSH_ITEMS`]).
    obs_pending: u32,
    /// `update_batch` calls since construction (scratch; schedules the
    /// every-[`OBS_TIMING_SAMPLE`]-batches timing probe).
    obs_batches: u64,
}

/// Scalar-path items per metrics flush.
const OBS_FLUSH_ITEMS: u32 = 1024;

/// One batch in this many carries the per-statistic timing probe.
const OBS_TIMING_SAMPLE: u64 = 64;

impl Monitor {
    /// The sampling rate all registered estimators correct for.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of registered estimators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no estimators are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Elements of the sampled stream ingested by this monitor, *including*
    /// shards folded in by [`Monitor::merge`] — monitor-level and
    /// per-estimator provenance agree after a merge.
    pub fn samples_seen(&self) -> u64 {
        self.samples
    }

    /// Total memory footprint of all registered estimators, in bytes.
    pub fn space_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.est.space_bytes()).sum()
    }

    /// Ingest one element of the sampled stream.
    pub fn update(&mut self, x: u64) {
        self.samples += 1;
        // A registry RMW per scalar item would dominate the ~10 ns
        // path; buffer locally and flush in blocks. A trailing
        // sub-block stays unreported until the next flush or batch.
        self.obs_pending += 1;
        if self.obs_pending >= OBS_FLUSH_ITEMS {
            sss_obs::global().add(MetricId::IngestItemsTotal, u64::from(self.obs_pending));
            self.obs_pending = 0;
        }
        for e in &mut self.entries {
            e.est.update(x);
        }
    }

    /// Ingest a batch of consecutive sampled elements — the hot path.
    /// Each estimator consumes the whole batch while its state is cache-
    /// resident, and the per-element virtual dispatch of [`Monitor::update`]
    /// is amortised over the batch.
    ///
    /// Observability: each call records batch count/size (a handful of
    /// relaxed atomics per *batch*, priced by `bench_obs`), and every
    /// [`OBS_TIMING_SAMPLE`]th batch additionally times each
    /// estimator's update (`sss_ingest_slot_sampled_*`, labeled by
    /// registration slot — slot order matches
    /// [`Monitor::wire_layout`]).
    pub fn update_batch(&mut self, xs: &[u64]) {
        self.samples += xs.len() as u64;
        let obs = sss_obs::global();
        if obs.enabled() {
            self.obs_batches = self.obs_batches.wrapping_add(1);
            obs.add(
                MetricId::IngestItemsTotal,
                xs.len() as u64 + u64::from(self.obs_pending),
            );
            self.obs_pending = 0;
            obs.inc(MetricId::IngestBatchesTotal);
            obs.observe(MetricId::IngestBatchSize, xs.len() as u64);
            if self.obs_batches.is_multiple_of(OBS_TIMING_SAMPLE) {
                let t_batch = obs.timer();
                for (slot, e) in self.entries.iter_mut().enumerate() {
                    let t0 = std::time::Instant::now();
                    e.est.update_batch(xs);
                    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    obs.labeled_add(MetricId::IngestSlotSampledNanosTotal, slot as u64, ns);
                    obs.labeled_add(
                        MetricId::IngestSlotSampledItemsTotal,
                        slot as u64,
                        xs.len() as u64,
                    );
                }
                obs.observe_since(MetricId::IngestBatchNanos, t_batch);
                return;
            }
        }
        for e in &mut self.entries {
            e.est.update_batch(xs);
        }
    }

    /// Merge a monitor built from the **same builder configuration** that
    /// observed a disjoint part of the original stream: every estimator
    /// merges with its counterpart.
    ///
    /// # Panics
    /// If the monitors were built differently (rate, registration sequence
    /// or estimator types disagree). Release deployments that receive
    /// shard summaries from outside should prefer [`Monitor::try_merge`],
    /// which reports the incompatibility instead.
    pub fn merge(&mut self, other: &Monitor) {
        if let Err(e) = self.try_merge(other) {
            panic!("monitor merge: {e}");
        }
    }

    /// Fallible [`Monitor::merge`]: validates rate (within
    /// [`crate::estimate::RATE_MERGE_RTOL`] relative — shard `p` values
    /// arriving via config or serialization may differ in the last ulp),
    /// registration shape, labels, concrete estimator types and per-slot
    /// estimator compatibility (`merge_compatible`, which catches e.g. a
    /// `register()`-ed baseline carrying its own divergent rate) **before
    /// touching any state**, so an `Err` leaves `self` exactly as it was.
    pub fn try_merge(&mut self, other: &Monitor) -> Result<(), MergeError> {
        if !rates_compatible(self.p, other.p) {
            return Err(MergeError::RateMismatch {
                left: self.p,
                right: other.p,
            });
        }
        if self.entries.len() != other.entries.len() {
            return Err(MergeError::ShapeMismatch {
                left: self.entries.len(),
                right: other.entries.len(),
            });
        }
        for (mine, theirs) in self.entries.iter().zip(&other.entries) {
            if mine.label != theirs.label {
                return Err(MergeError::LabelMismatch {
                    left: mine.label.clone(),
                    right: theirs.label.clone(),
                });
            }
            mine.est.check_merge(theirs.est.as_any(), &mine.label)?;
        }
        for (mine, theirs) in self.entries.iter_mut().zip(&other.entries) {
            mine.est.merge_dyn(theirs.est.as_any(), &mine.label)?;
        }
        self.samples += other.samples;
        Ok(())
    }

    /// A shard clone for worker `shard` of a sharded deployment: identical
    /// estimator configuration (labels, parameters and — crucially — the
    /// hash seeds that make sketch merges valid), with **shard-local**
    /// randomness re-seeded from `split_seed(builder seed, shard)` so
    /// reservoir-style sampling decisions are independent across workers.
    ///
    /// The seed-splitting contract: randomness that participates in the
    /// merge algebra (CountMin/CountSketch/KMV/level-set hash functions)
    /// stays shard-invariant; randomness that only drives shard-local
    /// sampling (entropy reservoirs) is re-derived per shard. Forked
    /// monitors therefore always remain mergeable with each other and
    /// with the prototype.
    ///
    /// # Panics
    /// If this monitor has already ingested samples — forking ingested
    /// state would double-count it when the shards are merged back.
    pub fn fork_shard(&self, shard: u64) -> Monitor {
        assert!(
            self.samples == 0,
            "fork_shard requires a pristine monitor (saw {} samples)",
            self.samples
        );
        let mut forked = self.clone();
        forked.seed = split_seed(self.seed, shard);
        let mut seeds = SplitMix64::new(forked.seed);
        for e in &mut forked.entries {
            e.est.reseed_shard_local_dyn(seeds.derive());
        }
        forked
    }

    /// The estimate registered under the default label of `stat`
    /// (`None` if that statistic was not registered).
    pub fn estimate(&self, stat: Statistic) -> Option<Estimate> {
        self.estimate_labeled(&stat.to_string())
    }

    /// The estimate registered under an explicit label.
    pub fn estimate_labeled(&self, label: &str) -> Option<Estimate> {
        self.entries
            .iter()
            .find(|e| e.label == label)
            .map(|e| e.est.estimate())
    }

    /// All current estimates as `(label, estimate)` pairs, in registration
    /// order.
    pub fn report(&self) -> Vec<(String, Estimate)> {
        self.entries
            .iter()
            .map(|e| (e.label.clone(), e.est.estimate()))
            .collect()
    }

    /// `(label, statistic, space_bytes)` rows for capacity accounting.
    pub fn space_breakdown(&self) -> Vec<(String, Statistic, usize)> {
        self.entries
            .iter()
            .map(|e| (e.label.clone(), e.est.statistic(), e.est.space_bytes()))
            .collect()
    }

    /// Serialize the full monitor state as a framed wire snapshot —
    /// what a remote shard mails to a collector, and what a long-running
    /// deployment writes to disk before a restart. The restored monitor
    /// ([`Monitor::restore`]) is observationally identical: bitwise-equal
    /// estimates and `space_bytes`, and continued ingestion matches the
    /// never-serialized run exactly.
    ///
    /// # Errors
    /// [`CodecError::UnknownTag`] if a `register()`-ed estimator's wire
    /// tag is not in the decode registry — such bytes could be written
    /// but never restored, so the failure surfaces *now*, while the live
    /// state still exists, instead of at restore time.
    pub fn checkpoint(&self) -> Result<Vec<u8>, CodecError> {
        self.validate_restorable()?;
        let obs = sss_obs::global();
        let t0 = obs.timer();
        let bytes = self.encode_framed();
        obs.observe_since(MetricId::CodecEncodeNanos, t0);
        obs.add(MetricId::CodecEncodeBytesTotal, bytes.len() as u64);
        Ok(bytes)
    }

    /// Check that every registered estimator's wire tag is in the
    /// decode registry — [`Monitor::checkpoint`]'s precondition without
    /// the encode. Wrappers that embed monitors in their own frames
    /// (windowed, decayed) run this check up front instead of paying
    /// for a throwaway serialization.
    ///
    /// # Errors
    /// [`CodecError::UnknownTag`] for the first unrestorable tag.
    pub fn validate_restorable(&self) -> Result<(), CodecError> {
        for e in &self.entries {
            let tag = e.est.wire_tag();
            if !registry_knows(tag) {
                return Err(CodecError::UnknownTag { found: tag });
            }
        }
        Ok(())
    }

    /// Rebuild a monitor from [`Monitor::checkpoint`] bytes, validating
    /// magic, format version, type tag and every structural invariant.
    /// Snapshots from compatible builder configurations remain mergeable
    /// with live monitors ([`Monitor::try_merge`]).
    pub fn restore(bytes: &[u8]) -> Result<Monitor, CodecError> {
        let obs = sss_obs::global();
        let t0 = obs.timer();
        let decoded = Monitor::decode_framed(bytes);
        obs.observe_since(MetricId::CodecDecodeNanos, t0);
        if decoded.is_ok() {
            obs.add(MetricId::CodecDecodeBytesTotal, bytes.len() as u64);
        }
        decoded
    }

    /// The registered estimator slots, in registration order (the
    /// concurrent pipeline's strategy router reads them).
    pub(crate) fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Mutable slot access — the concurrent quiesce installs converted
    /// shared-atomic state through this.
    pub(crate) fn entries_mut(&mut self) -> &mut [Entry] {
        &mut self.entries
    }

    /// The builder seed (per-worker seed derivation in the concurrent
    /// pipeline follows [`Monitor::fork_shard`]'s contract).
    pub(crate) fn builder_seed(&self) -> u64 {
        self.seed
    }

    /// Set the monitor-level sample count — the concurrent quiesce's
    /// final accounting step, after per-slot state was installed
    /// directly rather than through `update`/`merge`.
    pub(crate) fn set_samples(&mut self, n: u64) {
        self.samples = n;
    }

    /// `(label, wire tag)` rows of the registered estimators — the
    /// self-describing half of a snapshot, useful for logging what a
    /// received summary carries before merging it.
    pub fn wire_layout(&self) -> Vec<(String, u16)> {
        self.entries
            .iter()
            .map(|e| (e.label.clone(), e.est.wire_tag()))
            .collect()
    }
}

impl WireCodec for Monitor {
    const WIRE_TAG: u16 = 0x040E;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.p.encode_into(out);
        self.seed.encode_into(out);
        self.samples.encode_into(out);
        put_len(out, self.entries.len());
        for e in &self.entries {
            e.label.encode_into(out);
            e.est.wire_tag().encode_into(out);
            // Length-prefixed estimator section: a corrupt estimator
            // payload cannot bleed into the next entry. (Decode still
            // fails the whole monitor on an unknown tag — skip-and-
            // continue is the cross-version follow-on in the ROADMAP.)
            let mut payload = Vec::new();
            e.est.encode_wire(&mut payload);
            put_len(out, payload.len());
            out.extend_from_slice(&payload);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let p = crate::f0::decode_rate(r)?;
        let seed = r.u64()?;
        let samples = r.u64()?;
        let count = r.len_prefix(12)?;
        let mut entries: Vec<Entry> = Vec::with_capacity(count);
        for _ in 0..count {
            let label = String::decode(r)?;
            if entries.iter().any(|e| e.label == label) {
                return Err(CodecError::Invalid {
                    what: "Monitor registers the same label twice",
                });
            }
            let tag = r.u16()?;
            let len = r.len_prefix(1)?;
            // The section reader inherits the frame's format version so
            // nested estimator payloads decode under the layout the
            // envelope announced.
            let mut section = Reader::with_version(r.take(len)?, r.version());
            let est = decode_estimator(tag, &mut section)?;
            section.expect_empty()?;
            entries.push(Entry { label, est });
        }
        Ok(Monitor {
            p,
            seed,
            entries,
            samples,
            obs_pending: 0,
            obs_batches: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::NaiveScaledFk;
    use crate::estimate::Guarantee;
    use sss_stream::{BernoulliSampler, ExactStats, StreamGen, ZipfStream};

    fn build_monitor(p: f64) -> Monitor {
        MonitorBuilder::with_seed(p, 99)
            .f0(0.05)
            .fk(2)
            .entropy(1500)
            .f1_heavy_hitters(0.05, 0.2, 0.05)
            .build()
    }

    #[test]
    fn single_pass_produces_all_statistics_together() {
        let n = 120_000u64;
        let p = 0.2;
        let stream = ZipfStream::new(3_000, 1.2).generate(n, 7);
        let exact = ExactStats::from_stream(stream.iter().copied());

        let mut monitor = build_monitor(p);
        let mut sampler = BernoulliSampler::new(p, 8);
        sampler.sample_batches(&stream, 1024, |chunk| monitor.update_batch(chunk));

        let f2 = monitor.estimate(Statistic::Fk(2)).unwrap();
        assert!(
            f2.mult_error(exact.fk(2)) < 1.15,
            "F2 err {}",
            f2.mult_error(exact.fk(2))
        );

        let f0 = monitor.estimate(Statistic::F0).unwrap();
        let ceiling = match f0.guarantee {
            Guarantee::BoundedFactor { factor } => factor,
            ref g => panic!("wrong guarantee kind {g:?}"),
        };
        assert!(f0.mult_error(exact.f0() as f64) <= ceiling);

        let h = monitor.estimate(Statistic::Entropy).unwrap();
        let ratio = h.value / exact.entropy();
        assert!((0.5..=2.0).contains(&ratio), "entropy ratio {ratio}");

        let hh = monitor.estimate(Statistic::F1HeavyHitters).unwrap();
        assert_eq!(hh.value, hh.report.len() as f64);

        // Provenance flows through.
        assert_eq!(f2.samples_seen, monitor.samples_seen());
        assert_eq!(f2.p, p);
        assert!(monitor.space_bytes() > 0);
        assert_eq!(monitor.len(), 4);
    }

    #[test]
    fn batched_and_per_item_ingestion_agree_exactly() {
        let p = 0.5;
        let stream = ZipfStream::new(500, 1.1).generate(30_000, 3);
        let sampled = BernoulliSampler::new(p, 4).sample_to_vec(&stream);

        let mut a = build_monitor(p);
        for &x in &sampled {
            a.update(x);
        }
        let mut b = build_monitor(p);
        for chunk in sampled.chunks(777) {
            b.update_batch(chunk);
        }
        assert_eq!(a.samples_seen(), b.samples_seen());
        for ((la, ea), (lb, eb)) in a.report().into_iter().zip(b.report()) {
            assert_eq!(la, lb);
            assert!(
                (ea.value - eb.value).abs() <= 1e-9 * ea.value.abs().max(1.0),
                "{la}: per-item {} vs batched {}",
                ea.value,
                eb.value
            );
        }
    }

    #[test]
    fn merged_monitors_match_single_monitor() {
        let p = 0.3;
        let stream = ZipfStream::new(1_000, 1.2).generate(60_000, 11);
        let (left, right) = stream.split_at(stream.len() / 2);

        let mut whole = build_monitor(p);
        let mut sampler = BernoulliSampler::new(p, 12);
        sampler.sample_slice(&stream, |x| whole.update(x));

        // Site monitors share the builder config; each site samples its
        // own (disjoint) slice of P independently.
        let mut site_a = build_monitor(p);
        let mut site_b = build_monitor(p);
        let mut sa = BernoulliSampler::new(p, 13);
        sa.sample_slice(left, |x| site_a.update(x));
        let mut sb = BernoulliSampler::new(p, 14);
        sb.sample_slice(right, |x| site_b.update(x));
        site_a.merge(&site_b);

        // F2 via exact collision oracles: merged shards answer within the
        // same statistical band as the whole-stream monitor.
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
        let merged_f2 = site_a.estimate(Statistic::Fk(2)).unwrap();
        let whole_f2 = whole.estimate(Statistic::Fk(2)).unwrap();
        assert!(merged_f2.mult_error(truth) < 1.2);
        assert!(whole_f2.mult_error(truth) < 1.2);
        assert_eq!(
            merged_f2.samples_seen,
            site_a.samples_seen(),
            "merged provenance must count both shards"
        );
    }

    #[test]
    fn register_escape_hatch_carries_baselines() {
        let p = 0.5;
        let mut monitor = MonitorBuilder::with_seed(p, 5)
            .fk(2)
            .register("F2_naive", NaiveScaledFk::new(2, p))
            .build();
        monitor.update_batch(&[1, 1, 2, 3, 1]);
        let naive = monitor.estimate_labeled("F2_naive").unwrap();
        assert_eq!(naive.guarantee, Guarantee::Heuristic);
        assert!(naive.value > 0.0);
        assert_eq!(monitor.report().len(), 2);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_rejected() {
        let _ = MonitorBuilder::new(0.5).f0(0.05).f0(0.01);
    }

    #[test]
    #[should_panic(expected = "different statistics")]
    fn merge_rejects_mismatched_monitors() {
        let mut a = MonitorBuilder::with_seed(0.5, 1).f0(0.05).build();
        let b = MonitorBuilder::with_seed(0.5, 1).fk(2).build();
        a.merge(&b);
    }

    #[test]
    fn try_merge_reports_typed_errors_without_mutating() {
        use crate::estimate::MergeError;

        // Rate mismatch beyond the relative tolerance.
        let mut a = MonitorBuilder::with_seed(0.5, 1).f0(0.05).build();
        a.update_batch(&[1, 2, 3]);
        let b = MonitorBuilder::with_seed(0.25, 1).f0(0.05).build();
        assert_eq!(
            a.try_merge(&b),
            Err(MergeError::RateMismatch {
                left: 0.5,
                right: 0.25
            })
        );
        assert_eq!(a.samples_seen(), 3, "failed merge must not mutate");

        // Shape mismatch.
        let c = MonitorBuilder::with_seed(0.5, 1).f0(0.05).fk(2).build();
        assert_eq!(
            a.try_merge(&c),
            Err(MergeError::ShapeMismatch { left: 1, right: 2 })
        );

        // Label mismatch at a slot.
        let d = MonitorBuilder::with_seed(0.5, 1).fk(2).build();
        assert!(matches!(
            a.try_merge(&d),
            Err(MergeError::LabelMismatch { .. })
        ));

        // Same label, different concrete type (exact vs sketched Fk).
        let mut e = MonitorBuilder::with_seed(0.5, 1).fk(2).build();
        let f = MonitorBuilder::with_seed(0.5, 1)
            .fk_sketched(2, 1 << 12, 0.2)
            .build();
        assert_eq!(
            e.try_merge(&f),
            Err(MergeError::TypeMismatch {
                label: "F2".to_string()
            })
        );
    }

    #[test]
    fn try_merge_precheck_catches_slot_level_rate_mismatch() {
        use crate::baselines::NaiveScaledF0;
        use crate::estimate::MergeError;

        // Monitor-level rates agree, but one side's register()-ed baseline
        // carries a divergent internal rate: the per-slot pre-check must
        // reject BEFORE the earlier slot mutates (no half-applied merge).
        let build = |inner_p: f64| {
            MonitorBuilder::with_seed(0.5, 1)
                .f0(0.05)
                .register("F0_naive", NaiveScaledF0::new(inner_p, 9))
                .build()
        };
        let mut a = build(0.5);
        a.update_batch(&[1, 2, 3]);
        let f0_before = a.estimate(Statistic::F0).unwrap();
        let mut b = build(0.25);
        b.update_batch(&[4, 5]);
        assert_eq!(
            a.try_merge(&b),
            Err(MergeError::RateMismatch {
                left: 0.5,
                right: 0.25
            })
        );
        assert_eq!(a.samples_seen(), 3, "failed merge must not mutate");
        assert_eq!(
            a.estimate(Statistic::F0).unwrap(),
            f0_before,
            "the slot ahead of the mismatch must be untouched"
        );
    }

    #[test]
    #[should_panic(expected = "pristine monitor")]
    fn fork_shard_rejects_ingested_monitor() {
        let mut m = MonitorBuilder::with_seed(0.5, 1).f0(0.05).build();
        m.update(1);
        let _ = m.fork_shard(0);
    }

    #[test]
    fn try_merge_accepts_last_ulp_rate_difference() {
        // p values that differ in the last ulp (e.g. a rate that travelled
        // through a config file) must merge fine.
        let p: f64 = 0.3;
        let p_ulp = f64::from_bits(p.to_bits() + 1);
        assert_ne!(p, p_ulp);
        let mut a = MonitorBuilder::with_seed(p, 1).fk(2).build();
        a.update_batch(&[1, 1, 2]);
        let mut b = MonitorBuilder::with_seed(p_ulp, 1).fk(2).build();
        b.update_batch(&[2, 3]);
        assert_eq!(a.try_merge(&b), Ok(()));
        assert_eq!(a.samples_seen(), 5);
    }

    #[test]
    fn merged_provenance_reflects_the_union() {
        // Satellite regression: after merging two shards, `samples_seen`
        // and `p` on the monitor AND on every per-estimator `Estimate`
        // must reflect the union (sum of shard samples, shared p) — not
        // just the point value.
        let p = 0.4;
        let stream = ZipfStream::new(400, 1.1).generate(40_000, 21);
        let (left, right) = stream.split_at(stream.len() / 2);
        let mut a = build_monitor(p);
        let mut b = build_monitor(p);
        let mut sa = BernoulliSampler::new(p, 31);
        sa.sample_slice(left, |x| a.update(x));
        let mut sb = BernoulliSampler::new(p, 32);
        sb.sample_slice(right, |x| b.update(x));
        let (na, nb) = (a.samples_seen(), b.samples_seen());
        assert!(na > 0 && nb > 0);

        a.merge(&b);
        assert_eq!(a.samples_seen(), na + nb, "monitor-level samples sum");
        for (label, est) in a.report() {
            assert_eq!(
                est.samples_seen,
                na + nb,
                "{label}: estimate provenance must count both shards"
            );
            assert_eq!(est.p, p, "{label}: merged p must be the shared rate");
        }
    }

    #[test]
    fn forked_shards_stay_mergeable_and_reseed_shard_local_randomness() {
        let p = 0.5;
        let stream = ZipfStream::new(200, 1.0).generate(30_000, 8);
        let proto = build_monitor(p);
        let mut s0 = proto.fork_shard(0);
        let mut s1 = proto.fork_shard(1);
        // Same sampled elements through both forks: hash-based substrates
        // (F0 bottom-k, Fk collisions, CountMin HH) must agree exactly —
        // the merge-critical seeds are shard-invariant...
        let sampled = BernoulliSampler::new(p, 4).sample_to_vec(&stream);
        s0.update_batch(&sampled);
        s1.update_batch(&sampled);
        let (r0, r1) = (s0.report(), s1.report());
        assert_eq!(r0[0].1.value, r1[0].1.value, "F0 is shard-seed invariant");
        assert_eq!(r0[1].1.value, r1[1].1.value, "Fk is deterministic");
        // ...while the entropy reservoir (shard-local randomness) was
        // re-seeded per shard, so its sampling decisions differ.
        assert_ne!(
            r0[2].1.value, r1[2].1.value,
            "entropy reservoirs should be independently seeded across shards"
        );
        // And forks merge with each other (shared hashes, shared p).
        s0.merge(&s1);
        assert_eq!(s0.samples_seen(), 2 * sampled.len() as u64);
    }

    #[test]
    fn empty_monitor_is_harmless() {
        let mut m = MonitorBuilder::new(0.5).build();
        m.update(1);
        m.update_batch(&[2, 3]);
        assert!(m.is_empty());
        assert_eq!(m.samples_seen(), 3);
        assert!(m.report().is_empty());
        assert_eq!(m.estimate(Statistic::F0), None);
    }
}
