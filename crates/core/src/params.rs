//! Shared approximation-parameter plumbing.

use sss_codec::{CodecError, Reader, WireCodec};

/// A `(1+ε, δ)` approximation target (paper, Definition 1: the output `X̃`
/// satisfies `α⁻¹ ≤ X/X̃ ≤ α` with probability `≥ 1 − δ`, here with
/// `α = 1+ε`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxParams {
    /// Relative error target `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
}

impl ApproxParams {
    /// Validated construction.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0,1), got {delta}"
        );
        Self { epsilon, delta }
    }

    /// Whether an estimate meets this target against a known truth, in the
    /// multiplicative sense of Definition 1.
    pub fn accepts(&self, estimate: f64, truth: f64) -> bool {
        if truth == 0.0 {
            return estimate == 0.0;
        }
        if estimate <= 0.0 {
            return false;
        }
        let alpha = 1.0 + self.epsilon;
        let ratio = truth / estimate;
        (1.0 / alpha) <= ratio && ratio <= alpha
    }

    /// The multiplicative error `max(X/X̃, X̃/X)` of an estimate (`∞` when
    /// exactly one of the two is zero; 1 when both are).
    pub fn mult_error(estimate: f64, truth: f64) -> f64 {
        if truth == 0.0 && estimate == 0.0 {
            return 1.0;
        }
        if truth <= 0.0 || estimate <= 0.0 {
            return f64::INFINITY;
        }
        (estimate / truth).max(truth / estimate)
    }
}

impl WireCodec for ApproxParams {
    const MIN_WIRE_BYTES: usize = 16;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.epsilon.encode_into(out);
        self.delta.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(ApproxParams {
            epsilon: r.prob_open()?,
            delta: r.prob_open()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_within_band() {
        let p = ApproxParams::new(0.1, 0.05);
        assert!(p.accepts(100.0, 100.0));
        assert!(p.accepts(109.0, 100.0));
        assert!(p.accepts(92.0, 100.0)); // 100/92 ≈ 1.087 ≤ 1.1
        assert!(!p.accepts(115.0, 100.0));
        assert!(!p.accepts(89.0, 100.0));
    }

    #[test]
    fn zero_handling() {
        let p = ApproxParams::new(0.5, 0.1);
        assert!(p.accepts(0.0, 0.0));
        assert!(!p.accepts(1.0, 0.0));
        assert!(!p.accepts(0.0, 1.0));
        assert_eq!(ApproxParams::mult_error(0.0, 0.0), 1.0);
        assert_eq!(ApproxParams::mult_error(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn mult_error_is_symmetric() {
        assert_eq!(
            ApproxParams::mult_error(50.0, 100.0),
            ApproxParams::mult_error(200.0, 100.0)
        );
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = ApproxParams::new(1.5, 0.1);
    }
}
