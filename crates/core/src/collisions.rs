//! Collision oracles: the `C̃_ℓ(L)` providers plugged into Algorithm 1.
//!
//! The paper computes `C̃_ℓ(L)` with the Indyk–Woodruff estimator (Theorem
//! 2). We expose that behind a trait with two implementations so that
//! experiments can separate the two error sources of Lemma 3:
//!
//! * [`ExactCollisions`] — exact incremental collision counting from a
//!   frequency map of the *sampled* stream. Space `O(F_0(L))`; isolates the
//!   Bernoulli-sampling error (events `E¹_ℓ`, Lemma 5).
//! * [`LevelSetCollisions`] — the paper's sketched path at
//!   `Õ(p⁻¹m^{1−2/k})` space; adds the sketching error (events `E²_ℓ`,
//!   Lemmas 6–7).

use sss_codec::{
    put_packed_sorted_u64s, put_varint_u64, put_varint_u64s, CodecError, Reader, WireCodec,
};
use sss_hash::{fp_hash_map, FpHashMap};
use sss_sketch::levelset::{LevelSetConfig, LevelSetEstimator};

/// A one-pass structure that observes the sampled stream and can estimate
/// the `ℓ`-wise collision counts `C_ℓ` of what it saw.
pub trait CollisionOracle {
    /// Ingest one element of the sampled stream.
    fn update(&mut self, x: u64);

    /// Ingest a batch of consecutive elements (semantically identical to
    /// one-by-one updates).
    fn update_batch(&mut self, xs: &[u64]) {
        for &x in xs {
            self.update(x);
        }
    }

    /// Merge a second oracle of the same configuration: afterwards `self`
    /// summarises the concatenation of both ingested streams.
    ///
    /// # Panics
    /// If the oracles are incompatible (different order or sketch seeds).
    fn merge(&mut self, other: &Self)
    where
        Self: Sized;

    /// Exact number of elements ingested (`F_1(L)`; a single counter).
    fn n(&self) -> u64;

    /// Estimate `C_ℓ` of the ingested stream, for `1 ≤ ℓ ≤ max_order`.
    fn estimate(&self, ell: u32) -> f64;

    /// Largest `ℓ` this oracle supports.
    fn max_order(&self) -> u32;

    /// Memory footprint in 64-bit words (for the space experiments).
    fn space_words(&self) -> usize;
}

/// Exact collision counting via a frequency map, maintained incrementally:
/// when an item's count rises from `g` to `g+1`, `C_ℓ` grows by
/// `binom(g, ℓ−1)` — `O(k)` work per update.
#[derive(Debug, Clone)]
pub struct ExactCollisions {
    freqs: FpHashMap<u64, u64>,
    /// `c[ℓ]` holds `C_ℓ`; index 0 unused, `c[1] = n`.
    c: Vec<f64>,
    n: u64,
}

impl ExactCollisions {
    /// Oracle tracking `C_1 … C_k`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "need k >= 1");
        Self {
            freqs: fp_hash_map(),
            c: vec![0.0; k as usize + 1],
            n: 0,
        }
    }

    /// The exact frequency of `x` in the ingested stream.
    pub fn freq(&self, x: u64) -> u64 {
        self.freqs.get(&x).copied().unwrap_or(0)
    }

    /// Number of distinct ingested items.
    pub fn distinct(&self) -> u64 {
        self.freqs.len() as u64
    }
}

/// `binom(f, ℓ)` over `f64` (local copy; `sss-stream` is a dev-dependency
/// only).
fn binom_f64(f: u64, l: u32) -> f64 {
    if (f as u128) < l as u128 {
        return 0.0;
    }
    let mut acc = 1.0f64;
    for j in 0..l as u64 {
        acc *= (f - j) as f64 / (j + 1) as f64;
    }
    acc
}

impl CollisionOracle for ExactCollisions {
    fn update(&mut self, x: u64) {
        let g = self.freqs.entry(x).or_insert(0);
        let old = *g;
        *g += 1;
        self.n += 1;
        // ΔC_ℓ = binom(old, ℓ−1); running product avoids recomputation:
        // binom(old, 0) = 1, binom(old, j) = binom(old, j−1)·(old−j+1)/j.
        let mut binom = 1.0f64;
        self.c[1] += 1.0;
        for ell in 2..self.c.len() as u32 {
            let j = (ell - 1) as u64;
            if old < j {
                break; // all higher binomials are zero
            }
            binom *= (old - (j - 1)) as f64 / j as f64;
            self.c[ell as usize] += binom;
        }
    }

    /// Merge per shared item by patching the collision counts in closed
    /// form, `ΔC_ℓ = binom(a+b, ℓ) − binom(a, ℓ) − binom(b, ℓ)` — `O(k)`
    /// per item of `other`. Patches apply in ascending item order so the
    /// float accumulation is canonical: merging a deserialized oracle
    /// (same contents, different hash-map history) lands on bitwise the
    /// same `C_ℓ` as merging the original.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.c.len(), other.c.len(), "order mismatch");
        let k = self.c.len() as u32 - 1;
        // Start from the sum of both accumulators, then patch shared items.
        for ell in 1..=k as usize {
            self.c[ell] += other.c[ell];
        }
        let mut rows: Vec<(u64, u64)> = other.freqs.iter().map(|(&i, &g)| (i, g)).collect();
        rows.sort_unstable();
        for (item, b) in rows {
            let a = self.freq(item);
            if a > 0 {
                for ell in 2..=k {
                    self.c[ell as usize] +=
                        binom_f64(a + b, ell) - binom_f64(a, ell) - binom_f64(b, ell);
                }
            }
            self.freqs.insert(item, a + b);
        }
        self.n += other.n;
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn estimate(&self, ell: u32) -> f64 {
        assert!(
            ell >= 1 && (ell as usize) < self.c.len(),
            "order {ell} out of range"
        );
        self.c[ell as usize]
    }

    fn max_order(&self) -> u32 {
        self.c.len() as u32 - 1
    }

    fn space_words(&self) -> usize {
        2 * self.freqs.len() + self.c.len()
    }
}

impl WireCodec for ExactCollisions {
    const WIRE_TAG: u16 = 0x040B;

    fn encode_into(&self, out: &mut Vec<u8>) {
        // v2 layout: the frequency map — the O(F_0(L)) bulk of Algorithm
        // 1's state — ships columnar: sorted-delta item ids + FoR-packed
        // sampled counts. The collision accumulators stay raw f64.
        self.c.encode_into(out);
        put_varint_u64(out, self.n);
        let mut rows: Vec<(u64, u64)> = self.freqs.iter().map(|(&i, &g)| (i, g)).collect();
        rows.sort_unstable();
        put_packed_sorted_u64s(out, &rows.iter().map(|&(i, _)| i).collect::<Vec<_>>());
        put_varint_u64s(out, &rows.iter().map(|&(_, g)| g).collect::<Vec<_>>());
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let c: Vec<f64> = Vec::decode(r)?;
        if c.len() < 2 {
            return Err(CodecError::Invalid {
                what: "ExactCollisions accumulator shorter than [unused, C_1]",
            });
        }
        let (n, rows);
        if r.v2() {
            n = r.varint_u64()?;
            let items = r.packed_sorted_u64s()?;
            let gs = r.varint_u64s()?;
            if gs.len() != items.len() {
                return Err(CodecError::Invalid {
                    what: "ExactCollisions column length mismatch",
                });
            }
            rows = items.into_iter().zip(gs).collect::<Vec<_>>();
        } else {
            n = r.u64()?;
            let len = r.len_prefix(16)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push((r.u64()?, r.u64()?));
            }
            rows = v;
        }
        let mut freqs = fp_hash_map();
        let mut total: u64 = 0;
        for (item, g) in rows {
            if g == 0 || freqs.insert(item, g).is_some() {
                return Err(CodecError::Invalid {
                    what: "ExactCollisions frequency row invalid",
                });
            }
            total = total.checked_add(g).ok_or(CodecError::Invalid {
                what: "ExactCollisions frequencies overflow u64",
            })?;
        }
        if total != n {
            return Err(CodecError::Invalid {
                what: "ExactCollisions frequencies do not sum to n",
            });
        }
        Ok(ExactCollisions { freqs, c, n })
    }
}

/// Collision estimation through the Indyk–Woodruff level-set sketch.
#[derive(Debug, Clone)]
pub struct LevelSetCollisions {
    inner: LevelSetEstimator,
    max_order: u32,
}

impl LevelSetCollisions {
    /// Oracle for orders up to `k`, backed by a level-set estimator with the
    /// given configuration.
    pub fn new(k: u32, config: &LevelSetConfig, seed: u64) -> Self {
        assert!(k >= 1);
        Self {
            inner: LevelSetEstimator::new(config, seed),
            max_order: k,
        }
    }

    /// Access the underlying level-set estimator (for diagnostics).
    pub fn level_sets(&self) -> &LevelSetEstimator {
        &self.inner
    }
}

impl CollisionOracle for LevelSetCollisions {
    fn update(&mut self, x: u64) {
        self.inner.update(x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        self.inner.update_batch(xs);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.max_order, other.max_order, "order mismatch");
        self.inner.merge(&other.inner);
    }

    fn n(&self) -> u64 {
        self.inner.n()
    }

    fn estimate(&self, ell: u32) -> f64 {
        assert!(
            ell >= 1 && ell <= self.max_order,
            "order {ell} out of range"
        );
        self.inner.collision_estimate(ell)
    }

    fn max_order(&self) -> u32 {
        self.max_order
    }

    fn space_words(&self) -> usize {
        self.inner.space_words()
    }
}

impl WireCodec for LevelSetCollisions {
    const WIRE_TAG: u16 = 0x040C;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.max_order.encode_into(out);
        self.inner.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let max_order = r.u32()?;
        if max_order == 0 {
            return Err(CodecError::Invalid {
                what: "LevelSetCollisions order == 0",
            });
        }
        Ok(LevelSetCollisions {
            inner: LevelSetEstimator::decode(r)?,
            max_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_stream::exact::binom_u128;
    use sss_stream::ExactStats;

    #[test]
    fn incremental_matches_batch_formula() {
        let stream: Vec<u64> = (0..5000u64).map(|i| i % 137).collect();
        let mut oracle = ExactCollisions::new(5);
        for &x in &stream {
            oracle.update(x);
        }
        let stats = ExactStats::from_stream(stream.iter().copied());
        for ell in 1..=5u32 {
            let exact = stats.collisions(ell);
            let got = oracle.estimate(ell);
            assert!(
                (got - exact).abs() <= 1e-9 * exact.max(1.0),
                "C_{ell}: {got} vs {exact}"
            );
        }
    }

    #[test]
    fn single_item_collisions_are_binomials() {
        let mut oracle = ExactCollisions::new(4);
        for _ in 0..100 {
            oracle.update(9);
        }
        for ell in 1..=4u32 {
            assert_eq!(
                oracle.estimate(ell),
                binom_u128(100, ell).unwrap() as f64,
                "ℓ={ell}"
            );
        }
        assert_eq!(oracle.freq(9), 100);
        assert_eq!(oracle.distinct(), 1);
    }

    #[test]
    fn all_distinct_has_no_collisions() {
        let mut oracle = ExactCollisions::new(3);
        for x in 0..1000u64 {
            oracle.update(x);
        }
        assert_eq!(oracle.estimate(1), 1000.0);
        assert_eq!(oracle.estimate(2), 0.0);
        assert_eq!(oracle.estimate(3), 0.0);
    }

    #[test]
    fn levelset_oracle_roughly_agrees_with_exact() {
        // Mixed-frequency stream exercising both recovery regimes.
        let mut stream = Vec::new();
        for hot in 0..5u64 {
            stream.extend(std::iter::repeat_n(sss_hash::fingerprint64(hot), 2000));
        }
        for light in 100..4100u64 {
            stream.extend(std::iter::repeat_n(sss_hash::fingerprint64(light), 3));
        }
        let cfg = LevelSetConfig::for_universe(1 << 16, 512);
        let mut ls = LevelSetCollisions::new(3, &cfg, 7);
        let mut ex = ExactCollisions::new(3);
        for &x in &stream {
            ls.update(x);
            ex.update(x);
        }
        assert_eq!(ls.n(), ex.n());
        for ell in 2..=3u32 {
            let truth = ex.estimate(ell);
            let est = ls.estimate(ell);
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.35, "C_{ell}: {est} vs {truth} (rel {rel})");
        }
    }

    #[test]
    fn space_accounting_is_positive_and_ordered() {
        let cfg = LevelSetConfig::for_universe(1 << 16, 256);
        let ls = LevelSetCollisions::new(2, &cfg, 1);
        assert!(ls.space_words() > 256);
        let mut ex = ExactCollisions::new(2);
        for x in 0..100u64 {
            ex.update(x);
        }
        assert!(ex.space_words() >= 200);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn order_bounds_enforced() {
        let oracle = ExactCollisions::new(3);
        let _ = oracle.estimate(4);
    }

    #[test]
    fn merge_equals_concatenation() {
        let left: Vec<u64> = (0..4000u64).map(|i| i % 97).collect();
        let right: Vec<u64> = (0..3000u64).map(|i| i % 41).collect();
        let mut a = ExactCollisions::new(4);
        let mut b = ExactCollisions::new(4);
        let mut whole = ExactCollisions::new(4);
        for &x in &left {
            a.update(x);
            whole.update(x);
        }
        for &x in &right {
            b.update(x);
            whole.update(x);
        }
        a.merge(&b);
        assert_eq!(a.n(), whole.n());
        assert_eq!(a.distinct(), whole.distinct());
        for ell in 1..=4u32 {
            let merged = a.estimate(ell);
            let direct = whole.estimate(ell);
            assert!(
                (merged - direct).abs() <= 1e-6 * direct.max(1.0),
                "C_{ell}: merged {merged} vs direct {direct}"
            );
        }
    }

    #[test]
    fn merge_with_disjoint_items() {
        let mut a = ExactCollisions::new(3);
        let mut b = ExactCollisions::new(3);
        for _ in 0..10 {
            a.update(1);
            b.update(2);
        }
        a.merge(&b);
        assert_eq!(a.estimate(2), 2.0 * 45.0); // two items of freq 10
        assert_eq!(a.freq(1), 10);
        assert_eq!(a.freq(2), 10);
    }

    #[test]
    fn merge_into_empty_oracle() {
        let mut a = ExactCollisions::new(3);
        let mut b = ExactCollisions::new(3);
        for x in 0..100u64 {
            b.update(x % 7);
        }
        a.merge(&b);
        for ell in 1..=3u32 {
            assert_eq!(a.estimate(ell), b.estimate(ell));
        }
    }
}
