//! Estimators for statistics of a stream observed only through Bernoulli
//! sub-sampling.
//!
//! This crate is the reproduction of
//!
//! > McGregor, Pavan, Tirthapura, Woodruff.
//! > *Space-Efficient Estimation of Statistics over Sub-Sampled Streams.*
//! > PODS 2012 / Algorithmica 74(2), 2016.
//!
//! **Setting.** An original stream `P` over universe `[m]` is Bernoulli
//! sampled at a known, fixed rate `p`; the algorithm sees only the sampled
//! stream `L`, in one pass, in small space, and must estimate aggregates of
//! `P`. Plain "estimate on `L` and rescale" fails for most aggregates; each
//! estimator here implements the paper's correction:
//!
//! | Estimator | Paper result | Guarantee |
//! |---|---|---|
//! | [`SampledFkEstimator`] | Thm 1 (§3) | `(1+ε, δ)` for `F_k`, `k ≥ 2`, space `Õ(p⁻¹m^{1−2/k})` |
//! | [`SampledF0Estimator`] | Lemma 8 (§4) | error `≤ 4/√p` — optimal up to constants (Thm 4) |
//! | [`SampledEntropyEstimator`] | Thm 5 (§5) | constant factor when `H(f) = ω(p^{−1/2}n^{−1/6})` |
//! | [`SampledF1HeavyHitters`] | Thm 6 (§6) | `(α, ε, δ)` `F_1`-heavy hitters when `F_1 ≥ Cp⁻¹α⁻¹ε⁻²log(n/δ)` |
//! | [`SampledF2HeavyHitters`] | Thm 7 (§6) | `(α, 1−√p(1−ε))` `F_2`-heavy hitters, space `Õ(1/p)` |
//!
//! Baselines ([`baselines`]) cover Rusu–Dobra `F_2` scaling and the naive
//! normalisations the introduction motivates against.
//!
//! ## The unified API
//!
//! Every estimator above (plus the baselines and the adaptive-rate
//! extension) implements [`SubsampledEstimator`]: `update` /
//! `update_batch` over the sampled stream, `merge` for distributed
//! monitors over disjoint traffic, a typed [`Estimate`] carrying the
//! point value, its [`Guarantee`] and provenance, and honest
//! `space_bytes` accounting. The [`Monitor`] front-end (see
//! [`monitor`]) registers any subset of statistics and drives them all
//! in a single pass:
//!
//! ```
//! use sss_core::{MonitorBuilder, Statistic};
//!
//! let mut monitor = MonitorBuilder::new(0.5).f0(0.05).fk(2).build();
//! monitor.update_batch(&[7, 7, 9, 4]);
//! let f2 = monitor.estimate(Statistic::Fk(2)).unwrap();
//! assert_eq!(f2.value, 16.0); // 2·C₂/p² + F₁(L)/p on the toy sample
//! ```

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod baselines;
pub mod collisions;
pub mod concurrent;
pub mod delta;
pub mod entropy;
pub mod estimate;
pub mod f0;
pub mod fk;
pub mod flows;
pub mod heavy_hitters;
pub mod monitor;
pub mod numeric;
pub mod params;
pub mod sharded;
pub mod stirling;

pub use adaptive::{AdaptiveF2Estimator, TargetCollisionsPolicy};
pub use baselines::{NaiveScaledF0, NaiveScaledFk, RusuDobraF2};
pub use collisions::{CollisionOracle, ExactCollisions, LevelSetCollisions};
pub use concurrent::{ConcurrentConfig, ConcurrentMonitor, ParallelStrategy};
pub use delta::{apply_snapshot_delta, snapshot_delta, SnapshotDelta};
pub use entropy::SampledEntropyEstimator;
pub use estimate::{
    rates_compatible, Estimate, Guarantee, MergeError, Statistic, SubsampledEstimator,
    RATE_MERGE_RTOL,
};
pub use f0::{f0_lower_bound_factor, SampledF0Estimator};
pub use fk::{
    fk_error_schedule, min_sampling_probability, recommended_levelset_config, SampledFkEstimator,
};
pub use flows::{FlowSizeEstimate, FlowSizeUnfolder, SampledFlowHistogram};
pub use heavy_hitters::{
    theorem6_min_f1, theorem7_min_sqrt_f2, SampledF1HeavyHitters, SampledF2HeavyHitters,
};
pub use monitor::{Monitor, MonitorBuilder};
pub use params::ApproxParams;
pub use sharded::{ShardedConfig, ShardedMonitor};
