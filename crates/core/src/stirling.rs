//! The combinatorial coefficients of the paper's Lemma 1.
//!
//! Expanding the falling factorial shows
//!
//! ```text
//! ℓ!·C_ℓ(P) = Σ_i f_i(f_i−1)…(f_i−ℓ+1) = Σ_{l=0}^{ℓ} s(ℓ,l)·F_l(P)
//! ```
//!
//! where `s(ℓ,l)` are the **signed Stirling numbers of the first kind**, so
//!
//! ```text
//! F_ℓ(P) = ℓ!·C_ℓ(P) + Σ_{l=1}^{ℓ−1} β^ℓ_l·F_l(P),    β^ℓ_l = −s(ℓ,l).
//! ```
//!
//! The paper writes `β^ℓ_l = (−1)^{ℓ−l+1}·e_{ℓ−l}(1,…,ℓ−1)` via elementary
//! symmetric polynomials; the two forms are equal (tested below). This
//! module also provides `A_ℓ = Σ_l |β^ℓ_l|` and the error schedule
//! `ε_{ℓ−1} = ε_ℓ/(A_ℓ+1)` of Lemma 3.

/// Largest moment order the `i128` Stirling table supports without
/// overflow (|s(ℓ,l)| ≤ ℓ! and 33! < 2^127).
pub const MAX_K: u32 = 32;

/// Signed Stirling numbers of the first kind `s(ℓ, l)` for `0 ≤ l ≤ ℓ`.
///
/// Computed by the triangle recurrence `s(ℓ+1, l) = s(ℓ, l−1) − ℓ·s(ℓ, l)`.
pub fn stirling_first_row(ell: u32) -> Vec<i128> {
    assert!(ell <= MAX_K, "moment order {ell} exceeds MAX_K = {MAX_K}");
    let mut row = vec![0i128; ell as usize + 1];
    row[0] = 1; // s(0,0) = 1
    for n in 0..ell as usize {
        // Transform row n into row n+1, right to left.
        let mut next = vec![0i128; ell as usize + 1];
        for l in 0..=n + 1 {
            let from_prev = if l > 0 { row[l - 1] } else { 0 };
            next[l] = from_prev - (n as i128) * row[l];
        }
        row = next;
    }
    row
}

/// The coefficients `β^ℓ_l = −s(ℓ, l)` for `l = 1, …, ℓ−1`
/// (index 0 of the returned vector is `β^ℓ_1`).
pub fn beta_coefficients(ell: u32) -> Vec<i128> {
    assert!(ell >= 1);
    let s = stirling_first_row(ell);
    (1..ell as usize).map(|l| -s[l]).collect()
}

/// `A_ℓ = Σ_{l=1}^{ℓ−1} |β^ℓ_l|` (Lemma 3).
pub fn a_ell(ell: u32) -> f64 {
    beta_coefficients(ell)
        .iter()
        .map(|&b| b.unsigned_abs() as f64)
        .sum()
}

/// The error schedule of Lemma 3: returns `ε_1, …, ε_k` (1-indexed in the
/// paper; `schedule[ℓ-1] = ε_ℓ` here) with `ε_k = eps` and
/// `ε_{ℓ−1} = ε_ℓ/(A_ℓ+1)`.
pub fn epsilon_schedule(k: u32, eps: f64) -> Vec<f64> {
    assert!(k >= 1);
    assert!(eps > 0.0);
    let mut sched = vec![0.0; k as usize];
    sched[k as usize - 1] = eps;
    for ell in (2..=k).rev() {
        let e = sched[ell as usize - 1];
        sched[ell as usize - 2] = e / (a_ell(ell) + 1.0);
    }
    sched
}

/// `ℓ!` as `f64` (exact for `ℓ ≤ 22`, within one ulp far beyond).
pub fn factorial_f64(ell: u32) -> f64 {
    (1..=ell as u64).map(|x| x as f64).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rows_match_hand_expansion() {
        // x(x−1) = x² − x
        assert_eq!(stirling_first_row(2), vec![0, -1, 1]);
        // x(x−1)(x−2) = x³ − 3x² + 2x
        assert_eq!(stirling_first_row(3), vec![0, 2, -3, 1]);
        // x(x−1)(x−2)(x−3) = x⁴ − 6x³ + 11x² − 6x
        assert_eq!(stirling_first_row(4), vec![0, -6, 11, -6, 1]);
    }

    #[test]
    fn beta_matches_paper_elementary_symmetric_formula() {
        // β^ℓ_l = (−1)^{ℓ−l+1} · e_{ℓ−l}(1, 2, …, ℓ−1)
        for ell in 2..=8u32 {
            let beta = beta_coefficients(ell);
            // Elementary symmetric polynomials of {1, …, ℓ−1} via the
            // generating product Π (1 + j·t).
            let mut e = vec![0i128; ell as usize];
            e[0] = 1;
            for j in 1..ell as i128 {
                for d in (1..ell as usize).rev() {
                    e[d] += j * e[d - 1];
                }
            }
            for l in 1..ell {
                let deg = (ell - l) as usize;
                let sign = if deg.is_multiple_of(2) { -1i128 } else { 1i128 }; // (−1)^{ℓ−l+1}
                let expect = sign * e[deg];
                assert_eq!(beta[l as usize - 1], expect, "β^{ell}_{l}");
            }
        }
    }

    #[test]
    fn falling_factorial_identity_numeric() {
        // For a concrete frequency vector, F_ℓ = ℓ!·C_ℓ + Σ β^ℓ_l F_l.
        let freqs: [u64; 4] = [7, 5, 2, 1];
        for ell in 2..=4u32 {
            let f_mom = |t: u32| -> f64 { freqs.iter().map(|&f| (f as f64).powi(t as i32)).sum() };
            let c_ell: f64 = freqs
                .iter()
                .map(|&f| {
                    let mut acc = 1.0;
                    for j in 0..ell as u64 {
                        acc *= if f >= j { (f - j) as f64 } else { 0.0 } / (j + 1) as f64;
                    }
                    if f >= ell as u64 {
                        acc
                    } else {
                        0.0
                    }
                })
                .sum();
            let beta = beta_coefficients(ell);
            let mut rhs = factorial_f64(ell) * c_ell;
            for l in 1..ell {
                rhs += beta[l as usize - 1] as f64 * f_mom(l);
            }
            assert!(
                (rhs - f_mom(ell)).abs() < 1e-6,
                "ℓ={ell}: {rhs} vs {}",
                f_mom(ell)
            );
        }
    }

    #[test]
    fn abs_row_sums_to_factorial() {
        // Σ_l |s(ℓ,l)| = ℓ! (number of permutations by cycle count).
        for ell in 1..=10u32 {
            let sum: i128 = stirling_first_row(ell).iter().map(|&x| x.abs()).sum();
            let fact: i128 = (1..=ell as i128).product();
            assert_eq!(sum, fact, "ℓ={ell}");
        }
    }

    #[test]
    fn a_ell_values() {
        assert_eq!(a_ell(2), 1.0); // |β²_1| = 1
        assert_eq!(a_ell(3), 5.0); // 2 + 3
        assert_eq!(a_ell(4), 23.0); // 6 + 11 + 6
    }

    #[test]
    fn schedule_is_monotone_and_ends_at_eps() {
        let k = 5;
        let eps = 0.2;
        let s = epsilon_schedule(k, eps);
        assert_eq!(s.len(), 5);
        assert_eq!(s[4], eps);
        for w in s.windows(2) {
            assert!(w[0] < w[1], "schedule must increase with ℓ");
        }
        // ε_4 = ε/(A_5+1); A_5 = 24+50+35+10 = 119.
        assert!((s[3] - eps / 120.0).abs() < 1e-15);
    }

    #[test]
    fn factorials() {
        assert_eq!(factorial_f64(0), 1.0);
        assert_eq!(factorial_f64(1), 1.0);
        assert_eq!(factorial_f64(5), 120.0);
        assert_eq!(factorial_f64(10), 3_628_800.0);
    }

    #[test]
    #[should_panic(expected = "MAX_K")]
    fn order_cap_enforced() {
        let _ = stirling_first_row(MAX_K + 1);
    }
}
