//! Algorithm 2: distinct elements of the original stream from the sampled
//! stream (paper §4).
//!
//! `F_0(P)` cannot be estimated to better than `Ω(1/√p)` multiplicative
//! error from a Bernoulli sample (Theorem 4, via Charikar et al.'s sampling
//! lower bound). Algorithm 2 matches that up to a constant: compute a
//! `(1/2, δ)` streaming estimate `X` of `F_0(L)` and output `X/√p`; Lemma 8
//! shows the multiplicative error is at most `4/√p` with probability
//! `≥ 1 − (δ + e^{−p·F_0(P)/8})`.

use sss_codec::{CodecError, Reader, WireCodec};
use sss_sketch::kmv::MedianF0;

use crate::estimate::{Estimate, Guarantee, Statistic, SubsampledEstimator};

/// Algorithm 2: `F_0(P)` estimation by scaled streaming `F_0(L)`.
///
/// ```
/// use sss_core::SampledF0Estimator;
///
/// let p = 0.25;
/// let mut est = SampledF0Estimator::new(p, 0.05, 42);
/// for x in 0..500u64 {
///     est.update(x); // the sampled stream
/// }
/// // Output is F̂_0(L)/√p; whatever the original stream was, the
/// // multiplicative error is at most 4/√p = 8 (Lemma 8).
/// assert_eq!(est.error_factor(), 8.0);
/// let e = est.estimate();
/// assert!(e >= 500.0 / 8.0 && e <= 500.0 * 8.0);
/// ```
/// Slots in the batch path's direct-mapped duplicate filter (256 KiB).
/// Sized well above the hot-item working set of skewed streams so
/// conflict evictions (which only cost re-hashing, never correctness)
/// stay rare.
const SEEN_SLOTS: usize = 32768;

#[derive(Debug, Clone)]
pub struct SampledF0Estimator {
    inner: MedianF0,
    p: f64,
    n_sampled: u64,
    /// Direct-mapped filter over items the inner sketch has already
    /// ingested, used by [`Self::update_batch`] to skip provable no-ops.
    ///
    /// Soundness: once a bottom-k copy has processed `x`, reprocessing it
    /// can never change that copy again — the hash is either still in the
    /// set (the insert is absorbed) or was evicted as the then-largest
    /// value, in which case it stays at or above the rejection threshold
    /// forever (the threshold only shrinks, including across merges). So a
    /// cache hit suppresses an exact no-op, never an approximation.
    ///
    /// Ingestion scratch, not sketch state: never serialized (decoding
    /// yields an empty filter, which is always sound — it only *misses*
    /// skippable work) and excluded from [`Self::space_words`].
    seen: Vec<u64>,
    /// Scratch holding the filter survivors of the current chunk.
    fresh: Vec<u64>,
}

impl SampledF0Estimator {
    /// Estimator for sampling rate `p`, using a median-boosted bottom-k
    /// sketch far exceeding the required `(1/2, δ)` accuracy on `F_0(L)`.
    pub fn new(p: f64, delta: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "sampling probability must be in (0,1]");
        // A (1+1/4, δ) inner estimator: stronger than the (1/2, δ) the
        // analysis needs, at O(1/0.25² · log 1/δ) words.
        Self {
            inner: MedianF0::with_error(0.25, delta, seed),
            p,
            n_sampled: 0,
            seen: Vec::new(),
            fresh: Vec::new(),
        }
    }

    /// The sampling probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Elements of the sampled stream ingested.
    pub fn samples_seen(&self) -> u64 {
        self.n_sampled
    }

    /// Memory footprint in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.inner.space_words()
    }

    /// Ingest one element of the sampled stream `L`.
    pub fn update(&mut self, x: u64) {
        self.n_sampled += 1;
        self.inner.update(x);
    }

    /// Ingest a batch of consecutive elements of `L`.
    ///
    /// Items the duplicate filter proves already-seen are skipped before
    /// the copy-major inner loop ([`MedianF0::update_batch`]) — on skewed
    /// streams most occurrences are repeats, and a repeat is an exact
    /// no-op for every bottom-k copy (see the `seen` field docs). The
    /// result is bit-identical to per-item [`Self::update`] calls.
    pub fn update_batch(&mut self, xs: &[u64]) {
        self.n_sampled += xs.len() as u64;
        if self.seen.is_empty() {
            self.seen.resize(SEEN_SLOTS, u64::MAX);
        }
        self.fresh.clear();
        for &x in xs {
            // Fibonacci hashing; top bits index the power-of-two table.
            let slot = (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 49) as usize;
            // `u64::MAX` doubles as the empty-slot sentinel, so that one
            // value is never considered cached (conservative: it is
            // re-processed on every occurrence, which is merely slower).
            if self.seen[slot] == x && x != u64::MAX {
                continue;
            }
            self.seen[slot] = x;
            self.fresh.push(x);
        }
        self.inner.update_batch(&self.fresh);
    }

    /// The streaming estimate `X ≈ F_0(L)` before rescaling.
    pub fn estimate_sampled(&self) -> f64 {
        self.inner.estimate()
    }

    /// Algorithm 2's output: `X/√p`, an estimate of `F_0(P)` with
    /// multiplicative error at most [`Self::error_factor`].
    pub fn estimate(&self) -> f64 {
        self.estimate_sampled() / self.p.sqrt()
    }

    /// Lemma 8's multiplicative error ceiling `4/√p`.
    pub fn error_factor(&self) -> f64 {
        4.0 / self.p.sqrt()
    }

    /// Lemma 8's success probability `1 − (δ + e^{−p·F_0/8})`, given the
    /// (unknown to the algorithm) true `F_0(P)` and the inner sketch's `δ`.
    pub fn success_probability(&self, true_f0: u64, delta: f64) -> f64 {
        1.0 - (delta + (-self.p * true_f0 as f64 / 8.0).exp())
    }

    /// Merge a second monitor's estimator (same `p`, `delta` and seed):
    /// afterwards `self` estimates `F_0` of the union of both original
    /// streams — bottom-k sketches are exactly mergeable, so distributed
    /// monitors lose nothing.
    pub fn merge(&mut self, other: &SampledF0Estimator) {
        crate::estimate::assert_rates_compatible(self.p, other.p);
        self.inner.merge(&other.inner);
        self.n_sampled += other.n_sampled;
    }
}

impl SubsampledEstimator for SampledF0Estimator {
    fn statistic(&self) -> Statistic {
        Statistic::F0
    }

    fn update(&mut self, x: u64) {
        SampledF0Estimator::update(self, x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        SampledF0Estimator::update_batch(self, xs);
    }

    fn merge(&mut self, other: &Self) {
        SampledF0Estimator::merge(self, other);
    }

    fn estimate(&self) -> Estimate {
        Estimate::scalar(
            SampledF0Estimator::estimate(self),
            Guarantee::BoundedFactor {
                factor: self.error_factor(),
            },
            self.p,
            self.n_sampled,
        )
    }

    fn space_bytes(&self) -> usize {
        8 * self.space_words()
    }

    fn p(&self) -> f64 {
        self.p
    }

    fn samples_seen(&self) -> u64 {
        self.n_sampled
    }
}

/// Validate a Bernoulli sampling rate arriving off the wire
/// (thin alias for [`Reader::rate`], shared by the core decoders).
pub(crate) fn decode_rate(r: &mut Reader) -> Result<f64, CodecError> {
    r.rate()
}

impl WireCodec for SampledF0Estimator {
    const WIRE_TAG: u16 = 0x0401;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.p.encode_into(out);
        self.n_sampled.encode_into(out);
        self.inner.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let p = decode_rate(r)?;
        let n_sampled = r.u64()?;
        let inner = MedianF0::decode(r)?;
        Ok(SampledF0Estimator {
            inner,
            p,
            n_sampled,
            seen: Vec::new(),
            fresh: Vec::new(),
        })
    }
}

/// Theorem 4's lower bound: any estimator observing a rate-`p` Bernoulli
/// sample of some length-`n` stream errs by a multiplicative factor of at
/// least `√(ln 2 / (12 p))` with probability `≥ (1 − e^{−np})/2`
/// (for `p ≤ 1/12`).
pub fn f0_lower_bound_factor(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0);
    (2f64.ln() / (12.0 * p)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_stream::{BernoulliSampler, ExactStats, F0HardPair};

    /// Multiplicative error in the paper's sense: max(est/truth, truth/est).
    fn mult_error(est: f64, truth: f64) -> f64 {
        (est / truth).max(truth / est)
    }

    #[test]
    fn error_within_lemma8_bound_across_rates() {
        // Uniform-frequency stream: every item appears ~8 times.
        let mut stream = Vec::new();
        for item in 0..30_000u64 {
            stream.extend(std::iter::repeat_n(sss_hash::fingerprint64(item), 8));
        }
        let truth = ExactStats::from_stream(stream.iter().copied()).f0() as f64;
        for &p in &[0.05f64, 0.1, 0.5, 1.0] {
            let mut est = SampledF0Estimator::new(p, 0.01, 7);
            let mut sampler = BernoulliSampler::new(p, 11);
            sampler.sample_slice(&stream, |x| est.update(x));
            let err = mult_error(est.estimate(), truth);
            assert!(
                err <= est.error_factor(),
                "p={p}: error {err} > bound {}",
                est.error_factor()
            );
        }
    }

    #[test]
    fn exact_regime_when_all_items_survive() {
        // High frequency per item ⇒ F_0(L) ≈ F_0(P); the √p scaling then
        // *overestimates* by exactly 1/√p — still within the 4/√p bound.
        let mut stream = Vec::new();
        for item in 0..1000u64 {
            stream.extend(std::iter::repeat_n(item, 200));
        }
        let p = 0.25;
        let mut est = SampledF0Estimator::new(p, 0.01, 3);
        let mut sampler = BernoulliSampler::new(p, 4);
        sampler.sample_slice(&stream, |x| est.update(x));
        // F0(L) ≈ 1000 (every item survives w.h.p.), estimate ≈ 1000/0.5.
        let e = est.estimate();
        assert!((e - 2000.0).abs() / 2000.0 < 0.2, "estimate = {e}");
        assert!(mult_error(e, 1000.0) <= est.error_factor());
    }

    #[test]
    fn hard_pair_forces_sqrt_p_error_on_one_side() {
        // The Theorem 4 demonstration: same estimator, two streams with
        // indistinguishable samples, F_0 apart by 1/√p.
        let p = 0.01;
        let pair = F0HardPair::new(200_000, p, 1 << 21);
        let a = pair.stream_a(1);
        let b = pair.stream_b(1);
        let mut worst = 1.0f64;
        for stream in [&a, &b] {
            let truth = ExactStats::from_stream(stream.iter().copied()).f0() as f64;
            let mut est = SampledF0Estimator::new(p, 0.01, 5);
            let mut sampler = BernoulliSampler::new(p, 6);
            sampler.sample_slice(stream, |x| est.update(x));
            let err = mult_error(est.estimate(), truth);
            assert!(err <= est.error_factor(), "err {err} above ceiling");
            worst = worst.max(err);
        }
        // On one of the two, error must be ≈ Θ(1/√p) = Θ(10): at least the
        // Theorem 4 factor √(ln2/12p) ≈ 2.4.
        assert!(
            worst >= f0_lower_bound_factor(p),
            "worst error {worst} below lower bound {}",
            f0_lower_bound_factor(p)
        );
    }

    #[test]
    fn sampled_estimate_is_accurate_before_scaling() {
        let stream: Vec<u64> = (0..50_000u64).collect();
        let mut est = SampledF0Estimator::new(0.5, 0.01, 9);
        let mut sampler = BernoulliSampler::new(0.5, 10);
        let mut kept = 0u64;
        let mut seen = std::collections::HashSet::new();
        sampler.sample_slice(&stream, |x| {
            est.update(x);
            kept += 1;
            seen.insert(x);
        });
        let rel = (est.estimate_sampled() - seen.len() as f64).abs() / seen.len() as f64;
        assert!(rel < 0.25, "rel = {rel}");
        assert_eq!(est.samples_seen(), kept);
    }

    #[test]
    fn success_probability_formula() {
        let est = SampledF0Estimator::new(0.1, 0.05, 1);
        let ps = est.success_probability(10_000, 0.05);
        assert!(ps > 0.94 && ps < 0.951, "ps = {ps}");
        // Tiny F0 ⇒ the e^{−pF0/8} term dominates.
        let weak = est.success_probability(10, 0.05);
        assert!(weak < 0.7);
    }

    #[test]
    fn lower_bound_factor_grows_as_p_shrinks() {
        assert!(f0_lower_bound_factor(0.01) > f0_lower_bound_factor(0.1));
        assert!((f0_lower_bound_factor(1.0 / 12.0) - 1.0f64.min(2f64.ln().sqrt())).abs() < 0.2);
    }
}
