//! The unified estimation API: one trait for every estimator that observes
//! a Bernoulli-sampled stream, and a typed [`Estimate`] for what it
//! returns.
//!
//! The paper's five results — Theorem 1 (`F_k`), Lemma 8 (`F_0`),
//! Theorem 5 (entropy) and Theorems 6–7 (heavy hitters) — are all
//! one-pass estimators over the *same* sampled stream `L`, differing only
//! in what they maintain and what they promise. [`SubsampledEstimator`]
//! captures that shape:
//!
//! * `update` / `update_batch` — ingest elements of `L`,
//! * `merge` — combine with a second estimator that observed a disjoint
//!   part of `P` sampled at the same rate (the distributed router
//!   deployment),
//! * `estimate` — a typed [`Estimate`] carrying the point value, the
//!   guarantee the paper proves for it, and provenance,
//! * `space_bytes` — honest memory accounting.
//!
//! The [`Monitor`](crate::monitor::Monitor) front-end drives any set of
//! these in a single pass.

use sss_codec::{CodecError, Reader, WireCodec};

use crate::params::ApproxParams;

/// Relative tolerance for comparing the sampling rates of two summaries
/// being merged. Shard `p` values that travelled through configuration
/// files or serialization can disagree in the last few ulps; a relative
/// check admits those while still rejecting genuinely different rates.
pub const RATE_MERGE_RTOL: f64 = 1e-9;

/// Whether two sampling rates are close enough to merge: finite, and
/// within [`RATE_MERGE_RTOL`] *relative* error of each other. NaN-safe
/// (a NaN rate is never compatible with anything, including itself).
#[inline]
pub fn rates_compatible(a: f64, b: f64) -> bool {
    a.is_finite() && b.is_finite() && (a - b).abs() <= RATE_MERGE_RTOL * a.abs().max(b.abs())
}

/// Panicking form of [`rates_compatible`] for estimator-level `merge`
/// (the `try_merge` path reports [`MergeError::RateMismatch`] instead).
#[inline]
#[track_caller]
pub fn assert_rates_compatible(a: f64, b: f64) {
    assert!(rates_compatible(a, b), "sampling rates differ: {a} vs {b}");
}

/// Why two summaries refused to merge. Returned by
/// [`SubsampledEstimator::try_merge`] and
/// [`Monitor::try_merge`](crate::monitor::Monitor::try_merge) so a
/// release deployment can reject an incompatible shard instead of
/// panicking mid-collection.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// The sampling rates differ beyond [`RATE_MERGE_RTOL`].
    RateMismatch {
        /// The receiving side's rate.
        left: f64,
        /// The incoming side's rate.
        right: f64,
    },
    /// The monitors register different numbers of statistics.
    ShapeMismatch {
        /// Registered estimator count on the receiving side.
        left: usize,
        /// Registered estimator count on the incoming side.
        right: usize,
    },
    /// The monitors register different statistics at the same slot.
    LabelMismatch {
        /// Label at the slot on the receiving side.
        left: String,
        /// Label at the slot on the incoming side.
        right: String,
    },
    /// Same label, different concrete estimator type at that slot.
    TypeMismatch {
        /// The slot's label.
        label: String,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::RateMismatch { left, right } => {
                write!(f, "sampling rates differ: {left} vs {right}")
            }
            MergeError::ShapeMismatch { left, right } => write!(
                f,
                "monitors register different statistics: {left} vs {right} estimators"
            ),
            MergeError::LabelMismatch { left, right } => write!(
                f,
                "monitors register different statistics: '{left}' vs '{right}'"
            ),
            MergeError::TypeMismatch { label } => {
                write!(f, "estimator type mismatch at slot '{label}'")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Which statistic of the original stream `P` an estimator targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Statistic {
    /// Distinct elements `F_0(P)` (Algorithm 2, Lemma 8).
    F0,
    /// The `k`-th frequency moment `F_k(P)` (Algorithm 1, Theorem 1).
    Fk(u32),
    /// Empirical entropy `H(f)` in bits (Theorem 5).
    Entropy,
    /// `F_1` heavy hitters (Theorem 6).
    F1HeavyHitters,
    /// `F_2` heavy hitters (Theorem 7).
    F2HeavyHitters,
}

impl std::fmt::Display for Statistic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Statistic::F0 => write!(f, "F0"),
            Statistic::Fk(k) => write!(f, "F{k}"),
            Statistic::Entropy => write!(f, "entropy"),
            Statistic::F1HeavyHitters => write!(f, "hh_f1"),
            Statistic::F2HeavyHitters => write!(f, "hh_f2"),
        }
    }
}

/// The kind of guarantee attached to an [`Estimate`] — one variant per
/// guarantee shape the paper proves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Guarantee {
    /// `(1+ε, δ)` multiplicative (Theorem 1). `target` is present when the
    /// estimator was explicitly configured for a specific `(ε, δ)`;
    /// otherwise the contract is the theorem's asymptotic form.
    Multiplicative { target: Option<ApproxParams> },
    /// Multiplicative error at most `factor` in every direction
    /// (Lemma 8's `4/√p`; optimal up to constants by Theorem 4).
    BoundedFactor { factor: f64 },
    /// Constant-factor approximation inside the theorem's admissible
    /// regime (Theorem 5: `H(f) = ω(p^{−1/2}n^{−1/6})`).
    ConstantFactor,
    /// An `(α, ε, δ)` heavy-hitter report: every `α`-heavy item of `P` is
    /// reported, nothing below the theorem's rejection cutoff is
    /// (Theorems 6–7; for Theorem 7 the cutoff is weakened by `√p`).
    HeavyHitters { alpha: f64, eps: f64, delta: f64 },
    /// No worst-case guarantee — the naive baselines and extensions the
    /// paper motivates against or beyond.
    Heuristic,
}

/// A typed estimation result: the point value, the guarantee it comes
/// with, and the provenance needed to interpret it.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// The point estimate of the target statistic of `P`. For heavy-hitter
    /// estimators this is the number of reported items; the per-item
    /// frequencies live in [`Estimate::report`].
    pub value: f64,
    /// What the paper proves about `value`.
    pub guarantee: Guarantee,
    /// The Bernoulli sampling rate the estimator corrected for.
    pub p: f64,
    /// Elements of the *sampled* stream `L` this estimate is based on
    /// (summed across merged shards).
    pub samples_seen: u64,
    /// Heavy-hitter report `(item, estimated frequency in P)`, sorted by
    /// decreasing estimate; empty for scalar statistics.
    pub report: Vec<(u64, f64)>,
}

impl Estimate {
    /// A scalar estimate (no per-item report).
    pub fn scalar(value: f64, guarantee: Guarantee, p: f64, samples_seen: u64) -> Self {
        Self {
            value,
            guarantee,
            p,
            samples_seen,
            report: Vec::new(),
        }
    }

    /// A heavy-hitter estimate; `value` is set to the report size.
    pub fn heavy_hitters(
        report: Vec<(u64, f64)>,
        guarantee: Guarantee,
        p: f64,
        samples_seen: u64,
    ) -> Self {
        Self {
            value: report.len() as f64,
            guarantee,
            p,
            samples_seen,
            report,
        }
    }

    /// Multiplicative error of this estimate against a known truth
    /// (`max(value/truth, truth/value)`; see [`ApproxParams::mult_error`]).
    pub fn mult_error(&self, truth: f64) -> f64 {
        ApproxParams::mult_error(self.value, truth)
    }
}

impl WireCodec for Guarantee {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Guarantee::Multiplicative { target } => {
                out.push(0);
                target.encode_into(out);
            }
            Guarantee::BoundedFactor { factor } => {
                out.push(1);
                factor.encode_into(out);
            }
            Guarantee::ConstantFactor => out.push(2),
            Guarantee::HeavyHitters { alpha, eps, delta } => {
                out.push(3);
                alpha.encode_into(out);
                eps.encode_into(out);
                delta.encode_into(out);
            }
            Guarantee::Heuristic => out.push(4),
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Guarantee::Multiplicative {
                target: Option::decode(r)?,
            },
            1 => Guarantee::BoundedFactor { factor: r.f64()? },
            2 => Guarantee::ConstantFactor,
            3 => Guarantee::HeavyHitters {
                alpha: r.f64()?,
                eps: r.f64()?,
                delta: r.f64()?,
            },
            4 => Guarantee::Heuristic,
            _ => {
                return Err(CodecError::Invalid {
                    what: "unknown Guarantee discriminant",
                })
            }
        })
    }
}

impl WireCodec for Estimate {
    const WIRE_TAG: u16 = 0x040D;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.value.encode_into(out);
        self.guarantee.encode_into(out);
        self.p.encode_into(out);
        self.samples_seen.encode_into(out);
        self.report.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(Estimate {
            value: r.f64()?,
            guarantee: Guarantee::decode(r)?,
            p: r.f64()?,
            samples_seen: r.u64()?,
            report: Vec::decode(r)?,
        })
    }
}

/// A one-pass estimator of a statistic of the original stream `P`,
/// observing only the Bernoulli-sampled stream `L`.
///
/// Implementations exist for all five paper estimators
/// ([`SampledFkEstimator`](crate::SampledFkEstimator),
/// [`SampledF0Estimator`](crate::SampledF0Estimator),
/// [`SampledEntropyEstimator`](crate::SampledEntropyEstimator),
/// [`SampledF1HeavyHitters`](crate::SampledF1HeavyHitters),
/// [`SampledF2HeavyHitters`](crate::SampledF2HeavyHitters)), the
/// baselines ([`RusuDobraF2`](crate::RusuDobraF2),
/// [`NaiveScaledFk`](crate::NaiveScaledFk),
/// [`NaiveScaledF0`](crate::NaiveScaledF0)) and the adaptive-rate
/// extension ([`AdaptiveF2Estimator`](crate::AdaptiveF2Estimator)).
///
/// **Name resolution note.** Most implementors also expose an inherent
/// `estimate(&self) -> f64` returning the raw point value; method-call
/// syntax picks the inherent one, while generic code bounded on this
/// trait gets the typed [`Estimate`].
pub trait SubsampledEstimator {
    /// The statistic of `P` this estimator targets.
    fn statistic(&self) -> Statistic;

    /// Ingest one element of the sampled stream `L`.
    fn update(&mut self, x: u64);

    /// Ingest a batch of consecutive elements of `L`. Semantically
    /// identical to updating one by one; implementations override it with
    /// cache-friendlier layouts (process the whole batch per sketch row /
    /// copy instead of all rows per item).
    fn update_batch(&mut self, xs: &[u64]) {
        for &x in xs {
            self.update(x);
        }
    }

    /// Merge a second estimator of the same configuration that observed a
    /// **disjoint** part of `P`, Bernoulli-sampled at the same rate.
    /// Afterwards `self` estimates the statistic of the concatenated
    /// original stream.
    ///
    /// # Panics
    /// If the two estimators are incompatible (different parameters or
    /// sketch seeds).
    fn merge(&mut self, other: &Self)
    where
        Self: Sized;

    /// The validation half of [`SubsampledEstimator::try_merge`]: whether
    /// `other` could merge into `self`, **without mutating anything**.
    /// Default: the tolerant rate check (beyond [`RATE_MERGE_RTOL`]
    /// relative ⇒ [`MergeError::RateMismatch`]). Estimators whose merge is
    /// rate-agnostic (e.g. adaptive-rate extensions) override this to
    /// accept unconditionally. Monitors run this for *every* slot before
    /// merging *any*, so a failed monitor merge never half-applies.
    fn merge_compatible(&self, other: &Self) -> Result<(), MergeError>
    where
        Self: Sized,
    {
        if !rates_compatible(self.p(), other.p()) {
            return Err(MergeError::RateMismatch {
                left: self.p(),
                right: other.p(),
            });
        }
        Ok(())
    }

    /// Fallible [`SubsampledEstimator::merge`]: reject an incompatible
    /// shard (per [`SubsampledEstimator::merge_compatible`]) with a typed
    /// [`MergeError`] instead of panicking.
    ///
    /// # Panics
    /// Still panics on *structural* incompatibility (different sketch
    /// dimensions or seeds) — those are configuration bugs, not data.
    fn try_merge(&mut self, other: &Self) -> Result<(), MergeError>
    where
        Self: Sized,
    {
        self.merge_compatible(other)?;
        self.merge(other);
        Ok(())
    }

    /// Re-seed randomness that is **shard-local** — i.e. does not
    /// participate in the merge algebra — ahead of sharded ingestion.
    /// Hash functions shared by mergeable sketches (CountMin rows, KMV,
    /// CountSketch, level sets) must stay identical across shards and are
    /// deliberately *not* touched; reservoir-style sampling decisions are.
    /// The default is a no-op: an estimator either has no shard-local
    /// randomness or is purely deterministic.
    ///
    /// Called by [`Monitor::fork_shard`](crate::monitor::Monitor::fork_shard)
    /// on pristine (pre-ingestion) estimators only.
    fn reseed_shard_local(&mut self, _seed: u64) {}

    /// The current typed estimate.
    fn estimate(&self) -> Estimate;

    /// Memory footprint in bytes.
    fn space_bytes(&self) -> usize;

    /// The sampling probability the estimator corrects for.
    fn p(&self) -> f64;

    /// Elements of the sampled stream ingested (including merged shards).
    fn samples_seen(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistic_display() {
        assert_eq!(Statistic::F0.to_string(), "F0");
        assert_eq!(Statistic::Fk(3).to_string(), "F3");
        assert_eq!(Statistic::Entropy.to_string(), "entropy");
        assert_eq!(Statistic::F1HeavyHitters.to_string(), "hh_f1");
        assert_eq!(Statistic::F2HeavyHitters.to_string(), "hh_f2");
    }

    #[test]
    fn scalar_estimate_roundtrip() {
        let e = Estimate::scalar(42.0, Guarantee::ConstantFactor, 0.1, 100);
        assert_eq!(e.value, 42.0);
        assert!(e.report.is_empty());
        assert_eq!(e.mult_error(84.0), 2.0);
    }

    #[test]
    fn heavy_hitter_estimate_counts_report() {
        let e = Estimate::heavy_hitters(
            vec![(7, 100.0), (9, 50.0)],
            Guarantee::HeavyHitters {
                alpha: 0.1,
                eps: 0.2,
                delta: 0.05,
            },
            0.5,
            10,
        );
        assert_eq!(e.value, 2.0);
        assert_eq!(e.report[0], (7, 100.0));
    }
}
