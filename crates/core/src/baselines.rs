//! Baselines the paper compares against (§1.3) and the naive approaches its
//! introduction warns about.
//!
//! * [`RusuDobraF2`] — Rusu & Dobra (ICDE 2009): sketch `F_2(L)` and invert
//!   the moment relation `E[F_2(L)] = p²·F_2(P) + p(1−p)·F_1(P)`. Unbiased,
//!   but the variance analysis needs `Õ(1/p²)` space for a `(1+ε, δ)`
//!   guarantee where the paper's collision method needs `Õ(1/p)` —
//!   experiment E9 measures exactly this gap.
//! * [`NaiveScaledFk`] — estimate `F_k(L)` and divide by `p^k`. Biased:
//!   `E[F_k(L)] ≠ p^k·F_k(P)` because binomial sampling does not commute
//!   with powers (`E[g^k] = Σ_j S(k,j)·p^j·f^{(j)}` mixes lower moments in).
//!   The bias is worst on light-tailed streams, where the spurious
//!   lower-moment mass dominates.
//! * [`NaiveScaledF0`] — estimate `F_0(L)/p`: overestimates the reach of
//!   sampling; the correct scaling (Algorithm 2) is `1/√p`-bounded error,
//!   and E11 shows where `1/p` lands instead.

use sss_codec::{
    put_packed_sorted_u64s, put_varint_u64, put_varint_u64s, CodecError, Reader, WireCodec,
};
use sss_hash::{fp_hash_map, FpHashMap};
use sss_sketch::ams::AmsF2;
use sss_sketch::kmv::MedianF0;

use crate::estimate::{Estimate, Guarantee, Statistic, SubsampledEstimator};

/// Rusu–Dobra estimator of `F_2(P)` from the sampled stream.
#[derive(Debug, Clone)]
pub struct RusuDobraF2 {
    ams: AmsF2,
    p: f64,
    n_sampled: u64,
}

impl RusuDobraF2 {
    /// Estimator with an AMS sketch of `groups × copies` counters.
    pub fn new(p: f64, groups: usize, copies: usize, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "sampling probability must be in (0,1]");
        Self {
            ams: AmsF2::new(groups, copies, seed),
            p,
            n_sampled: 0,
        }
    }

    /// Estimator sized for a `(1+eps, delta)` guarantee *on `F_2(L)`*.
    /// (Translating that into a guarantee on `F_2(P)` is where the extra
    /// `1/p` factor appears; see E9.) Inherits the AMS per-update cost of
    /// `O(ε⁻²·log 1/δ)` — see [`AmsF2::with_error`].
    pub fn with_error(p: f64, eps: f64, delta: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0);
        Self {
            ams: AmsF2::with_error(eps, delta, seed),
            p,
            n_sampled: 0,
        }
    }

    /// Elements of the sampled stream ingested.
    pub fn samples_seen(&self) -> u64 {
        self.n_sampled
    }

    /// The underlying AMS sketch (concurrent pipeline promotes it to a
    /// shared-atomic grid).
    pub(crate) fn ams(&self) -> &AmsF2 {
        &self.ams
    }

    /// Install a quiesced sketch and sample count back.
    pub(crate) fn install(&mut self, ams: AmsF2, n_sampled: u64) {
        self.ams = ams;
        self.n_sampled = n_sampled;
    }

    /// Memory footprint in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.ams.space_words()
    }

    /// Ingest one element of the sampled stream `L`.
    pub fn update(&mut self, x: u64) {
        self.n_sampled += 1;
        self.ams.update(x, 1);
    }

    /// Ingest a batch of consecutive elements of `L` (estimator-major
    /// inner loop; see [`AmsF2::update_batch`]).
    pub fn update_batch(&mut self, xs: &[u64]) {
        self.n_sampled += xs.len() as u64;
        self.ams.update_batch(xs);
    }

    /// Merge a second monitor's estimator (same dimensions, seed and `p`):
    /// AMS sketches are linear, so the merge is exact.
    pub fn merge(&mut self, other: &RusuDobraF2) {
        crate::estimate::assert_rates_compatible(self.p, other.p);
        self.ams.merge(&other.ams);
        self.n_sampled += other.n_sampled;
    }

    /// The inversion `F̂_2(P) = (F̂_2(L) − (1−p)·F_1(L)) / p²`.
    pub fn estimate(&self) -> f64 {
        let f2_l = self.ams.estimate();
        let f1_l = self.n_sampled as f64;
        ((f2_l - (1.0 - self.p) * f1_l) / (self.p * self.p)).max(0.0)
    }
}

impl SubsampledEstimator for RusuDobraF2 {
    fn statistic(&self) -> Statistic {
        Statistic::Fk(2)
    }

    fn update(&mut self, x: u64) {
        RusuDobraF2::update(self, x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        RusuDobraF2::update_batch(self, xs);
    }

    fn merge(&mut self, other: &Self) {
        RusuDobraF2::merge(self, other);
    }

    fn estimate(&self) -> Estimate {
        // Unbiased, but the (1+ε, δ) translation to F_2(P) costs Õ(1/p²)
        // space (E9) — no packaged worst-case guarantee at this size.
        Estimate::scalar(
            RusuDobraF2::estimate(self),
            Guarantee::Heuristic,
            self.p,
            self.n_sampled,
        )
    }

    fn space_bytes(&self) -> usize {
        8 * self.space_words()
    }

    fn p(&self) -> f64 {
        self.p
    }

    fn samples_seen(&self) -> u64 {
        self.n_sampled
    }
}

/// Naive `F_k` baseline: exact `F_k(L)` scaled by `p^{−k}` — systematically
/// biased because sampling does not commute with `k`-th powers.
#[derive(Debug, Clone)]
pub struct NaiveScaledFk {
    freqs: FpHashMap<u64, u64>,
    k: u32,
    p: f64,
    n_sampled: u64,
}

impl NaiveScaledFk {
    /// Baseline for moment order `k` at sampling rate `p`.
    pub fn new(k: u32, p: f64) -> Self {
        assert!(k >= 1);
        assert!(p > 0.0 && p <= 1.0);
        Self {
            freqs: fp_hash_map(),
            k,
            p,
            n_sampled: 0,
        }
    }

    /// Ingest one element of the sampled stream `L`.
    pub fn update(&mut self, x: u64) {
        self.n_sampled += 1;
        *self.freqs.entry(x).or_insert(0) += 1;
    }

    /// Ingest a batch of consecutive elements of `L`.
    pub fn update_batch(&mut self, xs: &[u64]) {
        for &x in xs {
            self.update(x);
        }
    }

    /// Merge a second baseline (same `k` and `p`): exact frequency-map
    /// union.
    pub fn merge(&mut self, other: &NaiveScaledFk) {
        assert_eq!(self.k, other.k, "moment order mismatch");
        crate::estimate::assert_rates_compatible(self.p, other.p);
        // sss-lint: allow(canonical_iteration) — commutative u64 adds into an exact map; the merged state is iteration-order independent
        for (&i, &g) in &other.freqs {
            *self.freqs.entry(i).or_insert(0) += g;
        }
        self.n_sampled += other.n_sampled;
    }

    /// Elements of the sampled stream ingested.
    pub fn samples_seen(&self) -> u64 {
        self.n_sampled
    }

    /// `F_k(L) / p^k`. Summed in ascending item order so the float
    /// accumulation is canonical (a deserialized baseline reports bitwise
    /// the same value as the original despite a different map history).
    pub fn estimate(&self) -> f64 {
        let mut rows: Vec<(u64, u64)> = self.freqs.iter().map(|(&i, &g)| (i, g)).collect();
        rows.sort_unstable();
        let fk_l: f64 = rows
            .into_iter()
            .map(|(_, g)| (g as f64).powi(self.k as i32))
            .sum();
        fk_l / self.p.powi(self.k as i32)
    }
}

impl SubsampledEstimator for NaiveScaledFk {
    fn statistic(&self) -> Statistic {
        Statistic::Fk(self.k)
    }

    fn update(&mut self, x: u64) {
        NaiveScaledFk::update(self, x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        NaiveScaledFk::update_batch(self, xs);
    }

    fn merge(&mut self, other: &Self) {
        NaiveScaledFk::merge(self, other);
    }

    fn estimate(&self) -> Estimate {
        Estimate::scalar(
            NaiveScaledFk::estimate(self),
            Guarantee::Heuristic,
            self.p,
            self.samples_seen(),
        )
    }

    fn space_bytes(&self) -> usize {
        16 * self.freqs.len()
    }

    fn p(&self) -> f64 {
        self.p
    }

    fn samples_seen(&self) -> u64 {
        NaiveScaledFk::samples_seen(self)
    }
}

/// Naive `F_0` baseline: `F_0(L)/p`.
#[derive(Debug, Clone)]
pub struct NaiveScaledF0 {
    inner: MedianF0,
    p: f64,
    n_sampled: u64,
}

impl NaiveScaledF0 {
    /// Baseline at sampling rate `p`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0);
        Self {
            inner: MedianF0::with_error(0.25, 0.05, seed),
            p,
            n_sampled: 0,
        }
    }

    /// Ingest one element of the sampled stream `L`.
    pub fn update(&mut self, x: u64) {
        self.n_sampled += 1;
        self.inner.update(x);
    }

    /// Ingest a batch of consecutive elements of `L`.
    pub fn update_batch(&mut self, xs: &[u64]) {
        self.n_sampled += xs.len() as u64;
        self.inner.update_batch(xs);
    }

    /// Merge a second baseline built with the same seed and `p` (bottom-k
    /// union).
    pub fn merge(&mut self, other: &NaiveScaledF0) {
        crate::estimate::assert_rates_compatible(self.p, other.p);
        self.inner.merge(&other.inner);
        self.n_sampled += other.n_sampled;
    }

    /// `F̂_0(L) / p`.
    pub fn estimate(&self) -> f64 {
        self.inner.estimate() / self.p
    }
}

impl SubsampledEstimator for NaiveScaledF0 {
    fn statistic(&self) -> Statistic {
        Statistic::F0
    }

    fn update(&mut self, x: u64) {
        NaiveScaledF0::update(self, x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        NaiveScaledF0::update_batch(self, xs);
    }

    fn merge(&mut self, other: &Self) {
        NaiveScaledF0::merge(self, other);
    }

    fn estimate(&self) -> Estimate {
        Estimate::scalar(
            NaiveScaledF0::estimate(self),
            Guarantee::Heuristic,
            self.p,
            self.n_sampled,
        )
    }

    fn space_bytes(&self) -> usize {
        8 * self.inner.space_words()
    }

    fn p(&self) -> f64 {
        self.p
    }

    fn samples_seen(&self) -> u64 {
        self.n_sampled
    }
}

impl WireCodec for RusuDobraF2 {
    const WIRE_TAG: u16 = 0x0407;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.p.encode_into(out);
        self.n_sampled.encode_into(out);
        self.ams.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let p = crate::f0::decode_rate(r)?;
        let n_sampled = r.u64()?;
        let ams = AmsF2::decode(r)?;
        Ok(RusuDobraF2 { ams, p, n_sampled })
    }
}

impl WireCodec for NaiveScaledFk {
    const WIRE_TAG: u16 = 0x0408;

    fn encode_into(&self, out: &mut Vec<u8>) {
        // v2 layout: columnar frequency map, same shape as
        // `ExactCollisions`.
        self.k.encode_into(out);
        self.p.encode_into(out);
        put_varint_u64(out, self.n_sampled);
        let mut rows: Vec<(u64, u64)> = self.freqs.iter().map(|(&i, &g)| (i, g)).collect();
        rows.sort_unstable();
        put_packed_sorted_u64s(out, &rows.iter().map(|&(i, _)| i).collect::<Vec<_>>());
        put_varint_u64s(out, &rows.iter().map(|&(_, g)| g).collect::<Vec<_>>());
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let k = r.u32()?;
        if k == 0 {
            return Err(CodecError::Invalid {
                what: "NaiveScaledFk k == 0",
            });
        }
        let p = crate::f0::decode_rate(r)?;
        let (n_sampled, rows);
        if r.v2() {
            n_sampled = r.varint_u64()?;
            let items = r.packed_sorted_u64s()?;
            let gs = r.varint_u64s()?;
            if gs.len() != items.len() {
                return Err(CodecError::Invalid {
                    what: "NaiveScaledFk column length mismatch",
                });
            }
            rows = items.into_iter().zip(gs).collect::<Vec<_>>();
        } else {
            n_sampled = r.u64()?;
            let len = r.len_prefix(16)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push((r.u64()?, r.u64()?));
            }
            rows = v;
        }
        let mut freqs = fp_hash_map();
        for (item, g) in rows {
            if g == 0 || freqs.insert(item, g).is_some() {
                return Err(CodecError::Invalid {
                    what: "NaiveScaledFk frequency row invalid",
                });
            }
        }
        Ok(NaiveScaledFk {
            freqs,
            k,
            p,
            n_sampled,
        })
    }
}

impl WireCodec for NaiveScaledF0 {
    const WIRE_TAG: u16 = 0x0409;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.p.encode_into(out);
        self.n_sampled.encode_into(out);
        self.inner.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let p = crate::f0::decode_rate(r)?;
        let n_sampled = r.u64()?;
        let inner = MedianF0::decode(r)?;
        Ok(NaiveScaledF0 {
            inner,
            p,
            n_sampled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_stream::{BernoulliSampler, ExactStats, StreamGen, UniformStream, ZipfStream};

    #[test]
    fn rusu_dobra_is_consistent_at_moderate_p() {
        let stream = ZipfStream::new(2000, 1.2).generate(100_000, 1);
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
        let p = 0.3;
        let mut errs = Vec::new();
        for seed in 0..8u64 {
            let mut rd = RusuDobraF2::new(p, 7, 96, seed);
            let mut sampler = BernoulliSampler::new(p, seed ^ 55);
            sampler.sample_slice(&stream, |x| rd.update(x));
            errs.push((rd.estimate() - truth).abs() / truth);
        }
        errs.sort_by(|a, b| a.total_cmp(b));
        assert!(errs[4] < 0.15, "median err {}", errs[4]);
    }

    #[test]
    fn rusu_dobra_variance_blows_up_at_small_p() {
        // At p = 0.01 on a light-tailed stream, the sampling noise in the
        // inversion dwarfs the signal for a fixed-size sketch; the
        // collision method (exact oracle) stays calm. This is E9 in
        // miniature.
        let stream = UniformStream::new(50_000).generate(300_000, 2);
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
        let p = 0.01;
        let mut rd_errs = Vec::new();
        let mut ours_errs = Vec::new();
        for seed in 0..12u64 {
            let mut rd = RusuDobraF2::new(p, 7, 96, seed);
            let mut ours = crate::fk::SampledFkEstimator::exact(2, p);
            let mut sampler = BernoulliSampler::new(p, seed ^ 91);
            sampler.sample_slice(&stream, |x| {
                rd.update(x);
                ours.update(x);
            });
            rd_errs.push((rd.estimate() - truth).abs() / truth);
            ours_errs.push((ours.estimate() - truth).abs() / truth);
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let rd_med = med(&mut rd_errs);
        let ours_med = med(&mut ours_errs);
        assert!(
            ours_med < rd_med,
            "collision method ({ours_med}) should beat RD scaling ({rd_med}) at p={p}"
        );
    }

    #[test]
    fn naive_fk_overestimates_on_light_tails() {
        // All-singleton stream: F_2(P) = n, but F_2(L) ≈ pn so the naive
        // estimate is ≈ n/p — a 1/p-factor overestimate.
        let n = 100_000u64;
        let stream: Vec<u64> = (0..n).map(sss_hash::fingerprint64).collect();
        let p = 0.1;
        let mut naive = NaiveScaledFk::new(2, p);
        let mut sampler = BernoulliSampler::new(p, 3);
        sampler.sample_slice(&stream, |x| naive.update(x));
        let est = naive.estimate();
        let ratio = est / n as f64;
        assert!(
            (ratio - 1.0 / p).abs() / (1.0 / p) < 0.15,
            "expected ≈ {}× overestimate, got {ratio}×",
            1.0 / p
        );
    }

    #[test]
    fn naive_fk_is_fine_when_p_is_one() {
        let stream = ZipfStream::new(100, 1.0).generate(10_000, 4);
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(3);
        let mut naive = NaiveScaledFk::new(3, 1.0);
        for &x in &stream {
            naive.update(x);
        }
        assert!((naive.estimate() - truth).abs() < 1e-6 * truth);
    }

    #[test]
    fn naive_f0_overestimates_reach() {
        // Heavy per-item frequency: every item survives, F_0(L) = F_0(P),
        // so the naive 1/p scaling overestimates by 1/p exactly.
        let mut stream = Vec::new();
        for item in 0..2000u64 {
            stream.extend(std::iter::repeat_n(item, 100));
        }
        let p = 0.2;
        let mut naive = NaiveScaledF0::new(p, 5);
        let mut sampler = BernoulliSampler::new(p, 6);
        sampler.sample_slice(&stream, |x| naive.update(x));
        let ratio = naive.estimate() / 2000.0;
        assert!((ratio - 1.0 / p).abs() / (1.0 / p) < 0.3, "ratio = {ratio}");
    }
}
