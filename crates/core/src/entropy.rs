//! Entropy of the original stream from the sampled stream (paper §5).
//!
//! No multiplicative approximation of `H(f)` is possible in general, even
//! at constant sampling rates (Lemma 9) — the hard instances are provided
//! by [`sss_stream::EntropyScenarioPair`] and reproduced in experiment E5.
//! The positive result (Theorem 5): the empirical entropy of the *sampled*
//! stream, normalised by `pn` (Proposition 1), is a constant-factor
//! approximation of `H(f)` whenever
//!
//! ```text
//! H(f) = ω(p^{−1/2}·n^{−1/6})       (and p = ω(n^{−1/3})),
//! ```
//!
//! specifically `H_pn(g) ≤ O(H(f))` and `H_pn(g) ≥ H(f)/2 − O(p^{−1/2}n^{−1/6})`
//! (Lemma 10). So the whole algorithm is: run a small-space multiplicative
//! entropy estimator on `L` and report its output.

use sss_codec::{CodecError, Reader, WireCodec};
use sss_sketch::entropy::EntropyEstimator;

use crate::estimate::{Estimate, Guarantee, Statistic, SubsampledEstimator};

/// Theorem 5's estimator: a streaming multiplicative estimate of `H(g)`
/// interpreted as a constant-factor estimate of `H(f)`.
#[derive(Debug, Clone)]
pub struct SampledEntropyEstimator {
    inner: EntropyEstimator,
    p: f64,
    /// Entropy mass folded in from merged shards: `Σ n_shard·Ĥ_shard`.
    merged_weight: f64,
    /// Sampled elements those shards had seen.
    merged_n: u64,
}

impl SampledEntropyEstimator {
    /// Estimator for sampling rate `p` with `t` reservoir slots in the
    /// underlying entropy sketch.
    pub fn new(p: f64, t: usize, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "sampling probability must be in (0,1]");
        Self {
            inner: EntropyEstimator::new(t, seed),
            p,
            merged_weight: 0.0,
            merged_n: 0,
        }
    }

    /// The sampling probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Elements of the sampled stream ingested (`n′ = |L|`), including
    /// merged shards.
    pub fn samples_seen(&self) -> u64 {
        self.inner.n() + self.merged_n
    }

    /// Memory footprint in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.inner.space_words()
    }

    /// Ingest one element of the sampled stream `L`.
    pub fn update(&mut self, x: u64) {
        self.inner.update(x);
    }

    /// Ingest a batch of consecutive elements of `L`.
    pub fn update_batch(&mut self, xs: &[u64]) {
        self.inner.update_batch(xs);
    }

    /// Merge a second monitor's estimator (same `p`): afterwards `self`
    /// reports the length-weighted average of the shard entropies,
    /// `Σ n_s·Ĥ_s / Σ n_s`.
    ///
    /// Unlike the collision and bottom-k merges this is **approximate**:
    /// the suffix-count reservoir is not mergeable, and the weighted
    /// average is the entropy of the *mixture* of the shard distributions
    /// minus their Jensen–Shannon divergence. When shards carry slices of
    /// the same traffic mix (the sharded-monitor deployment) the
    /// divergence term vanishes and the merge is consistent; adversarially
    /// disjoint shards can lose up to `lg(#shards)` bits — still inside
    /// Theorem 5's constant-factor contract whenever `H(f)` is above its
    /// admissibility threshold by that margin.
    pub fn merge(&mut self, other: &SampledEntropyEstimator) {
        crate::estimate::assert_rates_compatible(self.p, other.p);
        self.merged_weight += other.inner.n() as f64 * other.inner.estimate() + other.merged_weight;
        self.merged_n += other.inner.n() + other.merged_n;
    }

    /// The estimate of `H(g)` (entropy of the sampled stream, bits) —
    /// Theorem 5's constant-factor approximation of `H(f)` in its regime.
    /// After [`Self::merge`], the length-weighted average over shards.
    pub fn estimate(&self) -> f64 {
        let n_local = self.inner.n();
        if self.merged_n == 0 {
            return self.inner.estimate();
        }
        let total = (n_local + self.merged_n) as f64;
        if total == 0.0 {
            return 0.0;
        }
        (n_local as f64 * self.inner.estimate() + self.merged_weight) / total
    }

    /// The `pn`-normalised entropy `H_pn(g) = Σ (g_i/pn)·lg(pn/g_i)` of
    /// Proposition 1, computed from the estimate of `H(g)` and the known
    /// original length `n` via the exact identity
    /// `H_pn(g) = (n′/pn)·(H(g) + lg(pn/n′))`.
    ///
    /// Proposition 1 shows `|H_pn(g) − H(g)| = O(log m/√(pn))` w.h.p., so
    /// the two views agree up to vanishing terms; `H_pn` is the quantity
    /// Lemma 10's two-sided bounds are stated for.
    pub fn estimate_hpn(&self, n_original: u64) -> f64 {
        let n_prime = self.samples_seen() as f64;
        if n_prime == 0.0 {
            return 0.0;
        }
        let pn = self.p * n_original as f64;
        let scale = n_prime / pn;
        (scale * (self.estimate() + (pn / n_prime).log2())).max(0.0)
    }

    /// The Theorem 5 admissibility threshold: the guarantee holds when
    /// `H(f)` exceeds (a constant times) `p^{−1/2}·n^{−1/6}`.
    pub fn guarantee_threshold(&self, n_original: u64) -> f64 {
        self.p.powf(-0.5) * (n_original as f64).powf(-1.0 / 6.0)
    }

    /// Lemma 10's requirement on the sampling rate: `p = ω(n^{−1/3})`.
    /// Returns whether `p ≥ n^{−1/3}` (the threshold with constants 1).
    pub fn rate_admissible(&self, n_original: u64) -> bool {
        self.p >= (n_original as f64).powf(-1.0 / 3.0)
    }

    /// Re-seed the reservoir replacement randomness (pre-ingestion only) —
    /// the entropy estimator's only shard-local randomness. The merge is a
    /// length-weighted average with no shared hash state, so shards with
    /// different reservoir seeds stay fully mergeable.
    pub fn reseed(&mut self, seed: u64) {
        self.inner.reseed(seed);
    }
}

impl SubsampledEstimator for SampledEntropyEstimator {
    fn statistic(&self) -> Statistic {
        Statistic::Entropy
    }

    fn update(&mut self, x: u64) {
        SampledEntropyEstimator::update(self, x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        SampledEntropyEstimator::update_batch(self, xs);
    }

    fn merge(&mut self, other: &Self) {
        SampledEntropyEstimator::merge(self, other);
    }

    fn reseed_shard_local(&mut self, seed: u64) {
        SampledEntropyEstimator::reseed(self, seed);
    }

    fn estimate(&self) -> Estimate {
        Estimate::scalar(
            SampledEntropyEstimator::estimate(self),
            Guarantee::ConstantFactor,
            self.p,
            self.samples_seen(),
        )
    }

    fn space_bytes(&self) -> usize {
        8 * self.space_words()
    }

    fn p(&self) -> f64 {
        self.p
    }

    fn samples_seen(&self) -> u64 {
        SampledEntropyEstimator::samples_seen(self)
    }
}

impl WireCodec for SampledEntropyEstimator {
    const WIRE_TAG: u16 = 0x0404;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.p.encode_into(out);
        self.merged_weight.encode_into(out);
        self.merged_n.encode_into(out);
        self.inner.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let p = crate::f0::decode_rate(r)?;
        let merged_weight = r.f64()?;
        let merged_n = r.u64()?;
        let inner = EntropyEstimator::decode(r)?;
        Ok(SampledEntropyEstimator {
            inner,
            p,
            merged_weight,
            merged_n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_stream::{
        BernoulliSampler, EntropyScenarioPair, ExactStats, StreamGen, UniformStream, ZipfStream,
    };

    fn run(stream: &[u64], p: f64, t: usize, seed: u64) -> SampledEntropyEstimator {
        let mut est = SampledEntropyEstimator::new(p, t, seed);
        let mut sampler = BernoulliSampler::new(p, seed ^ 0xABCD);
        sampler.sample_slice(stream, |x| est.update(x));
        est
    }

    #[test]
    fn high_entropy_stream_constant_factor() {
        // Uniform over 4096 items: H(f) = 12 bits, far above threshold.
        let stream = UniformStream::new(4096).generate(400_000, 1);
        let h = ExactStats::from_stream(stream.iter().copied()).entropy();
        for &p in &[0.1f64, 0.5] {
            let est = run(&stream, p, 3000, 2);
            let ratio = est.estimate() / h;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "p={p}: ratio {ratio} (est {} vs H {h})",
                est.estimate()
            );
        }
    }

    #[test]
    fn skewed_stream_still_constant_factor() {
        let stream = ZipfStream::new(10_000, 1.2).generate(300_000, 3);
        let h = ExactStats::from_stream(stream.iter().copied()).entropy();
        let est = run(&stream, 0.2, 3000, 4);
        let ratio = est.estimate() / h;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hpn_close_to_hg_proposition1() {
        let stream = UniformStream::new(1024).generate(200_000, 5);
        let p = 0.3;
        // Exact H(g) via replaying the same sampler seed.
        let mut sampler = BernoulliSampler::new(p, 6 ^ 0xABCD);
        let mut sampled = Vec::new();
        sampler.sample_slice(&stream, |x| sampled.push(x));
        let hg = ExactStats::from_stream(sampled.iter().copied()).entropy();

        let est = run(&stream, p, 4000, 6);
        let hpn = est.estimate_hpn(stream.len() as u64);
        // |H_pn − H(g)| = O(log m/√(pn)): tiny here; allow estimator noise.
        assert!((hpn - hg).abs() / hg < 0.1, "hpn {hpn} vs hg {hg}");
    }

    #[test]
    fn lemma9_scenarios_are_indistinguishable_to_the_estimator() {
        // Scenario 1 (H=0) and scenario 2 (H>0): at rate p the estimator
        // reports ≈0 for both — the impossibility made concrete.
        let p = 0.02;
        let pair = EntropyScenarioPair::new(200_000, p, 1 << 20);
        let s1 = pair.scenario_one(7);
        let s2 = pair.scenario_two(7);
        let h2 = ExactStats::from_stream(s2.iter().copied()).entropy();
        assert!(h2 > 0.0);
        let e1 = run(&s1, p, 2000, 8).estimate();
        let e2 = run(&s2, p, 2000, 8).estimate();
        assert!(e1 < 0.01, "e1 = {e1}");
        assert!(e2 < 0.01, "e2 = {e2} (cannot see the singletons)");
        // Both streams sit below the guarantee threshold — exactly why
        // Theorem 5 excludes them.
        let est = SampledEntropyEstimator::new(p, 10, 1);
        assert!(h2 < est.guarantee_threshold(200_000));
    }

    #[test]
    fn all_singleton_stream_loses_lg_p_additively() {
        // Lemma 9 part 2: H(f) = lg n but H(g) = lg|L| ≈ lg(pn).
        let n = 1u64 << 17;
        let p = 1.0 / 64.0;
        let pair = EntropyScenarioPair::new(n, p, 1 << 18);
        let stream = pair.all_singletons(9);
        let est = run(&stream, p, 2000, 10);
        let hf = (n as f64).log2(); // 17 bits
        let hg_expected = hf + p.log2(); // ≈ 11 bits
        let e = est.estimate();
        assert!(
            (e - hg_expected).abs() < 0.5,
            "estimate {e} vs expected H(g) {hg_expected}"
        );
        assert!(e < hf - 5.0, "additive lg(1/p) loss not visible");
    }

    #[test]
    fn admissibility_helpers() {
        let est = SampledEntropyEstimator::new(0.1, 10, 1);
        // n = 10^6: n^{-1/3} = 0.01 < 0.1 ⇒ admissible.
        assert!(est.rate_admissible(1_000_000));
        let est2 = SampledEntropyEstimator::new(0.001, 10, 1);
        assert!(!est2.rate_admissible(1_000_000));
        let thr = est.guarantee_threshold(1_000_000);
        assert!((thr - 0.1f64.powf(-0.5) * 1e6f64.powf(-1.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_estimator_is_zero() {
        let est = SampledEntropyEstimator::new(0.5, 10, 1);
        assert_eq!(est.estimate(), 0.0);
        assert_eq!(est.estimate_hpn(100), 0.0);
    }
}
