//! Log-space numerics for the flow-distribution estimator.
//!
//! The binomial thinning kernel `B(i, j) = binom(i,j)·p^j·(1−p)^{i−j}`
//! must be evaluated for flow sizes in the tens of thousands, where
//! `binom(i, j)` overflows `f64` by thousands of orders of magnitude —
//! everything runs through `ln Γ`.

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 7, 9 coefficients): relative error below
/// `1e-13` across the positive reals, which is far beyond what the EM
/// unfolding needs.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln binom(n, k)` for `0 ≤ k ≤ n`.
pub fn ln_binom(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binom({n}, {k})");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial pmf `P[Bin(n, p) = k]` evaluated stably in log space.
pub fn binom_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_pmf = ln_binom(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln_pmf.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts: [(f64, f64); 6] = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (5.0, 24.0),
            (10.0, 362_880.0),
            (21.0, 2.432_902_008_176_64e18),
        ];
        for &(x, fact) in &facts {
            assert!((ln_gamma(x) - fact.ln()).abs() < 1e-10, "ln_gamma({x})");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-12);
        // Γ(3/2) = √π/2.
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_binom_small_cases() {
        assert_eq!(ln_binom(5, 0), 0.0);
        assert_eq!(ln_binom(5, 5), 0.0);
        assert!((ln_binom(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_binom(52, 5) - 2_598_960f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_binom_survives_huge_arguments() {
        // binom(100_000, 50_000) ≈ 10^30100 — fine in log space.
        let v = ln_binom(100_000, 50_000);
        assert!(v > 60_000.0 && v < 70_000.0, "v = {v}");
    }

    #[test]
    fn binom_pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3f64), (50, 0.07), (200, 0.5)] {
            let total: f64 = (0..=n).map(|k| binom_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn binom_pmf_matches_direct_computation() {
        // P[Bin(4, 0.5) = 2] = 6/16.
        assert!((binom_pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
        // Degenerate p.
        assert_eq!(binom_pmf(7, 0, 0.0), 1.0);
        assert_eq!(binom_pmf(7, 7, 1.0), 1.0);
        assert_eq!(binom_pmf(7, 3, 1.0), 0.0);
    }

    #[test]
    fn binom_pmf_mean_matches_np() {
        let n = 100u64;
        let p = 0.23;
        let mean: f64 = (0..=n).map(|k| k as f64 * binom_pmf(n, k, p)).sum();
        assert!((mean - 23.0).abs() < 1e-8, "mean {mean}");
    }
}
