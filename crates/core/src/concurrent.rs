//! Lock-free multi-threaded ingestion into **one** shared sketch state.
//!
//! [`crate::sharded::ShardedMonitor`] scales cores by replicating the
//! whole monitor per worker and folding through the merge algebra —
//! correct for everything, but sketch memory grows N× with thread count
//! and `finish()` pays N merges. A [`ConcurrentMonitor`] takes the other
//! route wherever the substrate allows it: the fixed-geometry counter
//! grids (CountMin, CountSketch, AMS tug-of-war) become the
//! shared-atomic variants of [`sss_sketch::atomic`], and every worker
//! thread ingests into the *same* cells with relaxed `fetch_add`s. One
//! grid, regardless of thread count.
//!
//! Not every estimator is a commutative counter grid, so each registered
//! slot is routed to the cheapest strategy that preserves its answer:
//!
//! | Strategy | Slots | Why it is sound |
//! |---|---|---|
//! | shared-atomic | `F_1`/`F_2` heavy hitters, Rusu–Dobra `F_2` | cell-wise integer adds commute; any interleaving quiesces to the sequential grid bit for bit |
//! | key-sharded | `F_0`, `F_k` (exact and sketched), naive baselines | items are partitioned by key hash, so each part owns a disjoint sub-multiset and the existing merge is exact (disjoint maps, bottom-k union, linear sketches) |
//! | replicated | entropy, adaptive, unknown slots | entropy is *not* key-shardable (`H = Σ wᵢHᵢ + H(w)` loses the cross-partition term); thread-local replicas merge exactly like `ShardedMonitor` shards |
//!
//! **Quiesce-then-snapshot.** The shared state is only convertible after
//! every writer thread is joined: [`ConcurrentMonitor::finish`] drops
//! the queues, joins the workers (the happens-before edge that makes the
//! final relaxed loads well-defined), converts each shared-atomic grid
//! back to its plain estimator, merges the key-sharded parts and
//! replicated locals, and returns an ordinary [`Monitor`] — codec,
//! delta, transport and window layers work on it unchanged.
//!
//! **Seeding.** Shared-atomic and key-sharded slots keep the prototype's
//! hash seeds (the grids *are* the prototype's grids; key-shard parts
//! must agree with each other to merge). Replicated slots follow
//! [`Monitor::fork_shard`]'s seed schedule exactly — worker `i` derives
//! per-entry seeds from `SplitMix64::new(split_seed(builder_seed, i))`
//! in registration order — so a `Replicated`-forced run is
//! distributionally identical to a `ShardedMonitor` over the same
//! worker partition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use sss_codec::WireCodec;
use sss_hash::{fingerprint64, split_seed, SplitMix64};
use sss_obs::MetricId;
use sss_sketch::{AtomicAmsF2, AtomicCmHeavyHitters, AtomicCsHeavyHitters, AtomicScratch};
use sss_stream::{BernoulliSampler, Item};

use crate::baselines::RusuDobraF2;
use crate::heavy_hitters::{SampledF1HeavyHitters, SampledF2HeavyHitters};
use crate::monitor::{DynEstimator, Monitor};
use crate::sharded::Job;

/// How a [`ConcurrentMonitor`] maps estimator slots onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelStrategy {
    /// Per-slot routing (the table in the module docs): shared-atomic
    /// where the merge algebra is cell-wise addition, key-sharded where
    /// a key partition merges exactly, replicated otherwise.
    #[default]
    Auto,
    /// Like `Auto` — named for configs that want to state the intent
    /// explicitly; reserved as the anchor if `Auto` ever learns to
    /// measure and adapt.
    SharedAtomic,
    /// Force every slot onto thread-local replicas (the
    /// `ShardedMonitor` memory/merge profile, without its dispatch
    /// layer) — the control arm for benchmarks and equivalence tests.
    Replicated,
}

/// Tuning knobs for a [`ConcurrentMonitor`]; mirrors
/// [`crate::sharded::ShardedConfig`] where the knobs coincide.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Number of ingest threads (≥ 1).
    pub threads: usize,
    /// Bounded depth of each thread's chunk queue (backpressure).
    pub queue_depth: usize,
    /// Raw elements per dispatched chunk for unchunked slices.
    pub dispatch_chunk: usize,
    /// Batch size of the worker-side sampled feed.
    pub sample_batch: usize,
    /// Slot-to-thread mapping policy.
    pub strategy: ParallelStrategy,
}

impl ConcurrentConfig {
    /// Defaults for `threads` workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one ingest thread");
        Self {
            threads,
            queue_depth: 4,
            dispatch_chunk: 1 << 16,
            sample_batch: 4096,
            strategy: ParallelStrategy::Auto,
        }
    }
}

// Wire tags double as slot-type identifiers for strategy routing; this
// is the same keying the checkpoint registry uses, so a slot the codec
// can name, the router can route.
const HH_F1: u16 = SampledF1HeavyHitters::WIRE_TAG;
const HH_F2: u16 = SampledF2HeavyHitters::WIRE_TAG;
const RUSU_DOBRA: u16 = RusuDobraF2::WIRE_TAG;
const F0: u16 = crate::f0::SampledF0Estimator::WIRE_TAG;
const FK_EXACT: u16 =
    <crate::fk::SampledFkEstimator<crate::collisions::ExactCollisions> as WireCodec>::WIRE_TAG;
const FK_SKETCHED: u16 =
    <crate::fk::SampledFkEstimator<crate::collisions::LevelSetCollisions> as WireCodec>::WIRE_TAG;
const NAIVE_FK: u16 = crate::baselines::NaiveScaledFk::WIRE_TAG;
const NAIVE_F0: u16 = crate::baselines::NaiveScaledF0::WIRE_TAG;

/// Shared per-slot ingestion state, index-aligned with the prototype's
/// entries.
enum SlotState {
    /// `F_1` heavy hitters over a shared-atomic CountMin grid.
    Cm(AtomicCmHeavyHitters),
    /// `F_2` heavy hitters over a shared-atomic CountSketch grid.
    Cs(AtomicCsHeavyHitters),
    /// Rusu–Dobra `F_2`: shared-atomic AMS grid plus the sample counter
    /// its inversion needs.
    Ams {
        ams: AtomicAmsF2,
        n_sampled: AtomicU64,
    },
    /// Disjoint key partition: part `j` owns the items with
    /// `fingerprint64(x) % parts == j`. One mutex per part; workers
    /// group a batch by part first, so each lock is taken at most once
    /// per batch.
    KeySharded(Vec<Mutex<Box<dyn DynEstimator>>>),
    /// Thread-local replicas (held by the workers, merged at quiesce).
    Replicated,
}

struct Shared {
    slots: Vec<SlotState>,
    /// Sampled elements ingested across all workers.
    samples: AtomicU64,
}

/// Route one prototype slot to its ingestion strategy.
fn route_slot(est: &dyn DynEstimator, strategy: ParallelStrategy, parts: usize) -> SlotState {
    if strategy == ParallelStrategy::Replicated {
        return SlotState::Replicated;
    }
    match est.wire_tag() {
        HH_F1 => {
            let hh = est
                .as_any()
                .downcast_ref::<SampledF1HeavyHitters>()
                .expect("HH_F1 tag on a non-F1 slot");
            // A conservative-update CountMin cannot go shared-atomic
            // (order-dependent) *or* merge; replicate and let the merge
            // report the incompatibility, as ShardedMonitor would.
            match AtomicCmHeavyHitters::from_plain(hh.inner()) {
                Some(atomic) => SlotState::Cm(atomic),
                None => SlotState::Replicated,
            }
        }
        HH_F2 => {
            let hh = est
                .as_any()
                .downcast_ref::<SampledF2HeavyHitters>()
                .expect("HH_F2 tag on a non-F2 slot");
            SlotState::Cs(AtomicCsHeavyHitters::from_plain(hh.inner()))
        }
        RUSU_DOBRA => {
            let rd = est
                .as_any()
                .downcast_ref::<RusuDobraF2>()
                .expect("RUSU_DOBRA tag on a non-RD slot");
            SlotState::Ams {
                ams: AtomicAmsF2::from_plain(rd.ams()),
                n_sampled: AtomicU64::new(rd.samples_seen()),
            }
        }
        F0 | FK_EXACT | FK_SKETCHED | NAIVE_FK | NAIVE_F0 => {
            // Clones keep the prototype's seeds: parts must agree to
            // merge, and a key partition is just a particular disjoint
            // split, for which these merges are exact.
            SlotState::KeySharded((0..parts).map(|_| Mutex::new(est.clone_box())).collect())
        }
        _ => SlotState::Replicated,
    }
}

/// A worker's thread-local replicas at join time, in registration
/// order: `None` for slots served entirely by shared state.
type WorkerLocals = Vec<Option<Box<dyn DynEstimator>>>;

/// The shared-state pipeline: raw (unsampled) stream in, one quiesced
/// [`Monitor`] out.
///
/// ```no_run
/// use sss_core::{ConcurrentConfig, ConcurrentMonitor, MonitorBuilder, Statistic};
///
/// let proto = MonitorBuilder::with_seed(0.1, 7).f0(0.05).fk(2).build();
/// let mut cm = ConcurrentMonitor::launch(&proto, 99, ConcurrentConfig::new(4));
/// cm.ingest(&[1, 2, 3, 4, 5, 6, 7, 8]); // raw stream elements
/// let merged = cm.finish();
/// let f2 = merged.estimate(Statistic::Fk(2)).unwrap();
/// # let _ = f2;
/// ```
pub struct ConcurrentMonitor {
    txs: Vec<SyncSender<Job>>,
    handles: Vec<JoinHandle<WorkerLocals>>,
    shared: Arc<Shared>,
    dispatched: Arc<AtomicU64>,
    prototype: Monitor,
    cfg: ConcurrentConfig,
    next_worker: usize,
}

impl ConcurrentMonitor {
    /// Spawn the worker pipeline. `prototype` must be freshly built
    /// (pre-ingestion); its grids become the shared state.
    ///
    /// # Panics
    /// If the prototype has already ingested samples.
    pub fn launch(prototype: &Monitor, sampler_seed: u64, cfg: ConcurrentConfig) -> Self {
        assert!(
            prototype.samples_seen() == 0,
            "concurrent launch requires a pristine prototype monitor"
        );
        assert!(cfg.threads >= 1, "need at least one ingest thread");
        let shared = Arc::new(Shared {
            slots: prototype
                .entries()
                .iter()
                .map(|e| route_slot(e.est.as_ref(), cfg.strategy, cfg.threads))
                .collect(),
            samples: AtomicU64::new(0),
        });
        let dispatched = Arc::new(AtomicU64::new(0));
        let mut txs = Vec::with_capacity(cfg.threads);
        let mut handles = Vec::with_capacity(cfg.threads);
        for i in 0..cfg.threads {
            let (tx, rx) = sync_channel::<Job>(cfg.queue_depth);
            // Replicated slots follow fork_shard's schedule: one derived
            // seed per entry in registration order (all slots advance
            // the schedule so alignment is seed-for-seed, only the
            // replicated ones actually clone).
            let mut seeds = SplitMix64::new(split_seed(prototype.builder_seed(), i as u64));
            let locals: WorkerLocals = prototype
                .entries()
                .iter()
                .zip(shared.slots.iter())
                .map(|(e, slot)| {
                    let seed = seeds.derive();
                    if matches!(slot, SlotState::Replicated) {
                        let mut local = e.est.clone_box();
                        local.reseed_shard_local_dyn(seed);
                        Some(local)
                    } else {
                        None
                    }
                })
                .collect();
            let sampler = BernoulliSampler::new(prototype.p(), split_seed(sampler_seed, i as u64));
            let state = Arc::clone(&shared);
            let cfg_w = cfg.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sss-conc-{i}"))
                .spawn(move || worker_loop(i, locals, sampler, rx, &state, &cfg_w))
                .expect("spawn concurrent worker");
            txs.push(tx);
            handles.push(handle);
        }
        Self {
            txs,
            handles,
            shared,
            dispatched,
            prototype: prototype.clone(),
            cfg,
            next_worker: 0,
        }
    }

    /// Number of ingest threads.
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// The sampling rate every worker applies.
    pub fn p(&self) -> f64 {
        self.prototype.p()
    }

    /// Raw (pre-sampling) elements dispatched to workers so far.
    pub fn raw_dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Sampled elements ingested into the shared state so far (racy
    /// snapshot; trails dispatch by the in-flight queues).
    pub fn samples_ingested(&self) -> u64 {
        self.shared.samples.load(Ordering::Relaxed)
    }

    fn send(&mut self, job: Job) {
        let n = job.as_slice().len() as u64;
        let worker = self.next_worker;
        self.next_worker = (self.next_worker + 1) % self.txs.len();
        self.txs[worker]
            .send(job)
            .expect("concurrent worker exited early (panicked?)");
        self.dispatched.fetch_add(n, Ordering::Relaxed);
        let obs = sss_obs::global();
        obs.inc(MetricId::ShardedJobsDispatchedTotal);
        obs.gauge_add(MetricId::ShardedQueueDepth, 1);
    }

    /// Feed a slice of the **raw** stream (copied into
    /// `dispatch_chunk`-sized jobs; blocks on full queues).
    pub fn ingest(&mut self, raw: &[Item]) {
        for chunk in raw.chunks(self.cfg.dispatch_chunk.max(1)) {
            self.send(Job::Owned(chunk.to_vec()));
        }
    }

    /// Feed an owned buffer as one job, no re-chunking.
    pub fn ingest_vec(&mut self, raw: Vec<Item>) {
        if !raw.is_empty() {
            self.send(Job::Owned(raw));
        }
    }

    /// Feed a shared buffer zero-copy (workers borrow ranges).
    pub fn ingest_shared(&mut self, data: &Arc<Vec<Item>>) {
        let len = data.len();
        let step = self.cfg.dispatch_chunk.max(1);
        let mut lo = 0usize;
        while lo < len {
            let hi = (lo + step).min(len);
            self.send(Job::Shared(Arc::clone(data), lo..hi));
            lo = hi;
        }
    }

    /// Quiesce: drain the queues, join every writer thread, convert the
    /// shared-atomic grids to their plain estimators, merge key-sharded
    /// parts and replicated locals, and return the plain [`Monitor`].
    pub fn finish(self) -> Monitor {
        let ConcurrentMonitor {
            txs,
            handles,
            shared,
            prototype,
            ..
        } = self;
        drop(txs); // closes every queue; workers drain and return locals
        let worker_locals: Vec<WorkerLocals> = handles
            .into_iter()
            .map(|h| h.join().expect("concurrent worker panicked"))
            .collect();

        let mut merged = prototype;
        let mut merges = 0u64;
        for (i, slot) in shared.slots.iter().enumerate() {
            match slot {
                SlotState::Cm(atomic) => {
                    let entry = &mut merged.entries_mut()[i];
                    entry
                        .est
                        .as_any_mut()
                        .downcast_mut::<SampledF1HeavyHitters>()
                        .expect("Cm slot type changed under quiesce")
                        .replace_inner(atomic.to_plain());
                }
                SlotState::Cs(atomic) => {
                    let entry = &mut merged.entries_mut()[i];
                    entry
                        .est
                        .as_any_mut()
                        .downcast_mut::<SampledF2HeavyHitters>()
                        .expect("Cs slot type changed under quiesce")
                        .replace_inner(atomic.to_plain());
                }
                SlotState::Ams { ams, n_sampled } => {
                    let entry = &mut merged.entries_mut()[i];
                    entry
                        .est
                        .as_any_mut()
                        .downcast_mut::<RusuDobraF2>()
                        .expect("Ams slot type changed under quiesce")
                        .install(ams.to_plain(), n_sampled.load(Ordering::Relaxed));
                }
                SlotState::KeySharded(parts) => {
                    for part in parts {
                        let part = part.lock().unwrap_or_else(|p| p.into_inner());
                        let entry = &mut merged.entries_mut()[i];
                        entry
                            .est
                            .merge_dyn(part.as_any(), &entry.label)
                            .expect("key-shard parts share the prototype's config");
                        merges += 1;
                    }
                }
                SlotState::Replicated => {
                    for locals in &worker_locals {
                        let local = locals[i]
                            .as_ref()
                            .expect("replicated slot missing its worker local");
                        let entry = &mut merged.entries_mut()[i];
                        entry
                            .est
                            .merge_dyn(local.as_any(), &entry.label)
                            .expect("replicas share the prototype's config");
                        merges += 1;
                    }
                }
            }
        }
        merged.set_samples(shared.samples.load(Ordering::Relaxed));
        let obs = sss_obs::global();
        obs.add(MetricId::ShardedMergesTotal, merges);
        if merges > 0 {
            obs.event(sss_obs::EventKind::MergePerformed, merges, 0, "quiesce");
        }
        merged
    }
}

fn worker_loop(
    worker: usize,
    mut locals: WorkerLocals,
    mut sampler: BernoulliSampler,
    rx: Receiver<Job>,
    shared: &Shared,
    cfg: &ConcurrentConfig,
) -> WorkerLocals {
    let mut scratch = AtomicScratch::new();
    // Per-part grouping buffers for key-sharded slots, reused across
    // batches (one lock per non-empty part per batch, not per item).
    let parts = cfg.threads;
    let mut buckets: Vec<Vec<u64>> = (0..parts).map(|_| Vec::new()).collect();
    while let Ok(job) = rx.recv() {
        let mut items = 0u64;
        sampler.sample_batches(job.as_slice(), cfg.sample_batch, |batch| {
            items += batch.len() as u64;
            let mut grouped = false;
            for (i, slot) in shared.slots.iter().enumerate() {
                match slot {
                    SlotState::Cm(atomic) => atomic.update_batch(batch, &mut scratch),
                    SlotState::Cs(atomic) => atomic.update_batch(batch, &mut scratch),
                    SlotState::Ams { ams, n_sampled } => {
                        ams.update_batch(batch, &mut scratch);
                        n_sampled.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    }
                    SlotState::KeySharded(slot_parts) => {
                        if !grouped {
                            for b in &mut buckets {
                                b.clear();
                            }
                            for &x in batch {
                                buckets[(fingerprint64(x) % parts as u64) as usize].push(x);
                            }
                            grouped = true;
                        }
                        for (part, bucket) in slot_parts.iter().zip(buckets.iter()) {
                            if !bucket.is_empty() {
                                part.lock()
                                    .unwrap_or_else(|p| p.into_inner())
                                    .update_batch(bucket);
                            }
                        }
                    }
                    SlotState::Replicated => {
                        if let Some(local) = &mut locals[i] {
                            local.update_batch(batch);
                        }
                    }
                }
            }
            shared
                .samples
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        });
        let obs = sss_obs::global();
        obs.inc(MetricId::ShardedJobsCompletedTotal);
        obs.gauge_add(MetricId::ShardedQueueDepth, -1);
        obs.labeled_add(MetricId::IngestThreadItemsTotal, worker as u64, items);
        let retries = scratch.take_cas_retries();
        if retries > 0 {
            obs.add(MetricId::IngestCasRetriesTotal, retries);
        }
    }
    locals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Statistic;
    use crate::monitor::MonitorBuilder;
    use sss_stream::{StreamGen, ZipfStream};

    fn proto(p: f64) -> Monitor {
        MonitorBuilder::with_seed(p, 41)
            .f0(0.05)
            .fk(2)
            .entropy(768)
            .f1_heavy_hitters(0.05, 0.2, 0.05)
            .f2_heavy_hitters(0.4, 0.2, 0.05)
            .build()
    }

    /// Shared-atomic grids keep the prototype's seeds, so at p = 1 and
    /// any thread count the quiesced monitor's grid substrates must
    /// match a sequential monitor bit for bit — stronger than the
    /// sharded pipeline, whose forks reseed shard-local randomness.
    #[test]
    fn grid_substrates_quiesce_bitwise_at_p_one() {
        let stream = Arc::new(ZipfStream::new(2_000, 1.2).generate(50_000, 3));
        let mut single = proto(1.0);
        single.update_batch(&stream);

        for threads in [1usize, 2, 4] {
            let mut cfg = ConcurrentConfig::new(threads);
            cfg.dispatch_chunk = 4096;
            let mut cm = ConcurrentMonitor::launch(&proto(1.0), 7, cfg);
            cm.ingest_shared(&stream);
            let merged = cm.finish();
            assert_eq!(merged.samples_seen(), stream.len() as u64);
            // Exact key-partition merges: F0 identical.
            assert_eq!(
                merged.estimate(Statistic::F0).unwrap().value,
                single.estimate(Statistic::F0).unwrap().value,
                "{threads} threads: F0 must partition exactly"
            );
            let f2_a = merged.estimate(Statistic::Fk(2)).unwrap().value;
            let f2_b = single.estimate(Statistic::Fk(2)).unwrap().value;
            assert!(
                (f2_a - f2_b).abs() <= 1e-6 * f2_b.abs().max(1.0),
                "{threads} threads: F2 {f2_a} vs {f2_b}"
            );
        }
    }

    #[test]
    fn replicated_strategy_matches_auto_totals() {
        let stream = Arc::new(ZipfStream::new(1_000, 1.1).generate(30_000, 5));
        let mut cfg = ConcurrentConfig::new(2);
        cfg.strategy = ParallelStrategy::Replicated;
        let mut cm = ConcurrentMonitor::launch(&proto(1.0), 9, cfg);
        cm.ingest_shared(&stream);
        let merged = cm.finish();
        assert_eq!(merged.samples_seen(), stream.len() as u64);
        assert!(merged.estimate(Statistic::F0).is_some());
    }

    #[test]
    #[should_panic(expected = "pristine prototype")]
    fn launch_rejects_ingested_prototype() {
        let mut m = proto(0.5);
        m.update(1);
        let _ = ConcurrentMonitor::launch(&m, 1, ConcurrentConfig::new(2));
    }

    #[test]
    #[should_panic(expected = "at least one ingest thread")]
    fn zero_threads_rejected() {
        let _ = ConcurrentConfig::new(0);
    }
}
