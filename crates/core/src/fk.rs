//! Algorithm 1: frequency moments of the original stream from the sampled
//! stream (paper §3, Theorem 1).
//!
//! The estimator observes only `L` and reconstructs `F_k(P)` through the
//! collision recursion
//!
//! ```text
//! φ̃_1 = F_1(L)/p
//! φ̃_ℓ = C̃_ℓ(L)·ℓ!/p^ℓ + Σ_{i<ℓ} β^ℓ_i·φ̃_i          (ℓ = 2, …, k)
//! ```
//!
//! using `E[C_ℓ(L)] = p^ℓ·C_ℓ(P)` (Lemma 2) and the falling-factorial
//! identity (Lemma 1). With the error schedule of Lemma 3 the output is a
//! `(1+ε, δ)`-estimator of `F_k(P)` in `Õ(p⁻¹m^{1−2/k})` space, provided
//! `p = Ω̃(min(m,n)^{−1/k})`.

use sss_codec::{CodecError, Reader, WireCodec};
use sss_sketch::levelset::LevelSetConfig;

use crate::collisions::{CollisionOracle, ExactCollisions, LevelSetCollisions};
use crate::estimate::{Estimate, Guarantee, Statistic, SubsampledEstimator};
use crate::params::ApproxParams;
use crate::stirling::{beta_coefficients, epsilon_schedule, factorial_f64, MAX_K};

/// The paper's Algorithm 1, generic over the collision oracle.
///
/// ```
/// use sss_core::SampledFkEstimator;
///
/// // The monitor sees a p = 0.5 Bernoulli sample of a stream whose
/// // true F_2 is 3² + 2² + 1² = 14. Feed it the sampled elements:
/// let mut est = SampledFkEstimator::exact(2, 0.5);
/// for x in [7u64, 7, 9, 4] {
///     est.update(x); // the surviving half of <7,7,7,9,9,4>
/// }
/// // φ̃_2 = 2·C_2(L)/p² + F_1(L)/p = 2·1/0.25 + 4/0.5 = 16 ≈ F_2(P).
/// assert_eq!(est.estimate(), 16.0);
/// ```
#[derive(Debug, Clone)]
pub struct SampledFkEstimator<O: CollisionOracle> {
    oracle: O,
    k: u32,
    p: f64,
    target: Option<ApproxParams>,
}

impl SampledFkEstimator<ExactCollisions> {
    /// Algorithm 1 with exact collision counting of the sampled stream
    /// (space `O(F_0(L))`): isolates the sampling error.
    pub fn exact(k: u32, p: f64) -> Self {
        Self::with_oracle(ExactCollisions::new(k), k, p)
    }
}

impl SampledFkEstimator<LevelSetCollisions> {
    /// Algorithm 1 with the Indyk–Woodruff sketched collision oracle —
    /// the paper's full small-space construction.
    pub fn sketched(k: u32, p: f64, config: &LevelSetConfig, seed: u64) -> Self {
        Self::with_oracle(LevelSetCollisions::new(k, config, seed), k, p)
    }
}

impl<O: CollisionOracle> SampledFkEstimator<O> {
    /// Algorithm 1 over an arbitrary collision oracle.
    pub fn with_oracle(oracle: O, k: u32, p: f64) -> Self {
        assert!((2..=MAX_K).contains(&k), "k must be in 2..={MAX_K}");
        assert!(p > 0.0 && p <= 1.0, "sampling probability must be in (0,1]");
        assert!(oracle.max_order() >= k, "oracle supports too few orders");
        Self {
            oracle,
            k,
            p,
            target: None,
        }
    }

    /// Record the `(1+ε, δ)` target this estimator was sized for, so the
    /// typed [`Estimate`] carries it (the oracle configuration, not this
    /// label, is what realises the contract).
    pub fn with_target(mut self, target: ApproxParams) -> Self {
        self.target = Some(target);
        self
    }

    /// The moment order `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The sampling probability `p` the estimator corrects for.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Elements of the *sampled* stream seen so far.
    pub fn samples_seen(&self) -> u64 {
        self.oracle.n()
    }

    /// Memory footprint in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.oracle.space_words()
    }

    /// Access the collision oracle (diagnostics, tests).
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    /// Ingest one element of the sampled stream `L`.
    pub fn update(&mut self, x: u64) {
        self.oracle.update(x);
    }

    /// Ingest a batch of consecutive elements of `L`.
    pub fn update_batch(&mut self, xs: &[u64]) {
        self.oracle.update_batch(xs);
    }

    /// Merge a second monitor's estimator (same `k`, `p` and oracle
    /// configuration): afterwards `self` estimates the moments of the
    /// *concatenated* original stream. Both monitors must have observed
    /// **disjoint parts** of `P`, each Bernoulli-sampled at the same rate
    /// — the distributed deployment of the paper's router scenario. Exact
    /// for [`ExactCollisions`] (frequency algebra); within sketch error
    /// for [`LevelSetCollisions`] (linear CountSketch merge).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "moment order mismatch");
        crate::estimate::assert_rates_compatible(self.p, other.p);
        self.oracle.merge(&other.oracle);
    }

    /// The recursion of Algorithm 1: `φ̃_1 … φ̃_k`
    /// (`result[ℓ-1] = φ̃_ℓ ≈ F_ℓ(P)`).
    pub fn estimate_all(&self) -> Vec<f64> {
        let mut phi = vec![0.0f64; self.k as usize];
        phi[0] = self.oracle.n() as f64 / self.p;
        for ell in 2..=self.k {
            let c = self.oracle.estimate(ell);
            let mut value = c * factorial_f64(ell) / self.p.powi(ell as i32);
            let beta = beta_coefficients(ell);
            for i in 1..ell {
                value += beta[i as usize - 1] as f64 * phi[i as usize - 1];
            }
            phi[ell as usize - 1] = value;
        }
        phi
    }

    /// The `(1+ε, δ)` estimate `φ̃_k` of `F_k(P)`.
    pub fn estimate(&self) -> f64 {
        *self.estimate_all().last().expect("k >= 2")
    }

    /// Estimate of a single intermediate moment `F_ℓ(P)`, `1 ≤ ℓ ≤ k`.
    pub fn estimate_moment(&self, ell: u32) -> f64 {
        assert!(ell >= 1 && ell <= self.k);
        self.estimate_all()[ell as usize - 1]
    }
}

impl<O: CollisionOracle> SubsampledEstimator for SampledFkEstimator<O> {
    fn statistic(&self) -> Statistic {
        Statistic::Fk(self.k)
    }

    fn update(&mut self, x: u64) {
        SampledFkEstimator::update(self, x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        SampledFkEstimator::update_batch(self, xs);
    }

    fn merge(&mut self, other: &Self) {
        SampledFkEstimator::merge(self, other);
    }

    fn estimate(&self) -> Estimate {
        Estimate::scalar(
            SampledFkEstimator::estimate(self),
            Guarantee::Multiplicative {
                target: self.target,
            },
            self.p,
            self.samples_seen(),
        )
    }

    fn space_bytes(&self) -> usize {
        8 * self.space_words()
    }

    fn p(&self) -> f64 {
        self.p
    }

    fn samples_seen(&self) -> u64 {
        SampledFkEstimator::samples_seen(self)
    }
}

/// Payload codec shared by both oracle instantiations of Algorithm 1
/// (each gets its own wire tag: the oracle type is part of the identity).
impl<O: CollisionOracle + WireCodec> SampledFkEstimator<O> {
    fn encode_fields(&self, out: &mut Vec<u8>) {
        self.k.encode_into(out);
        self.p.encode_into(out);
        self.target.encode_into(out);
        self.oracle.encode_into(out);
    }

    fn decode_fields(r: &mut Reader) -> Result<Self, CodecError> {
        let k = r.u32()?;
        if !(2..=MAX_K).contains(&k) {
            return Err(CodecError::Invalid {
                what: "SampledFkEstimator k outside 2..=MAX_K",
            });
        }
        let p = crate::f0::decode_rate(r)?;
        let target = Option::<ApproxParams>::decode(r)?;
        let oracle = O::decode(r)?;
        if oracle.max_order() < k {
            return Err(CodecError::Invalid {
                what: "SampledFkEstimator oracle supports too few orders",
            });
        }
        Ok(SampledFkEstimator {
            oracle,
            k,
            p,
            target,
        })
    }
}

impl WireCodec for SampledFkEstimator<ExactCollisions> {
    const WIRE_TAG: u16 = 0x0402;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.encode_fields(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Self::decode_fields(r)
    }
}

impl WireCodec for SampledFkEstimator<LevelSetCollisions> {
    const WIRE_TAG: u16 = 0x0403;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.encode_fields(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Self::decode_fields(r)
    }
}

/// Theorem 1's admissibility condition on the sampling probability:
/// `p = Ω̃(min(m, n)^{−1/k})`. Returns the threshold with the polylog
/// factors set to 1; sampling below it forfeits the guarantee regardless of
/// space (Bar-Yossef's sampling lower bound, the paper's Theorem 4.33
/// citation).
pub fn min_sampling_probability(k: u32, m: u64, n: u64) -> f64 {
    assert!(k >= 1);
    let base = m.min(n).max(1) as f64;
    base.powf(-1.0 / k as f64)
}

/// The per-level relative errors `ε_1 … ε_k` Algorithm 1 budgets for a
/// final error of `eps` (re-export of the Lemma 3 schedule for callers
/// configuring the collision oracle's `ε′ = ε_{ℓ−1}/4`).
pub fn fk_error_schedule(k: u32, eps: f64) -> Vec<f64> {
    epsilon_schedule(k, eps)
}

/// A recommended level-set configuration for estimating `F_k` of a stream
/// over universe `m` sampled at rate `p`: width `∝ p⁻¹·m^{1−2/k}` (the
/// paper's space bound) with floors that keep tiny cases functional.
pub fn recommended_levelset_config(k: u32, m: u64, p: f64, eps: f64) -> LevelSetConfig {
    let m_f = m.max(2) as f64;
    // Õ(p⁻¹·m^{1−2/k}) with the leading poly(1/ε)·log m factors spelled
    // out (they are what the Õ hides; without the log m the k = 2 width
    // collapses to O(1/p) counters, starving recovery on wide universes).
    let width_f = (m_f.powf(1.0 - 2.0 / k as f64) * m_f.log2() / (p * eps * eps)).ceil();
    let width = (width_f as usize).clamp(64, 1 << 22);
    let mut cfg = LevelSetConfig::for_universe(m, width);
    // ε′ = ε_{k−1}/4 is the theory's choice; floor it for practicality.
    let sched = epsilon_schedule(k, eps);
    cfg.eps_prime = (sched[k as usize - 2] / 4.0).clamp(0.02, 0.25);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_stream::{BernoulliSampler, ExactStats, StreamGen, UniformStream, ZipfStream};

    /// With p = 1 and exact collisions, the recursion is the identity of
    /// Lemma 1: the estimate equals F_k exactly.
    #[test]
    fn exact_at_p_one_recovers_moments_exactly() {
        let stream = ZipfStream::new(500, 1.2).generate(20_000, 1);
        let stats = ExactStats::from_stream(stream.iter().copied());
        for k in 2..=5u32 {
            let mut est = SampledFkEstimator::exact(k, 1.0);
            for &x in &stream {
                est.update(x);
            }
            let all = est.estimate_all();
            for ell in 1..=k {
                let truth = stats.fk(ell);
                let got = all[ell as usize - 1];
                assert!(
                    (got - truth).abs() <= 1e-6 * truth,
                    "k={k} ℓ={ell}: {got} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn sampled_f2_concentrates_on_uniform_stream() {
        let stream = UniformStream::new(1000).generate(200_000, 2);
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
        let p = 0.1;
        let mut errs = Vec::new();
        for seed in 0..10u64 {
            let mut est = SampledFkEstimator::exact(2, p);
            let mut sampler = BernoulliSampler::new(p, seed);
            sampler.sample_slice(&stream, |x| est.update(x));
            errs.push((est.estimate() - truth).abs() / truth);
        }
        errs.sort_by(|a, b| a.total_cmp(b));
        // Median trial within 5%, no trial catastrophically off.
        assert!(errs[4] < 0.05, "median err {}", errs[4]);
        assert!(errs[9] < 0.2, "worst err {}", errs[9]);
    }

    #[test]
    fn sampled_f3_concentrates_on_zipf_stream() {
        let stream = ZipfStream::new(2000, 1.1).generate(150_000, 3);
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(3);
        let p = 0.2;
        let mut errs = Vec::new();
        for seed in 0..10u64 {
            let mut est = SampledFkEstimator::exact(3, p);
            let mut sampler = BernoulliSampler::new(p, seed);
            sampler.sample_slice(&stream, |x| est.update(x));
            errs.push((est.estimate() - truth).abs() / truth);
        }
        errs.sort_by(|a, b| a.total_cmp(b));
        assert!(errs[4] < 0.1, "median err {}", errs[4]);
    }

    #[test]
    fn sketched_estimator_tracks_f2() {
        let stream = ZipfStream::new(5000, 1.3).generate(100_000, 4);
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
        let p = 0.25;
        let cfg = recommended_levelset_config(2, 5000, p, 0.2);
        let mut est = SampledFkEstimator::sketched(2, p, &cfg, 5);
        let mut sampler = BernoulliSampler::new(p, 6);
        sampler.sample_slice(&stream, |x| est.update(x));
        let rel = (est.estimate() - truth).abs() / truth;
        assert!(rel < 0.3, "rel err {rel}");
    }

    #[test]
    fn estimate_moment_consistency() {
        let stream = UniformStream::new(100).generate(10_000, 7);
        let mut est = SampledFkEstimator::exact(4, 1.0);
        for &x in &stream {
            est.update(x);
        }
        let all = est.estimate_all();
        for ell in 1..=4u32 {
            assert_eq!(est.estimate_moment(ell), all[ell as usize - 1]);
        }
        assert_eq!(est.estimate(), all[3]);
    }

    #[test]
    fn min_p_matches_formula() {
        assert!((min_sampling_probability(2, 10_000, 1 << 30) - 0.01).abs() < 1e-12);
        assert!(
            (min_sampling_probability(4, 1 << 20, 1 << 20)
                - (1u64 << 5) as f64 / (1u64 << 10) as f64)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn recommended_config_scales_with_p_and_k() {
        let narrow = recommended_levelset_config(2, 1 << 20, 0.5, 0.1);
        let wide = recommended_levelset_config(2, 1 << 20, 0.05, 0.1);
        assert!(wide.width >= 9 * narrow.width, "width must scale as 1/p");
        let k2 = recommended_levelset_config(2, 1 << 20, 0.1, 0.1);
        let k4 = recommended_levelset_config(4, 1 << 20, 0.1, 0.1);
        assert!(k4.width > k2.width, "higher k needs more width");
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_one_rejected() {
        let _ = SampledFkEstimator::exact(1, 0.5);
    }
}
