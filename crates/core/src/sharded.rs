//! Sharded multi-threaded ingestion: N workers, one coordinator view.
//!
//! The single-threaded [`Monitor`] consumes one Bernoulli-sampled stream.
//! At production rates the bottleneck is ingestion itself, and the paper's
//! summaries are exactly the tool for going wide: every estimator merges
//! (`SubsampledEstimator::merge`), so the raw stream can be partitioned
//! across workers — each sampling and summarising its own shard — and the
//! shard summaries combined into one answer for the whole stream. This is
//! the Gibbons–Tirthapura distributed-counting deployment run across
//! threads instead of sites.
//!
//! ```text
//!            raw chunks (round-robin, bounded queues)
//!   ingest ──┬──────────────► worker 0: sample(p, seed₀) ─► Monitor₀ ─┐
//!            ├──────────────► worker 1: sample(p, seed₁) ─► Monitor₁ ─┤ snapshot
//!            ├──────────────► …                                       ├─────────► coordinator
//!            └──────────────► worker N−1: sample(p, seedₙ) ─► Monitorₙ┘  merge     (Monitor)
//! ```
//!
//! **Seed-splitting contract.** Worker `i` gets `Monitor::fork_shard(i)`
//! (same sketch hash seeds — the merge algebra requires them — with
//! shard-local randomness like entropy reservoirs re-seeded via
//! [`sss_hash::split_seed`]) and an independently seeded
//! [`BernoulliSampler`] (`split_seed(sampler_seed, i)`), so survival
//! decisions across shards are independent, exactly the paper's model of
//! `N` independent Bernoulli processes over disjoint slices of `P`.
//!
//! **Exact vs approximate.** After `finish()`, statistics whose merge is
//! exact (`F_k` over exact collision oracles, bottom-k `F_0`, CountMin /
//! CountSketch heavy hitters, the naive baselines) answer identically to a
//! single monitor fed the same sampled elements; the entropy merge is the
//! documented length-weighted average of shard entropies (the suffix
//! reservoir is not mergeable), which matches the single-monitor estimate
//! when shards see statistically similar slices — the round-robin
//! partition below is chosen to make that true.

use sss_obs::MetricId;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use sss_hash::split_seed;
use sss_stream::{BernoulliSampler, Item};

use crate::monitor::Monitor;

/// Tuning knobs for a [`ShardedMonitor`]. `shards` is the only knob most
/// callers set; the defaults keep queues short (bounded memory,
/// backpressure on the producer) and chunks large enough that dispatch
/// overhead vanishes against estimator work.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of worker threads (≥ 1).
    pub shards: usize,
    /// Bounded depth of each worker's chunk queue; a full queue blocks
    /// `ingest` (backpressure) instead of buffering unboundedly.
    pub queue_depth: usize,
    /// Raw elements per dispatched chunk when the producer hands over
    /// unchunked slices.
    pub dispatch_chunk: usize,
    /// Batch size of the worker-side sampled feed
    /// ([`BernoulliSampler::sample_batches`] into `Monitor::update_batch`).
    /// 4096 amortises the per-batch monitor dispatch further than the old
    /// 1024 default without growing the survivor buffer past L1.
    pub sample_batch: usize,
    /// Publish a shard snapshot for [`ShardedMonitor::snapshot`] every
    /// this many chunks (0 disables periodic snapshots; `finish` always
    /// merges final state).
    pub snapshot_every: u64,
}

impl ShardedConfig {
    /// Defaults for `shards` workers.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self {
            shards,
            queue_depth: 4,
            dispatch_chunk: 1 << 16,
            sample_batch: 4096,
            snapshot_every: 8,
        }
    }
}

/// A chunk of the raw stream travelling to a worker: either owned, or a
/// zero-copy range of a shared buffer. Shared with the concurrent
/// (shared-atomic) pipeline in [`crate::concurrent`].
pub(crate) enum Job {
    Owned(Vec<Item>),
    Shared(Arc<Vec<Item>>, Range<usize>),
}

impl Job {
    pub(crate) fn as_slice(&self) -> &[Item] {
        match self {
            Job::Owned(v) => v,
            Job::Shared(data, r) => &data[r.clone()],
        }
    }
}

/// The sharded ingestion pipeline: raw (unsampled) stream in, merged
/// [`Monitor`] out.
///
/// ```no_run
/// use sss_core::{MonitorBuilder, ShardedConfig, ShardedMonitor, Statistic};
///
/// let proto = MonitorBuilder::with_seed(0.1, 7).f0(0.05).fk(2).build();
/// let mut sharded = ShardedMonitor::launch(&proto, 99, ShardedConfig::new(4));
/// sharded.ingest(&[1, 2, 3, 4, 5, 6, 7, 8]); // raw stream elements
/// let merged = sharded.finish();
/// let f2 = merged.estimate(Statistic::Fk(2)).unwrap();
/// # let _ = f2;
/// ```
///
/// Workers sample their shard at the prototype's rate `p` and feed the
/// survivors to their forked monitor; `finish()` (and periodically,
/// `snapshot()`) folds the shard monitors into one coordinator view via
/// [`Monitor::merge`].
pub struct ShardedMonitor {
    txs: Vec<SyncSender<Job>>,
    handles: Vec<JoinHandle<Monitor>>,
    /// Latest published shard snapshots, index-aligned with workers.
    snapshots: Arc<Vec<Mutex<Option<Monitor>>>>,
    /// Raw elements handed to workers so far (for dispatch accounting).
    dispatched: Arc<AtomicU64>,
    /// Pristine coordinator base for snapshot merges.
    prototype: Monitor,
    cfg: ShardedConfig,
    next_shard: usize,
}

impl ShardedMonitor {
    /// Spawn the worker pipeline. `prototype` should be a freshly built
    /// (pre-ingestion) monitor — each worker gets `prototype.fork_shard(i)`
    /// and a sampler seeded with `split_seed(sampler_seed, i)`.
    ///
    /// # Panics
    /// If the prototype has already ingested samples (the shard forks
    /// would double-count them on merge).
    pub fn launch(prototype: &Monitor, sampler_seed: u64, cfg: ShardedConfig) -> Self {
        assert!(
            prototype.samples_seen() == 0,
            "sharded launch requires a pristine prototype monitor"
        );
        // Re-validate: the config fields are public, so ShardedConfig::new's
        // own assert can be bypassed by mutation.
        assert!(cfg.shards >= 1, "need at least one shard");
        let snapshots: Arc<Vec<Mutex<Option<Monitor>>>> =
            Arc::new((0..cfg.shards).map(|_| Mutex::new(None)).collect());
        let dispatched = Arc::new(AtomicU64::new(0));
        let mut txs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let (tx, rx) = sync_channel::<Job>(cfg.queue_depth);
            let monitor = prototype.fork_shard(i as u64);
            let sampler = BernoulliSampler::new(prototype.p(), split_seed(sampler_seed, i as u64));
            let slot = Arc::clone(&snapshots);
            let cfg_w = cfg.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sss-shard-{i}"))
                .spawn(move || worker_loop(monitor, sampler, rx, &slot[i], &cfg_w))
                .expect("spawn shard worker");
            txs.push(tx);
            handles.push(handle);
        }
        Self {
            txs,
            handles,
            snapshots,
            dispatched,
            prototype: prototype.clone(),
            cfg,
            next_shard: 0,
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// The sampling rate every shard applies.
    pub fn p(&self) -> f64 {
        self.prototype.p()
    }

    /// Raw (pre-sampling) elements dispatched to workers so far.
    pub fn raw_dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    fn send(&mut self, job: Job) {
        let n = job.as_slice().len() as u64;
        // Round-robin keeps shard loads and *distributions* aligned, which
        // is what makes the length-weighted entropy merge consistent.
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.txs.len();
        self.txs[shard]
            .send(job)
            .expect("shard worker exited early (panicked?)");
        self.dispatched.fetch_add(n, Ordering::Relaxed);
        let obs = sss_obs::global();
        obs.inc(MetricId::ShardedJobsDispatchedTotal);
        // Depth = dispatched − completed: `sync_channel` exposes no
        // len, so occupancy is tracked from both ends of the queue.
        obs.gauge_add(MetricId::ShardedQueueDepth, 1);
    }

    /// Feed a slice of the **raw** stream. The slice is copied into
    /// per-worker chunks of `cfg.dispatch_chunk` elements; blocks when all
    /// queues are full (bounded-memory backpressure). For large in-memory
    /// buffers prefer the zero-copy [`ShardedMonitor::ingest_shared`].
    pub fn ingest(&mut self, raw: &[Item]) {
        for chunk in raw.chunks(self.cfg.dispatch_chunk.max(1)) {
            self.send(Job::Owned(chunk.to_vec()));
        }
    }

    /// Feed an owned buffer of the raw stream without re-chunking: the
    /// whole vector goes to one worker as a single job.
    pub fn ingest_vec(&mut self, raw: Vec<Item>) {
        if !raw.is_empty() {
            self.send(Job::Owned(raw));
        }
    }

    /// Feed a shared buffer of the raw stream zero-copy: workers borrow
    /// `dispatch_chunk`-sized ranges of `data` round-robin. This is the
    /// fast path for replaying captured traces (no per-chunk memcpy).
    pub fn ingest_shared(&mut self, data: &Arc<Vec<Item>>) {
        let len = data.len();
        let step = self.cfg.dispatch_chunk.max(1);
        let mut lo = 0usize;
        while lo < len {
            let hi = (lo + step).min(len);
            self.send(Job::Shared(Arc::clone(data), lo..hi));
            lo = hi;
        }
    }

    /// Coordinator view of the stream so far: the merge of the latest
    /// published shard snapshots (cadence `cfg.snapshot_every` chunks;
    /// shards that have not published yet contribute nothing). The view
    /// trails live ingestion by up to one snapshot interval per shard —
    /// call [`ShardedMonitor::finish`] for the exact final answer.
    pub fn snapshot(&self) -> Monitor {
        let mut view = self.prototype.clone();
        let mut merges = 0u64;
        for slot in self.snapshots.iter() {
            if let Some(shard) = slot.lock().expect("snapshot lock").as_ref() {
                view.merge(shard);
                merges += 1;
            }
        }
        let obs = sss_obs::global();
        obs.add(MetricId::ShardedMergesTotal, merges);
        if merges > 0 {
            obs.event(sss_obs::EventKind::MergePerformed, merges, 0, "snapshot");
        }
        view
    }

    /// The trailing coordinator view of [`ShardedMonitor::snapshot`] as
    /// framed wire bytes ([`Monitor::checkpoint`]) — what a remote site
    /// mails to a cross-site collector mid-run without stopping ingestion.
    /// The collector rebuilds it with [`Monitor::restore`] and merges.
    ///
    /// # Errors
    /// Propagates [`Monitor::checkpoint`]'s registry check (a
    /// `register()`-ed estimator whose tag cannot be restored).
    pub fn snapshot_wire(&self) -> Result<Vec<u8>, sss_codec::CodecError> {
        self.snapshot().checkpoint()
    }

    /// Drain the queues, join every worker, and merge all shard monitors
    /// into the final coordinator view.
    pub fn finish(self) -> Monitor {
        let ShardedMonitor {
            txs,
            handles,
            prototype,
            ..
        } = self;
        drop(txs); // closes every queue; workers drain and return
        let mut merged = prototype;
        let mut merges = 0u64;
        for h in handles {
            let shard = h.join().expect("shard worker panicked");
            merged.merge(&shard);
            merges += 1;
        }
        let obs = sss_obs::global();
        obs.add(MetricId::ShardedMergesTotal, merges);
        if merges > 0 {
            obs.event(sss_obs::EventKind::MergePerformed, merges, 0, "finish");
        }
        merged
    }
}

fn worker_loop(
    mut monitor: Monitor,
    mut sampler: BernoulliSampler,
    rx: Receiver<Job>,
    slot: &Mutex<Option<Monitor>>,
    cfg: &ShardedConfig,
) -> Monitor {
    let mut chunks = 0u64;
    while let Ok(job) = rx.recv() {
        sampler.sample_batches(job.as_slice(), cfg.sample_batch, |batch| {
            monitor.update_batch(batch);
        });
        let obs = sss_obs::global();
        obs.inc(MetricId::ShardedJobsCompletedTotal);
        obs.gauge_add(MetricId::ShardedQueueDepth, -1);
        chunks += 1;
        if cfg.snapshot_every != 0 && chunks.is_multiple_of(cfg.snapshot_every) {
            *slot.lock().expect("snapshot lock") = Some(monitor.clone());
        }
    }
    // Publish final state so late `snapshot()` calls see everything even
    // if the handle is joined elsewhere.
    *slot.lock().expect("snapshot lock") = Some(monitor.clone());
    monitor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::Statistic;
    use crate::monitor::MonitorBuilder;
    use sss_stream::{ExactStats, StreamGen, ZipfStream};

    fn proto(p: f64) -> Monitor {
        MonitorBuilder::with_seed(p, 41)
            .f0(0.05)
            .fk(2)
            .entropy(768)
            .f1_heavy_hitters(0.05, 0.2, 0.05)
            .build()
    }

    /// At p = 1 every shard keeps everything, so exact-merge substrates
    /// must answer *identically* to a single monitor over the same stream.
    #[test]
    fn p_one_sharded_equals_single_for_exact_substrates() {
        let stream = Arc::new(ZipfStream::new(2_000, 1.2).generate(60_000, 3));
        let mut single = proto(1.0).fork_shard(0);
        single.update_batch(&stream);

        for shards in [1usize, 2, 4] {
            let mut cfg = ShardedConfig::new(shards);
            cfg.dispatch_chunk = 4096;
            let mut sm = ShardedMonitor::launch(&proto(1.0), 7, cfg);
            sm.ingest_shared(&stream);
            let merged = sm.finish();
            assert_eq!(merged.samples_seen(), stream.len() as u64);
            let f0_a = merged.estimate(Statistic::F0).unwrap().value;
            let f0_b = single.estimate(Statistic::F0).unwrap().value;
            assert_eq!(f0_a, f0_b, "{shards} shards: F0 must merge exactly");
            let f2_a = merged.estimate(Statistic::Fk(2)).unwrap().value;
            let f2_b = single.estimate(Statistic::Fk(2)).unwrap().value;
            assert!(
                (f2_a - f2_b).abs() <= 1e-6 * f2_b.abs().max(1.0),
                "{shards} shards: F2 {f2_a} vs {f2_b}"
            );
        }
    }

    #[test]
    fn sharded_estimates_track_truth_under_sampling() {
        let p = 0.25;
        let stream = Arc::new(ZipfStream::new(3_000, 1.2).generate(120_000, 9));
        let exact = ExactStats::from_stream(stream.iter().copied());

        let mut sm = ShardedMonitor::launch(&proto(p), 123, ShardedConfig::new(3));
        sm.ingest_shared(&stream);
        assert_eq!(sm.raw_dispatched(), stream.len() as u64);
        let merged = sm.finish();

        let f2 = merged.estimate(Statistic::Fk(2)).unwrap();
        assert!(f2.mult_error(exact.fk(2)) < 1.15, "F2 err {}", f2.value);
        assert_eq!(f2.samples_seen, merged.samples_seen());
        assert_eq!(f2.p, p);
        let h = merged.estimate(Statistic::Entropy).unwrap();
        let ratio = h.value / exact.entropy();
        assert!((0.5..=2.0).contains(&ratio), "entropy ratio {ratio}");
    }

    #[test]
    fn snapshot_view_trails_then_converges() {
        let p = 0.5;
        let stream = Arc::new(ZipfStream::new(500, 1.1).generate(40_000, 5));
        let mut cfg = ShardedConfig::new(2);
        cfg.dispatch_chunk = 1024;
        cfg.snapshot_every = 1;
        let mut sm = ShardedMonitor::launch(&proto(p), 77, cfg);
        sm.ingest_shared(&stream);
        let live = sm.snapshot();
        // The live view is a valid (possibly trailing) monitor.
        assert!(live.samples_seen() <= stream.len() as u64);
        let merged = sm.finish();
        assert!(merged.samples_seen() >= live.samples_seen());
        assert!(merged.estimate(Statistic::F0).is_some());
    }

    #[test]
    fn owned_and_copied_ingest_paths_agree() {
        let stream = ZipfStream::new(300, 1.0).generate(20_000, 6);
        let p = 1.0;
        let mut a = ShardedMonitor::launch(&proto(p), 5, ShardedConfig::new(2));
        a.ingest(&stream);
        let ma = a.finish();
        let mut b = ShardedMonitor::launch(&proto(p), 5, ShardedConfig::new(2));
        b.ingest_vec(stream.clone());
        let mb = b.finish();
        // Same dispatch order ⇒ identical shard streams for chunk sizes
        // that divide the input identically is not guaranteed (ingest_vec
        // sends one big job), but totals must match.
        assert_eq!(ma.samples_seen(), mb.samples_seen());
        assert_eq!(
            ma.estimate(Statistic::F0).unwrap().value,
            mb.estimate(Statistic::F0).unwrap().value,
            "bottom-k F0 over the same multiset is dispatch-order independent"
        );
    }

    #[test]
    #[should_panic(expected = "pristine prototype")]
    fn launch_rejects_ingested_prototype() {
        let mut m = proto(0.5);
        m.update(1);
        let _ = ShardedMonitor::launch(&m, 1, ShardedConfig::new(2));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn mutated_zero_shard_config_rejected_at_launch() {
        let mut cfg = ShardedConfig::new(1);
        cfg.shards = 0;
        let _ = ShardedMonitor::launch(&proto(0.5), 1, cfg);
    }
}
