//! Delta checkpoints: a generic framed byte-level diff between two
//! snapshots.
//!
//! The transport ships *cumulative* `Monitor::checkpoint` frames on
//! every push, and between two consecutive pushes only a small fraction
//! of the state churns — most packed counter sections are byte-for-byte
//! identical runs, merely shifted by a few varint-length changes. A
//! [`SnapshotDelta`] captures the new snapshot as a sequence of
//! **chunk-copy** (range of the base snapshot) and **chunk-literal**
//! (raw bytes) opcodes, found with an rsync-style rolling-hash match so
//! shifted-but-unchanged runs are still recognised. Working at the byte
//! level keeps the diff *generic*: it needs no per-estimator logic and
//! keeps working unchanged when estimator layouts evolve.
//!
//! Safety rails:
//!
//! * the delta records the **length and FNV-1a checksum of the base**
//!   it was computed against; applying it to any other base is a typed
//!   [`CodecError::BadBase`], never a silently corrupt snapshot;
//! * it also records the length and checksum of the **target**, so a
//!   bug (or corruption that slipped the frame checksum) in
//!   reconstruction surfaces as [`CodecError::ChecksumMismatch`] — a
//!   nested checksum under the frame's own envelope checksum;
//! * copy ranges are validated against the recorded base length at
//!   decode time, and the recorded target length is bounded by a
//!   reconstruction cap ([`MAX_TARGET_DEFAULT`], or the receiver's own
//!   limit via [`SnapshotDelta::apply_with_limit`]) *before* any byte
//!   is emitted — copy opcodes amplify, so capping up front is what
//!   keeps a corrupt delta from OOMing the receiver.
//!
//! The reconstructed bytes are a complete framed `Monitor::checkpoint`
//! buffer — `Monitor::restore` then re-validates them like any other
//! snapshot.

use sss_codec::{fnv1a64, put_varint_i64, put_varint_u64, CodecError, Reader, WireCodec};

use crate::monitor::Monitor;

/// Matching granularity of the rolling-hash scan: windows of this many
/// bytes are candidates for chunk-copy opcodes (extended byte-by-byte
/// in both directions once anchored). Smaller blocks find more of the
/// unchanged tail between interleaved counter edits at the price of
/// more opcodes.
const BLOCK: usize = 16;

/// Default ceiling on the size [`SnapshotDelta::apply`] will
/// reconstruct (256 MiB — 4× the transport's default frame cap). Copy
/// opcodes amplify, so the recorded target length must be bounded
/// *before* reconstruction starts; callers with a tighter budget pass
/// it to [`SnapshotDelta::apply_with_limit`].
pub const MAX_TARGET_DEFAULT: usize = 256 << 20;

/// One reconstruction opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DeltaOp {
    /// Copy `len` bytes starting at `offset` of the base snapshot.
    Copy { offset: u64, len: u64 },
    /// Append these bytes verbatim.
    Literal(Vec<u8>),
}

/// A framed byte-level diff that rebuilds a target snapshot from a base
/// snapshot ([`Monitor::checkpoint_delta`] / [`Monitor::apply_delta`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDelta {
    base_len: u64,
    base_checksum: u64,
    target_len: u64,
    target_checksum: u64,
    ops: Vec<DeltaOp>,
}

impl SnapshotDelta {
    /// Compute the diff that rebuilds `target` from `base`.
    ///
    /// Worst case (nothing matches) the op stream is `target` plus a
    /// few header bytes — a delta push can never be meaningfully larger
    /// than the full push it replaces.
    pub fn compute(base: &[u8], target: &[u8]) -> SnapshotDelta {
        SnapshotDelta {
            base_len: base.len() as u64,
            base_checksum: fnv1a64(base),
            target_len: target.len() as u64,
            target_checksum: fnv1a64(target),
            ops: diff_ops(base, target),
        }
    }

    /// Length of the base snapshot this delta was computed against.
    pub fn base_len(&self) -> usize {
        self.base_len as usize
    }

    /// Length of the snapshot [`SnapshotDelta::apply`] reconstructs —
    /// what a receiver checks against its payload cap *before* paying
    /// for the reconstruction.
    pub fn target_len(&self) -> usize {
        self.target_len as usize
    }

    /// Rebuild the target snapshot from `base`, refusing
    /// reconstructions above [`MAX_TARGET_DEFAULT`] (copy opcodes
    /// amplify — a few bytes of delta can emit a whole base's worth of
    /// output — so without a ceiling a corrupt `target_len` could
    /// drive an arbitrarily large allocation before the final checks
    /// reject it). Receivers with a configured payload cap should pass
    /// it to [`SnapshotDelta::apply_with_limit`] instead, as the
    /// transport collector does.
    ///
    /// # Errors
    /// [`CodecError::BadBase`] if `base` is not the snapshot this delta
    /// was computed against (length or checksum disagree);
    /// [`CodecError::Invalid`] if an opcode escapes the base or target
    /// bounds, or the recorded target length exceeds the cap;
    /// [`CodecError::ChecksumMismatch`] if the reconstruction does not
    /// hash to the recorded target checksum.
    pub fn apply(&self, base: &[u8]) -> Result<Vec<u8>, CodecError> {
        self.apply_with_limit(base, MAX_TARGET_DEFAULT)
    }

    /// [`SnapshotDelta::apply`] with an explicit ceiling on the
    /// reconstructed size — checked before a single byte is emitted, so
    /// `max_target` bounds the allocation a corrupt or hostile delta
    /// can cause.
    pub fn apply_with_limit(&self, base: &[u8], max_target: usize) -> Result<Vec<u8>, CodecError> {
        if self.target_len > max_target as u64 {
            return Err(CodecError::Invalid {
                what: "delta target length exceeds the reconstruction cap",
            });
        }
        let found = fnv1a64(base);
        if base.len() as u64 != self.base_len || found != self.base_checksum {
            return Err(CodecError::BadBase {
                expected: self.base_checksum,
                found,
            });
        }
        let target_len = self.target_len as usize;
        let mut out = Vec::with_capacity(target_len.min(base.len().saturating_mul(2).max(1 << 16)));
        for op in &self.ops {
            match op {
                DeltaOp::Copy { offset, len } => {
                    let (offset, len) = (*offset as usize, *len as usize);
                    let end = offset.checked_add(len).ok_or(CodecError::Invalid {
                        what: "delta copy range overflows",
                    })?;
                    let chunk = base.get(offset..end).ok_or(CodecError::Invalid {
                        what: "delta copy range escapes the base snapshot",
                    })?;
                    if out.len() + len > target_len {
                        return Err(CodecError::Invalid {
                            what: "delta reconstruction exceeds its recorded length",
                        });
                    }
                    out.extend_from_slice(chunk);
                }
                DeltaOp::Literal(bytes) => {
                    if out.len() + bytes.len() > target_len {
                        return Err(CodecError::Invalid {
                            what: "delta reconstruction exceeds its recorded length",
                        });
                    }
                    out.extend_from_slice(bytes);
                }
            }
        }
        if out.len() != target_len {
            return Err(CodecError::Invalid {
                what: "delta reconstruction shorter than its recorded length",
            });
        }
        let found = fnv1a64(&out);
        if found != self.target_checksum {
            return Err(CodecError::ChecksumMismatch {
                expected: self.target_checksum,
                found,
            });
        }
        Ok(out)
    }

    /// Wire bytes of the copy/literal op stream alone (diagnostics).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

impl WireCodec for SnapshotDelta {
    const WIRE_TAG: u16 = 0x040F;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.base_len.encode_into(out);
        self.base_checksum.encode_into(out);
        self.target_len.encode_into(out);
        self.target_checksum.encode_into(out);
        put_varint_u64(out, self.ops.len() as u64);
        // Copy offsets are encoded relative to the position the
        // previous copy ended at: consecutive aligned copies (the
        // common case) cost one byte of offset.
        let mut expected: u64 = 0;
        for op in &self.ops {
            match op {
                DeltaOp::Copy { offset, len } => {
                    out.push(0);
                    put_varint_i64(out, offset.wrapping_sub(expected) as i64);
                    put_varint_u64(out, *len);
                    expected = offset + len;
                }
                DeltaOp::Literal(bytes) => {
                    out.push(1);
                    put_varint_u64(out, bytes.len() as u64);
                    out.extend_from_slice(bytes);
                }
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let base_len = r.u64()?;
        let base_checksum = r.u64()?;
        let target_len = r.u64()?;
        let target_checksum = r.u64()?;
        let count = r.varint_len(2)?;
        let mut ops = Vec::with_capacity(count);
        let mut expected: u64 = 0;
        for _ in 0..count {
            match r.u8()? {
                0 => {
                    let rel = r.varint_i64()?;
                    let offset = expected
                        .checked_add_signed(rel)
                        .ok_or(CodecError::Invalid {
                            what: "delta copy offset underflows",
                        })?;
                    let len = r.varint_u64()?;
                    let end = offset.checked_add(len).ok_or(CodecError::Invalid {
                        what: "delta copy range overflows",
                    })?;
                    if end > base_len {
                        return Err(CodecError::Invalid {
                            what: "delta copy range escapes the base snapshot",
                        });
                    }
                    expected = end;
                    ops.push(DeltaOp::Copy { offset, len });
                }
                1 => {
                    let len = r.varint_len(1)?;
                    ops.push(DeltaOp::Literal(r.take(len)?.to_vec()));
                }
                _ => {
                    return Err(CodecError::Invalid {
                        what: "delta opcode byte not 0/1",
                    })
                }
            }
        }
        Ok(SnapshotDelta {
            base_len,
            base_checksum,
            target_len,
            target_checksum,
            ops,
        })
    }
}

/// Compute the framed delta that rebuilds `target` from `base` — the
/// byte-level primitive under [`Monitor::checkpoint_delta`], usable on
/// any pair of snapshot buffers (the transport diffs the framed
/// checkpoint bytes it retains without decoding them).
pub fn snapshot_delta(base: &[u8], target: &[u8]) -> Vec<u8> {
    SnapshotDelta::compute(base, target).encode_framed()
}

/// Decode a framed delta and rebuild the target snapshot from `base`
/// (see [`SnapshotDelta::apply`] for the error contract).
pub fn apply_snapshot_delta(base: &[u8], delta_frame: &[u8]) -> Result<Vec<u8>, CodecError> {
    SnapshotDelta::decode_framed(delta_frame)?.apply(base)
}

impl Monitor {
    /// Serialize the monitor as a framed [`SnapshotDelta`] against
    /// `base` — a previously retained [`Monitor::checkpoint`] buffer.
    /// The receiver rebuilds the full checkpoint with
    /// [`Monitor::apply_delta`] and restores it as usual; steady-state
    /// deltas are a small fraction of the cumulative snapshot, which is
    /// what the transport's delta pushes ship.
    ///
    /// # Errors
    /// Propagates [`Monitor::checkpoint`] failures (an estimator tag
    /// the restore registry cannot decode).
    pub fn checkpoint_delta(&self, base: &[u8]) -> Result<Vec<u8>, CodecError> {
        let target = self.checkpoint()?;
        let delta = snapshot_delta(base, &target);
        sss_obs::global().add(sss_obs::MetricId::CodecDeltaBytesTotal, delta.len() as u64);
        Ok(delta)
    }

    /// Rebuild the full checkpoint bytes a [`Monitor::checkpoint_delta`]
    /// frame encodes, given the same base it was computed against.
    /// Typed [`CodecError::BadBase`] when `base` is the wrong snapshot.
    pub fn apply_delta(base: &[u8], delta_frame: &[u8]) -> Result<Vec<u8>, CodecError> {
        let full = apply_snapshot_delta(base, delta_frame)?;
        sss_obs::global().add(
            sss_obs::MetricId::CodecDeltaBytesTotal,
            delta_frame.len() as u64,
        );
        Ok(full)
    }

    /// [`Monitor::apply_delta`] followed by [`Monitor::restore`].
    pub fn restore_delta(base: &[u8], delta_frame: &[u8]) -> Result<Monitor, CodecError> {
        Monitor::restore(&apply_snapshot_delta(base, delta_frame)?)
    }
}

/// Greedy rolling-hash diff (rsync style): the base is indexed by the
/// hash of every *aligned* [`BLOCK`]-byte window; the target is scanned
/// with a rolling window at every byte offset, so runs that merely
/// shifted (a varint grew upstream) still match. Anchored matches are
/// verified byte-for-byte (hash collisions cannot corrupt the delta)
/// and extended in both directions before being emitted.
fn diff_ops(base: &[u8], target: &[u8]) -> Vec<DeltaOp> {
    let mut ops = Vec::new();
    if target.is_empty() {
        return ops;
    }
    if base.len() < BLOCK || target.len() < BLOCK {
        ops.push(DeltaOp::Literal(target.to_vec()));
        return ops;
    }

    // Index the aligned base blocks. First writer wins; runs of equal
    // blocks (zeroed regions) all extend from one anchor anyway.
    let mut index: std::collections::HashMap<u64, u32> =
        std::collections::HashMap::with_capacity(base.len() / BLOCK + 1);
    for (b, chunk) in base.chunks_exact(BLOCK).enumerate() {
        index.entry(roll_init(chunk)).or_insert((b * BLOCK) as u32);
    }

    let flush_literal = |ops: &mut Vec<DeltaOp>, bytes: &[u8]| {
        if !bytes.is_empty() {
            ops.push(DeltaOp::Literal(bytes.to_vec()));
        }
    };

    let mut i = 0usize; // scan position (window start)
    let mut lit_start = 0usize; // first byte not yet emitted
    let mut hash = roll_init(&target[..BLOCK]);
    loop {
        let mut matched = false;
        if let Some(&off) = index.get(&hash) {
            let off = off as usize;
            if base[off..off + BLOCK] == target[i..i + BLOCK] {
                // Anchored: extend backward into the pending literal,
                // then forward as far as the buffers agree.
                let mut m_off = off;
                let mut m_start = i;
                while m_off > 0 && m_start > lit_start && base[m_off - 1] == target[m_start - 1] {
                    m_off -= 1;
                    m_start -= 1;
                }
                let mut len = (i + BLOCK) - m_start;
                while m_off + len < base.len()
                    && m_start + len < target.len()
                    && base[m_off + len] == target[m_start + len]
                {
                    len += 1;
                }
                flush_literal(&mut ops, &target[lit_start..m_start]);
                ops.push(DeltaOp::Copy {
                    offset: m_off as u64,
                    len: len as u64,
                });
                i = m_start + len;
                lit_start = i;
                matched = true;
            }
        }
        if matched {
            if i + BLOCK > target.len() {
                break;
            }
            hash = roll_init(&target[i..i + BLOCK]);
        } else {
            if i + BLOCK >= target.len() {
                break;
            }
            hash = roll_step(hash, target[i], target[i + BLOCK]);
            i += 1;
        }
    }
    flush_literal(&mut ops, &target[lit_start..]);
    ops
}

/// Rabin–Karp polynomial rolling hash over a [`BLOCK`]-byte window.
const ROLL_MUL: u64 = 0x0000_0100_0000_01B3; // FNV prime: odd, well mixed

/// `ROLL_MUL^(BLOCK-1)`, the weight of the outgoing byte.
const ROLL_POW: u64 = {
    let mut acc = 1u64;
    let mut i = 0;
    while i < BLOCK - 1 {
        acc = acc.wrapping_mul(ROLL_MUL);
        i += 1;
    }
    acc
};

#[inline]
fn roll_init(window: &[u8]) -> u64 {
    let mut h = 0u64;
    for &b in window {
        h = h.wrapping_mul(ROLL_MUL).wrapping_add(b as u64 + 1);
    }
    h
}

#[inline]
fn roll_step(hash: u64, out: u8, inc: u8) -> u64 {
    hash.wrapping_sub((out as u64 + 1).wrapping_mul(ROLL_POW))
        .wrapping_mul(ROLL_MUL)
        .wrapping_add(inc as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(base: &[u8], target: &[u8]) -> (usize, Vec<u8>) {
        let frame = snapshot_delta(base, target);
        let rebuilt = apply_snapshot_delta(base, &frame).expect("apply");
        assert_eq!(rebuilt, target);
        (frame.len(), frame)
    }

    #[test]
    fn identical_buffers_collapse_to_one_copy() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|x| x.to_le_bytes()).collect();
        let (delta_len, frame) = roundtrip(&data, &data);
        assert!(delta_len < 128, "identity delta took {delta_len} bytes");
        let d = SnapshotDelta::decode_framed(&frame).unwrap();
        assert_eq!(d.op_count(), 1);
    }

    #[test]
    fn shifted_content_still_matches() {
        // Insert bytes near the front: everything after the insertion
        // is shifted, and the rolling scan must still find it.
        let base: Vec<u8> = (0..50_000u64).map(|i| (i * 7 % 251) as u8).collect();
        let mut target = base.clone();
        target.splice(100..100, [9u8, 9, 9].iter().copied());
        let (delta_len, _) = roundtrip(&base, &target);
        assert!(
            delta_len < 256,
            "a 3-byte insertion cost {delta_len} delta bytes"
        );
    }

    #[test]
    fn sparse_edits_cost_proportionally() {
        let base: Vec<u8> = (0..100_000u64).map(|i| (i % 241) as u8).collect();
        let mut target = base.clone();
        for i in (0..target.len()).step_by(5_000) {
            target[i] ^= 0xA5;
        }
        let (delta_len, _) = roundtrip(&base, &target);
        assert!(
            delta_len < base.len() / 10,
            "20 point edits cost {delta_len} of {} bytes",
            base.len()
        );
    }

    #[test]
    fn disjoint_content_degenerates_to_one_literal() {
        let base = vec![0u8; 4096];
        let target: Vec<u8> = (0..4096u64).map(|i| (i % 253) as u8 + 1).collect();
        let (delta_len, _) = roundtrip(&base, &target);
        assert!(delta_len < target.len() + 128);
    }

    #[test]
    fn tiny_and_empty_buffers() {
        roundtrip(&[], &[]);
        roundtrip(&[], &[1, 2, 3]);
        roundtrip(&[1, 2, 3], &[]);
        roundtrip(&[1, 2, 3], &[4, 5]);
        roundtrip(&(0..255u8).collect::<Vec<_>>(), &[7; 40]);
    }

    #[test]
    fn wrong_base_is_a_typed_bad_base() {
        let base: Vec<u8> = (0..4096u64).map(|i| (i % 255) as u8).collect();
        let target: Vec<u8> = base.iter().map(|b| b ^ 1).collect();
        let frame = snapshot_delta(&base, &target);
        // Same length, different bytes.
        let mut wrong = base.clone();
        wrong[17] ^= 0xFF;
        assert!(matches!(
            apply_snapshot_delta(&wrong, &frame),
            Err(CodecError::BadBase { .. })
        ));
        // Different length entirely.
        assert!(matches!(
            apply_snapshot_delta(&base[..100], &frame),
            Err(CodecError::BadBase { .. })
        ));
        // The right base still applies.
        assert_eq!(apply_snapshot_delta(&base, &frame).unwrap(), target);
    }

    #[test]
    fn amplified_target_length_is_capped_before_reconstruction() {
        // A hostile frame can claim an enormous target and fund it with
        // cheap copy opcodes; the cap must reject it before any of that
        // output is materialised.
        let base: Vec<u8> = (0..65_536u64).map(|i| (i % 251) as u8).collect();
        let honest = SnapshotDelta::compute(&base, &base);
        let mut hostile = honest.clone();
        hostile.target_len = 1u64 << 50;
        hostile.ops = (0..1_000)
            .map(|_| DeltaOp::Copy {
                offset: 0,
                len: base.len() as u64,
            })
            .collect();
        assert!(matches!(
            hostile.apply(&base),
            Err(CodecError::Invalid {
                what: "delta target length exceeds the reconstruction cap"
            })
        ));
        // Tighter caller-supplied limits apply to honest deltas too.
        assert!(honest.apply_with_limit(&base, base.len() - 1).is_err());
        assert_eq!(honest.apply_with_limit(&base, base.len()).unwrap(), base);
    }

    #[test]
    fn corrupt_delta_frames_are_typed_errors() {
        let base: Vec<u8> = (0..8192u64).map(|i| (i % 250) as u8).collect();
        let mut target = base.clone();
        target[4000] ^= 0x40;
        let frame = snapshot_delta(&base, &target);
        for cut in 0..frame.len() {
            assert!(
                apply_snapshot_delta(&base, &frame[..cut]).is_err(),
                "cut at {cut} applied"
            );
        }
        for i in 0..frame.len() {
            let mut b = frame.clone();
            b[i] ^= 0xFF;
            assert!(
                apply_snapshot_delta(&base, &b).is_err(),
                "flip at {i} applied"
            );
        }
    }
}
