//! Heavy hitters of the original stream from the sampled stream
//! (paper §6, Theorems 6 and 7).
//!
//! Both algorithms run a standard heavy-hitter sketch **on the sampled
//! stream** with shifted parameters, then scale reported frequencies by
//! `1/p`:
//!
//! * **`F_1` (Theorem 6)**: CountMin with `α′ = (1 − 2ε/5)·α`, `ε′ = ε/2`,
//!   `δ′ = δ/4`. Correct whenever
//!   `F_1(P) ≥ C·p⁻¹·α⁻¹·ε⁻²·log(n/δ)` — below that, heavy items may not
//!   concentrate in the sample.
//! * **`F_2` (Theorem 7)**: CountSketch with `α′ = (1 − 2ε/5)·α·√p`,
//!   `ε′ = ε/10`, `δ′ = δ/4`. Output is an
//!   `(α, 1 − √p(1−ε))` reporter: every `f_i ≥ α·√F_2(P)` is returned, and
//!   nothing with `f_i < (1−ε)·√p·α·√F_2(P)` — the `√p` weakening is
//!   intrinsic (the sampled `F_2` concentrates at
//!   `p²F_2(P) + p(1−p)F_1(P)`, not `p²F_2(P)`).

use sss_codec::{CodecError, Reader, WireCodec};
use sss_sketch::topk::{CmHeavyHitters, CsHeavyHitters};

use crate::estimate::{Estimate, Guarantee, Statistic, SubsampledEstimator};

/// Theorem 6: `F_1` heavy hitters of `P` from CountMin over `L`.
///
/// ```
/// use sss_core::SampledF1HeavyHitters;
///
/// let p = 0.5;
/// let mut hh = SampledF1HeavyHitters::new(0.3, 0.2, 0.05, p, 7);
/// // Sampled stream: item 9 dominates.
/// for i in 0..1000u64 {
///     hh.update(if i % 2 == 0 { 9 } else { i });
/// }
/// let report = hh.report();
/// assert_eq!(report[0].0, 9);
/// // Reported frequency is rescaled to original-stream units (≈ 500/p).
/// assert!((report[0].1 - 1000.0).abs() < 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct SampledF1HeavyHitters {
    inner: CmHeavyHitters,
    alpha: f64,
    eps: f64,
    delta: f64,
    p: f64,
}

impl SampledF1HeavyHitters {
    /// Reporter for every item with `f_i ≥ α·F_1(P)`, rejecting items with
    /// `f_i < (1−ε)·α·F_1(P)`, at confidence `1 − δ`, under sampling rate
    /// `p`.
    pub fn new(alpha: f64, eps: f64, delta: f64, p: f64, seed: u64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1]");
        // Theorem 6's parameter shift.
        let alpha_prime = (1.0 - 2.0 * eps / 5.0) * alpha;
        let eps_prime = eps / 2.0;
        let delta_prime = delta / 4.0;
        // Our CountMin reporter takes a *point-query* error; excluding
        // items below (1−ε′)·α′·F_1(L) needs point error ε′·α′·F_1(L).
        let point_eps = eps_prime * alpha_prime;
        Self {
            inner: CmHeavyHitters::new(alpha_prime, point_eps, delta_prime, seed),
            alpha,
            eps,
            delta,
            p,
        }
    }

    /// The target fraction `α` (relative to `F_1(P)`).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The underlying CountMin reporter (concurrent pipeline promotes it
    /// to a shared-atomic grid).
    pub(crate) fn inner(&self) -> &CmHeavyHitters {
        &self.inner
    }

    /// Install a quiesced reporter back, keeping the theorem parameters.
    pub(crate) fn replace_inner(&mut self, inner: CmHeavyHitters) {
        self.inner = inner;
    }

    /// Elements of the sampled stream ingested.
    pub fn samples_seen(&self) -> u64 {
        self.inner.n()
    }

    /// Memory footprint in 64-bit words — `O(ε⁻¹·log²(n/(αδ)))` bits per
    /// the theorem; note it is *independent of `p`* (the premise on
    /// `F_1(P)` is what moves with `p`).
    pub fn space_words(&self) -> usize {
        self.inner.space_words()
    }

    /// Ingest one element of the sampled stream `L`.
    pub fn update(&mut self, x: u64) {
        self.inner.update(x);
    }

    /// Ingest a batch of consecutive elements of `L` (fused sketch
    /// kernel with inline per-item candidate admission).
    pub fn update_batch(&mut self, xs: &[u64]) {
        self.inner.update_batch(xs);
    }

    /// Merge a second monitor's reporter (same parameters and sketch
    /// seed): afterwards the report covers the concatenated original
    /// stream.
    pub fn merge(&mut self, other: &SampledF1HeavyHitters) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-15
                && (self.eps - other.eps).abs() < 1e-15
                && (self.delta - other.delta).abs() < 1e-15,
            "parameter mismatch"
        );
        crate::estimate::assert_rates_compatible(self.p, other.p);
        self.inner.merge(&other.inner);
    }

    /// Report `(item, estimated f_i in P)` sorted by decreasing estimate;
    /// frequencies are the sampled estimates scaled by `1/p` and satisfy
    /// `f′_i ∈ (1±ε)·f_i` under the theorem's premise.
    pub fn report(&self) -> Vec<(u64, f64)> {
        self.inner
            .report()
            .into_iter()
            .map(|(i, g)| (i, g as f64 / self.p))
            .collect()
    }

    /// Theorem 6's premise: the minimum `F_1(P)` for the guarantee, i.e.
    /// `C·p⁻¹·α⁻¹·ε⁻²·ln(n/δ)` with the constant set to 4.
    pub fn premise_min_f1(&self, n: u64) -> f64 {
        theorem6_min_f1(self.p, self.alpha, self.eps, self.delta, n)
    }
}

/// Theorem 6's premise threshold on `F_1(P)` (constant `C = 4`).
pub fn theorem6_min_f1(p: f64, alpha: f64, eps: f64, delta: f64, n: u64) -> f64 {
    4.0 * (n as f64 / delta).ln() / (p * alpha * eps * eps)
}

impl SubsampledEstimator for SampledF1HeavyHitters {
    fn statistic(&self) -> Statistic {
        Statistic::F1HeavyHitters
    }

    fn update(&mut self, x: u64) {
        SampledF1HeavyHitters::update(self, x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        SampledF1HeavyHitters::update_batch(self, xs);
    }

    fn merge(&mut self, other: &Self) {
        SampledF1HeavyHitters::merge(self, other);
    }

    fn estimate(&self) -> Estimate {
        Estimate::heavy_hitters(
            self.report(),
            Guarantee::HeavyHitters {
                alpha: self.alpha,
                eps: self.eps,
                delta: self.delta,
            },
            self.p,
            self.samples_seen(),
        )
    }

    fn space_bytes(&self) -> usize {
        8 * self.space_words()
    }

    fn p(&self) -> f64 {
        self.p
    }

    fn samples_seen(&self) -> u64 {
        SampledF1HeavyHitters::samples_seen(self)
    }
}

/// Theorem 7: `F_2` heavy hitters of `P` from CountSketch over `L`.
#[derive(Debug, Clone)]
pub struct SampledF2HeavyHitters {
    inner: CsHeavyHitters,
    alpha: f64,
    eps: f64,
    delta: f64,
    p: f64,
}

impl SampledF2HeavyHitters {
    /// Reporter for every item with `f_i ≥ α·√F_2(P)` at confidence
    /// `1 − δ` under sampling rate `p`; items below
    /// `(1−ε)·√p·α·√F_2(P)` are rejected.
    pub fn new(alpha: f64, eps: f64, delta: f64, p: f64, seed: u64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1]");
        // Theorem 7's parameter shift. The classification cutoffs use the
        // theorem's α′ and ε′ = ε/10; the CountSketch itself is sized for
        // point error (ε/2)·α′·√F_2(L), which already separates the
        // reported band from the rejected band — the paper's ε/10 slack
        // services its union-bound constants and would inflate width by a
        // further 25× without changing the asymptotics (width ∝ 1/(ε²α²p)
        // either way).
        let alpha_prime = (1.0 - 2.0 * eps / 5.0) * alpha * p.sqrt();
        let delta_prime = delta / 4.0;
        let point_eps = ((eps / 2.0) * alpha_prime).min(0.5);
        Self {
            inner: CsHeavyHitters::new(alpha_prime.min(0.999), point_eps, delta_prime, seed),
            alpha,
            eps,
            delta,
            p,
        }
    }

    /// The target fraction `α` (relative to `√F_2(P)`).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The underlying CountSketch reporter (concurrent pipeline promotes
    /// it to a shared-atomic grid).
    pub(crate) fn inner(&self) -> &CsHeavyHitters {
        &self.inner
    }

    /// Install a quiesced reporter back, keeping the theorem parameters.
    pub(crate) fn replace_inner(&mut self, inner: CsHeavyHitters) {
        self.inner = inner;
    }

    /// Elements of the sampled stream ingested.
    pub fn samples_seen(&self) -> u64 {
        self.inner.n()
    }

    /// Memory footprint in 64-bit words. The `α′ ∝ √p` shift makes the
    /// CountSketch width scale as `Õ(1/p)` — the paper's `Õ(1/p)` bound
    /// for `k = 2` (§1.2, item 4).
    pub fn space_words(&self) -> usize {
        self.inner.space_words()
    }

    /// Ingest one element of the sampled stream `L`.
    pub fn update(&mut self, x: u64) {
        self.inner.update(x);
    }

    /// Ingest a batch of consecutive elements of `L`.
    pub fn update_batch(&mut self, xs: &[u64]) {
        self.inner.update_batch(xs);
    }

    /// Merge a second monitor's reporter (same parameters and sketch
    /// seed).
    pub fn merge(&mut self, other: &SampledF2HeavyHitters) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-15
                && (self.eps - other.eps).abs() < 1e-15
                && (self.delta - other.delta).abs() < 1e-15,
            "parameter mismatch"
        );
        crate::estimate::assert_rates_compatible(self.p, other.p);
        self.inner.merge(&other.inner);
    }

    /// Report `(item, estimated f_i in P)` sorted by decreasing estimate.
    pub fn report(&self) -> Vec<(u64, f64)> {
        self.inner
            .report()
            .into_iter()
            .map(|(i, g)| (i, g as f64 / self.p))
            .collect()
    }

    /// Theorem 7's premise on the original stream:
    /// `√F_2(P) ≥ C·p^{−3/2}·α⁻¹·ε⁻²·ln(n/δ)` (constant `C = 1`).
    pub fn premise_min_sqrt_f2(&self, n: u64) -> f64 {
        theorem7_min_sqrt_f2(self.p, self.alpha, self.eps, self.delta, n)
    }

    /// Theorem 7's side condition `p = Ω̃(m^{−1/2})` (constants 1).
    pub fn rate_admissible(&self, m: u64) -> bool {
        self.p >= (m.max(1) as f64).powf(-0.5)
    }
}

/// Theorem 7's premise threshold on `√F_2(P)` (constant `C = 1`).
pub fn theorem7_min_sqrt_f2(p: f64, alpha: f64, eps: f64, delta: f64, n: u64) -> f64 {
    (n as f64 / delta).ln() / (p.powf(1.5) * alpha * eps * eps)
}

impl SubsampledEstimator for SampledF2HeavyHitters {
    fn statistic(&self) -> Statistic {
        Statistic::F2HeavyHitters
    }

    fn update(&mut self, x: u64) {
        SampledF2HeavyHitters::update(self, x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        SampledF2HeavyHitters::update_batch(self, xs);
    }

    fn merge(&mut self, other: &Self) {
        SampledF2HeavyHitters::merge(self, other);
    }

    fn estimate(&self) -> Estimate {
        Estimate::heavy_hitters(
            self.report(),
            Guarantee::HeavyHitters {
                alpha: self.alpha,
                eps: self.eps,
                delta: self.delta,
            },
            self.p,
            self.samples_seen(),
        )
    }

    fn space_bytes(&self) -> usize {
        8 * self.space_words()
    }

    fn p(&self) -> f64 {
        self.p
    }

    fn samples_seen(&self) -> u64 {
        SampledF2HeavyHitters::samples_seen(self)
    }
}

/// Decode the shared `(alpha, eps, delta, p)` prefix of both theorem
/// reporters, validating every parameter's domain.
fn decode_hh_params(r: &mut Reader) -> Result<(f64, f64, f64, f64), CodecError> {
    let alpha = r.prob_open()?;
    let eps = r.prob_open()?;
    let delta = r.prob_open()?;
    let p = r.rate()?;
    Ok((alpha, eps, delta, p))
}

impl WireCodec for SampledF1HeavyHitters {
    const WIRE_TAG: u16 = 0x0405;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.alpha.encode_into(out);
        self.eps.encode_into(out);
        self.delta.encode_into(out);
        self.p.encode_into(out);
        self.inner.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let (alpha, eps, delta, p) = decode_hh_params(r)?;
        let inner = CmHeavyHitters::decode(r)?;
        Ok(SampledF1HeavyHitters {
            inner,
            alpha,
            eps,
            delta,
            p,
        })
    }
}

impl WireCodec for SampledF2HeavyHitters {
    const WIRE_TAG: u16 = 0x0406;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.alpha.encode_into(out);
        self.eps.encode_into(out);
        self.delta.encode_into(out);
        self.p.encode_into(out);
        self.inner.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let (alpha, eps, delta, p) = decode_hh_params(r)?;
        let inner = CsHeavyHitters::decode(r)?;
        Ok(SampledF2HeavyHitters {
            inner,
            alpha,
            eps,
            delta,
            p,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_stream::{BernoulliSampler, ExactStats, PlantedHeavyHitters, StreamGen};

    #[test]
    fn f1_hh_recall_and_precision_under_sampling() {
        // 4 heavies at 15% each over light background; α = 0.1.
        let gen = PlantedHeavyHitters::new(1 << 20, 4, 0.6);
        let n = 400_000;
        let seed = 3;
        let stream = gen.generate(n, seed);
        let heavies = gen.heavy_items(seed);
        let stats = ExactStats::from_stream(stream.iter().copied());

        for &p in &[0.1f64, 0.3, 1.0] {
            let mut hh = SampledF1HeavyHitters::new(0.1, 0.2, 0.05, p, 11);
            assert!(
                n as f64 >= hh.premise_min_f1(n),
                "premise violated at p={p}; enlarge the stream"
            );
            let mut sampler = BernoulliSampler::new(p, 13);
            sampler.sample_slice(&stream, |x| hh.update(x));
            let report = hh.report();
            let found: Vec<u64> = report.iter().map(|&(i, _)| i).collect();
            for &h in &heavies {
                assert!(found.contains(&h), "p={p}: missing heavy {h}");
            }
            // No item below (1−ε)αF1 may be reported.
            let cutoff = (1.0 - 0.2) * 0.1 * n as f64;
            for &(i, _) in &report {
                assert!(
                    stats.freq(i) as f64 >= cutoff,
                    "p={p}: false positive {i} (f = {})",
                    stats.freq(i)
                );
            }
            // Scaled frequency estimates within (1±ε).
            for &(i, f_est) in &report {
                if heavies.contains(&i) {
                    let truth = stats.freq(i) as f64;
                    assert!(
                        (f_est - truth).abs() / truth <= 0.2,
                        "p={p}: item {i} est {f_est} vs {truth}"
                    );
                }
            }
        }
    }

    #[test]
    fn f2_hh_finds_planted_heavy_under_sampling() {
        // One elephant over singleton background: F_2-heavy but (comfortably)
        // light in F_1 terms.
        let n_background = 200_000u64;
        let elephant_freq = 8_000u64;
        let mut stream: Vec<u64> = (0..n_background).map(sss_hash::fingerprint64).collect();
        stream.extend(std::iter::repeat_n(42u64, elephant_freq as usize));
        let mut rng = sss_hash::Xoshiro256pp::new(5);
        use sss_hash::RngCore64;
        for i in (1..stream.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            stream.swap(i, j);
        }
        let stats = ExactStats::from_stream(stream.iter().copied());
        let sqrt_f2 = stats.fk(2).sqrt();
        assert!(elephant_freq as f64 >= 0.5 * sqrt_f2, "not F2-heavy");

        for &p in &[0.3f64, 1.0] {
            let mut hh = SampledF2HeavyHitters::new(0.5, 0.2, 0.05, p, 17);
            let mut sampler = BernoulliSampler::new(p, 19);
            sampler.sample_slice(&stream, |x| hh.update(x));
            let report = hh.report();
            let found: Vec<u64> = report.iter().map(|&(i, _)| i).collect();
            assert!(found.contains(&42), "p={p}: elephant missed ({found:?})");
            // Nothing below the theorem's weakened cutoff may appear.
            let cutoff = (1.0 - 0.2) * p.sqrt() * 0.5 * sqrt_f2;
            for &(i, _) in &report {
                assert!(stats.freq(i) as f64 >= cutoff, "p={p}: false positive {i}");
            }
            // Frequency estimate of the elephant within 25%.
            let est = report.iter().find(|&&(i, _)| i == 42).unwrap().1;
            assert!(
                (est - elephant_freq as f64).abs() / elephant_freq as f64 <= 0.25,
                "p={p}: est {est}"
            );
        }
    }

    #[test]
    fn premise_thresholds_scale_correctly() {
        let t1 = theorem6_min_f1(0.1, 0.1, 0.1, 0.05, 1_000_000);
        let t2 = theorem6_min_f1(0.01, 0.1, 0.1, 0.05, 1_000_000);
        assert!((t2 / t1 - 10.0).abs() < 1e-9, "min F1 must scale as 1/p");
        let s1 = theorem7_min_sqrt_f2(0.1, 0.1, 0.1, 0.05, 1_000_000);
        let s2 = theorem7_min_sqrt_f2(0.025, 0.1, 0.1, 0.05, 1_000_000);
        assert!((s2 / s1 - 8.0).abs() < 1e-9, "min √F2 must scale as p^-3/2");
    }

    #[test]
    fn f2_space_grows_as_p_shrinks() {
        let a = SampledF2HeavyHitters::new(0.3, 0.2, 0.05, 1.0, 1);
        let b = SampledF2HeavyHitters::new(0.3, 0.2, 0.05, 0.01, 1);
        assert!(
            b.space_words() > 10 * a.space_words(),
            "α′ ∝ √p must widen the sketch: {} vs {}",
            b.space_words(),
            a.space_words()
        );
    }

    #[test]
    fn rate_admissibility() {
        let hh = SampledF2HeavyHitters::new(0.3, 0.2, 0.05, 0.01, 1);
        assert!(hh.rate_admissible(1 << 20)); // m^-1/2 ≈ 0.001
        assert!(!hh.rate_admissible(100)); // m^-1/2 = 0.1
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = SampledF1HeavyHitters::new(1.5, 0.1, 0.1, 0.5, 1);
    }
}
