//! Flow-size distribution recovery from a Bernoulli-sampled stream —
//! the Duffield–Lund–Thorup line of work the paper builds its context on
//! (§1.3, [17, 18]).
//!
//! Beyond scalar aggregates, router operators want the *distribution* of
//! flow sizes: `M_i` = number of flows with exactly `i` packets. Under
//! Bernoulli sampling a size-`i` flow shows `j` sampled packets with the
//! binomial thinning probability `B(i,j) = binom(i,j)·p^j·(1−p)^{i−j}`,
//! and flows with `j = 0` vanish entirely:
//!
//! ```text
//! E[N_j] = Σ_{i ≥ j} M_i·B(i, j)          (j ≥ 1)
//! ```
//!
//! [`FlowSizeUnfolder`] inverts this by expectation–maximisation exactly
//! as in [18]: the E-step distributes each observed count `N_j` over
//! plausible true sizes under the current model, the M-step re-adds the
//! invisible mass `M_i·(1−p)^i`:
//!
//! ```text
//! M′_i = M_i·(1−p)^i + Σ_{j≥1} N_j · M_i·B(i,j) / Σ_{i′} M_{i′}·B(i′,j)
//! ```
//!
//! This is a *parametric* complement to the paper's estimators: it
//! recovers the whole histogram (and, as a corollary, the flow count
//! `F_0`) when flow sizes are bounded and the sample is large, but unlike
//! Algorithm 2 it carries no worst-case guarantee — the Theorem 4 hard
//! pair defeats it just as it defeats everything else. The
//! `exp_flow_unfold` experiment shows both sides.

use sss_hash::{fp_hash_map, FpHashMap};

use crate::numeric::binom_pmf;

/// Histogram of *sampled* per-flow packet counts: `observed[j]` = number
/// of flows with exactly `j ≥ 1` sampled packets.
#[derive(Debug, Clone, Default)]
pub struct SampledFlowHistogram {
    freqs: FpHashMap<u64, u64>,
}

impl SampledFlowHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            freqs: fp_hash_map(),
        }
    }

    /// Ingest one sampled packet of `flow`.
    pub fn update(&mut self, flow: u64) {
        *self.freqs.entry(flow).or_insert(0) += 1;
    }

    /// Number of flows seen in the sample.
    pub fn observed_flows(&self) -> u64 {
        self.freqs.len() as u64
    }

    /// Sampled packets ingested.
    pub fn observed_packets(&self) -> u64 {
        self.freqs.values().sum()
    }

    /// The histogram `N_j` as a dense vector (`counts[j]`, index 0 unused).
    pub fn counts(&self) -> Vec<u64> {
        let max = self.freqs.values().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0u64; max + 1];
        for &g in self.freqs.values() {
            counts[g as usize] += 1;
        }
        counts
    }
}

/// EM-based unfolding of the original flow-size distribution.
#[derive(Debug, Clone)]
pub struct FlowSizeUnfolder {
    p: f64,
    /// Largest original flow size modelled.
    max_size: usize,
    iterations: usize,
}

/// The recovered distribution: `m[i]` estimates the number of flows of
/// true size `i` (index 0 unused).
#[derive(Debug, Clone)]
pub struct FlowSizeEstimate {
    /// Estimated flow counts by true size.
    pub m: Vec<f64>,
}

impl FlowSizeEstimate {
    /// Estimated total number of flows (an `F_0` estimate).
    pub fn total_flows(&self) -> f64 {
        self.m.iter().sum()
    }

    /// Estimated total packets (an `F_1` estimate).
    pub fn total_packets(&self) -> f64 {
        self.m
            .iter()
            .enumerate()
            .map(|(i, &mi)| i as f64 * mi)
            .sum()
    }

    /// Estimated mean flow size.
    pub fn mean_size(&self) -> f64 {
        let f = self.total_flows();
        if f == 0.0 {
            0.0
        } else {
            self.total_packets() / f
        }
    }

    /// Estimated fraction of flows with size ≥ `s`.
    pub fn ccdf(&self, s: usize) -> f64 {
        let total = self.total_flows();
        if total == 0.0 {
            return 0.0;
        }
        self.m.iter().skip(s).sum::<f64>() / total
    }
}

impl FlowSizeUnfolder {
    /// Unfolder for sampling rate `p`, modelling sizes up to `max_size`,
    /// running `iterations` EM rounds (50–200 is typical; the likelihood
    /// is concave in the complete-data formulation and converges fast).
    pub fn new(p: f64, max_size: usize, iterations: usize) -> Self {
        assert!(p > 0.0 && p <= 1.0, "sampling probability must be in (0,1]");
        assert!(max_size >= 1);
        assert!(iterations >= 1);
        Self {
            p,
            max_size,
            iterations,
        }
    }

    /// Run the EM unfolding on an observed histogram.
    pub fn unfold(&self, histogram: &SampledFlowHistogram) -> FlowSizeEstimate {
        let n_j = histogram.counts();
        let j_max = n_j.len() - 1;
        let i_max = self.max_size.max(j_max);
        if histogram.observed_flows() == 0 {
            return FlowSizeEstimate {
                m: vec![0.0; i_max + 1],
            };
        }

        // Thinning kernel B[i][j] for j ≤ min(i, j_max), i ≤ i_max.
        // Row-major, computed stably in log space once.
        let mut kernel = vec![vec![0.0f64; j_max + 1]; i_max + 1];
        for (i, row) in kernel.iter_mut().enumerate().skip(1) {
            for (j, cell) in row.iter_mut().enumerate().take(i.min(j_max) + 1) {
                *cell = binom_pmf(i as u64, j as u64, self.p);
            }
        }

        // Uniform initial model. A point-mass initialisation creates
        // spurious EM fixed points (mass parked at a wrong size can only
        // leak out at the rate unobserved bins evaporate); starting flat
        // lets the observed histogram carve the posterior from the first
        // iteration.
        let total_guess = histogram.observed_flows() as f64 / self.p.min(0.99);
        let mut m = vec![total_guess / i_max as f64; i_max + 1];
        m[0] = 0.0;

        for _ in 0..self.iterations {
            // Denominators D_j = Σ_i M_i B(i,j) for each observed j.
            let mut d = vec![0.0f64; j_max + 1];
            for (i, row) in kernel.iter().enumerate().skip(1) {
                for (j, &b) in row.iter().enumerate().skip(1) {
                    d[j] += m[i] * b;
                }
            }
            // EM update.
            let mut next = vec![0.0f64; i_max + 1];
            for (i, row) in kernel.iter().enumerate().skip(1) {
                // Invisible mass stays: M_i·(1−p)^i = M_i·B(i, 0).
                let mut acc = m[i] * row[0];
                for (j, &b) in row.iter().enumerate().skip(1) {
                    if n_j[j] > 0 && d[j] > 0.0 {
                        acc += n_j[j] as f64 * m[i] * b / d[j];
                    }
                }
                next[i] = acc;
            }
            m = next;
        }

        FlowSizeEstimate { m }
    }

    /// Probability a size-`i` flow is visible: `1 − (1−p)^i`.
    #[allow(dead_code)]
    fn visible(&self, i: usize) -> f64 {
        1.0 - (1.0 - self.p).powi(i as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_hash::{RngCore64, Xoshiro256pp};

    /// Build a sampled histogram from an explicit (size → count) spec.
    fn sample_flows(spec: &[(u64, u64)], p: f64, seed: u64) -> SampledFlowHistogram {
        let mut rng = Xoshiro256pp::new(seed);
        let mut hist = SampledFlowHistogram::new();
        let mut flow_id = 0u64;
        for &(size, count) in spec {
            for _ in 0..count {
                flow_id += 1;
                for _ in 0..size {
                    if rng.next_bool(p) {
                        hist.update(flow_id);
                    }
                }
            }
        }
        hist
    }

    #[test]
    fn constant_size_flows_recovered() {
        // 5000 flows of size exactly 20, sampled at p = 0.3.
        let hist = sample_flows(&[(20, 5000)], 0.3, 1);
        let est = FlowSizeUnfolder::new(0.3, 64, 300).unfold(&hist);
        let total = est.total_flows();
        assert!(
            (total - 5000.0).abs() / 5000.0 < 0.05,
            "total flows {total}"
        );
        let mean = est.mean_size();
        assert!((mean - 20.0).abs() < 2.0, "mean size {mean}");
        // Mass concentrates near size 20.
        assert!(est.ccdf(15) > 0.9, "ccdf(15) = {}", est.ccdf(15));
        assert!(est.ccdf(26) < 0.1, "ccdf(26) = {}", est.ccdf(26));
    }

    #[test]
    fn two_point_mixture_recovered() {
        // Mice (size 2) and elephants (size 50).
        let hist = sample_flows(&[(2, 20_000), (50, 500)], 0.4, 2);
        let est = FlowSizeUnfolder::new(0.4, 128, 400).unfold(&hist);
        let total = est.total_flows();
        assert!(
            (total - 20_500.0).abs() / 20_500.0 < 0.1,
            "total flows {total}"
        );
        // Elephant share of flows ≈ 500/20500 ≈ 2.4%.
        let big = est.ccdf(25);
        assert!(
            (big - 500.0 / 20_500.0).abs() < 0.02,
            "elephant share {big}"
        );
        // Packet total: 2·20000 + 50·500 = 65_000.
        let pkts = est.total_packets();
        assert!((pkts - 65_000.0).abs() / 65_000.0 < 0.1, "packets {pkts}");
    }

    #[test]
    fn total_packets_matches_f1_scaling() {
        // E[total packets] must agree with observed/p regardless of shape.
        let hist = sample_flows(&[(7, 3000), (19, 1000)], 0.25, 3);
        let est = FlowSizeUnfolder::new(0.25, 64, 300).unfold(&hist);
        let scaled = hist.observed_packets() as f64 / 0.25;
        assert!(
            (est.total_packets() - scaled).abs() / scaled < 0.05,
            "unfolded {} vs scaled {}",
            est.total_packets(),
            scaled
        );
    }

    #[test]
    fn invisible_mice_are_reinflated() {
        // Size-1 flows at p = 0.2: only 20% visible. The unfolder must
        // recover ≈ 5x the observed count.
        let hist = sample_flows(&[(1, 50_000)], 0.2, 4);
        let observed = hist.observed_flows() as f64;
        let est = FlowSizeUnfolder::new(0.2, 16, 400).unfold(&hist);
        let total = est.total_flows();
        assert!(
            total > 3.0 * observed,
            "no reinflation: {total} vs observed {observed}"
        );
        assert!((total - 50_000.0).abs() / 50_000.0 < 0.15, "total {total}");
    }

    #[test]
    fn histogram_bookkeeping() {
        let mut h = SampledFlowHistogram::new();
        for _ in 0..3 {
            h.update(1);
        }
        h.update(2);
        assert_eq!(h.observed_flows(), 2);
        assert_eq!(h.observed_packets(), 4);
        assert_eq!(h.counts(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn empty_histogram_unfolds_to_nothing() {
        let est = FlowSizeUnfolder::new(0.5, 32, 10).unfold(&SampledFlowHistogram::new());
        assert!(est.total_flows() < 1e-3);
        assert_eq!(est.mean_size(), 0.0);
    }
}
