//! Adaptive sampling rates — the paper's open problem #2 (Conclusion):
//! *"Suppose … the algorithm can change the sampling probability in an
//! adaptive manner, depending on the current state of the stream. Is it
//! possible to observe fewer elements overall and get the same
//! accuracy?"*
//!
//! This module implements the `F_2` case as an extension. The key
//! observation: the collision argument of §3 survives **per-occurrence
//! importance weighting**. If the occurrence at position `t` was sampled
//! with probability `p_t` (any rate schedule measurable with respect to
//! the past — including schedules chosen adaptively from what has been
//! sampled so far), then
//!
//! ```text
//! Ĉ_2 = Σ_{sampled pairs (s, t), a_s = a_t} 1/(p_s·p_t)
//! F̂_1 = Σ_{sampled t} 1/p_t
//! ```
//!
//! are exactly unbiased for `C_2(P)` and `F_1(P)`, and
//! `F̂_2 = 2·Ĉ_2 + F̂_1` (Lemma 1 with `k = 2`). Maintaining per-item
//! weighted counts `w_i = Σ 1/p_t` makes the update `O(1)`: a new sampled
//! occurrence of `i` at rate `p` adds `w_i/p` to `Ĉ_2` before bumping
//! `w_i` by `1/p`. With a constant rate this specialises to Algorithm 1's
//! estimator verbatim (tested).
//!
//! [`TargetCollisionsPolicy`] demonstrates the affirmative answer to the
//! open problem: sample fast until enough collisions have been *observed*
//! to pin the relative error, then throttle — on skewed streams this
//! observes several times fewer elements than the fixed rate that reaches
//! the same accuracy (experiment `exp_adaptive`).

use sss_codec::{put_packed_sorted_u64s, CodecError, Reader, WireCodec};
use sss_hash::{fp_hash_map, FpHashMap};

use crate::estimate::{Estimate, Guarantee, Statistic, SubsampledEstimator};

/// `F_2` estimator under a piecewise-varying (possibly adaptive) sampling
/// rate, via per-occurrence importance weighting.
#[derive(Debug, Clone)]
pub struct AdaptiveF2Estimator {
    current_p: f64,
    /// Per-item weighted sampled count `w_i = Σ 1/p_t`.
    weighted: FpHashMap<u64, f64>,
    c2_hat: f64,
    f1_hat: f64,
    samples: u64,
}

impl AdaptiveF2Estimator {
    /// Estimator starting at rate `p0 ∈ (0, 1]`.
    pub fn new(p0: f64) -> Self {
        assert!(p0 > 0.0 && p0 <= 1.0, "rate must be in (0,1]");
        Self {
            current_p: p0,
            weighted: fp_hash_map(),
            c2_hat: 0.0,
            f1_hat: 0.0,
            samples: 0,
        }
    }

    /// The rate currently in force.
    pub fn current_rate(&self) -> f64 {
        self.current_p
    }

    /// Change the sampling rate. Takes effect for subsequent updates; the
    /// caller must apply the *same* rate to the sampling process itself.
    /// Rates may depend on anything already observed (but not on the
    /// future), which keeps the estimator unbiased.
    pub fn set_rate(&mut self, p: f64) {
        assert!(p > 0.0 && p <= 1.0, "rate must be in (0,1]");
        self.current_p = p;
    }

    /// Sampled elements ingested — the "elements observed" cost the open
    /// problem asks to minimise.
    pub fn samples_seen(&self) -> u64 {
        self.samples
    }

    /// Unweighted count of observed collisions (pairs within the sample),
    /// the signal adaptive policies throttle on.
    pub fn observed_c2_weighted(&self) -> f64 {
        self.c2_hat
    }

    /// Ingest one element of the sampled stream, taken at the current rate.
    pub fn update(&mut self, x: u64) {
        self.samples += 1;
        let inv_p = 1.0 / self.current_p;
        let w = self.weighted.entry(x).or_insert(0.0);
        self.c2_hat += *w * inv_p;
        *w += inv_p;
        self.f1_hat += inv_p;
    }

    /// Unbiased estimate of `F_1(P)`.
    pub fn estimate_f1(&self) -> f64 {
        self.f1_hat
    }

    /// Unbiased estimate of `C_2(P)`.
    pub fn estimate_c2(&self) -> f64 {
        self.c2_hat
    }

    /// The `F_2(P)` estimate `2·Ĉ_2 + F̂_1` (Lemma 1, `k = 2`).
    pub fn estimate(&self) -> f64 {
        2.0 * self.c2_hat + self.f1_hat
    }

    /// Ingest a batch of consecutive sampled elements, all taken at the
    /// current rate.
    pub fn update_batch(&mut self, xs: &[u64]) {
        for &x in xs {
            self.update(x);
        }
    }

    /// Merge a second monitor's estimator over a **disjoint** slice of
    /// `P`. The cross-shard pairs of each shared item contribute
    /// `w_self(i)·w_other(i) = Σ_{(s,t) cross} 1/(p_s·p_t)` — exactly the
    /// importance-weighted count of the pairs neither shard saw alone, so
    /// the merged estimator is still unbiased.
    /// Cross terms apply in ascending item order so the float
    /// accumulation is canonical — merging a deserialized shard lands on
    /// bitwise the same `Ĉ_2` as merging the original.
    pub fn merge(&mut self, other: &AdaptiveF2Estimator) {
        self.c2_hat += other.c2_hat;
        self.f1_hat += other.f1_hat;
        self.samples += other.samples;
        let mut rows: Vec<(u64, f64)> = other.weighted.iter().map(|(&i, &w)| (i, w)).collect();
        rows.sort_unstable_by_key(|&(i, _)| i);
        for (i, wb) in rows {
            let w = self.weighted.entry(i).or_insert(0.0);
            self.c2_hat += *w * wb;
            *w += wb;
        }
    }

    /// Memory footprint in 64-bit words.
    pub fn space_words(&self) -> usize {
        2 * self.weighted.len() + 4
    }
}

impl SubsampledEstimator for AdaptiveF2Estimator {
    fn statistic(&self) -> Statistic {
        Statistic::Fk(2)
    }

    fn update(&mut self, x: u64) {
        AdaptiveF2Estimator::update(self, x);
    }

    fn update_batch(&mut self, xs: &[u64]) {
        AdaptiveF2Estimator::update_batch(self, xs);
    }

    fn merge(&mut self, other: &Self) {
        AdaptiveF2Estimator::merge(self, other);
    }

    fn merge_compatible(&self, _other: &Self) -> Result<(), crate::estimate::MergeError> {
        // Shards of an adaptive estimator may legitimately sit at
        // different current rates (importance weights absorb the
        // difference), so the default rate-compatibility gate is skipped.
        Ok(())
    }

    fn estimate(&self) -> Estimate {
        // Unbiased under any past-measurable rate schedule, but the paper
        // proves no worst-case (ε, δ) for it — an extension, not a theorem.
        Estimate::scalar(
            AdaptiveF2Estimator::estimate(self),
            Guarantee::Heuristic,
            self.current_p,
            self.samples,
        )
    }

    fn space_bytes(&self) -> usize {
        8 * self.space_words()
    }

    fn p(&self) -> f64 {
        self.current_p
    }

    fn samples_seen(&self) -> u64 {
        self.samples
    }
}

impl WireCodec for AdaptiveF2Estimator {
    const WIRE_TAG: u16 = 0x040A;

    fn encode_into(&self, out: &mut Vec<u8>) {
        // v2 layout: sorted-delta-packed item ids, then the weight
        // column as raw IEEE-754 bit patterns.
        self.current_p.encode_into(out);
        self.c2_hat.encode_into(out);
        self.f1_hat.encode_into(out);
        self.samples.encode_into(out);
        let mut rows: Vec<(u64, f64)> = self.weighted.iter().map(|(&i, &w)| (i, w)).collect();
        rows.sort_unstable_by_key(|&(i, _)| i);
        put_packed_sorted_u64s(out, &rows.iter().map(|&(i, _)| i).collect::<Vec<_>>());
        for &(_, w) in &rows {
            w.encode_into(out);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let current_p = crate::f0::decode_rate(r)?;
        let c2_hat = r.f64()?;
        let f1_hat = r.f64()?;
        let samples = r.u64()?;
        let rows: Vec<(u64, f64)> = if r.v2() {
            let items = r.packed_sorted_u64s()?;
            let mut v = Vec::with_capacity(items.len());
            for item in items {
                v.push((item, r.f64()?));
            }
            v
        } else {
            let len = r.len_prefix(16)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push((r.u64()?, r.f64()?));
            }
            v
        };
        let mut weighted = fp_hash_map();
        for (item, w) in rows {
            if w.is_nan() || w <= 0.0 || weighted.insert(item, w).is_some() {
                return Err(CodecError::Invalid {
                    what: "AdaptiveF2Estimator weighted row invalid",
                });
            }
        }
        Ok(AdaptiveF2Estimator {
            current_p,
            weighted,
            c2_hat,
            f1_hat,
            samples,
        })
    }
}

/// A concrete adaptive policy: run at `p_high` until the weighted
/// collision estimate crosses `target`, then drop to `p_low`.
///
/// Rationale: the relative standard deviation of `Ĉ_2` scales like
/// `1/√(observed collisions)`; once enough collisions are banked, further
/// elements refine the estimate only marginally, so the rate can fall by
/// an order of magnitude with little accuracy loss — fewer elements
/// observed overall for the same final error.
#[derive(Debug, Clone)]
pub struct TargetCollisionsPolicy {
    /// Initial (exploration) rate.
    pub p_high: f64,
    /// Throttled rate.
    pub p_low: f64,
    /// Weighted-collision threshold at which to throttle.
    pub target: f64,
}

impl TargetCollisionsPolicy {
    /// The rate this policy mandates given the estimator's current state.
    pub fn rate_for(&self, est: &AdaptiveF2Estimator) -> f64 {
        if est.observed_c2_weighted() >= self.target {
            self.p_low
        } else {
            self.p_high
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_hash::RngCore64;
    use sss_stream::{BernoulliSampler, ExactStats, StreamGen, ZipfStream};

    #[test]
    fn constant_rate_matches_algorithm1() {
        // With a single fixed rate the weighted estimator is algebraically
        // identical to Algorithm 1 (k = 2, exact collisions).
        let stream = ZipfStream::new(500, 1.2).generate(30_000, 1);
        let p = 0.2;
        let mut adaptive = AdaptiveF2Estimator::new(p);
        let mut alg1 = crate::fk::SampledFkEstimator::exact(2, p);
        let mut sampler = BernoulliSampler::new(p, 2);
        sampler.sample_slice(&stream, |x| {
            adaptive.update(x);
            alg1.update(x);
        });
        let a = adaptive.estimate();
        let b = alg1.estimate();
        assert!((a - b).abs() <= 1e-6 * b, "{a} vs {b}");
    }

    #[test]
    fn two_phase_estimate_is_unbiased() {
        // First half sampled at 0.5, second half at 0.1: the cross-phase
        // correction must keep the mean on target. A uniform stream keeps
        // the trial variance small enough for a tight mean check.
        let stream = {
            use sss_stream::UniformStream;
            UniformStream::new(300).generate(40_000, 3)
        };
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
        let half = stream.len() / 2;
        let trials = 100;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut est = AdaptiveF2Estimator::new(0.5);
            let mut rng = sss_hash::Xoshiro256pp::new(seed);
            for (idx, &x) in stream.iter().enumerate() {
                if idx == half {
                    est.set_rate(0.2);
                }
                if rng.next_bool(est.current_rate()) {
                    est.update(x);
                }
            }
            sum += est.estimate();
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.03,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn naive_single_rate_formula_is_biased_on_phased_sample() {
        // When item occurrence correlates with the rate schedule (here: a
        // hot item that appears only in the low-rate phase), Algorithm 1's
        // fixed-p formula — even with the time-averaged rate — is
        // systematically wrong, while the weighted estimator is not. This
        // is why the adaptive extension needs new algebra.
        let half = 20_000usize;
        let mut stream = ZipfStream::new(300, 1.0).generate(half as u64, 5);
        stream.extend(std::iter::repeat_n(999_999u64, half)); // phase-2-only elephant
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
        let (p1, p2) = (0.4, 0.04);
        let p_avg = (p1 + p2) / 2.0;
        let trials = 60;
        let mut adaptive_sum = 0.0;
        let mut naive_sum = 0.0;
        for seed in 0..trials {
            let mut est = AdaptiveF2Estimator::new(p1);
            let mut naive = crate::fk::SampledFkEstimator::exact(2, p_avg);
            let mut rng = sss_hash::Xoshiro256pp::new(1000 + seed);
            for (idx, &x) in stream.iter().enumerate() {
                if idx == half {
                    est.set_rate(p2);
                }
                if rng.next_bool(est.current_rate()) {
                    est.update(x);
                    naive.update(x);
                }
            }
            adaptive_sum += est.estimate();
            naive_sum += naive.estimate();
        }
        let adaptive_err = (adaptive_sum / trials as f64 - truth).abs() / truth;
        let naive_err = (naive_sum / trials as f64 - truth).abs() / truth;
        // The elephant's pairs live entirely in the p2 phase; the naive
        // formula scales them by 1/p_avg² instead of 1/p2² — a (p_avg/p2)²
        // = 30x undercount of the dominant F2 term.
        assert!(adaptive_err < 0.10, "adaptive err {adaptive_err}");
        assert!(
            naive_err > 0.5,
            "naive err {naive_err} should be catastrophic"
        );
    }

    #[test]
    fn throttling_policy_saves_samples_on_skewed_streams() {
        // The open-problem demonstration: same stream, (a) fixed p_high
        // throughout vs (b) policy that throttles 10x after banking
        // collisions. (b) must observe far fewer elements while staying
        // within a few percent.
        let stream = ZipfStream::new(2000, 1.5).generate(200_000, 7);
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
        let policy = TargetCollisionsPolicy {
            p_high: 0.2,
            p_low: 0.02,
            target: 2.0 * truth / 100.0, // ~1% rel. sd territory
        };
        let mut fixed_samples = 0u64;
        let mut adaptive_samples = 0u64;
        let mut fixed_err = 0.0;
        let mut adaptive_err = 0.0;
        let trials = 10;
        for seed in 0..trials {
            // Fixed.
            let mut est = AdaptiveF2Estimator::new(policy.p_high);
            let mut rng = sss_hash::Xoshiro256pp::new(2000 + seed);
            for &x in &stream {
                if rng.next_bool(policy.p_high) {
                    est.update(x);
                }
            }
            fixed_samples += est.samples_seen();
            fixed_err += (est.estimate() - truth).abs() / truth / trials as f64;
            // Adaptive.
            let mut est = AdaptiveF2Estimator::new(policy.p_high);
            let mut rng = sss_hash::Xoshiro256pp::new(3000 + seed);
            for &x in &stream {
                let r = policy.rate_for(&est);
                if r != est.current_rate() {
                    est.set_rate(r);
                }
                if rng.next_bool(est.current_rate()) {
                    est.update(x);
                }
            }
            adaptive_samples += est.samples_seen();
            adaptive_err += (est.estimate() - truth).abs() / truth / trials as f64;
        }
        assert!(
            adaptive_samples * 2 < fixed_samples,
            "adaptive {adaptive_samples} vs fixed {fixed_samples}"
        );
        assert!(adaptive_err < 0.08, "adaptive err {adaptive_err}");
        assert!(fixed_err < 0.05, "fixed err {fixed_err}");
    }

    #[test]
    fn empty_estimator_is_zero() {
        let est = AdaptiveF2Estimator::new(0.5);
        assert_eq!(est.estimate(), 0.0);
        assert_eq!(est.estimate_f1(), 0.0);
        assert_eq!(est.samples_seen(), 0);
    }
}
