//! Indyk–Woodruff level-set estimation (STOC 2005), the `C̃_ℓ(L)` black box
//! of the paper's Algorithm 1 (its Theorem 2).
//!
//! The structure estimates the sizes of the geometric frequency classes
//!
//! ```text
//! S_i = { j : η·(1+ε′)^i ≤ g_j < η·(1+ε′)^{i+1} }
//! ```
//!
//! of the ingested stream, where `η` is a random boundary shift. From the
//! estimated class sizes `s̃_i` the collision counts follow as
//! `C̃_ℓ = Σ_i s̃_i · binom(v_i, ℓ)` with `v_i = η(1+ε′)^i` — the exact
//! formula in §3.1 of the paper.
//!
//! **How class sizes are recovered.** Level `j ∈ {0, …, J}` ingests item
//! `x` iff a pairwise-independent hash gives `x` at least `j` trailing zero
//! bits, so level `j` sees a `2^{−j}` item-subsample of the stream (level 0
//! sees everything). Each level runs a CountSketch plus a candidate
//! tracker. A frequency class `v_i` is read off the *shallowest* level at
//! which items of weight `v_i` are heavy enough to be recovered reliably —
//! `v_i² ≥ slack·F̂_2(level j)/width` — and the surviving class members are
//! counted and scaled by `2^j`. Heavy classes resolve at level 0 with no
//! scaling variance; huge classes of light items resolve deep, where few
//! survive but each survivor represents `2^j` peers. This is precisely the
//! trade the Indyk–Woodruff analysis formalises: contributing classes get
//! `(1 ± ε′)` accuracy, negligible classes are at worst overestimated by a
//! constant factor (Theorem 2's `s̃_i ≤ 3|S_i|`).
//!
//! The paper draws `η` uniformly from `(0, 1)` and conditions away the
//! degenerate `η ≈ 0` corner (Lemma 6); we draw `η ∈ [1/2, 1)`, which is
//! that same conditioning realised at construction time.

use sss_codec::{put_varint_u64, CodecError, Reader, WireCodec};
use sss_hash::{PairwiseHash, RngCore64, SplitMix64};

use crate::countsketch::CountSketch;
use crate::topk::TopKTracker;

/// Configuration for a [`LevelSetEstimator`].
#[derive(Debug, Clone)]
pub struct LevelSetConfig {
    /// Number of subsampling levels `J+1` (≈ `lg` of the number of distinct
    /// items expected; extra levels are harmless, missing levels hurt large
    /// sparse classes).
    pub levels: usize,
    /// CountSketch rows per level.
    pub depth: usize,
    /// CountSketch counters per row — the paper's space knob
    /// `Õ(p⁻¹ m^{1−2/k})`.
    pub width: usize,
    /// Candidate-tracker capacity per level (defaults to `width`).
    pub track: usize,
    /// Geometric class ratio `1 + ε′`.
    pub eps_prime: f64,
    /// Reliability slack: a class with value `v` is read at the first level
    /// where `v² ≥ slack·F̂_2(level)/width`.
    pub slack: f64,
}

impl LevelSetConfig {
    /// A reasonable default configuration for a universe of `m` items:
    /// `⌈lg m⌉+1` levels, 5 rows, the given width, `ε′ = 0.1`, slack 32.
    pub fn for_universe(m: u64, width: usize) -> Self {
        let levels = (64 - m.max(2).leading_zeros() as usize) + 1;
        Self {
            levels: levels.min(40),
            depth: 5,
            width,
            track: width,
            eps_prime: 0.1,
            slack: 32.0,
        }
    }
}

/// One subsampling level: a CountSketch and its candidate tracker.
#[derive(Debug, Clone)]
struct Level {
    cs: CountSketch,
    tracker: TopKTracker,
    /// Number of stream updates reaching this level.
    updates: u64,
}

/// Indyk–Woodruff level-set estimator over an insert-only stream.
#[derive(Debug, Clone)]
pub struct LevelSetEstimator {
    levels: Vec<Level>,
    level_hash: PairwiseHash,
    eps_prime: f64,
    slack: f64,
    eta: f64,
    n: u64,
}

/// An estimated frequency class: representative value and estimated size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassEstimate {
    /// Lower boundary `v_i = η(1+ε′)^i` of the class.
    pub value: f64,
    /// Estimated number of distinct items in the class.
    pub size: f64,
    /// The subsampling level the class was read from.
    pub level: usize,
}

impl LevelSetEstimator {
    /// Build the estimator from a configuration and seed.
    pub fn new(config: &LevelSetConfig, seed: u64) -> Self {
        assert!(config.levels >= 1, "need at least one level");
        assert!(
            config.eps_prime > 0.0 && config.eps_prime <= 1.0,
            "eps_prime must be in (0,1]"
        );
        assert!(config.slack >= 1.0, "slack must be >= 1");
        let mut sm = SplitMix64::new(seed);
        let levels = (0..config.levels)
            .map(|_| Level {
                cs: CountSketch::new(config.depth, config.width, sm.derive()),
                tracker: TopKTracker::new(config.track.max(1)),
                updates: 0,
            })
            .collect();
        let level_hash = PairwiseHash::new(sm.derive());
        // η ∈ [1/2, 1): the paper's random shift conditioned away from 0.
        let eta = 0.5 + 0.5 * sm.next_f64();
        Self {
            levels,
            level_hash,
            eps_prime: config.eps_prime,
            slack: config.slack,
            eta,
            n: 0,
        }
    }

    /// Stream length ingested (`F_1(L)` when fed the sampled stream).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The random class-boundary shift `η`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The class ratio parameter `ε′`.
    pub fn eps_prime(&self) -> f64 {
        self.eps_prime
    }

    /// Space in 64-bit words across all levels.
    pub fn space_words(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.cs.space_words() + 2 * l.tracker.len())
            .sum()
    }

    /// Ingest one occurrence of `x`. Expected cost: two level updates
    /// (`Σ_j 2^{−j} < 2`), each `O(depth)` — the paper's `Õ(1)` per item.
    pub fn update(&mut self, x: u64) {
        self.n += 1;
        let deepest = (self.level_hash.level(x) as usize).min(self.levels.len() - 1);
        for j in 0..=deepest {
            let level = &mut self.levels[j];
            level.updates += 1;
            level.cs.update(x, 1);
            let est = level.cs.query(x);
            if est > 0 {
                level.tracker.offer(x, est as f64);
            }
        }
    }

    /// Ingest a batch of occurrences (same result as one-by-one updates).
    pub fn update_batch(&mut self, xs: &[u64]) {
        for &x in xs {
            self.update(x);
        }
    }

    /// Merge another estimator built from the same configuration and
    /// seed: the per-level CountSketches are linear (counter-wise sum) and
    /// the candidate tables take the union, re-estimated against the
    /// merged sketches. Afterwards `self` summarises the concatenation of
    /// both ingested streams.
    ///
    /// # Panics
    /// If the two estimators were not built with the same configuration
    /// and seed (different `η`, hashes or dimensions).
    pub fn merge(&mut self, other: &LevelSetEstimator) {
        assert_eq!(
            self.levels.len(),
            other.levels.len(),
            "level count mismatch"
        );
        assert_eq!(self.level_hash, other.level_hash, "incompatible level hash");
        assert!(
            (self.eta - other.eta).abs() < 1e-15,
            "incompatible class shift η: {} vs {}",
            self.eta,
            other.eta
        );
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            mine.cs.merge(&theirs.cs);
            mine.updates += theirs.updates;
        }
        // Re-offer both candidate sets against the merged counters — the
        // local side's stored estimates are shard-sized and stale, so
        // without a re-offer the tracker's capacity pruning could evict a
        // union-heavy member in favour of fresher values.
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            let union: Vec<u64> = mine
                .tracker
                .candidates()
                .chain(theirs.tracker.candidates())
                .collect();
            for item in union {
                let est = mine.cs.query(item);
                if est > 0 {
                    mine.tracker.offer(item, est as f64);
                }
            }
        }
        self.n += other.n;
    }

    /// Class index of an (estimated, positive) frequency `g`:
    /// the unique `i ≥ 0` with `η(1+ε′)^i ≤ g < η(1+ε′)^{i+1}`.
    fn class_of(&self, g: f64) -> i64 {
        debug_assert!(g > 0.0);
        (g / self.eta).log(1.0 + self.eps_prime).floor() as i64
    }

    /// The lower boundary `v_i = η(1+ε′)^i`.
    fn class_value(&self, i: i64) -> f64 {
        self.eta * (1.0 + self.eps_prime).powi(i as i32)
    }

    /// Estimate the sizes of all non-empty frequency classes.
    pub fn class_estimates(&self) -> Vec<ClassEstimate> {
        // Per-level recovered candidates bucketed into classes.
        let mut per_level: Vec<std::collections::BTreeMap<i64, u64>> = Vec::new();
        for level in &self.levels {
            let mut buckets = std::collections::BTreeMap::new();
            for item in level.tracker.candidates() {
                let est = level.cs.query(item);
                if est >= 1 {
                    *buckets.entry(self.class_of(est as f64)).or_insert(0u64) += 1;
                }
            }
            per_level.push(buckets);
        }
        // Per-level measured F_2 for the reliability rule.
        let f2: Vec<f64> = self.levels.iter().map(|l| l.cs.f2_estimate()).collect();
        let width = self.levels[0].cs.width() as f64;

        // Every class seen at any level, each read from its chosen level.
        let mut all_classes: std::collections::BTreeSet<i64> = std::collections::BTreeSet::new();
        for buckets in &per_level {
            all_classes.extend(buckets.keys().copied());
        }
        let mut out = Vec::with_capacity(all_classes.len());
        for &i in &all_classes {
            let v = self.class_value(i);
            let j = self.read_level_for(v * v, &f2, width);
            let count = per_level[j].get(&i).copied().unwrap_or(0);
            if count == 0 {
                continue;
            }
            out.push(ClassEstimate {
                value: v,
                size: count as f64 * (1u64 << j) as f64,
                level: j,
            });
        }
        out
    }

    /// The shallowest level at which items of squared weight `v²` are
    /// reliably recoverable: `v² ≥ slack·F̂_2(level)/width`.
    fn read_level_for(&self, v_sq: f64, f2: &[f64], width: f64) -> usize {
        for (j, &f2j) in f2.iter().enumerate() {
            if v_sq >= self.slack * f2j / width {
                return j;
            }
        }
        f2.len() - 1
    }

    /// Estimate `C_ℓ = Σ_i binom(g_i, ℓ)` of the ingested stream
    /// (the paper's `C̃_ℓ(L) = Σ_i s̃_i·binom(v_i, ℓ)`).
    pub fn collision_estimate(&self, ell: u32) -> f64 {
        assert!(ell >= 1, "collision order must be >= 1");
        if ell == 1 {
            // C_1 = F_1 is maintained exactly.
            return self.n as f64;
        }
        self.class_estimates()
            .iter()
            .map(|c| c.size * class_binom(c.value, self.eps_prime, ell))
            .sum()
    }
}

impl WireCodec for Level {
    // The v2 lower bound: varint-headed CountSketch + TopKTracker +
    // updates — bounds the pre-allocation a corrupt Vec<Level> length
    // can request (a valid v2 level can be far smaller than its v1
    // fixed-width image, so the old 64-byte floor would reject honest
    // frames).
    const MIN_WIRE_BYTES: usize = 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.cs.encode_into(out);
        self.tracker.encode_into(out);
        put_varint_u64(out, self.updates);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(Level {
            cs: CountSketch::decode(r)?,
            tracker: TopKTracker::decode(r)?,
            updates: if r.v2() { r.varint_u64()? } else { r.u64()? },
        })
    }
}

impl WireCodec for LevelSetEstimator {
    const WIRE_TAG: u16 = 0x020D;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.levels.encode_into(out);
        self.level_hash.encode_into(out);
        self.eps_prime.encode_into(out);
        self.slack.encode_into(out);
        self.eta.encode_into(out);
        self.n.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let levels: Vec<Level> = Vec::decode(r)?;
        let level_hash = PairwiseHash::decode(r)?;
        let eps_prime = r.f64()?;
        let slack = r.f64()?;
        let eta = r.f64()?;
        let n = r.u64()?;
        let Some((first, rest)) = levels.split_first() else {
            return Err(CodecError::Invalid {
                what: "LevelSetEstimator with no levels",
            });
        };
        if rest
            .iter()
            .any(|l| l.cs.width() != first.cs.width() || l.cs.depth() != first.cs.depth())
        {
            return Err(CodecError::Invalid {
                what: "LevelSetEstimator levels disagree on sketch dimensions",
            });
        }
        if !(eps_prime > 0.0 && eps_prime <= 1.0) {
            return Err(CodecError::Invalid {
                what: "LevelSetEstimator eps_prime outside (0,1]",
            });
        }
        if slack.is_nan() || slack < 1.0 {
            return Err(CodecError::Invalid {
                what: "LevelSetEstimator slack < 1",
            });
        }
        if !(0.5..1.0).contains(&eta) {
            return Err(CodecError::Invalid {
                what: "LevelSetEstimator eta outside [1/2, 1)",
            });
        }
        Ok(LevelSetEstimator {
            levels,
            level_hash,
            eps_prime,
            slack,
            eta,
            n,
        })
    }
}

/// Per-item collision contribution of a class `[lo, lo(1+ε′))`: `binom` of
/// the smallest integer the class can contain (the paper uses the lower
/// boundary; rounding up to the first integer keeps the small classes that
/// straddle `ℓ` — e.g. `[1.9, 2.05) ∋ 2` for `ℓ = 2` — from being dropped).
fn class_binom(lo: f64, eps_prime: f64, ell: u32) -> f64 {
    let hi = lo * (1.0 + eps_prime);
    let g = lo.ceil().max(ell as f64); // smallest integer with binom > 0
    if g >= hi {
        return 0.0;
    }
    let mut acc = 1.0f64;
    for j in 0..ell {
        acc *= (g - j as f64) / (j as f64 + 1.0);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stream with explicit geometric frequency classes:
    /// `spec = [(count, freq)]` → `count` distinct items of frequency `freq`.
    fn class_stream(spec: &[(u64, u64)]) -> (Vec<u64>, f64, f64) {
        let mut stream = Vec::new();
        let mut next_id = 0u64;
        let (mut c2, mut c3) = (0.0f64, 0.0f64);
        for &(count, freq) in spec {
            for _ in 0..count {
                let id = sss_hash::fingerprint64(next_id); // spread ids
                next_id += 1;
                for _ in 0..freq {
                    stream.push(id);
                }
                let f = freq as f64;
                c2 += f * (f - 1.0) / 2.0;
                c3 += f * (f - 1.0) * (f - 2.0) / 6.0;
            }
        }
        // Deterministic interleave.
        let mut rng = sss_hash::Xoshiro256pp::new(12345);
        for i in (1..stream.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            stream.swap(i, j);
        }
        (stream, c2, c3)
    }

    fn build(stream: &[u64], width: usize, seed: u64) -> LevelSetEstimator {
        let cfg = LevelSetConfig {
            levels: 18,
            ..LevelSetConfig::for_universe(1 << 18, width)
        };
        let mut ls = LevelSetEstimator::new(&cfg, seed);
        for &x in stream {
            ls.update(x);
        }
        ls
    }

    #[test]
    fn class_of_and_value_are_inverse() {
        let cfg = LevelSetConfig::for_universe(1 << 10, 64);
        let ls = LevelSetEstimator::new(&cfg, 1);
        for g in [1.0f64, 2.0, 10.0, 1234.5, 1e6] {
            let i = ls.class_of(g);
            let lo = ls.class_value(i);
            let hi = ls.class_value(i + 1);
            assert!(lo <= g * 1.0000001 && g < hi, "g={g} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn heavy_classes_are_recovered_at_level_zero() {
        // 4 items of frequency 5000 dominate F_2.
        let (stream, _, _) = class_stream(&[(4, 5000), (100, 10)]);
        let ls = build(&stream, 256, 2);
        let classes = ls.class_estimates();
        let heavy: Vec<&ClassEstimate> = classes
            .iter()
            .filter(|c| c.value > 4000.0 && c.value < 6000.0)
            .collect();
        let total: f64 = heavy.iter().map(|c| c.size).sum();
        assert!(
            (total - 4.0).abs() <= 1.0,
            "heavy class size = {total}, classes = {classes:?}"
        );
        for c in heavy {
            assert_eq!(c.level, 0, "heavy class read at deep level");
        }
    }

    #[test]
    fn large_light_class_estimated_via_subsampling() {
        // 20_000 items of frequency 2 cannot fit any sketch at level 0.
        let (stream, _, _) = class_stream(&[(20_000, 2)]);
        let ls = build(&stream, 256, 3);
        let classes = ls.class_estimates();
        let total: f64 = classes
            .iter()
            .filter(|c| c.value <= 2.0 && c.value * 1.1 > 1.9)
            .map(|c| c.size)
            .sum();
        let rel = (total - 20_000.0).abs() / 20_000.0;
        assert!(rel < 0.35, "estimated size {total} vs 20000");
    }

    #[test]
    fn collision_estimate_c2_mixed_classes() {
        let (stream, c2, _) = class_stream(&[(1, 3000), (30, 100), (300, 10), (3000, 2)]);
        let ls = build(&stream, 512, 4);
        let est = ls.collision_estimate(2);
        let rel = (est - c2).abs() / c2;
        assert!(rel < 0.3, "C2 est {est} vs exact {c2} (rel {rel})");
    }

    #[test]
    fn collision_estimate_c3_skewed() {
        let (stream, _, c3) = class_stream(&[(2, 2000), (50, 50), (1000, 3)]);
        let ls = build(&stream, 512, 5);
        let est = ls.collision_estimate(3);
        let rel = (est - c3).abs() / c3;
        assert!(rel < 0.3, "C3 est {est} vs exact {c3} (rel {rel})");
    }

    #[test]
    fn single_heavy_item_collisions_exact() {
        let stream = vec![99u64; 4096];
        let ls = build(&stream, 128, 6);
        let est = ls.collision_estimate(2);
        let exact = 4096.0 * 4095.0 / 2.0;
        assert!((est - exact).abs() / exact < 0.25, "est {est} vs {exact}");
    }

    #[test]
    fn c1_is_exact_stream_length() {
        let (stream, _, _) = class_stream(&[(100, 7)]);
        let ls = build(&stream, 64, 7);
        assert_eq!(ls.collision_estimate(1), 700.0);
    }

    #[test]
    fn empty_estimator_returns_zero() {
        let cfg = LevelSetConfig::for_universe(1024, 64);
        let ls = LevelSetEstimator::new(&cfg, 8);
        assert_eq!(ls.collision_estimate(2), 0.0);
        assert!(ls.class_estimates().is_empty());
    }

    #[test]
    fn class_binom_straddle_cases() {
        // [1.9, 2.09) contains 2: binom(2,2)=1.
        assert_eq!(class_binom(1.9, 0.1, 2), 1.0);
        // [1.5, 1.65) contains no integer ≥ 2: zero.
        assert_eq!(class_binom(1.5, 0.1, 2), 0.0);
        // [10, 11): binom(10, 2) = 45.
        assert_eq!(class_binom(10.0, 0.1, 2), 45.0);
        // below ℓ entirely: zero.
        assert_eq!(class_binom(1.0, 0.05, 3), 0.0);
    }

    #[test]
    fn eta_is_in_conditioned_range() {
        for seed in 0..32u64 {
            let cfg = LevelSetConfig::for_universe(256, 32);
            let ls = LevelSetEstimator::new(&cfg, seed);
            assert!(ls.eta() >= 0.5 && ls.eta() < 1.0);
        }
    }

    #[test]
    fn space_grows_linearly_in_width() {
        let a = LevelSetEstimator::new(&LevelSetConfig::for_universe(1 << 16, 64), 1);
        let b = LevelSetEstimator::new(&LevelSetConfig::for_universe(1 << 16, 128), 1);
        assert!(b.space_words() > (a.space_words() * 3) / 2);
    }

    #[test]
    fn lighter_classes_are_read_from_deeper_levels() {
        // Heavy class at level 0; a huge class of light items must be read
        // from a strictly deeper level.
        let (stream, _, _) = class_stream(&[(2, 4000), (20_000, 2)]);
        let ls = build(&stream, 256, 9);
        let classes = ls.class_estimates();
        let heavy_level = classes
            .iter()
            .filter(|c| c.value > 3000.0)
            .map(|c| c.level)
            .min()
            .expect("heavy class found");
        let light_level = classes
            .iter()
            .filter(|c| c.value < 3.0)
            .map(|c| c.level)
            .max()
            .expect("light class found");
        assert_eq!(heavy_level, 0);
        assert!(
            light_level > heavy_level,
            "light class at level {light_level}, heavy at {heavy_level}"
        );
    }

    #[test]
    fn merge_tracks_concatenation() {
        // Two disjoint halves of a mixed-class stream, merged, must give
        // collision estimates close to one estimator over the whole.
        let (stream, c2, _) = class_stream(&[(2, 2000), (40, 80), (2000, 3)]);
        let cfg = LevelSetConfig {
            levels: 18,
            ..LevelSetConfig::for_universe(1 << 18, 512)
        };
        let cut = stream.len() / 2;
        let mut a = LevelSetEstimator::new(&cfg, 31);
        let mut b = LevelSetEstimator::new(&cfg, 31);
        let mut whole = LevelSetEstimator::new(&cfg, 31);
        for &x in &stream[..cut] {
            a.update(x);
            whole.update(x);
        }
        for &x in &stream[cut..] {
            b.update(x);
            whole.update(x);
        }
        a.merge(&b);
        assert_eq!(a.n(), whole.n());
        let merged = a.collision_estimate(2);
        let direct = whole.collision_estimate(2);
        // Same seeds ⇒ same linear sketches; candidate sets may differ at
        // the margin, so allow a modest gap — and both must track truth.
        assert!(
            (merged - direct).abs() / direct.max(1.0) < 0.2,
            "merged {merged} vs direct {direct}"
        );
        assert!(
            (merged - c2).abs() / c2 < 0.35,
            "merged {merged} vs exact {c2}"
        );
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_different_seeds() {
        let cfg = LevelSetConfig::for_universe(1 << 10, 64);
        let mut a = LevelSetEstimator::new(&cfg, 1);
        let b = LevelSetEstimator::new(&cfg, 2);
        a.merge(&b);
    }

    #[test]
    fn update_touches_expected_number_of_levels() {
        // Σ_j 2^{-j} < 2: total level updates ≈ 2n.
        let cfg = LevelSetConfig::for_universe(1 << 16, 64);
        let mut ls = LevelSetEstimator::new(&cfg, 3);
        let n = 100_000u64;
        for x in 0..n {
            ls.update(x);
        }
        let total_updates: u64 = ls.levels.iter().map(|l| l.updates).sum();
        let per_item = total_updates as f64 / n as f64;
        assert!(
            per_item > 1.9 && per_item < 2.1,
            "avg level updates per item = {per_item}"
        );
    }
}
