//! Misra–Gries frequent items (Misra & Gries, Sci. Comput. Program. 1982).
//!
//! Maintains at most `k` counters. A point query underestimates by at most
//! `n/(k+1)`, deterministically: every item with `f_x > n/(k+1)` is
//! guaranteed to be present. The paper names this algorithm as the
//! insert-only alternative to CountMin for `F_1` heavy hitters (§6); it is
//! also the dominant-element detector inside the entropy estimator.

use sss_codec::{
    put_packed_sorted_u64s, put_varint_u64, put_varint_u64s, CodecError, Reader, WireCodec,
};
use sss_hash::{fp_hash_map, FpHashMap};

/// Misra–Gries summary with `k` counters.
#[derive(Debug, Clone)]
pub struct MisraGries {
    // Fields are crate-visible for the entropy estimator's batch path,
    // which replays the exact `update` transitions with cheaper
    // bookkeeping (debt-counter decrement-alls, incremental argmax).
    pub(crate) k: usize,
    pub(crate) counters: FpHashMap<u64, u64>,
    pub(crate) n: u64,
}

impl MisraGries {
    /// Summary with `k ≥ 1` counters (error `≤ n/(k+1)`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one counter");
        Self {
            k,
            counters: fp_hash_map(),
            n: 0,
        }
    }

    /// Number of stream elements ingested.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The deterministic underestimation bound `n/(k+1)`.
    pub fn error_bound(&self) -> f64 {
        self.n as f64 / (self.k + 1) as f64
    }

    /// Ingest one occurrence of `x`.
    pub fn update(&mut self, x: u64) {
        self.n += 1;
        if let Some(c) = self.counters.get_mut(&x) {
            *c += 1;
        } else if self.counters.len() < self.k {
            self.counters.insert(x, 1);
        } else {
            // Decrement-all step; drop zeroed counters.
            self.counters.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
        }
    }

    /// Ingest a batch of occurrences (same result as one-by-one updates).
    pub fn update_batch(&mut self, xs: &[u64]) {
        for &x in xs {
            self.update(x);
        }
    }

    /// Lower-bound estimate of the frequency of `x` (0 if untracked);
    /// `f_x − n/(k+1) ≤ query(x) ≤ f_x`.
    pub fn query(&self, x: u64) -> u64 {
        self.counters.get(&x).copied().unwrap_or(0)
    }

    /// Tracked `(item, count)` pairs sorted by decreasing count.
    pub fn items(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counters.iter().map(|(&i, &c)| (i, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The tracked item with the largest counter, if any.
    pub fn top(&self) -> Option<(u64, u64)> {
        self.items().into_iter().next()
    }

    /// Merge another summary (Agarwal et al. mergeability: add counters,
    /// then subtract the `(k+1)`-st largest from all and drop non-positive).
    pub fn merge(&mut self, other: &MisraGries) {
        assert_eq!(self.k, other.k, "capacity mismatch");
        // sss-lint: allow(canonical_iteration) — commutative u64 adds into the counter map; the summed state is iteration-order independent
        for (&i, &c) in &other.counters {
            *self.counters.entry(i).or_insert(0) += c;
        }
        self.n += other.n;
        if self.counters.len() > self.k {
            let mut counts: Vec<u64> = self.counters.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let cut = counts[self.k]; // (k+1)-st largest
            self.counters.retain(|_, c| {
                if *c > cut {
                    *c -= cut;
                    true
                } else {
                    false
                }
            });
        }
    }
}

impl WireCodec for MisraGries {
    const WIRE_TAG: u16 = 0x0206;

    fn encode_into(&self, out: &mut Vec<u8>) {
        // v2 layout: columnar — sorted-delta-packed item ids, then the
        // FoR-packed count column (deterministic order: sorted by id).
        put_varint_u64(out, self.k as u64);
        put_varint_u64(out, self.n);
        let mut rows: Vec<(u64, u64)> = self.counters.iter().map(|(&i, &c)| (i, c)).collect();
        rows.sort_unstable();
        let items: Vec<u64> = rows.iter().map(|&(i, _)| i).collect();
        let counts: Vec<u64> = rows.iter().map(|&(_, c)| c).collect();
        put_packed_sorted_u64s(out, &items);
        put_varint_u64s(out, &counts);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let (k, n, items, counts);
        if r.v2() {
            k = r.varint_u64()? as usize;
            n = r.varint_u64()?;
            if k == 0 {
                return Err(CodecError::Invalid {
                    what: "MisraGries k == 0",
                });
            }
            items = r.packed_sorted_u64s()?;
            counts = r.varint_u64s()?;
            if counts.len() != items.len() {
                return Err(CodecError::Invalid {
                    what: "MisraGries count column length mismatch",
                });
            }
        } else {
            k = usize::decode(r)?;
            n = r.u64()?;
            if k == 0 {
                return Err(CodecError::Invalid {
                    what: "MisraGries k == 0",
                });
            }
            let len = r.len_prefix(16)?;
            let mut is = Vec::with_capacity(len);
            let mut cs = Vec::with_capacity(len);
            for _ in 0..len {
                is.push(r.u64()?);
                cs.push(r.u64()?);
            }
            items = is;
            counts = cs;
        }
        if items.len() > k {
            return Err(CodecError::Invalid {
                what: "MisraGries holds more than k counters",
            });
        }
        let mut counters = fp_hash_map();
        for (item, count) in items.into_iter().zip(counts) {
            if count == 0 {
                return Err(CodecError::Invalid {
                    what: "MisraGries zero counter",
                });
            }
            if counters.insert(item, count).is_some() {
                return Err(CodecError::Invalid {
                    what: "MisraGries duplicate item",
                });
            }
        }
        Ok(MisraGries { k, counters, n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_hash::{RngCore64, Xoshiro256pp};

    #[test]
    fn guarantees_hold_on_adversarial_stream() {
        // n/2 copies of item 0 interleaved with distinct junk.
        let k = 9;
        let mut mg = MisraGries::new(k);
        let n = 10_000u64;
        for i in 0..n / 2 {
            mg.update(0);
            mg.update(1000 + i); // all-distinct chaff
        }
        let f0 = n / 2;
        let q = mg.query(0);
        assert!(q <= f0);
        assert!(q as f64 >= f0 as f64 - mg.error_bound());
        assert!(mg.top().unwrap().0 == 0);
    }

    #[test]
    fn never_overestimates() {
        let mut mg = MisraGries::new(5);
        let mut rng = Xoshiro256pp::new(1);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let x = rng.next_below(100);
            mg.update(x);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        for (&x, &f) in &truth {
            assert!(mg.query(x) <= f, "overestimate at {x}");
        }
    }

    #[test]
    fn all_heavy_items_are_tracked() {
        let k = 10;
        let mut mg = MisraGries::new(k);
        let n = 110_000u64;
        // Items 0..5 each get n/11 > n/(k+1) occurrences… exactly n/11 each
        // plus chaff; use frequency 2n/11 to be strictly above.
        let heavy_each = 2 * n / 11;
        for i in 0..5u64 {
            for _ in 0..heavy_each {
                mg.update(i);
            }
        }
        let chaff = n - 5 * heavy_each;
        for j in 0..chaff {
            mg.update(10_000 + j);
        }
        for i in 0..5u64 {
            assert!(mg.query(i) > 0, "heavy item {i} lost");
        }
    }

    #[test]
    fn at_most_k_counters() {
        let mut mg = MisraGries::new(3);
        for x in 0..1000u64 {
            mg.update(x);
        }
        assert!(mg.items().len() <= 3);
    }

    #[test]
    fn merge_preserves_error_bound() {
        let k = 7;
        let mut a = MisraGries::new(k);
        let mut b = MisraGries::new(k);
        let mut whole = std::collections::HashMap::new();
        let mut rng = Xoshiro256pp::new(2);
        for _ in 0..20_000 {
            let x = if rng.next_bool(0.4) {
                rng.next_below(3)
            } else {
                3 + rng.next_below(5000)
            };
            a.update(x);
            *whole.entry(x).or_insert(0u64) += 1;
        }
        for _ in 0..20_000 {
            let x = if rng.next_bool(0.4) {
                rng.next_below(3)
            } else {
                3 + rng.next_below(5000)
            };
            b.update(x);
            *whole.entry(x).or_insert(0u64) += 1;
        }
        a.merge(&b);
        assert_eq!(a.n(), 40_000);
        let bound = a.error_bound();
        for (&x, &f) in &whole {
            let q = a.query(x);
            assert!(q <= f, "overestimate at {x}");
            assert!(
                q as f64 >= f as f64 - bound,
                "item {x}: {q} < {f} - {bound}"
            );
        }
        assert!(a.items().len() <= k);
    }

    #[test]
    fn top_identifies_majority() {
        let mut mg = MisraGries::new(2);
        let mut rng = Xoshiro256pp::new(3);
        for _ in 0..10_000 {
            let x = if rng.next_bool(0.6) {
                7
            } else {
                rng.next_below(1000)
            };
            mg.update(x);
        }
        assert_eq!(mg.top().unwrap().0, 7);
    }
}
