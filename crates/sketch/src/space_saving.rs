//! SpaceSaving (Metwally, Agrawal & El Abbadi, ICDT 2005).
//!
//! The other classic `O(k)`-counter frequent-items summary: when a new item
//! arrives and the table is full, the *minimum* counter is reassigned to it
//! and incremented, recording the possible overestimate. Point queries are
//! overestimates by at most `n/k`; every item with `f_x > n/k` is tracked.
//! Provided as an alternative heavy-hitter backend (the paper's Theorem 6
//! only needs *some* `(α, ε)` reporter on the sampled stream).

use std::collections::BTreeSet;

use sss_codec::{
    put_packed_sorted_u64s, put_varint_u64, put_varint_u64s, CodecError, Reader, WireCodec,
};
use sss_hash::{fp_hash_map, FpHashMap};

/// SpaceSaving summary with `k` counters.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    k: usize,
    /// item → (count, overestimation error at adoption time)
    table: FpHashMap<u64, (u64, u64)>,
    /// (count, item) ordered set for O(log k) minimum extraction.
    by_count: BTreeSet<(u64, u64)>,
    n: u64,
}

impl SpaceSaving {
    /// Summary with `k ≥ 1` counters (overestimate `≤ n/k`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one counter");
        Self {
            k,
            table: fp_hash_map(),
            by_count: BTreeSet::new(),
            n: 0,
        }
    }

    /// Number of stream elements ingested.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The deterministic overestimation bound `n/k`.
    pub fn error_bound(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// Ingest one occurrence of `x`.
    pub fn update(&mut self, x: u64) {
        self.n += 1;
        if let Some(&(c, e)) = self.table.get(&x) {
            self.by_count.remove(&(c, x));
            self.table.insert(x, (c + 1, e));
            self.by_count.insert((c + 1, x));
        } else if self.table.len() < self.k {
            self.table.insert(x, (1, 0));
            self.by_count.insert((1, x));
        } else {
            // Evict the minimum counter; adopt its count as our error.
            let &(min_c, min_i) = self.by_count.iter().next().expect("non-empty");
            self.by_count.remove(&(min_c, min_i));
            self.table.remove(&min_i);
            self.table.insert(x, (min_c + 1, min_c));
            self.by_count.insert((min_c + 1, x));
        }
    }

    /// Ingest a batch of occurrences (same result as one-by-one updates).
    pub fn update_batch(&mut self, xs: &[u64]) {
        for &x in xs {
            self.update(x);
        }
    }

    /// Merge another summary with the same capacity (Agarwal et al.,
    /// *Mergeable Summaries*, PODS 2012). An item absent from a summary
    /// has an implicit count of at most that summary's minimum counter, so
    /// one-sided items inherit the other side's minimum as count and
    /// error; the combined table is then pruned back to the `k` largest
    /// counters. The `f_x ≤ query(x) ≤ f_x + n/k` bracket is preserved.
    pub fn merge(&mut self, other: &SpaceSaving) {
        assert_eq!(self.k, other.k, "capacity mismatch");
        let self_min = if self.table.len() < self.k {
            0
        } else {
            self.by_count.iter().next().map(|&(c, _)| c).unwrap_or(0)
        };
        let other_min = if other.table.len() < other.k {
            0
        } else {
            other.by_count.iter().next().map(|&(c, _)| c).unwrap_or(0)
        };
        let mut combined: Vec<(u64, (u64, u64))> = Vec::new();
        // sss-lint: allow(canonical_iteration) — each id lands in `combined` exactly once and the (count desc, id asc) sort below canonicalizes before truncation
        for (&i, &(c, e)) in &self.table {
            match other.table.get(&i) {
                Some(&(oc, oe)) => combined.push((i, (c + oc, e + oe))),
                None => combined.push((i, (c + other_min, e + other_min))),
            }
        }
        // sss-lint: allow(canonical_iteration) — same: unique ids, fully sorted before truncation
        for (&i, &(c, e)) in &other.table {
            if !self.table.contains_key(&i) {
                combined.push((i, (c + self_min, e + self_min)));
            }
        }
        combined.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
        combined.truncate(self.k);
        self.table.clear();
        self.by_count.clear();
        for (i, (c, e)) in combined {
            self.table.insert(i, (c, e));
            self.by_count.insert((c, i));
        }
        self.n += other.n;
    }

    /// Upper-bound estimate of the frequency of `x` (0 if untracked);
    /// `f_x ≤ query(x) ≤ f_x + n/k` for tracked items.
    pub fn query(&self, x: u64) -> u64 {
        self.table.get(&x).map(|&(c, _)| c).unwrap_or(0)
    }

    /// Guaranteed lower bound on the frequency of `x` (count − error).
    pub fn query_lower(&self, x: u64) -> u64 {
        self.table.get(&x).map(|&(c, e)| c - e).unwrap_or(0)
    }

    /// Tracked `(item, count, error)` rows sorted by decreasing count.
    pub fn items(&self) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> =
            self.table.iter().map(|(&i, &(c, e))| (i, c, e)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

impl WireCodec for SpaceSaving {
    const WIRE_TAG: u16 = 0x0207;

    fn encode_into(&self, out: &mut Vec<u8>) {
        // `by_count` is derived (count, item) ordering — rebuilt on
        // decode. v2 layout: columnar — sorted-delta-packed item ids,
        // FoR-packed count and error columns.
        put_varint_u64(out, self.k as u64);
        put_varint_u64(out, self.n);
        let mut rows: Vec<(u64, u64, u64)> =
            self.table.iter().map(|(&i, &(c, e))| (i, c, e)).collect();
        rows.sort_unstable();
        let items: Vec<u64> = rows.iter().map(|&(i, _, _)| i).collect();
        let counts: Vec<u64> = rows.iter().map(|&(_, c, _)| c).collect();
        let errs: Vec<u64> = rows.iter().map(|&(_, _, e)| e).collect();
        put_packed_sorted_u64s(out, &items);
        put_varint_u64s(out, &counts);
        put_varint_u64s(out, &errs);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let (k, n, rows);
        if r.v2() {
            k = r.varint_u64()? as usize;
            n = r.varint_u64()?;
            if k == 0 {
                return Err(CodecError::Invalid {
                    what: "SpaceSaving k == 0",
                });
            }
            let items = r.packed_sorted_u64s()?;
            let counts = r.varint_u64s()?;
            let errs = r.varint_u64s()?;
            if counts.len() != items.len() || errs.len() != items.len() {
                return Err(CodecError::Invalid {
                    what: "SpaceSaving column length mismatch",
                });
            }
            rows = items
                .into_iter()
                .zip(counts)
                .zip(errs)
                .map(|((i, c), e)| (i, c, e))
                .collect::<Vec<_>>();
        } else {
            k = usize::decode(r)?;
            n = r.u64()?;
            if k == 0 {
                return Err(CodecError::Invalid {
                    what: "SpaceSaving k == 0",
                });
            }
            let len = r.len_prefix(24)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push((r.u64()?, r.u64()?, r.u64()?));
            }
            rows = v;
        }
        if rows.len() > k {
            return Err(CodecError::Invalid {
                what: "SpaceSaving holds more than k counters",
            });
        }
        let mut table = fp_hash_map();
        let mut by_count = BTreeSet::new();
        for (item, count, err) in rows {
            if count == 0 || err >= count {
                return Err(CodecError::Invalid {
                    what: "SpaceSaving counter not above its error",
                });
            }
            if table.insert(item, (count, err)).is_some() {
                return Err(CodecError::Invalid {
                    what: "SpaceSaving duplicate item",
                });
            }
            by_count.insert((count, item));
        }
        Ok(SpaceSaving {
            k,
            table,
            by_count,
            n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_hash::{RngCore64, Xoshiro256pp};

    #[test]
    fn estimates_bracket_truth() {
        let mut ss = SpaceSaving::new(20);
        let mut rng = Xoshiro256pp::new(1);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let x = if rng.next_bool(0.5) {
                rng.next_below(5)
            } else {
                5 + rng.next_below(10_000)
            };
            ss.update(x);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        let bound = ss.error_bound();
        for (&x, &f) in &truth {
            let q = ss.query(x);
            if q > 0 {
                assert!(q >= f || x >= 5, "tracked heavy item underestimated");
                assert!(q as f64 <= f as f64 + bound, "item {x}: {q} > {f}+{bound}");
                assert!(ss.query_lower(x) <= f);
            }
        }
    }

    #[test]
    fn heavy_items_never_evicted() {
        let k = 10;
        let mut ss = SpaceSaving::new(k);
        let n = 100_000u64;
        // Item 0 holds 20% of the stream: f > n/k.
        let mut rng = Xoshiro256pp::new(2);
        for _ in 0..n {
            let x = if rng.next_bool(0.2) {
                0
            } else {
                1 + rng.next_below(50_000)
            };
            ss.update(x);
        }
        assert!(ss.query(0) > 0, "heavy item evicted");
        assert!(ss.query_lower(0) > 0);
    }

    #[test]
    fn table_capacity_respected() {
        let mut ss = SpaceSaving::new(4);
        for x in 0..1000u64 {
            ss.update(x);
        }
        assert!(ss.items().len() <= 4);
        // Counts sum to n (SpaceSaving invariant).
        let total: u64 = ss.items().iter().map(|&(_, c, _)| c).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn merge_preserves_bracket_and_capacity() {
        let k = 16;
        let mut a = SpaceSaving::new(k);
        let mut b = SpaceSaving::new(k);
        let mut truth = std::collections::HashMap::new();
        let mut rng = Xoshiro256pp::new(7);
        for _ in 0..30_000 {
            let x = if rng.next_bool(0.4) {
                rng.next_below(4)
            } else {
                4 + rng.next_below(8_000)
            };
            a.update(x);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        for _ in 0..30_000 {
            let x = if rng.next_bool(0.4) {
                rng.next_below(4)
            } else {
                4 + rng.next_below(8_000)
            };
            b.update(x);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        a.merge(&b);
        assert_eq!(a.n(), 60_000);
        assert!(a.items().len() <= k);
        let bound = a.error_bound();
        for (&x, &f) in &truth {
            let q = a.query(x);
            if q > 0 {
                assert!(q as f64 <= f as f64 + bound, "item {x}: {q} > {f}+{bound}");
                assert!(a.query_lower(x) <= f, "lower bound broken at {x}");
            }
        }
        // The four planted heavies (f ≈ 24k each > n/k) must survive.
        for x in 0..4u64 {
            assert!(a.query(x) > 0, "heavy item {x} lost in merge");
        }
    }

    #[test]
    fn merge_under_capacity_is_exact() {
        let mut a = SpaceSaving::new(100);
        let mut b = SpaceSaving::new(100);
        for _ in 0..5 {
            a.update(1);
            b.update(1);
            b.update(2);
        }
        a.merge(&b);
        assert_eq!(a.query(1), 10);
        assert_eq!(a.query(2), 5);
        assert_eq!(a.n(), 15);
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(100);
        for _ in 0..7 {
            ss.update(1);
        }
        for _ in 0..3 {
            ss.update(2);
        }
        assert_eq!(ss.query(1), 7);
        assert_eq!(ss.query(2), 3);
        assert_eq!(ss.query_lower(1), 7);
    }
}
