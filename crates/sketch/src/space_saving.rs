//! SpaceSaving (Metwally, Agrawal & El Abbadi, ICDT 2005).
//!
//! The other classic `O(k)`-counter frequent-items summary: when a new item
//! arrives and the table is full, the *minimum* counter is reassigned to it
//! and incremented, recording the possible overestimate. Point queries are
//! overestimates by at most `n/k`; every item with `f_x > n/k` is tracked.
//! Provided as an alternative heavy-hitter backend (the paper's Theorem 6
//! only needs *some* `(α, ε)` reporter on the sampled stream).

use std::collections::BTreeSet;

use sss_hash::{fp_hash_map, FpHashMap};

/// SpaceSaving summary with `k` counters.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    k: usize,
    /// item → (count, overestimation error at adoption time)
    table: FpHashMap<u64, (u64, u64)>,
    /// (count, item) ordered set for O(log k) minimum extraction.
    by_count: BTreeSet<(u64, u64)>,
    n: u64,
}

impl SpaceSaving {
    /// Summary with `k ≥ 1` counters (overestimate `≤ n/k`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one counter");
        Self {
            k,
            table: fp_hash_map(),
            by_count: BTreeSet::new(),
            n: 0,
        }
    }

    /// Number of stream elements ingested.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The deterministic overestimation bound `n/k`.
    pub fn error_bound(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// Ingest one occurrence of `x`.
    pub fn update(&mut self, x: u64) {
        self.n += 1;
        if let Some(&(c, e)) = self.table.get(&x) {
            self.by_count.remove(&(c, x));
            self.table.insert(x, (c + 1, e));
            self.by_count.insert((c + 1, x));
        } else if self.table.len() < self.k {
            self.table.insert(x, (1, 0));
            self.by_count.insert((1, x));
        } else {
            // Evict the minimum counter; adopt its count as our error.
            let &(min_c, min_i) = self.by_count.iter().next().expect("non-empty");
            self.by_count.remove(&(min_c, min_i));
            self.table.remove(&min_i);
            self.table.insert(x, (min_c + 1, min_c));
            self.by_count.insert((min_c + 1, x));
        }
    }

    /// Upper-bound estimate of the frequency of `x` (0 if untracked);
    /// `f_x ≤ query(x) ≤ f_x + n/k` for tracked items.
    pub fn query(&self, x: u64) -> u64 {
        self.table.get(&x).map(|&(c, _)| c).unwrap_or(0)
    }

    /// Guaranteed lower bound on the frequency of `x` (count − error).
    pub fn query_lower(&self, x: u64) -> u64 {
        self.table.get(&x).map(|&(c, e)| c - e).unwrap_or(0)
    }

    /// Tracked `(item, count, error)` rows sorted by decreasing count.
    pub fn items(&self) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> = self
            .table
            .iter()
            .map(|(&i, &(c, e))| (i, c, e))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_hash::{RngCore64, Xoshiro256pp};

    #[test]
    fn estimates_bracket_truth() {
        let mut ss = SpaceSaving::new(20);
        let mut rng = Xoshiro256pp::new(1);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let x = if rng.next_bool(0.5) {
                rng.next_below(5)
            } else {
                5 + rng.next_below(10_000)
            };
            ss.update(x);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        let bound = ss.error_bound();
        for (&x, &f) in &truth {
            let q = ss.query(x);
            if q > 0 {
                assert!(q >= f || x >= 5, "tracked heavy item underestimated");
                assert!(q as f64 <= f as f64 + bound, "item {x}: {q} > {f}+{bound}");
                assert!(ss.query_lower(x) <= f);
            }
        }
    }

    #[test]
    fn heavy_items_never_evicted() {
        let k = 10;
        let mut ss = SpaceSaving::new(k);
        let n = 100_000u64;
        // Item 0 holds 20% of the stream: f > n/k.
        let mut rng = Xoshiro256pp::new(2);
        for _ in 0..n {
            let x = if rng.next_bool(0.2) {
                0
            } else {
                1 + rng.next_below(50_000)
            };
            ss.update(x);
        }
        assert!(ss.query(0) > 0, "heavy item evicted");
        assert!(ss.query_lower(0) > 0);
    }

    #[test]
    fn table_capacity_respected() {
        let mut ss = SpaceSaving::new(4);
        for x in 0..1000u64 {
            ss.update(x);
        }
        assert!(ss.items().len() <= 4);
        // Counts sum to n (SpaceSaving invariant).
        let total: u64 = ss.items().iter().map(|&(_, c, _)| c).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(100);
        for _ in 0..7 {
            ss.update(1);
        }
        for _ in 0..3 {
            ss.update(2);
        }
        assert_eq!(ss.query(1), 7);
        assert_eq!(ss.query(2), 3);
        assert_eq!(ss.query_lower(1), 7);
    }
}
