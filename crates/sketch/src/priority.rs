//! Priority sampling (Duffield, Lund & Thorup, JACM 2007) — the
//! variance-optimal weighted sampling scheme the paper's related work
//! highlights (§1.3, [19]; Szegedy's optimality result [35]).
//!
//! Each weighted item `(i, w_i)` draws `u_i` uniform in `(0, 1]` and gets
//! priority `q_i = w_i/u_i`. A priority sample of size `k` keeps the `k`
//! largest priorities plus the threshold `τ` = the `(k+1)`-st priority.
//! The estimator `ŵ_i = max(w_i, τ)` for kept items (0 otherwise) is
//! unbiased for every item, and subset sums `Σ_{i∈S} ŵ_i` are unbiased
//! with near-optimal variance for any fixed subset `S` chosen after the
//! fact — the "arbitrary subset sum" primitive router monitors use.

use std::collections::BinaryHeap;

use sss_codec::{CodecError, Reader, WireCodec};
use sss_hash::{RngCore64, Xoshiro256pp};

/// One kept entry of a priority sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrioritySample {
    /// Item identifier.
    pub item: u64,
    /// Original weight.
    pub weight: f64,
    /// Priority `w/u` (internal; exposed for diagnostics).
    pub priority: f64,
}

/// Min-heap entry ordered by priority.
#[derive(Debug, Clone, Copy)]
struct Entry {
    priority: f64,
    item: u64,
    weight: f64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.item == other.item
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap; we want the min priority on top.
        other
            .priority
            .total_cmp(&self.priority)
            .then(other.item.cmp(&self.item))
    }
}

/// Streaming priority sampler of size `k`.
#[derive(Debug, Clone)]
pub struct PrioritySampler {
    k: usize,
    heap: BinaryHeap<Entry>,
    /// Threshold τ: the largest priority ever evicted.
    threshold: f64,
    rng: Xoshiro256pp,
}

impl PrioritySampler {
    /// Sampler keeping `k ≥ 1` items.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "sample size must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            threshold: 0.0,
            rng: Xoshiro256pp::new(seed),
        }
    }

    /// Offer an item with positive weight.
    pub fn offer(&mut self, item: u64, weight: f64) {
        assert!(weight > 0.0, "weights must be positive");
        let u = (1.0 - self.rng.next_f64()).max(f64::MIN_POSITIVE); // (0, 1]
        let priority = weight / u;
        self.heap.push(Entry {
            priority,
            item,
            weight,
        });
        if self.heap.len() > self.k {
            let evicted = self.heap.pop().expect("non-empty");
            self.threshold = self.threshold.max(evicted.priority);
        }
    }

    /// The current threshold `τ` (0 while fewer than `k+1` items offered;
    /// estimates are exact in that regime).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The kept sample.
    pub fn sample(&self) -> Vec<PrioritySample> {
        self.heap
            .iter()
            .map(|e| PrioritySample {
                item: e.item,
                weight: e.weight,
                priority: e.priority,
            })
            .collect()
    }

    /// Unbiased weight estimate for a specific item: `max(w, τ)` if kept,
    /// 0 otherwise.
    pub fn estimate_weight(&self, item: u64) -> f64 {
        self.heap
            .iter()
            .find(|e| e.item == item)
            .map(|e| e.weight.max(self.threshold))
            .unwrap_or(0.0)
    }

    /// Unbiased estimate of `Σ w_i` over all items in `subset`.
    pub fn estimate_subset_sum<F: Fn(u64) -> bool>(&self, subset: F) -> f64 {
        self.heap
            .iter()
            .filter(|e| subset(e.item))
            .map(|e| e.weight.max(self.threshold))
            .sum()
    }

    /// Unbiased estimate of the total weight offered.
    pub fn estimate_total(&self) -> f64 {
        self.estimate_subset_sum(|_| true)
    }
}

impl WireCodec for PrioritySampler {
    const WIRE_TAG: u16 = 0x0211;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.k.encode_into(out);
        self.threshold.encode_into(out);
        let rows: Vec<(f64, u64, f64)> = self
            .heap
            .iter()
            .map(|e| (e.priority, e.item, e.weight))
            .collect();
        rows.encode_into(out);
        self.rng.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let k = usize::decode(r)?;
        let threshold = r.f64()?;
        let rows: Vec<(f64, u64, f64)> = Vec::decode(r)?;
        if k == 0 {
            return Err(CodecError::Invalid {
                what: "PrioritySampler k == 0",
            });
        }
        if threshold.is_nan() || threshold < 0.0 {
            return Err(CodecError::Invalid {
                what: "PrioritySampler threshold < 0",
            });
        }
        if rows.len() > k {
            return Err(CodecError::Invalid {
                what: "PrioritySampler holds more than k entries",
            });
        }
        let mut entries = Vec::with_capacity(rows.len());
        for (priority, item, weight) in rows {
            if weight.is_nan() || weight <= 0.0 || priority.is_nan() || priority < weight {
                return Err(CodecError::Invalid {
                    what: "PrioritySampler entry weight/priority invalid",
                });
            }
            entries.push(Entry {
                priority,
                item,
                weight,
            });
        }
        let rng = Xoshiro256pp::decode(r)?;
        Ok(PrioritySampler {
            k,
            heap: BinaryHeap::from(entries),
            threshold,
            rng,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut ps = PrioritySampler::new(10, 1);
        for i in 0..5u64 {
            ps.offer(i, (i + 1) as f64);
        }
        assert_eq!(ps.threshold(), 0.0);
        assert_eq!(ps.estimate_total(), 15.0);
        assert_eq!(ps.estimate_weight(4), 5.0);
    }

    #[test]
    fn subset_sum_is_unbiased() {
        // 1000 items, weights 1..=1000; subset = even items.
        // True subset sum = 2 + 4 + … + 1000 = 250_500.
        let truth: f64 = (1..=500).map(|i| (2 * i) as f64).sum();
        let trials = 300u64;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut ps = PrioritySampler::new(64, seed);
            for i in 1..=1000u64 {
                ps.offer(i, i as f64);
            }
            sum += ps.estimate_subset_sum(|i| i % 2 == 0);
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "mean {mean} vs {truth}"
        );
    }

    #[test]
    fn total_weight_estimate_concentrates() {
        let truth: f64 = (1..=5000u64).map(|i| (i % 97 + 1) as f64).sum();
        let mut ps = PrioritySampler::new(512, 7);
        for i in 1..=5000u64 {
            ps.offer(i, (i % 97 + 1) as f64);
        }
        let est = ps.estimate_total();
        assert!((est - truth).abs() / truth < 0.15, "est {est} vs {truth}");
    }

    #[test]
    fn heavy_items_always_kept() {
        // One item with weight 1e6 among unit weights: its priority is
        // ≥ 1e6 while unit items need u < k/n to compete.
        let mut ps = PrioritySampler::new(32, 9);
        ps.offer(999, 1e6);
        for i in 0..10_000u64 {
            ps.offer(i, 1.0);
        }
        assert!(ps.estimate_weight(999) >= 1e6);
    }

    #[test]
    fn sample_size_is_bounded() {
        let mut ps = PrioritySampler::new(16, 11);
        for i in 0..1000u64 {
            ps.offer(i, 1.0 + (i % 7) as f64);
        }
        assert_eq!(ps.sample().len(), 16);
        assert!(ps.threshold() > 0.0);
    }
}
