//! From-scratch streaming sketch substrates.
//!
//! Everything the paper's estimators consume as a black box is implemented
//! here, against the hash families of `sss-hash`:
//!
//! | Module | Structure | Role in the paper |
//! |---|---|---|
//! | [`countmin`] | Cormode–Muthukrishnan CountMin | `F_1` heavy hitters on `L` (Thm 6) |
//! | [`countsketch`] | Charikar–Chen–Farach-Colton CountSketch | `F_2` heavy hitters on `L` (Thm 7); frequency recovery inside level sets |
//! | [`misra_gries`] | Misra–Gries frequent items | alternative HH backend (§6); dominant-element detection for entropy |
//! | [`space_saving`] | Metwally et al. SpaceSaving | engineering alternative HH backend |
//! | [`ams`] | Alon–Matias–Szegedy tug-of-war | `F_2(L)` for the Rusu–Dobra baseline |
//! | [`kmv`] | bottom-k distinct sketch | the `(1/2, δ)` `F_0(L)` estimate of Algorithm 2 |
//! | [`hll`] | HyperLogLog | engineering alternative `F_0` backend |
//! | [`levelset`] | Indyk–Woodruff level sets | `C̃_ℓ(L)` for Algorithm 1 (Thm 2) |
//! | [`entropy`] | CCM suffix-count estimator | multiplicative `H(g)` for Thm 5 |
//! | [`reservoir`] | reservoir sampling (R/L, weighted) | related-work substrate; powers the entropy estimator |
//! | [`topk`] | candidate heavy-hitter trackers | turning point-query sketches into `O(1/α)`-item reporters |
//! | [`atomic`] | shared-atomic grid variants | lock-free multi-threaded ingestion into one sketch state |

#![forbid(unsafe_code)]

pub mod ams;
pub mod atomic;
pub(crate) mod batch;
pub mod countmin;
pub mod countsketch;
pub mod entropy;
pub mod equiv;
pub mod hll;
pub mod kmv;
pub mod levelset;
pub mod misra_gries;
pub mod priority;
pub mod reservoir;
pub mod space_saving;
pub mod topk;

pub use ams::AmsF2;
pub use atomic::{
    AtomicAmsF2, AtomicCmHeavyHitters, AtomicCountMin, AtomicCountSketch, AtomicCsHeavyHitters,
    AtomicScratch,
};
pub use countmin::CountMin;
pub use countsketch::CountSketch;
pub use entropy::EntropyEstimator;
pub use hll::HyperLogLog;
pub use kmv::{KmvSketch, MedianF0};
pub use levelset::LevelSetEstimator;
pub use misra_gries::MisraGries;
pub use priority::{PrioritySample, PrioritySampler};
pub use reservoir::{ReservoirSampler, WeightedReservoir};
pub use space_saving::SpaceSaving;
pub use topk::{CmHeavyHitters, CsHeavyHitters, MgHeavyHitters, TopKTracker};
